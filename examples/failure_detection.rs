//! Resilience monitoring (§II-B): detect failed caches without any
//! cooperation from the platform.
//!
//! The paper's motivating example: "a DNS platform uses four caches, but
//! our tool measures two, namely two are down." We enumerate a healthy
//! platform, knock out half of its caches, and re-enumerate — each run
//! uses a fresh honey record so measurements never contaminate each
//! other.
//!
//! Run with: `cargo run --example failure_detection`

use counting_dark::cde::access::{AccessChannel, DirectAccess};
use counting_dark::cde::enumerate::{enumerate_identical, EnumerateOptions};
use counting_dark::cde::CdeInfra;
use counting_dark::netsim::{Link, SimTime};
use counting_dark::platform::{NameserverNet, PlatformBuilder, SelectorKind};
use counting_dark::probers::DirectProber;
use std::net::Ipv4Addr;

fn main() {
    let ingress = Ipv4Addr::new(192, 0, 2, 1);
    let mut net = NameserverNet::new();
    let mut infra = CdeInfra::install(&mut net);
    // Healthy platform: 4 caches.
    let mut platform = PlatformBuilder::new(404)
        .ingress(vec![ingress])
        .egress(vec![Ipv4Addr::new(192, 0, 3, 1)])
        .cluster(4, SelectorKind::Random)
        .build();

    let q = counting_dark::analysis::coupon::query_budget(8, 0.001);
    let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 11);

    let measure = |platform: &mut counting_dark::platform::ResolutionPlatform,
                   net: &mut NameserverNet,
                   infra: &mut CdeInfra,
                   prober: &mut DirectProber| {
        let mut access = DirectAccess::new(prober, platform, ingress, net);
        let session = infra.new_session(access.net_mut(), 0);
        enumerate_identical(
            &mut access,
            infra,
            &session,
            EnumerateOptions::with_probes(q),
            SimTime::ZERO,
        )
        .observed
    };

    let healthy = measure(&mut platform, &mut net, &mut infra, &mut prober);
    println!("baseline measurement: {healthy} caches reachable");

    // An outage takes down two cache instances. We model it by rebuilding
    // the platform's cluster with half the caches (the load balancer stops
    // routing to dead instances).
    let mut degraded = PlatformBuilder::new(404) // same seed: same surviving state shape
        .ingress(vec![ingress])
        .egress(vec![Ipv4Addr::new(192, 0, 3, 1)])
        .cluster(2, SelectorKind::Random)
        .build();
    let after = measure(&mut degraded, &mut net, &mut infra, &mut prober);
    println!("after the outage:     {after} caches reachable");

    assert_eq!(healthy, 4);
    assert_eq!(after, 2);
    println!(
        "alert: {} of {} caches are down — detected non-intrusively, with no access to the platform",
        healthy - after,
        healthy
    );
}
