//! Software census (§II-C): identify the software of the *caches* —
//! not the egress resolvers — across a population of platforms.
//!
//! Prior fingerprinting work classifies the software answering on an IP
//! address; the paper notes (§VI) that this misses the hidden caches that
//! do the actual caching work. This example classifies cache software by
//! probing the caches' own behaviour: their positive and negative TTL
//! caps, observed by planting long-TTL records and timing re-fetches.
//!
//! Run with: `cargo run --release --example software_census`

use counting_dark::cache::SoftwareProfile;
use counting_dark::cde::access::DirectAccess;
use counting_dark::cde::{fingerprint_software, CdeInfra, FingerprintOptions};
use counting_dark::datasets::{generate_population, PopulationKind};
use counting_dark::netsim::{Link, SimTime};
use counting_dark::platform::NameserverNet;
use counting_dark::probers::DirectProber;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

fn main() {
    let population = generate_population(PopulationKind::OpenResolvers, 40, 99);
    println!(
        "fingerprinting the cache software of {} networks ...\n",
        population.len()
    );

    let mut census: BTreeMap<String, usize> = BTreeMap::new();
    let mut correct = 0usize;
    for spec in &population {
        let mut net = NameserverNet::new();
        let mut infra = CdeInfra::install(&mut net);
        let mut platform = spec.build();
        let ingress = spec.ingress_ips()[0];
        let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 7), Link::ideal(), spec.id);
        let mut access = DirectAccess::new(&mut prober, &mut platform, ingress, &mut net);
        let fp = fingerprint_software(
            &mut access,
            &mut infra,
            &FingerprintOptions::default(),
            SimTime::ZERO,
        );
        let label = fp
            .classified
            .map(|p| p.to_string())
            .unwrap_or_else(|| "unclassified".into());
        *census.entry(label).or_insert(0) += 1;
        if fp.classified == Some(spec.software) {
            correct += 1;
        }
    }

    println!("census (measured from outside, no cooperation from the platforms):");
    for (software, count) in &census {
        println!(
            "  {software:<14} {count:>3} networks ({:.0}%)",
            *count as f64 / population.len() as f64 * 100.0
        );
    }
    println!(
        "\nvalidation against ground truth: {correct}/{} classified correctly",
        population.len()
    );
    let all: Vec<String> = SoftwareProfile::all()
        .iter()
        .map(|p| p.to_string())
        .collect();
    println!("profiles modelled: {}", all.join(", "));
}
