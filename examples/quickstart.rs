//! Quickstart: count the hidden caches of a resolution platform.
//!
//! Builds a platform with a secret number of caches, then recovers that
//! number from the outside using the paper's direct enumeration
//! (§IV-B1a): q identical queries for a honey record in a domain we own,
//! counting the fetches arriving at our nameserver.
//!
//! Run with: `cargo run --example quickstart`

use counting_dark::analysis::coupon::{expected_queries, query_budget};
use counting_dark::cde::access::DirectAccess;
use counting_dark::cde::enumerate::{enumerate_identical, EnumerateOptions};
use counting_dark::cde::CdeInfra;
use counting_dark::netsim::{Link, SimTime};
use counting_dark::platform::{NameserverNet, PlatformBuilder, SelectorKind};
use counting_dark::probers::DirectProber;
use std::net::Ipv4Addr;

fn main() {
    // --- The target: a DNS resolution platform with hidden caches. -----
    let secret_cache_count = 5;
    let ingress = Ipv4Addr::new(192, 0, 2, 1);
    let mut net = NameserverNet::new();
    let mut infra = CdeInfra::install(&mut net);
    let mut platform = PlatformBuilder::new(2017)
        .ingress(vec![ingress])
        .egress((1..=4).map(|d| Ipv4Addr::new(192, 0, 3, d)).collect())
        .cluster(secret_cache_count, SelectorKind::Random)
        .build();
    println!(
        "target platform: 1 ingress IP, {secret_cache_count} caches (hidden), random selection"
    );

    // --- The measurement: CDE direct enumeration. ----------------------
    let n_guess = 8; // assumed upper bound on the cache count
    let q = query_budget(n_guess, 0.001);
    println!(
        "coupon collector: E[X] for n={n_guess} is {:.1} queries; budget q={q} bounds failure by 0.1%",
        expected_queries(n_guess)
    );

    let session = infra.new_session(&mut net, 0);
    println!("planted honey record {} in our zone", session.honey);

    let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 42);
    let mut access = DirectAccess::new(&mut prober, &mut platform, ingress, &mut net);
    let result = enumerate_identical(
        &mut access,
        &infra,
        &session,
        EnumerateOptions::with_probes(q),
        SimTime::ZERO,
    );

    println!(
        "sent {} identical queries; {} fetches reached our nameserver",
        result.probes, result.observed
    );
    println!("measured cache count: {}", result.estimated);
    assert_eq!(result.estimated, secret_cache_count as u64);
    println!("matches the hidden ground truth — counting in the dark works");
}
