//! Live loopback census: the paper's enumeration running over *real* UDP.
//!
//! Launches the full live chain hermetically on `127.0.0.1` — a
//! [`WireAuthority`] farm serving the CDE zones, a [`LoopbackResolver`]
//! fronting a hidden simulated cache platform, and the event-driven probe
//! reactor multiplexing real datagrams at it with retries and jittered
//! backoff — then runs the exact same `enumerate_adaptive` the simulator
//! uses and compares its estimate against ground truth. A second pass
//! injects 20% request loss to show the retry machinery absorbing it.
//!
//! The whole run is observable: a process-wide telemetry hub streams the
//! campaign span and per-probe lifecycle events, each reactor registers
//! its metrics (counters, RTT/tick histograms, health gauges) into a
//! `MetricsRegistry`, and insight capture keeps per-target streaming RTT
//! digests the summary lines quote. Pipe the JSONL through `cde-analyze`
//! for the offline view of the same run.
//!
//! Run with: `cargo run --release --example live_loopback_census`
//!
//! Flags:
//!
//! * `--telemetry-jsonl <path>` — append the telemetry event stream
//!   (campaign spans + probe lifecycle) to `<path>` as JSON Lines;
//! * `--prometheus` — dump the final registry in Prometheus text format;
//! * `--chaos` — run a third pass under a seeded [`FaultPlan`] (30%
//!   bursty loss, duplication, jitter) injected by the reactor's fault
//!   layer; the seed comes from `CDE_CHAOS_SEED` (default 4242);
//! * `--flight-dump <path>` — enable the reactor's flight recorder and
//!   snapshot its rings to `<path>` after each pass (the last pass
//!   wins). Feed the artifact to `cde-analyze --forensics` for the
//!   per-ingress fate table.

use counting_dark::cde::{enumerate_adaptive, CdeInfra, SurveyOptions};
use counting_dark::engine::{
    EngineAccess, FlightOptions, InsightOptions, LiveTestbed, ReactorConfig, ResolverConfig,
    RetryPolicy, MAX_BATCH,
};
use counting_dark::faults::{DelayFault, DuplicateFault, FaultPlan};
use counting_dark::netsim::{seed_from_env, SimTime};
use counting_dark::platform::{NameserverNet, PlatformBuilder, SelectorKind};
use counting_dark::telemetry::{
    install_global, MetricsRegistry, ProgressReporter, TelemetryHub, DEFAULT_RING_CAPACITY,
};
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Duration;

const INGRESS: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

fn census(
    caches: usize,
    seed: u64,
    cfg: ResolverConfig,
    faults: Option<FaultPlan>,
    label: &str,
    reporter: &mut ProgressReporter,
    flight_dump: Option<&std::path::Path>,
) -> Arc<MetricsRegistry> {
    // A fresh registry per pass: each pass launches its own reactor, and
    // re-registering a second reactor's collectors into the same registry
    // would duplicate every metric family.
    let registry = MetricsRegistry::new();
    let mut net = NameserverNet::new();
    let mut infra = CdeInfra::install(&mut net);
    let platform = PlatformBuilder::new(seed)
        .ingress(vec![INGRESS])
        .egress((1..=3).map(|d| Ipv4Addr::new(192, 0, 3, d)).collect())
        .cluster(caches, SelectorKind::Random)
        .build();

    let testbed = LiveTestbed::launch(platform, net, cfg).expect("loopback sockets");
    let policy = RetryPolicy {
        attempts: 5,
        timeout: Duration::from_millis(150),
        backoff: 1.5,
        base_delay: Duration::from_millis(2),
        jitter: 0.5,
    };
    let injected_loss = faults.as_ref().map_or(0.0, FaultPlan::worst_loss);
    let mut transport = testbed
        .reactor_transport(ReactorConfig {
            registry: Some(Arc::clone(&registry)),
            faults,
            insight: Some(InsightOptions::default()),
            flight: flight_dump.map(|_| FlightOptions::default()),
            ..ReactorConfig::with_policy(policy, seed)
        })
        .expect("reactor transport");

    let opts = SurveyOptions {
        loss: cfg.query_loss.max(injected_loss),
        ..SurveyOptions::default()
    };
    let estimate = {
        let mut access = EngineAccess::new(&mut transport, INGRESS);
        enumerate_adaptive(&mut access, &mut infra, &opts, SimTime::ZERO).estimated
    };
    reporter.flush().expect("drain telemetry");

    let snap = transport.reactor().metrics().snapshot();
    println!("{label}");
    println!("  ground truth      : {caches} caches");
    println!(
        "  measured          : {estimate} caches ({})",
        if estimate == caches as u64 {
            "exact"
        } else {
            "off"
        }
    );
    println!(
        "  wire traffic      : {} datagrams sent, {} answered, {} retries",
        snap.sent, snap.received, snap.retries
    );
    println!(
        "  observed loss     : {:4.1}%  (injected {:4.1}%)",
        snap.loss_rate() * 100.0,
        (cfg.query_loss.max(injected_loss)) * 100.0
    );
    if let Some(stats) = transport.reactor().fault_stats() {
        println!(
            "  fault layer       : {} query drops, {} reply drops, {} duplicated, {} delayed",
            stats.query_drops(),
            stats.reply_drops(),
            stats.duplicated(),
            stats.delayed()
        );
    }
    if let Some(p50) = snap.latency_quantile(0.5) {
        println!("  median probe RTT  : {p50:?}");
    }
    print!(
        "  reactor health    : wheel peak {}",
        snap.wheel_pending_peak
    );
    if let Some(fill) = snap.slab_fill_peak() {
        print!(", slab fill peak {:.1}%", fill * 100.0);
    }
    if let Some(fill) = snap.batch_fill_ratio(MAX_BATCH) {
        print!(", send-batch fill {:.1}%", fill * 100.0);
    }
    println!();
    if let (Some(p50), Some(p99)) = (
        snap.loop_latency_quantile(0.5),
        snap.loop_latency_quantile(0.99),
    ) {
        println!(
            "  loop tick latency : p50 {:?}, p99 {:?} over {} iterations",
            p50, p99, snap.loop_count
        );
    }
    if let Some(insight) = transport.reactor().insight() {
        let d = insight.digests().merged();
        if let (Some(p50), Some(p99)) = (d.percentile(50.0), d.percentile(99.0)) {
            println!(
                "  rtt digest        : p50 {p50} µs, p99 {p99} µs over {} samples ({} ambiguous)",
                d.count(),
                d.ambiguous()
            );
        }
    }
    if let Some(path) = flight_dump {
        let flight = transport.reactor().flight().expect("flight enabled");
        // Same torn-artifact discipline as the daemon: temp + rename.
        let tmp = path.with_extension("jsonl.tmp");
        std::fs::write(&tmp, flight.render_jsonl()).expect("write flight dump");
        std::fs::rename(&tmp, path).expect("rename flight dump");
        println!(
            "  flight recorder   : {} records ({} shed) dumped to {}",
            flight
                .written()
                .min(flight.shards() as u64 * flight.per_shard() as u64),
            flight.shed(),
            path.display()
        );
    }
    println!(
        "  authority queries : {} served over real UDP\n",
        testbed.authority().queries_served()
    );
    registry
}

fn main() {
    let mut telemetry_jsonl: Option<std::path::PathBuf> = None;
    let mut flight_dump: Option<std::path::PathBuf> = None;
    let mut print_prometheus = false;
    let mut chaos = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--telemetry-jsonl" => {
                telemetry_jsonl = Some(args.next().expect("--telemetry-jsonl needs a path").into());
            }
            "--flight-dump" => {
                flight_dump = Some(args.next().expect("--flight-dump needs a path").into());
            }
            "--prometheus" => print_prometheus = true,
            "--chaos" => chaos = true,
            other => panic!("unknown flag {other}"),
        }
    }

    // Install the hub before anything runs: the reactor picks it up via
    // `cde_telemetry::global()`, and cde-core's `enumerate_adaptive`
    // wraps each census in a campaign span on the same hub.
    let hub = TelemetryHub::new(DEFAULT_RING_CAPACITY);
    install_global(Arc::clone(&hub));
    let mut reporter = ProgressReporter::new(Arc::clone(&hub));
    if let Some(path) = &telemetry_jsonl {
        let file = std::fs::File::create(path).expect("create telemetry jsonl");
        reporter = reporter.to_sink(file);
    }

    println!("live loopback census — real sockets, hermetic world\n");
    census(
        7,
        101,
        ResolverConfig::default(),
        None,
        "clean wire (no injected loss):",
        &mut reporter,
        flight_dump.as_deref(),
    );
    let mut registry = census(
        7,
        102,
        ResolverConfig {
            query_loss: 0.20,
            seed: 11,
            ..ResolverConfig::default()
        },
        None,
        "lossy wire (20% of requests dropped, absorbed by retries):",
        &mut reporter,
        flight_dump.as_deref(),
    );

    if chaos {
        // The reactor's own fault layer this time: bursty loss in
        // 3-packet runs plus duplicated and jittered datagrams, all
        // replayable from one seed.
        let seed = seed_from_env("CDE_CHAOS_SEED", 4242);
        let plan = FaultPlan {
            duplicate: Some(DuplicateFault {
                rate: 0.10,
                copies: 1,
            }),
            delay: Some(DelayFault {
                jitter: Duration::from_millis(3),
                spike_rate: 0.0,
                spike: Duration::ZERO,
            }),
            ..FaultPlan::bursty(seed, 0.30, 3.0)
        };
        registry = census(
            7,
            103,
            ResolverConfig::default(),
            Some(plan),
            &format!("chaotic wire (seeded fault plan, CDE_CHAOS_SEED={seed}):"),
            &mut reporter,
            flight_dump.as_deref(),
        );
    }

    if let Some(path) = &telemetry_jsonl {
        println!(
            "telemetry: {} events written to {} ({} dropped)",
            reporter.events_written(),
            path.display(),
            hub.dropped()
        );
    }
    if print_prometheus {
        println!("{}", registry.prometheus_text());
    }
}
