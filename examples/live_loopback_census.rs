//! Live loopback census: the paper's enumeration running over *real* UDP.
//!
//! Launches the full live chain hermetically on `127.0.0.1` — a
//! [`WireAuthority`] farm serving the CDE zones, a [`LoopbackResolver`]
//! fronting a hidden simulated cache platform, and a [`UdpTransport`]
//! probing it with real datagrams, retries and jittered backoff — then
//! runs the exact same `enumerate_adaptive` the simulator uses and
//! compares its estimate against ground truth. A second pass injects 20%
//! request loss to show the retry machinery absorbing it.
//!
//! Run with: `cargo run --release --example live_loopback_census`

use counting_dark::cde::{enumerate_adaptive, CdeInfra, SurveyOptions};
use counting_dark::engine::{EngineAccess, LiveTestbed, ResolverConfig, RetryPolicy, Transport};
use counting_dark::netsim::SimTime;
use counting_dark::platform::{NameserverNet, PlatformBuilder, SelectorKind};
use std::net::Ipv4Addr;
use std::time::Duration;

const INGRESS: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

fn census(caches: usize, seed: u64, cfg: ResolverConfig, label: &str) {
    let mut net = NameserverNet::new();
    let mut infra = CdeInfra::install(&mut net);
    let platform = PlatformBuilder::new(seed)
        .ingress(vec![INGRESS])
        .egress((1..=3).map(|d| Ipv4Addr::new(192, 0, 3, d)).collect())
        .cluster(caches, SelectorKind::Random)
        .build();

    let testbed = LiveTestbed::launch(platform, net, cfg).expect("loopback sockets");
    let policy = RetryPolicy {
        attempts: 5,
        timeout: Duration::from_millis(150),
        backoff: 1.5,
        base_delay: Duration::from_millis(2),
        jitter: 0.5,
    };
    let mut transport = testbed.transport(policy, seed).expect("transport sockets");

    let opts = SurveyOptions {
        loss: cfg.query_loss,
        ..SurveyOptions::default()
    };
    let estimate = {
        let mut access = EngineAccess::new(&mut transport, INGRESS);
        enumerate_adaptive(&mut access, &mut infra, &opts, SimTime::ZERO).estimated
    };

    let snap = transport.metrics().snapshot();
    println!("{label}");
    println!("  ground truth      : {caches} caches");
    println!(
        "  measured          : {estimate} caches ({})",
        if estimate == caches as u64 {
            "exact"
        } else {
            "off"
        }
    );
    println!(
        "  wire traffic      : {} datagrams sent, {} answered, {} retries",
        snap.sent, snap.received, snap.retries
    );
    println!(
        "  observed loss     : {:4.1}%  (injected {:4.1}%)",
        snap.loss_rate() * 100.0,
        cfg.query_loss * 100.0
    );
    if let Some(p50) = snap.latency_quantile(0.5) {
        println!("  median probe RTT  : {p50:?}");
    }
    println!(
        "  authority queries : {} served over real UDP\n",
        testbed.authority().queries_served()
    );
}

fn main() {
    println!("live loopback census — real sockets, hermetic world\n");
    census(
        7,
        101,
        ResolverConfig::default(),
        "clean wire (no injected loss):",
    );
    census(
        7,
        102,
        ResolverConfig {
            query_loss: 0.20,
            seed: 11,
            ..ResolverConfig::default()
        },
        "lossy wire (20% of requests dropped, absorbed by retries):",
    );
}
