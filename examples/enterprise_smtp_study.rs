//! Enterprise SMTP study: enumerate an enterprise's caches *indirectly*
//! through its mail server (§III-B, §IV-B2a).
//!
//! We cannot query the enterprise's resolvers — only its MTA talks to
//! them. Sending messages to non-existent mailboxes with sender domains
//! inside our zone makes the MTA's SPF/DMARC/MX checks resolve names we
//! chose. Distinct CNAME-farm aliases bypass the MTA's stub cache while
//! funnelling every probe onto one countable honey record.
//!
//! Run with: `cargo run --example enterprise_smtp_study`

use counting_dark::cde::access::SmtpAccess;
use counting_dark::cde::enumerate::{enumerate_cname_farm, EnumerateOptions};
use counting_dark::cde::CdeInfra;
use counting_dark::netsim::SimTime;
use counting_dark::platform::{NameserverNet, PlatformBuilder, SelectorKind};
use counting_dark::probers::{EnterpriseMailServer, MailChecks, SmtpProber};
use std::net::Ipv4Addr;

fn main() {
    // The enterprise: a 4-cache resolution platform plus a mail server
    // that performs SPF (TXT) and DMARC verification on inbound mail.
    let secret_cache_count = 4;
    let ingress = Ipv4Addr::new(192, 0, 2, 1);
    let mut net = NameserverNet::new();
    let mut infra = CdeInfra::install(&mut net);
    let mut platform = PlatformBuilder::new(99)
        .ingress(vec![ingress])
        .egress((1..=8).map(|d| Ipv4Addr::new(192, 0, 3, d)).collect())
        .cluster(secret_cache_count, SelectorKind::Random)
        .build();
    let mut mta = EnterpriseMailServer::new(
        Ipv4Addr::new(198, 18, 0, 25),
        MailChecks {
            spf_txt: true,
            dmarc: true,
            mx_a: true,
            ..MailChecks::default()
        },
        ingress,
    );
    println!("enterprise: {secret_cache_count} hidden caches; MTA checks SPF, DMARC, MX/A");

    // Our infrastructure: a session with a CNAME farm big enough for the
    // probe budget.
    let q = counting_dark::analysis::coupon::query_budget(8, 0.001);
    let session = infra.new_session(&mut net, q as usize);
    println!(
        "CDE zone: honey {} behind {} CNAME aliases",
        session.honey,
        session.farm.len()
    );

    // Send q probe emails, one per alias sender-domain.
    let mut prober = SmtpProber::new(5);
    let mut access = SmtpAccess {
        prober: &mut prober,
        mta: &mut mta,
        platform: &mut platform,
        net: &mut net,
    };
    let result = enumerate_cname_farm(
        &mut access,
        &infra,
        &session,
        EnumerateOptions::with_probes(q),
        SimTime::ZERO,
    );

    println!(
        "sent {} probe emails (each bounced); our nameserver saw {} honey fetches",
        result.probes, result.observed
    );
    println!("measured cache count: {}", result.estimated);
    assert_eq!(result.observed, secret_cache_count as u64);
    println!("the MTA never knew it was counting its own employer's caches");
}
