//! Ad-network probing and the timing side channel (§III-C, §IV-B3).
//!
//! Part 1 drives a visitor's browser (behind browser + OS stub caches)
//! through the names-hierarchy bypass, counting the caches of the
//! visitor's ISP at our *parent* nameserver.
//!
//! Part 2 counts the same caches with **no nameserver observation at
//! all** — purely from response latency (the indirect-egress setting an
//! APT-style measurement would need).
//!
//! Run with: `cargo run --example adnetwork_timing`

use counting_dark::cde::access::{AccessChannel, AdNetAccess, DirectAccess};
use counting_dark::cde::enumerate::{enumerate_names_hierarchy, EnumerateOptions};
use counting_dark::cde::{calibrate, enumerate_via_timing, CdeInfra};
use counting_dark::netsim::{LatencyModel, Link, LossModel, SimDuration, SimTime};
use counting_dark::platform::{NameserverNet, PlatformBuilder, SelectorKind};
use counting_dark::probers::{AdNetProber, DirectProber, WebClient};
use std::net::Ipv4Addr;

fn main() {
    let secret_cache_count = 3;
    let ingress = Ipv4Addr::new(192, 0, 2, 1);
    let mut net = NameserverNet::new();
    let mut infra = CdeInfra::install(&mut net);
    let mut platform = PlatformBuilder::new(1234)
        .ingress(vec![ingress])
        .egress((1..=6).map(|d| Ipv4Addr::new(192, 0, 3, d)).collect())
        .cluster(secret_cache_count, SelectorKind::Random)
        .upstream_link(Link::new(
            LatencyModel::LogNormal {
                median: SimDuration::from_millis(22),
                sigma: 0.25,
            },
            LossModel::none(),
        ))
        .build();
    println!("ISP platform: {secret_cache_count} hidden caches\n");

    // ---- Part 1: browser-driven enumeration via the names hierarchy ----
    let q = counting_dark::analysis::coupon::query_budget(8, 0.001);
    let session = infra.new_session(&mut net, q as usize);
    let mut campaign = AdNetProber::new(7);
    let mut visitor = WebClient::new(Ipv4Addr::new(203, 0, 113, 41), ingress);
    let mut access = AdNetAccess {
        prober: &mut campaign,
        client: &mut visitor,
        platform: &mut platform,
        net: &mut net,
    };
    let result = enumerate_names_hierarchy(
        &mut access,
        &infra,
        &session,
        EnumerateOptions::with_probes(q),
        SimTime::ZERO,
    );
    println!(
        "[browser study] {} pop-under navigations under {} -> {} referral fetches at the parent",
        result.probes, session.sub_apex, result.observed
    );
    assert_eq!(result.observed, secret_cache_count as u64);

    // ---- Part 2: timing-only enumeration (indirect egress access) -----
    let client_link = Link::new(
        LatencyModel::LogNormal {
            median: SimDuration::from_millis(14),
            sigma: 0.2,
        },
        LossModel::none(),
    );
    let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 42), client_link, 8);
    let mut access = DirectAccess::new(&mut prober, &mut platform, ingress, &mut net);
    let cal = calibrate(
        &mut access,
        &mut infra,
        16,
        SimTime::ZERO + SimDuration::from_secs(60),
    )
    .expect("cached and uncached latencies separate at this jitter");
    println!(
        "\n[timing study] calibrated: cached median {}, uncached median {}, threshold {}",
        cal.cached_median, cal.uncached_median, cal.threshold
    );
    let session2 = infra.new_session(access.net_mut(), 0);
    let t = enumerate_via_timing(
        &mut access,
        &session2.honey,
        cal,
        q,
        SimTime::ZERO + SimDuration::from_secs(120),
    );
    println!(
        "[timing study] {} probes: {} slow (uncached) responses, {} fast",
        t.probes, t.slow_responses, t.fast_responses
    );
    println!("caches counted from latency alone: {}", t.slow_responses);
    assert_eq!(t.slow_responses, secret_cache_count as u64);
}
