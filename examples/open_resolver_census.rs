//! Open-resolver census: survey a population of networks the way the
//! paper surveys its Alexa-derived open-resolver dataset (§III-A, §V-A).
//!
//! Generates a miniature population calibrated to the paper's marginals,
//! runs the full measurement pipeline (ingress mapping, cache
//! enumeration, egress discovery) against every network, and prints the
//! Fig. 4-style cache CDF plus a ground-truth accuracy column the real
//! study could never have.
//!
//! Run with: `cargo run --release --example open_resolver_census`

use counting_dark::analysis::stats::Cdf;
use counting_dark::cde::{survey_platform, CdeInfra, SurveyOptions};
use counting_dark::datasets::{generate_population, PopulationKind};
use counting_dark::netsim::SimTime;
use counting_dark::platform::NameserverNet;
use counting_dark::probers::DirectProber;
use std::net::Ipv4Addr;

fn main() {
    let population = generate_population(PopulationKind::OpenResolvers, 60, 7);
    println!(
        "surveying {} open-resolver networks ...\n",
        population.len()
    );

    let mut measured = Vec::new();
    let mut exact = 0usize;
    for spec in &population {
        let mut net = NameserverNet::new();
        let mut infra = CdeInfra::install(&mut net);
        let mut platform = spec.build();
        let ingress: Vec<Ipv4Addr> = spec.ingress_ips().into_iter().take(4).collect();
        let mut prober =
            DirectProber::new(Ipv4Addr::new(203, 0, 113, 9), spec.client_link(), spec.id);
        let opts = SurveyOptions {
            loss: spec.country.loss_rate(),
            ..SurveyOptions::default()
        };
        let survey = survey_platform(
            &mut prober,
            &mut platform,
            &mut net,
            &mut infra,
            &ingress,
            &opts,
            SimTime::ZERO,
        );
        if survey.total_caches == spec.total_caches() as u64 {
            exact += 1;
        }
        measured.push(survey.total_caches);
    }

    let cdf = Cdf::from_samples(measured.iter().copied());
    println!("measured caches per network (Fig. 4, open-resolver curve):");
    for (value, frac) in cdf.steps().into_iter().take(8) {
        println!("  <= {value:3} caches : {:5.1}% of networks", frac * 100.0);
    }
    println!(
        "\npaper checkpoint: ~70% of open-resolver networks use 1-2 caches; measured {:.1}%",
        cdf.fraction_at_or_below(2) * 100.0
    );
    println!(
        "ground-truth validation: {exact}/{} networks measured exactly",
        population.len()
    );
}
