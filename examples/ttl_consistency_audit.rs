//! TTL-consistency audit (§II-C): is that platform violating TTLs, or
//! does it just have several caches?
//!
//! Earlier measurement studies counted repeated upstream fetches within a
//! record's TTL as evidence that resolvers disrespect TTLs. The paper's
//! point: with n caches, up to n fetches are perfectly consistent. This
//! example audits three platforms that look identical from a naive
//! fetch-count perspective and tells them apart.
//!
//! Run with: `cargo run --example ttl_consistency_audit`

use counting_dark::cache::CacheConfig;
use counting_dark::cde::access::DirectAccess;
use counting_dark::cde::{audit_ttl_consistency, CdeInfra, ConsistencyOptions};
use counting_dark::dns::Ttl;
use counting_dark::netsim::{Link, SimTime};
use counting_dark::platform::{ClusterConfig, NameserverNet, PlatformBuilder, SelectorKind};
use counting_dark::probers::DirectProber;
use std::net::Ipv4Addr;

fn main() {
    let ingress = Ipv4Addr::new(192, 0, 2, 1);
    let cases: [(&str, usize, CacheConfig); 3] = [
        // Four caches, honest TTLs: four fetches for one record is fine.
        ("platform A (4 honest caches)", 4, CacheConfig::default()),
        // Two caches that cap TTLs at one minute: genuine early refresh.
        (
            "platform B (2 caches, 60s TTL cap)",
            2,
            CacheConfig {
                max_ttl: Ttl::from_secs(60),
                ..CacheConfig::default()
            },
        ),
        // Two caches that stretch TTLs to a day: genuine stale serving.
        (
            "platform C (2 caches, 1-day TTL floor)",
            2,
            CacheConfig {
                min_ttl: Ttl::from_secs(86_400),
                ..CacheConfig::default()
            },
        ),
    ];

    println!("auditing three platforms with a 600s-TTL honey record:\n");
    for (label, caches, cache_config) in cases {
        let mut net = NameserverNet::new();
        let mut infra = CdeInfra::install(&mut net);
        let mut platform = PlatformBuilder::new(7)
            .ingress(vec![ingress])
            .egress(vec![Ipv4Addr::new(192, 0, 3, 1)])
            .cluster_config(ClusterConfig {
                cache_count: caches,
                cache_config,
                selector: SelectorKind::Random,
            })
            .build();
        let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 3);
        let mut access = DirectAccess::new(&mut prober, &mut platform, ingress, &mut net);
        let report = audit_ttl_consistency(
            &mut access,
            &mut infra,
            ConsistencyOptions::default(),
            SimTime::ZERO,
        );
        println!("{label}:");
        println!("  caches counted:           {}", report.caches);
        println!(
            "  refetches within TTL:     {}",
            report.refetches_within_ttl
        );
        println!(
            "  fetches after TTL expiry: {}",
            report.fetches_after_expiry
        );
        println!("  verdict:                  {}\n", report.verdict);
    }
    println!("a naive fetch-count study would have flagged platform A as a TTL violator;");
    println!("the audit attributes its fetches to its four caches instead (paper Sec. II-C)");
}
