//! End-to-end loss forensics: a reactor campaign under a fixed-seed
//! Gilbert–Elliott plan with loss planted in *both* directions, dumped
//! from the flight recorder and reconciled by `cde-analyze --forensics`.
//!
//! The acceptance bar: every unanswered probe classified (≥95%
//! coverage), and the query-lost vs reply-lost split agreeing exactly
//! with the fault injector's per-direction drop counters — the ground
//! truth the chaos suites can always recompute from the seed.

use counting_dark::dns::Message;
use counting_dark::engine::scheduler::{run_campaign_pipelined, Probe};
use counting_dark::engine::{FlightOptions, Reactor, ReactorConfig, RetryPolicy};
use counting_dark::faults::{FaultPlan, LossFault};
use counting_dark::insight::analyze_forensics;
use counting_dark::netsim::seed_from_env;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const INGRESS: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

/// A loopback echo authority; all chaos comes from the fault layer.
fn echo_server() -> (
    std::net::SocketAddr,
    Arc<AtomicBool>,
    std::thread::JoinHandle<()>,
) {
    let socket = std::net::UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
    socket
        .set_read_timeout(Some(Duration::from_millis(50)))
        .unwrap();
    let addr = socket.local_addr().unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let handle = std::thread::spawn({
        let stop = Arc::clone(&stop);
        move || {
            let mut buf = [0u8; 2048];
            while !stop.load(Ordering::SeqCst) {
                if let Ok((len, peer)) = socket.recv_from(&mut buf) {
                    if let Ok(query) = Message::decode(&buf[..len]) {
                        let resp = Message::response_to(&query);
                        let _ = socket.send_to(&resp.encode().unwrap(), peer);
                    }
                }
            }
        }
    });
    (addr, stop, handle)
}

#[test]
fn forensics_fate_table_matches_planted_loss_directions() {
    let seed = seed_from_env("CDE_FORENSICS_SEED", 7001);

    // Bursty loss planted in BOTH directions. One attempt per probe, so
    // each per-direction injector drop is exactly one unanswered probe:
    // the fate table must reproduce the injector's counters verbatim.
    let plan = FaultPlan {
        query_loss: LossFault::Bursty {
            mean_loss: 0.15,
            mean_burst: 3.0,
        },
        reply_loss: LossFault::Bursty {
            mean_loss: 0.12,
            mean_burst: 2.0,
        },
        ..FaultPlan::clean(seed)
    };

    let (server_addr, stop, server) = echo_server();
    let mut targets = HashMap::new();
    targets.insert(INGRESS, server_addr);
    let policy = RetryPolicy {
        attempts: 1,
        timeout: Duration::from_millis(60),
        backoff: 1.0,
        base_delay: Duration::from_millis(1),
        jitter: 0.0,
    };
    let reactor = Reactor::launch(
        targets,
        ReactorConfig {
            faults: Some(plan),
            flight: Some(FlightOptions::default()),
            ..ReactorConfig::with_policy(policy, seed)
        },
    )
    .unwrap();

    let total = 400usize;
    let probes: Vec<Probe> = (0..total)
        .map(|i| Probe::a(INGRESS, format!("fate-{i}.cache.example").parse().unwrap()))
        .collect();
    let report = run_campaign_pipelined(&reactor, probes, 32);
    assert!(report.fully_accounted(total));

    let stats = reactor.fault_stats().expect("fault layer attached");
    let flight = reactor.flight().expect("flight recorder attached");
    let dump = flight.render_jsonl();
    stop.store(true, Ordering::SeqCst);
    server.join().unwrap();

    let forensics = analyze_forensics(&dump);
    assert_eq!(forensics.dump_version, 1);
    assert_eq!(forensics.lines_skipped, 0);
    assert_eq!(forensics.shed, 0, "400 probes fit the default rings");
    assert_eq!(forensics.totals.probes, total as u64);
    assert_eq!(
        forensics.totals.answered,
        report.answered() as u64,
        "probe records agree with the campaign report"
    );
    assert_eq!(forensics.totals.unanswered, report.timed_out() as u64);

    // The e2e acceptance criterion: ≥95% of unanswered probes explained.
    assert!(
        forensics.coverage() >= 0.95,
        "coverage {:.3} below the 95% bar ({} of {} unanswered classified, seed {seed})",
        forensics.coverage(),
        forensics.classified(),
        forensics.totals.unanswered
    );

    // The per-direction split must agree with the injector's ground
    // truth: attempts=1 and loss-only faults make the correspondence
    // exact, not statistical.
    assert_eq!(
        forensics.totals.query_lost,
        stats.query_drops(),
        "query-lost fate vs injector query drops (seed {seed})"
    );
    assert_eq!(
        forensics.totals.reply_lost,
        stats.reply_drops(),
        "reply-lost fate vs injector reply drops (seed {seed})"
    );
    assert!(
        stats.query_drops() > 0 && stats.reply_drops() > 0,
        "the plan must actually exercise both directions (seed {seed})"
    );
    assert_eq!(forensics.totals.late_stray, 0, "no delay/duplicate faults");
    assert_eq!(forensics.totals.unknown, 0);
    assert!(forensics.check(), "forensics --check criterion");

    // The renders carry the fate table for both humans and machines.
    let text = forensics.render_text();
    assert!(text.contains("192.0.2.1"));
    assert!(text.contains("query_lost"));
    let json = forensics.render_json();
    assert!(json.contains("\"check\": true"));
}
