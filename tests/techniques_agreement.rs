//! Cross-technique agreement: every enumeration channel and bypass must
//! report the same cache count on the same platform.

use counting_dark::analysis::coupon::query_budget;
use counting_dark::cde::access::{AdNetAccess, DirectAccess, SmtpAccess};
use counting_dark::cde::enumerate::{
    enumerate_cname_farm, enumerate_identical, enumerate_names_hierarchy, enumerate_two_phase,
    EnumerateOptions,
};
use counting_dark::cde::{calibrate, enumerate_via_timing, CdeInfra};
use counting_dark::netsim::{LatencyModel, Link, LossModel, SimDuration, SimTime};
use counting_dark::platform::{NameserverNet, PlatformBuilder, ResolutionPlatform, SelectorKind};
use counting_dark::probers::{
    AdNetProber, DirectProber, EnterpriseMailServer, MailChecks, SmtpProber, WebClient,
};
use std::net::Ipv4Addr;

const INGRESS: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

fn build(n: usize, seed: u64) -> (ResolutionPlatform, NameserverNet, CdeInfra) {
    let mut net = NameserverNet::new();
    let infra = CdeInfra::install(&mut net);
    let platform = PlatformBuilder::new(seed)
        .ingress(vec![INGRESS])
        .egress((1..=4).map(|d| Ipv4Addr::new(192, 0, 3, d)).collect())
        .cluster(n, SelectorKind::Random)
        .upstream_link(Link::new(
            LatencyModel::LogNormal {
                median: SimDuration::from_millis(20),
                sigma: 0.2,
            },
            LossModel::none(),
        ))
        .build();
    (platform, net, infra)
}

#[test]
fn five_techniques_agree_on_cache_count() {
    let n = 4usize;
    let q = query_budget(n as u64, 0.001);
    let mut counts = Vec::new();

    // 1. Direct, identical queries.
    {
        let (mut platform, mut net, mut infra) = build(n, 2001);
        let session = infra.new_session(&mut net, 0);
        let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 1);
        let mut access = DirectAccess::new(&mut prober, &mut platform, INGRESS, &mut net);
        counts.push((
            "identical",
            enumerate_identical(
                &mut access,
                &infra,
                &session,
                EnumerateOptions::with_probes(q),
                SimTime::ZERO,
            )
            .observed,
        ));
    }
    // 2. Direct, CNAME farm.
    {
        let (mut platform, mut net, mut infra) = build(n, 2002);
        let session = infra.new_session(&mut net, q as usize);
        let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 2);
        let mut access = DirectAccess::new(&mut prober, &mut platform, INGRESS, &mut net);
        counts.push((
            "cname-farm",
            enumerate_cname_farm(
                &mut access,
                &infra,
                &session,
                EnumerateOptions::with_probes(q),
                SimTime::ZERO,
            )
            .observed,
        ));
    }
    // 3. SMTP, names hierarchy.
    {
        let (mut platform, mut net, mut infra) = build(n, 2003);
        let session = infra.new_session(&mut net, q as usize);
        let mut prober = SmtpProber::new(3);
        let mut mta = EnterpriseMailServer::new(
            Ipv4Addr::new(198, 18, 0, 25),
            MailChecks {
                spf_txt: true,
                ..MailChecks::default()
            },
            INGRESS,
        );
        let mut access = SmtpAccess {
            prober: &mut prober,
            mta: &mut mta,
            platform: &mut platform,
            net: &mut net,
        };
        counts.push((
            "smtp-hierarchy",
            enumerate_names_hierarchy(
                &mut access,
                &infra,
                &session,
                EnumerateOptions::with_probes(q),
                SimTime::ZERO,
            )
            .observed,
        ));
    }
    // 4. Browser, CNAME farm.
    {
        let (mut platform, mut net, mut infra) = build(n, 2004);
        let session = infra.new_session(&mut net, q as usize);
        let mut prober = AdNetProber::new(4);
        let mut client = WebClient::new(Ipv4Addr::new(203, 0, 113, 40), INGRESS);
        let mut access = AdNetAccess {
            prober: &mut prober,
            client: &mut client,
            platform: &mut platform,
            net: &mut net,
        };
        counts.push((
            "adnet-farm",
            enumerate_cname_farm(
                &mut access,
                &infra,
                &session,
                EnumerateOptions::with_probes(q),
                SimTime::ZERO,
            )
            .observed,
        ));
    }
    // 5. Timing side channel (no nameserver observation).
    {
        let (mut platform, mut net, mut infra) = build(n, 2005);
        let client_link = Link::new(
            LatencyModel::LogNormal {
                median: SimDuration::from_millis(12),
                sigma: 0.15,
            },
            LossModel::none(),
        );
        let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), client_link, 5);
        let mut access = DirectAccess::new(&mut prober, &mut platform, INGRESS, &mut net);
        let cal = calibrate(&mut access, &mut infra, 16, SimTime::ZERO).unwrap();
        let session = infra.new_session(access.net, 0);
        counts.push((
            "timing",
            enumerate_via_timing(
                &mut access,
                &session.honey,
                cal,
                q,
                SimTime::ZERO + SimDuration::from_secs(10),
            )
            .slow_responses,
        ));
    }

    for (name, observed) in &counts {
        assert_eq!(
            *observed, n as u64,
            "technique {name} disagreed: {counts:?}"
        );
    }
}

#[test]
fn two_phase_matches_single_phase() {
    for n in [1u64, 3, 7] {
        let (mut platform, mut net, mut infra) = build(n as usize, 2100 + n);
        let session = infra.new_session(&mut net, 0);
        let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), n);
        let mut access = DirectAccess::new(&mut prober, &mut platform, INGRESS, &mut net);
        let r = enumerate_two_phase(&mut access, &infra, &session, 6 * n, SimTime::ZERO);
        assert_eq!(r.total_observed, n, "n={n}");
    }
}

#[test]
fn techniques_work_across_a_range_of_cache_counts() {
    for n in [1usize, 2, 6, 12] {
        let q = query_budget(n as u64, 0.001);
        let (mut platform, mut net, mut infra) = build(n, 2200 + n as u64);
        let session = infra.new_session(&mut net, q as usize);
        let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 9);
        let mut access = DirectAccess::new(&mut prober, &mut platform, INGRESS, &mut net);
        let farm = enumerate_cname_farm(
            &mut access,
            &infra,
            &session,
            EnumerateOptions::with_probes(q),
            SimTime::ZERO,
        );
        assert_eq!(farm.observed, n as u64, "n={n}");
    }
}
