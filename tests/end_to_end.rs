//! End-to-end integration: the full CDE pipeline against ground-truth
//! platforms, spanning every crate in the workspace.

use counting_dark::cde::{survey_platform, validate_survey, CdeInfra, SurveyOptions};
use counting_dark::netsim::{Link, SimTime};
use counting_dark::platform::{NameserverNet, PlatformBuilder, SelectorKind};
use counting_dark::probers::DirectProber;
use std::net::Ipv4Addr;

fn ing(d: u8) -> Ipv4Addr {
    Ipv4Addr::new(192, 0, 2, d)
}

#[test]
fn full_survey_recovers_three_cluster_platform() {
    let mut net = NameserverNet::new();
    let mut infra = CdeInfra::install(&mut net);
    let ingress: Vec<Ipv4Addr> = (1..=6).map(ing).collect();
    let mut platform = PlatformBuilder::new(1001)
        .ingress(ingress.clone())
        .egress((1..=7).map(|d| Ipv4Addr::new(192, 0, 3, d)).collect())
        .cluster(1, SelectorKind::Random)
        .cluster(3, SelectorKind::Random)
        .cluster(5, SelectorKind::Random)
        .ingress_assignment(vec![0, 1, 2, 0, 1, 2])
        .build();
    let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 1);
    let survey = survey_platform(
        &mut prober,
        &mut platform,
        &mut net,
        &mut infra,
        &ingress,
        &SurveyOptions::default(),
        SimTime::ZERO,
    );
    assert!(
        validate_survey(&survey, &platform).is_empty(),
        "discrepancies: {:?}",
        validate_survey(&survey, &platform)
    );
    assert_eq!(survey.total_caches, 9);
    assert_eq!(survey.mapping.cluster_count(), 3);
    let mut per_cluster = survey.caches_per_cluster.clone();
    per_cluster.sort_unstable();
    assert_eq!(per_cluster, vec![1, 3, 5]);
}

#[test]
fn survey_handles_the_single_ip_single_cache_platform() {
    // The degenerate platform the paper says dominates the open-resolver
    // population.
    let mut net = NameserverNet::new();
    let mut infra = CdeInfra::install(&mut net);
    let mut platform = PlatformBuilder::new(1002)
        .ingress(vec![ing(1)])
        .egress(vec![ing(1)]) // same address does ingress and egress
        .cluster(1, SelectorKind::Random)
        .build();
    let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 2);
    let survey = survey_platform(
        &mut prober,
        &mut platform,
        &mut net,
        &mut infra,
        &[ing(1)],
        &SurveyOptions::default(),
        SimTime::ZERO,
    );
    assert_eq!(survey.total_caches, 1);
    assert_eq!(survey.mapping.cluster_count(), 1);
    assert_eq!(survey.egress_ips, vec![ing(1)]);
}

#[test]
fn surveys_are_reproducible_across_runs() {
    let run = || {
        let mut net = NameserverNet::new();
        let mut infra = CdeInfra::install(&mut net);
        let ingress: Vec<Ipv4Addr> = (1..=4).map(ing).collect();
        let mut platform = PlatformBuilder::new(1003)
            .ingress(ingress.clone())
            .egress((1..=9).map(|d| Ipv4Addr::new(192, 0, 3, d)).collect())
            .cluster(2, SelectorKind::Random)
            .cluster(4, SelectorKind::Random)
            .build();
        let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 3);
        let s = survey_platform(
            &mut prober,
            &mut platform,
            &mut net,
            &mut infra,
            &ingress,
            &SurveyOptions::default(),
            SimTime::ZERO,
        );
        (s.total_caches, s.caches_per_cluster, s.egress_ips)
    };
    assert_eq!(run(), run());
}

#[test]
fn repeated_surveys_of_one_platform_do_not_contaminate() {
    // Fresh sessions mean an earlier survey's records never count in a
    // later one — the §II-C consistency concern.
    let mut net = NameserverNet::new();
    let mut infra = CdeInfra::install(&mut net);
    let mut platform = PlatformBuilder::new(1004)
        .ingress(vec![ing(1)])
        .egress(vec![Ipv4Addr::new(192, 0, 3, 1)])
        .cluster(4, SelectorKind::Random)
        .build();
    let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 4);
    for round in 0..3 {
        let survey = survey_platform(
            &mut prober,
            &mut platform,
            &mut net,
            &mut infra,
            &[ing(1)],
            &SurveyOptions::default(),
            SimTime::ZERO,
        );
        assert_eq!(survey.total_caches, 4, "round {round}");
    }
}

#[test]
fn survey_with_every_traffic_dependent_selector() {
    for selector in [SelectorKind::RoundRobin, SelectorKind::LeastLoaded] {
        let mut net = NameserverNet::new();
        let mut infra = CdeInfra::install(&mut net);
        let mut platform = PlatformBuilder::new(1005)
            .ingress(vec![ing(1)])
            .egress((1..=3).map(|d| Ipv4Addr::new(192, 0, 3, d)).collect())
            .cluster(5, selector)
            .build();
        let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 5);
        let survey = survey_platform(
            &mut prober,
            &mut platform,
            &mut net,
            &mut infra,
            &[ing(1)],
            &SurveyOptions::default(),
            SimTime::ZERO,
        );
        assert_eq!(survey.total_caches, 5, "selector {selector}");
    }
}
