//! Integration tests for the paper's §II use cases built on top of the
//! core techniques: fingerprinting, longitudinal tracking, forwarders and
//! the TTL audit working together.

use counting_dark::cache::SoftwareProfile;
use counting_dark::cde::access::DirectAccess;
use counting_dark::cde::{
    audit_ttl_consistency, fingerprint_software, CdeInfra, ConsistencyOptions, FingerprintOptions,
    PlatformTracker, TtlVerdict,
};
use counting_dark::netsim::{Link, SimDuration, SimTime};
use counting_dark::platform::{
    ClusterConfig, Forwarder, NameserverNet, PlatformBuilder, ResolutionPlatform, SelectorKind,
};
use counting_dark::probers::DirectProber;
use std::net::Ipv4Addr;

const INGRESS: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

fn build_with_profile(profile: SoftwareProfile, caches: usize, seed: u64) -> ResolutionPlatform {
    PlatformBuilder::new(seed)
        .ingress(vec![INGRESS])
        .egress((1..=2).map(|d| Ipv4Addr::new(192, 0, 3, d)).collect())
        .cluster_config(ClusterConfig {
            cache_count: caches,
            cache_config: profile.cache_config(),
            selector: SelectorKind::Random,
        })
        .build()
}

#[test]
fn fingerprint_and_audit_agree_on_clamping_software() {
    // Unbound-like software caps positive TTLs at one day. The §II-C audit
    // with a 600 s record sees honest behaviour (600 < cap), while the
    // fingerprinter still identifies the cap with long-TTL probes — the
    // two tools answer different questions consistently.
    let mut net = NameserverNet::new();
    let mut infra = CdeInfra::install(&mut net);
    let mut platform = build_with_profile(SoftwareProfile::UnboundLike, 2, 901);
    let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 1);

    let report = {
        let mut access = DirectAccess::new(&mut prober, &mut platform, INGRESS, &mut net);
        audit_ttl_consistency(
            &mut access,
            &mut infra,
            ConsistencyOptions::default(),
            SimTime::ZERO,
        )
    };
    assert_eq!(report.verdict, TtlVerdict::Consistent);
    assert_eq!(report.caches, 2);

    let fp = {
        let mut access = DirectAccess::new(&mut prober, &mut platform, INGRESS, &mut net);
        fingerprint_software(
            &mut access,
            &mut infra,
            &FingerprintOptions::default(),
            SimTime::ZERO + SimDuration::from_secs(10_000),
        )
    };
    assert_eq!(fp.classified, Some(SoftwareProfile::UnboundLike));
}

#[test]
fn tracker_detects_outage_and_recovery() {
    let mut net = NameserverNet::new();
    let mut infra = CdeInfra::install(&mut net);
    let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 2);
    let mut tracker = PlatformTracker::new(8);
    let day = |d: u64| SimTime::ZERO + SimDuration::from_secs(d * 86_400);

    for (d, caches) in [(0u64, 4usize), (1, 4), (2, 2), (3, 4)] {
        let mut platform = build_with_profile(SoftwareProfile::BindLike, caches, 902);
        let mut access = DirectAccess::new(&mut prober, &mut platform, INGRESS, &mut net);
        tracker.measure_epoch(&mut access, &mut infra, day(d));
    }
    let tl = tracker.timeline();
    assert_eq!(tl.changes.len(), 2); // shrink at epoch 2, growth at epoch 3
    assert_eq!(tl.current_caches(), Some(4));
    assert!(!tl.is_stable());
}

#[test]
fn enumeration_through_forwarder_uses_farm_technique() {
    // End-to-end: a caching forwarder in front of a 4-cache upstream.
    // Identical queries count the forwarder (1); the CNAME farm counts the
    // upstream (4).
    let mut net = NameserverNet::new();
    let mut infra = CdeInfra::install(&mut net);
    let mut upstream = build_with_profile(SoftwareProfile::BindLike, 4, 903);
    let mut fwd = Forwarder::caching(Ipv4Addr::new(198, 18, 7, 53), INGRESS, 10_000, 3);
    let session = infra.new_session(&mut net, 64);

    // Identical queries through the forwarder.
    for _ in 0..48 {
        fwd.handle_query(
            Ipv4Addr::new(203, 0, 113, 9),
            &session.honey,
            counting_dark::dns::RecordType::A,
            SimTime::ZERO,
            &mut upstream,
            &mut net,
        )
        .unwrap();
    }
    assert_eq!(infra.count_honey_fetches(&net, &session.honey), 1);

    // The farm bypasses the forwarder cache.
    infra.clear_observations(&mut net);
    let session2 = infra.new_session(&mut net, 64);
    for alias in session2.farm.iter().take(48) {
        fwd.handle_query(
            Ipv4Addr::new(203, 0, 113, 9),
            alias,
            counting_dark::dns::RecordType::A,
            SimTime::ZERO,
            &mut upstream,
            &mut net,
        )
        .unwrap();
    }
    assert_eq!(infra.count_honey_fetches(&net, &session2.honey), 4);
}

#[test]
fn poisoning_bar_tracks_measured_cache_count() {
    use counting_dark::analysis::coupon::query_budget;
    use counting_dark::cde::enumerate::{enumerate_identical, EnumerateOptions};
    use counting_dark::cde::resilience::expected_attack_attempts;

    // Measure a platform, then derive its poisoning resilience from the
    // *measured* count — the paper's §II-A security-assessment workflow.
    let mut net = NameserverNet::new();
    let mut infra = CdeInfra::install(&mut net);
    let mut platform = build_with_profile(SoftwareProfile::BindLike, 8, 904);
    let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 4);
    let mut access = DirectAccess::new(&mut prober, &mut platform, INGRESS, &mut net);
    let session = infra.new_session(access.net, 0);
    let e = enumerate_identical(
        &mut access,
        &infra,
        &session,
        EnumerateOptions::with_probes(query_budget(8, 0.001)),
        SimTime::ZERO,
    );
    assert_eq!(e.estimated, 8);
    assert_eq!(expected_attack_attempts(e.estimated, 2), 8.0);
    assert_eq!(expected_attack_attempts(e.estimated, 3), 64.0);
}
