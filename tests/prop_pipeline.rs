//! Property-based integration tests: the measurement pipeline recovers
//! randomly drawn ground truths.

use counting_dark::analysis::coupon::query_budget;
use counting_dark::cde::access::DirectAccess;
use counting_dark::cde::enumerate::{enumerate_cname_farm, enumerate_identical, EnumerateOptions};
use counting_dark::cde::{
    map_ingress_to_clusters, mapping_matches_ground_truth, CdeInfra, MappingOptions,
};
use counting_dark::dns::Message;
use counting_dark::engine::scheduler::{run_campaign_pipelined, Probe};
use counting_dark::engine::{Reactor, ReactorConfig, RetryPolicy};
use counting_dark::faults::{DuplicateFault, FaultPlan, LossFault, TruncateFault};
use counting_dark::netsim::{Link, SimTime};
use counting_dark::platform::{NameserverNet, PlatformBuilder, SelectorKind};
use counting_dark::probers::DirectProber;
use proptest::prelude::*;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const INGRESS: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

/// Selectors under which identical-query enumeration is guaranteed to
/// converge (hash-based selectors need the farm variant).
fn converging_selector() -> impl Strategy<Value = SelectorKind> {
    prop_oneof![
        Just(SelectorKind::Random),
        Just(SelectorKind::RoundRobin),
        Just(SelectorKind::LeastLoaded),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Enumeration recovers any cache count under any converging selector.
    #[test]
    fn enumeration_recovers_ground_truth(
        n in 1usize..12,
        selector in converging_selector(),
        seed in 0u64..10_000,
    ) {
        let mut net = NameserverNet::new();
        let mut infra = CdeInfra::install(&mut net);
        let mut platform = PlatformBuilder::new(seed)
            .ingress(vec![INGRESS])
            .egress(vec![Ipv4Addr::new(192, 0, 3, 1)])
            .cluster(n, selector)
            .build();
        let session = infra.new_session(&mut net, 0);
        let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), seed);
        let mut access = DirectAccess::new(&mut prober, &mut platform, INGRESS, &mut net);
        let q = query_budget(n as u64, 0.0001);
        let e = enumerate_identical(&mut access, &infra, &session, EnumerateOptions::with_probes(q), SimTime::ZERO);
        prop_assert_eq!(e.observed, n as u64);
    }

    /// The CNAME farm recovers the count even under qname-hash selection.
    #[test]
    fn farm_enumeration_recovers_qname_hash(
        n in 1usize..8,
        seed in 0u64..10_000,
    ) {
        let mut net = NameserverNet::new();
        let mut infra = CdeInfra::install(&mut net);
        let mut platform = PlatformBuilder::new(seed)
            .ingress(vec![INGRESS])
            .egress(vec![Ipv4Addr::new(192, 0, 3, 1)])
            .cluster(n, SelectorKind::QnameHash)
            .build();
        // Hash selection is deterministic per name, so coverage needs a
        // wider farm than the coupon budget.
        let probes = 64 * n as u64;
        let session = infra.new_session(&mut net, probes as usize);
        let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), seed);
        let mut access = DirectAccess::new(&mut prober, &mut platform, INGRESS, &mut net);
        let e = enumerate_cname_farm(&mut access, &infra, &session, EnumerateOptions::with_probes(probes), SimTime::ZERO);
        prop_assert_eq!(e.observed, n as u64);
    }

    /// Ingress mapping (fresh-honey strategy) recovers any 2-cluster
    /// partition exactly.
    #[test]
    fn mapping_recovers_random_partitions(
        c0 in 1usize..5,
        c1 in 1usize..5,
        assignment in proptest::collection::vec(0usize..2, 2..6),
        seed in 0u64..10_000,
    ) {
        // Ensure both clusters are referenced.
        let mut assignment = assignment;
        assignment[0] = 0;
        if !assignment.contains(&1) {
            let last = assignment.len() - 1;
            assignment[last] = 1;
        }
        let ingress: Vec<Ipv4Addr> =
            (1..=assignment.len() as u8).map(|d| Ipv4Addr::new(192, 0, 2, d)).collect();
        let mut net = NameserverNet::new();
        let mut infra = CdeInfra::install(&mut net);
        let mut platform = PlatformBuilder::new(seed)
            .ingress(ingress.clone())
            .egress(vec![Ipv4Addr::new(192, 0, 3, 1)])
            .cluster(c0, SelectorKind::Random)
            .cluster(c1, SelectorKind::Random)
            .ingress_assignment(assignment)
            .build();
        let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), seed);
        let mapping = map_ingress_to_clusters(
            &mut prober,
            &mut platform,
            &mut net,
            &mut infra,
            &ingress,
            MappingOptions::default(),
            SimTime::ZERO,
        );
        prop_assert!(mapping_matches_ground_truth(&mapping, &platform));
    }
}

/// Any composable fault recipe with sub-total loss — the invariant under
/// test is accounting, not recovery, so the knobs range widely.
fn fault_plan_strategy() -> impl Strategy<Value = FaultPlan> {
    (
        0u64..10_000,
        0.0..0.8f64,
        1.0..6.0f64,
        prop_oneof![Just(None), (0.1..1.0f64).prop_map(Some)],
        prop_oneof![Just(None), (0.1..0.6f64).prop_map(Some)],
        0.0..0.1f64,
    )
        .prop_map(
            |(seed, mean_loss, mean_burst, dup, trunc, hard)| FaultPlan {
                query_loss: LossFault::Bursty {
                    mean_loss,
                    mean_burst,
                },
                hard_error_rate: hard,
                duplicate: dup.map(|rate| DuplicateFault { rate, copies: 1 }),
                truncate: trunc.map(|rate| TruncateFault { rate }),
                ..FaultPlan::clean(seed)
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Under *any* generated fault plan with loss < 100%, a pipelined
    /// campaign terminates with every probe accounted exactly once —
    /// answered or timed out, nothing leaked, nothing double-counted.
    #[test]
    fn pipelined_campaign_accounts_every_probe_under_any_faults(
        plan in fault_plan_strategy(),
    ) {
        // A real echo authority on loopback; all chaos is injected.
        let socket = std::net::UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        socket.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
        let server_addr = socket.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let server = std::thread::spawn({
            let stop = Arc::clone(&stop);
            move || {
                let mut buf = [0u8; 2048];
                while !stop.load(Ordering::SeqCst) {
                    if let Ok((len, peer)) = socket.recv_from(&mut buf) {
                        if let Ok(query) = Message::decode(&buf[..len]) {
                            let resp = Message::response_to(&query);
                            let _ = socket.send_to(&resp.encode().unwrap(), peer);
                        }
                    }
                }
            }
        });

        let seed = plan.seed;
        let mut targets = HashMap::new();
        targets.insert(INGRESS, server_addr);
        let policy = RetryPolicy {
            attempts: 2,
            timeout: Duration::from_millis(40),
            backoff: 1.0,
            base_delay: Duration::from_millis(1),
            jitter: 0.0,
        };
        let reactor = Reactor::launch(
            targets,
            ReactorConfig {
                faults: Some(plan),
                ..ReactorConfig::with_policy(policy, seed)
            },
        )
        .unwrap();
        let probes: Vec<Probe> = (0..24)
            .map(|i| Probe::a(INGRESS, format!("prop-{i}.cache.example").parse().unwrap()))
            .collect();
        let report = run_campaign_pipelined(&reactor, probes, 16);
        stop.store(true, Ordering::SeqCst);
        server.join().unwrap();

        prop_assert!(
            report.fully_accounted(24),
            "accounting leaked: {} outcomes, {} answered, {} timed out (seed {seed})",
            report.outcomes.len(),
            report.answered(),
            report.timed_out()
        );
        prop_assert_eq!(
            reactor.metrics().snapshot().in_flight, 0,
            "probes left in flight after the campaign (seed {})", seed
        );
    }
}
