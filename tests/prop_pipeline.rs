//! Property-based integration tests: the measurement pipeline recovers
//! randomly drawn ground truths.

use counting_dark::analysis::coupon::query_budget;
use counting_dark::cde::access::DirectAccess;
use counting_dark::cde::enumerate::{enumerate_cname_farm, enumerate_identical, EnumerateOptions};
use counting_dark::cde::{
    map_ingress_to_clusters, mapping_matches_ground_truth, CdeInfra, MappingOptions,
};
use counting_dark::netsim::{Link, SimTime};
use counting_dark::platform::{NameserverNet, PlatformBuilder, SelectorKind};
use counting_dark::probers::DirectProber;
use proptest::prelude::*;
use std::net::Ipv4Addr;

const INGRESS: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

/// Selectors under which identical-query enumeration is guaranteed to
/// converge (hash-based selectors need the farm variant).
fn converging_selector() -> impl Strategy<Value = SelectorKind> {
    prop_oneof![
        Just(SelectorKind::Random),
        Just(SelectorKind::RoundRobin),
        Just(SelectorKind::LeastLoaded),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Enumeration recovers any cache count under any converging selector.
    #[test]
    fn enumeration_recovers_ground_truth(
        n in 1usize..12,
        selector in converging_selector(),
        seed in 0u64..10_000,
    ) {
        let mut net = NameserverNet::new();
        let mut infra = CdeInfra::install(&mut net);
        let mut platform = PlatformBuilder::new(seed)
            .ingress(vec![INGRESS])
            .egress(vec![Ipv4Addr::new(192, 0, 3, 1)])
            .cluster(n, selector)
            .build();
        let session = infra.new_session(&mut net, 0);
        let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), seed);
        let mut access = DirectAccess::new(&mut prober, &mut platform, INGRESS, &mut net);
        let q = query_budget(n as u64, 0.0001);
        let e = enumerate_identical(&mut access, &infra, &session, EnumerateOptions::with_probes(q), SimTime::ZERO);
        prop_assert_eq!(e.observed, n as u64);
    }

    /// The CNAME farm recovers the count even under qname-hash selection.
    #[test]
    fn farm_enumeration_recovers_qname_hash(
        n in 1usize..8,
        seed in 0u64..10_000,
    ) {
        let mut net = NameserverNet::new();
        let mut infra = CdeInfra::install(&mut net);
        let mut platform = PlatformBuilder::new(seed)
            .ingress(vec![INGRESS])
            .egress(vec![Ipv4Addr::new(192, 0, 3, 1)])
            .cluster(n, SelectorKind::QnameHash)
            .build();
        // Hash selection is deterministic per name, so coverage needs a
        // wider farm than the coupon budget.
        let probes = 64 * n as u64;
        let session = infra.new_session(&mut net, probes as usize);
        let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), seed);
        let mut access = DirectAccess::new(&mut prober, &mut platform, INGRESS, &mut net);
        let e = enumerate_cname_farm(&mut access, &infra, &session, EnumerateOptions::with_probes(probes), SimTime::ZERO);
        prop_assert_eq!(e.observed, n as u64);
    }

    /// Ingress mapping (fresh-honey strategy) recovers any 2-cluster
    /// partition exactly.
    #[test]
    fn mapping_recovers_random_partitions(
        c0 in 1usize..5,
        c1 in 1usize..5,
        assignment in proptest::collection::vec(0usize..2, 2..6),
        seed in 0u64..10_000,
    ) {
        // Ensure both clusters are referenced.
        let mut assignment = assignment;
        assignment[0] = 0;
        if !assignment.contains(&1) {
            let last = assignment.len() - 1;
            assignment[last] = 1;
        }
        let ingress: Vec<Ipv4Addr> =
            (1..=assignment.len() as u8).map(|d| Ipv4Addr::new(192, 0, 2, d)).collect();
        let mut net = NameserverNet::new();
        let mut infra = CdeInfra::install(&mut net);
        let mut platform = PlatformBuilder::new(seed)
            .ingress(ingress.clone())
            .egress(vec![Ipv4Addr::new(192, 0, 3, 1)])
            .cluster(c0, SelectorKind::Random)
            .cluster(c1, SelectorKind::Random)
            .ingress_assignment(assignment)
            .build();
        let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), seed);
        let mapping = map_ingress_to_clusters(
            &mut prober,
            &mut platform,
            &mut net,
            &mut infra,
            &ingress,
            MappingOptions::default(),
            SimTime::ZERO,
        );
        prop_assert!(mapping_matches_ground_truth(&mapping, &platform));
    }
}
