//! Integration tests under packet loss: loss measurement, carpet bombing
//! and the init/validate protocol across the paper's country profiles.

use counting_dark::analysis::estimators::{carpet_bombing_k, recommended_seeds};
use counting_dark::cde::access::DirectAccess;
use counting_dark::cde::enumerate::{enumerate_identical, EnumerateOptions};
use counting_dark::cde::{measure_loss, CdeInfra, ProbePlan};
use counting_dark::netsim::{
    seed_from_env, CountryProfile, LatencyModel, Link, LossModel, SeedGuard, SimDuration, SimTime,
};
use counting_dark::platform::{NameserverNet, PlatformBuilder, ResolutionPlatform, SelectorKind};
use counting_dark::probers::DirectProber;
use std::net::Ipv4Addr;

const INGRESS: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

fn build(n: usize, seed: u64) -> (ResolutionPlatform, NameserverNet, CdeInfra) {
    let mut net = NameserverNet::new();
    let infra = CdeInfra::install(&mut net);
    let platform = PlatformBuilder::new(seed)
        .ingress(vec![INGRESS])
        .egress(vec![Ipv4Addr::new(192, 0, 3, 1)])
        .cluster(n, SelectorKind::Random)
        .build();
    (platform, net, infra)
}

fn lossy_link(rate: f64) -> Link {
    Link::new(
        LatencyModel::Constant(SimDuration::from_millis(10)),
        LossModel::with_rate(rate),
    )
}

#[test]
fn measured_loss_tracks_country_profiles() {
    let seed = seed_from_env("CDE_LOSSY_SEED", 3001);
    let _guard = SeedGuard::new("CDE_LOSSY_SEED", seed);
    for profile in CountryProfile::all() {
        let (mut platform, mut net, mut infra) = build(2, seed);
        let mut prober = DirectProber::new(
            Ipv4Addr::new(203, 0, 113, 1),
            lossy_link(profile.loss_rate()),
            seed.wrapping_mul(31) ^ 7,
        );
        let mut access = DirectAccess::new(&mut prober, &mut platform, INGRESS, &mut net);
        let measured = measure_loss(&mut access, &mut infra, 600, SimTime::ZERO);
        let expected = 1.0 - (1.0 - profile.loss_rate()).powi(2);
        assert!(
            (measured - expected).abs() < 0.05,
            "{profile}: measured {measured:.3} expected {expected:.3}"
        );
    }
}

#[test]
fn plan_from_measured_loss_survives_iran_grade_loss() {
    // Measure loss, derive a plan, and enumerate under that loss: the
    // planned redundancy must keep the result exact in almost all trials.
    let seed = seed_from_env("CDE_LOSSY_SEED", 3100);
    let _guard = SeedGuard::new("CDE_LOSSY_SEED", seed);
    let profile = CountryProfile::Iran;
    let n = 4usize;
    let trials = 20;
    let mut exact = 0;
    for t in 0..trials {
        let (mut platform, mut net, mut infra) = build(n, seed + t);
        let mut prober = DirectProber::new(
            Ipv4Addr::new(203, 0, 113, 1),
            lossy_link(profile.loss_rate()),
            seed.wrapping_mul(17) + 100 + t,
        );
        let mut access = DirectAccess::new(&mut prober, &mut platform, INGRESS, &mut net);
        let loss = measure_loss(&mut access, &mut infra, 200, SimTime::ZERO);
        let plan = ProbePlan::for_target(8, loss.min(0.9));
        let session = infra.new_session(access.net, 0);
        let e = enumerate_identical(
            &mut access,
            &infra,
            &session,
            EnumerateOptions {
                probes: plan.probes,
                redundancy: plan.redundancy,
                gap: SimDuration::from_millis(10),
            },
            SimTime::ZERO + SimDuration::from_secs(10),
        );
        if e.observed == n as u64 {
            exact += 1;
        }
    }
    assert!(exact >= trials - 1, "exact {exact}/{trials}");
}

#[test]
fn carpet_k_matches_paper_loss_profiles() {
    assert_eq!(
        carpet_bombing_k(CountryProfile::Typical.loss_rate(), 0.001),
        2
    );
    assert_eq!(
        carpet_bombing_k(CountryProfile::China.loss_rate(), 0.001),
        3
    );
    assert_eq!(carpet_bombing_k(CountryProfile::Iran.loss_rate(), 0.001), 4);
}

#[test]
fn seed_recommendation_scales_with_loss_and_n() {
    let clean = recommended_seeds(8, 0.0);
    let lossy = recommended_seeds(8, CountryProfile::Iran.loss_rate());
    assert_eq!(clean, 16);
    assert!(lossy >= 2 * clean);
}

#[test]
fn response_direction_loss_still_counts_caches() {
    // A probe whose response is lost still touched a cache (the upstream
    // fetch happened) — ω is driven by cache state, not by what the
    // prober saw. Verify ω stays correct even when the prober times out a
    // lot.
    let seed = seed_from_env("CDE_LOSSY_SEED", 3200);
    let _guard = SeedGuard::new("CDE_LOSSY_SEED", seed);
    let n = 3usize;
    let (mut platform, mut net, mut infra) = build(n, seed);
    let mut prober = DirectProber::new(
        Ipv4Addr::new(203, 0, 113, 1),
        lossy_link(0.3),
        seed.wrapping_mul(13) ^ 11,
    );
    let mut access = DirectAccess::new(&mut prober, &mut platform, INGRESS, &mut net);
    let session = infra.new_session(access.net, 0);
    let e = enumerate_identical(
        &mut access,
        &infra,
        &session,
        EnumerateOptions {
            probes: 60,
            redundancy: 4,
            gap: SimDuration::from_millis(10),
        },
        SimTime::ZERO,
    );
    assert_eq!(e.observed, n as u64);
    assert!(e.delivered < e.probes, "some probes must have timed out");
}
