//! Hermetic chaos suite: enumeration must recover exact cache counts
//! while a seeded [`FaultPlan`] mangles the traffic.
//!
//! Every test derives its randomness from `CDE_CHAOS_SEED` (falling back
//! to a fixed default) and holds a [`SeedGuard`], so a failure prints the
//! exact seed to replay. The replay-identity test is the determinism
//! contract itself: two runs of one seed must emit byte-identical
//! probe-level event streams (timestamps stripped).

use counting_dark::cde::enumerate::{enumerate_identical, EnumerateOptions};
use counting_dark::cde::{AccessProvider, CdeInfra, ProbePlan, Session};
use counting_dark::engine::{FaultyTransport, SimTransport};
use counting_dark::faults::{
    DelayFault, DuplicateFault, FaultPlan, RateLimitAction, RateLimitFault,
};
use counting_dark::netsim::{seed_from_env, Link, SeedGuard, SimDuration, SimTime};
use counting_dark::platform::{NameserverNet, PlatformBuilder, SelectorKind};
use counting_dark::probers::DirectProber;
use counting_dark::telemetry::{strip_at_us, TelemetryHub};
use std::net::Ipv4Addr;
use std::time::Duration;

const INGRESS: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

/// A hidden `n`-cache platform wrapped in a [`SimTransport`], plus the
/// infra/session needed to count honey fetches from the outside.
fn sim(n: usize, seed: u64) -> (SimTransport, CdeInfra, Session) {
    let mut net = NameserverNet::new();
    let mut infra = CdeInfra::install(&mut net);
    let platform = PlatformBuilder::new(seed)
        .ingress(vec![INGRESS])
        .egress(vec![Ipv4Addr::new(192, 0, 3, 1)])
        .cluster(n, SelectorKind::Random)
        .build();
    let session = infra.new_session(&mut net, 0);
    let prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), seed);
    (SimTransport::new(platform, net, prober), infra, session)
}

/// Runs identical-query enumeration through `faulty` and returns ω.
fn enumerate_through(
    faulty: &mut FaultyTransport<SimTransport>,
    infra: &CdeInfra,
    session: &Session,
    opts: EnumerateOptions,
) -> u64 {
    let mut access = faulty.channel(INGRESS);
    enumerate_identical(&mut access, infra, session, opts, SimTime::ZERO).observed
}

#[test]
fn bursty_loss_enumeration_stays_exact() {
    let seed = seed_from_env("CDE_CHAOS_SEED", 4242);
    let _guard = SeedGuard::new("CDE_CHAOS_SEED", seed);
    let n = 5usize;
    for (i, loss) in [0.25, 0.33, 0.40].into_iter().enumerate() {
        let mean_burst = 3.0;
        let (inner, infra, session) = sim(n, seed ^ (i as u64) << 8);
        let fault_plan = FaultPlan::bursty(seed.wrapping_add(i as u64), loss, mean_burst);
        // Budget redundancy for the *burst-aware* loss model — the
        // uniform carpet-bombing K under-provisions when drops cluster.
        let probe_plan = ProbePlan::for_bursty_target(8, loss, mean_burst);
        let mut faulty = FaultyTransport::new(inner, &fault_plan);
        let observed = enumerate_through(
            &mut faulty,
            &infra,
            &session,
            EnumerateOptions {
                probes: probe_plan.probes,
                redundancy: probe_plan.redundancy,
                gap: SimDuration::from_millis(10),
            },
        );
        let stats = faulty.fault_stats();
        assert!(
            stats.query_drops() > 0,
            "loss {loss}: chaos run was accidentally clean"
        );
        assert_eq!(
            observed,
            n as u64,
            "loss {loss}: ω {observed} != {n} (drops {}, seed {seed})",
            stats.query_drops()
        );
    }
}

#[test]
fn duplicated_replies_and_jitter_stay_exact() {
    let seed = seed_from_env("CDE_CHAOS_SEED", 777);
    let _guard = SeedGuard::new("CDE_CHAOS_SEED", seed);
    let n = 4usize;
    let (inner, infra, session) = sim(n, seed);
    let plan = FaultPlan {
        duplicate: Some(DuplicateFault {
            rate: 0.5,
            copies: 2,
        }),
        delay: Some(DelayFault {
            jitter: Duration::from_millis(5),
            spike_rate: 0.1,
            spike: Duration::from_millis(40),
        }),
        ..FaultPlan::clean(seed)
    };
    let mut faulty = FaultyTransport::new(inner, &plan);
    let observed = enumerate_through(
        &mut faulty,
        &infra,
        &session,
        EnumerateOptions::with_probes(64),
    );
    let stats = faulty.fault_stats();
    assert!(stats.duplicated() > 0, "duplication never fired");
    assert!(stats.delayed() > 0, "jitter never fired");
    // Duplicates and reordering must not inflate ω: the count is driven
    // by cache state, which is idempotent under repeated delivery.
    assert_eq!(observed, n as u64, "ω {observed} != {n} (seed {seed})");
}

#[test]
fn rate_limited_refusals_remain_recoverable() {
    let seed = seed_from_env("CDE_CHAOS_SEED", 909);
    let _guard = SeedGuard::new("CDE_CHAOS_SEED", seed);
    let n = 4usize;
    let (inner, infra, session) = sim(n, seed);
    // Probes arrive at 100 qps (10ms gap); the resolver admits 60 qps
    // with a 10-deep bucket, REFUSING the rest without resolving.
    let plan = FaultPlan {
        rate_limit: Some(RateLimitFault {
            qps: 60.0,
            burst: 10.0,
            action: RateLimitAction::Refuse,
        }),
        ..FaultPlan::clean(seed)
    };
    let probes = ProbePlan::for_target(8, 0.0).probes;
    let mut faulty = FaultyTransport::new(inner, &plan);
    let observed = enumerate_through(
        &mut faulty,
        &infra,
        &session,
        EnumerateOptions {
            probes,
            redundancy: 1,
            gap: SimDuration::from_millis(10),
        },
    );
    let stats = faulty.fault_stats();
    assert!(
        stats.refused() > 0,
        "rate limit never fired at 100 qps offered"
    );
    // REFUSED probes never warm a cache, but the coupon budget for
    // n_max=8 has enough slack to still cover all 4 caches.
    assert_eq!(
        observed,
        n as u64,
        "ω {observed} != {n} ({} refused, seed {seed})",
        stats.refused()
    );
}

/// One chaos enumeration run with a private telemetry hub; returns the
/// drained JSONL with timestamps stripped.
fn chaos_event_stream(platform_seed: u64, fault_seed: u64) -> String {
    let (inner, infra, session) = sim(3, platform_seed);
    let plan = FaultPlan {
        duplicate: Some(DuplicateFault {
            rate: 0.3,
            copies: 1,
        }),
        ..FaultPlan::bursty(fault_seed, 0.3, 3.0)
    };
    let hub = TelemetryHub::new(8192);
    let mut faulty = FaultyTransport::new(inner, &plan).with_telemetry(hub.clone());
    let _ = enumerate_through(
        &mut faulty,
        &infra,
        &session,
        EnumerateOptions {
            probes: 48,
            redundancy: 6,
            gap: SimDuration::from_millis(10),
        },
    );
    let mut out = Vec::new();
    let lines = hub.drain_jsonl(&mut out).expect("drain JSONL");
    assert!(lines > 0, "chaos run emitted no events");
    strip_at_us(&String::from_utf8(out).expect("JSONL is UTF-8"))
}

#[test]
fn replaying_a_seed_reproduces_the_event_stream() {
    let seed = seed_from_env("CDE_CHAOS_SEED", 31337);
    let _guard = SeedGuard::new("CDE_CHAOS_SEED", seed);
    // Same platform seed, same fault seed: the probe-level event
    // sequence (sent/matched/timed-out per token) must be identical —
    // only wall-clock timestamps may differ between runs.
    let first = chaos_event_stream(seed, seed ^ 0x5eed);
    let second = chaos_event_stream(seed, seed ^ 0x5eed);
    assert_eq!(
        first, second,
        "same seed produced diverging event streams (seed {seed})"
    );
    // A different fault seed must perturb the stream — otherwise the
    // injector is ignoring its RNG and the replay check is vacuous.
    let third = chaos_event_stream(seed, seed ^ 0xbad5eed);
    assert_ne!(
        first, third,
        "fault seed does not influence the event stream (seed {seed})"
    );
}
