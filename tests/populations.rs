//! Integration tests over the synthetic populations: the measurement
//! pipeline applied at small scale must reproduce the paper's headline
//! shapes and stay close to ground truth.

use cde_bench::runner::survey_population;
use counting_dark::analysis::stats::{Cdf, Scatter};
use counting_dark::datasets::PopulationKind;

const SEED: u64 = 0xF165;

#[test]
fn open_resolver_survey_reproduces_fig4_and_fig6_shape() {
    let measured = survey_population(PopulationKind::OpenResolvers, 80, SEED);
    let cdf = Cdf::from_samples(measured.iter().map(|m| m.measured_caches));
    // Fig. 4: ~70% of open-resolver platforms use 1-2 caches.
    let small = cdf.fraction_at_or_below(2);
    assert!((0.55..0.90).contains(&small), "1-2 caches share {small}");
    // Fig. 6: the 1-IP/1-cache cell dominates.
    let sc: Scatter = measured
        .iter()
        .map(|m| (m.spec.ingress_count as u64, m.measured_caches))
        .collect();
    let ((x, y), _) = sc.largest_cell().unwrap();
    assert_eq!((x, y), (1, 1));
}

#[test]
fn enterprise_survey_reproduces_multi_multi_dominance() {
    let measured = survey_population(PopulationKind::Enterprises, 80, SEED);
    let sc: Scatter = measured
        .iter()
        .map(|m| (m.spec.ingress_count as u64, m.measured_caches))
        .collect();
    // Fig. 6: >80% multi-IP and multi-cache, <5%-ish single/single.
    assert!(sc.fraction_where(|x, y| x > 1 && y > 1) > 0.70);
    assert!(sc.fraction_where(|x, y| x == 1 && y == 1) < 0.12);
}

#[test]
fn isp_survey_sits_between_the_other_populations() {
    let isps = survey_population(PopulationKind::Isps, 80, SEED);
    let open = survey_population(PopulationKind::OpenResolvers, 80, SEED);
    let ent = survey_population(PopulationKind::Enterprises, 80, SEED);
    let median = |pop: &[cde_bench::MeasuredNetwork]| {
        Cdf::from_samples(pop.iter().map(|m| m.measured_caches)).median()
    };
    // Ordering of cache medians: open <= isps <= enterprises (Fig. 4).
    assert!(median(&open) <= median(&isps));
    assert!(median(&isps) <= median(&ent));
}

#[test]
fn egress_ordering_matches_fig3() {
    let open = survey_population(PopulationKind::OpenResolvers, 60, SEED);
    let ent = survey_population(PopulationKind::Enterprises, 60, SEED);
    let isps = survey_population(PopulationKind::Isps, 60, SEED);
    let median = |pop: &[cde_bench::MeasuredNetwork]| {
        Cdf::from_samples(pop.iter().map(|m| m.measured_egress)).median()
    };
    // Fig. 3: enterprises have the most egress IPs, open resolvers the
    // fewest.
    assert!(median(&open) < median(&isps));
    assert!(median(&isps) <= median(&ent));
}

#[test]
fn pipeline_accuracy_is_high_across_populations() {
    for kind in PopulationKind::all() {
        let measured = survey_population(kind, 60, SEED);
        let close = measured
            .iter()
            .filter(|m| (m.measured_caches as i64 - m.spec.total_caches() as i64).abs() <= 1)
            .count() as f64
            / measured.len() as f64;
        assert!(close >= 0.75, "{kind}: only {close:.2} within ±1 cache");
        let egress_exact = measured
            .iter()
            .filter(|m| m.measured_egress == m.spec.egress_count as u64)
            .count() as f64
            / measured.len() as f64;
        assert!(
            egress_exact >= 0.85,
            "{kind}: egress exact only {egress_exact:.2}"
        );
    }
}
