#!/usr/bin/env bash
# End-to-end smoke of the cde-serve daemon over its HTTP control plane:
#
#   1. start the daemon on an ephemeral port (bursty chaos enabled),
#   2. register two tenants with 1:3 weights and run a campaign to
#      completion with the exact planted cache count,
#   3. scrape /metrics for the per-tenant probe counters,
#   4. run a large campaign under bursty loss and watch /v1/health
#      degrade to warn/critical with a loss-attributed cause, then
#      recover to ok once the burst-loss traffic drains,
#   5. trigger a flight dump over POST /v1/flight/dump while degraded,
#      assert the artifact exists and parses, and run the loss-forensics
#      reconciler (`cde-analyze --forensics`) over it,
#   6. kill -9 the daemon mid-campaign — which must never leave a torn
#      flight dump (tmp+rename, like checkpoints) — restart it with
#      --resume, and watch the checkpointed campaign run to completion,
#   7. shut down gracefully over HTTP and check the telemetry JSONL
#      carries the per-tenant campaign spans.
#
# Note on step 4: restarting the daemon rebuilds the *simulated*
# testbed, so its caches come back cold — honey-fetch evidence across a
# process restart is additive (old world + new world), unlike the
# in-process kill/resume (same world) where the recovered count is
# exact; that stronger property is proven by
# `crates/serve/tests/kill_resume.rs`. Here we assert completion,
# accounting and that the resume really continued from the snapshot.
#
# Usage: scripts/serve_smoke.sh   (from the repo root; needs curl)

set -euo pipefail

SEED="${CDE_CHAOS_SEED:-4242}"
DIR="target/serve-smoke"
BIN="target/release/cde-serve"
CACHES=6

say() { echo "serve-smoke: $*"; }
die() { echo "serve-smoke: FAIL: $*" >&2; exit 1; }

json_field() { # json_field <key> — prints the value of "key" from stdin
    sed -n "s/.*\"$1\": \"\{0,1\}\([^,\"}]*\)\"\{0,1\}.*/\1/p" | head -n 1
}

DAEMON_PID=""
cleanup() {
    [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
}
trap cleanup EXIT

start_daemon() { # start_daemon [extra flags...]
    rm -f "$DIR/addr"
    "$BIN" --listen 127.0.0.1:0 --checkpoint-dir "$DIR/ckpt" \
        --testbed-caches "$CACHES" --testbed-seed "$SEED" \
        --chaos --rate 2000 \
        --telemetry-jsonl "$DIR/events.jsonl" --addr-file "$DIR/addr" \
        "$@" &
    DAEMON_PID=$!
    for _ in $(seq 1 100); do
        [ -s "$DIR/addr" ] && break
        kill -0 "$DAEMON_PID" 2>/dev/null || die "daemon died during startup"
        sleep 0.1
    done
    [ -s "$DIR/addr" ] || die "daemon never wrote its address file"
    ADDR="$(cat "$DIR/addr")"
    say "daemon up at $ADDR (pid $DAEMON_PID)"
}

poll_status() { # poll_status <id> <want-state> <timeout-s>
    local id="$1" want="$2" timeout="$3" status state
    for _ in $(seq 1 $((timeout * 10))); do
        status="$(curl -fsS "http://$ADDR/v1/campaigns/$id")"
        state="$(echo "$status" | json_field state)"
        if [ "$state" = "$want" ]; then
            echo "$status"
            return 0
        fi
        sleep 0.1
    done
    die "campaign $id never reached state=$want (last: $status)"
}

say "building cde-serve and cde-analyze"
cargo build --release --locked -p cde-serve -p cde-insight

rm -rf "$DIR"
mkdir -p "$DIR"
start_daemon

say "health check"
curl -fsS "http://$ADDR/healthz" | grep -q '"ok": true' || die "healthz"

say "registering tenants alice (weight 1) and bob (weight 3)"
curl -fsS -X POST -d '{"name": "alice", "weight": 1}' "http://$ADDR/v1/tenants" >/dev/null
curl -fsS -X POST -d '{"name": "bob", "weight": 3}' "http://$ADDR/v1/tenants" >/dev/null

say "submitting bob's campaign against the planted $CACHES-cache testbed"
BOB_ID="$(curl -fsS -X POST -d \
    '{"tenant": "bob", "label": "smoke", "caches_hint": 6, "loss_hint": 0.25, "farm_size": 60, "redundancy": 2, "window": 8, "checkpoint_every": 8}' \
    "http://$ADDR/v1/campaigns" | json_field id)"
[ -n "$BOB_ID" ] || die "no campaign id returned"
say "campaign $BOB_ID submitted; polling to completion"

STATUS="$(poll_status "$BOB_ID" done 60)"
echo "$STATUS" | grep -q "\"estimated\": $CACHES," || die "wrong estimate: $STATUS"
echo "$STATUS" | grep -q '"fully_accounted": true' || die "probes leaked: $STATUS"
say "campaign $BOB_ID done: exact cache count recovered under chaos"

say "scraping /metrics for per-tenant counters"
METRICS="$(curl -fsS "http://$ADDR/metrics")"
echo "$METRICS" | grep -q 'cde_serve_tenant_probes_total{tenant="bob"}' \
    || die "missing bob's probe counter in scrape"
echo "$METRICS" | grep -q 'cde_serve_tenant_weight{tenant="alice"} 1' \
    || die "missing alice's weight gauge in scrape"

# --- /v1/health: degrade under bursty loss, then recover -------------------
# curl -f would abort on the 503 a critical verdict serves, so fetch the
# health body with plain -sS and grep the JSON.
health() { curl -sS "http://$ADDR/v1/health"; }

say "submitting a large campaign under bursty loss; /v1/health must degrade"
PULSE_ID="$(curl -fsS -X POST -d \
    '{"tenant": "bob", "label": "pulse", "caches_hint": 6, "loss_hint": 0.25, "farm_size": 2000, "redundancy": 2, "window": 32, "checkpoint_every": 64}' \
    "http://$ADDR/v1/campaigns" | json_field id)"
[ -n "$PULSE_ID" ] || die "no pulse campaign id returned"
DEGRADED=""
for _ in $(seq 1 300); do
    HEALTH="$(health)"
    if echo "$HEALTH" | grep -Eq '"status": "(warn|critical)"'; then
        DEGRADED=1
        break
    fi
    sleep 0.1
done
[ -n "$DEGRADED" ] || die "/v1/health never degraded under 25% bursty loss (last: $HEALTH)"
echo "$HEALTH" | grep -q 'loss_budget_burn' \
    || die "degraded verdict lacks a loss-attributed cause: $HEALTH"
say "health degraded with loss cause: $(echo "$HEALTH" | json_field status)"

curl -fsS "http://$ADDR/v1/health/shards" | grep -q '"duty_cycle"' \
    || die "/v1/health/shards missing shard duty cycles"
curl -fsS "http://$ADDR/metrics" | grep -q '^cde_pulse_health_status ' \
    || die "cde_pulse_health_status missing from /metrics"

# --- flight recorder: operator-triggered dump + loss forensics -------------
say "triggering a flight dump while degraded"
DUMP_PATH="$(curl -fsS -X POST "http://$ADDR/v1/flight/dump" | json_field flight_dump)"
[ -n "$DUMP_PATH" ] || die "POST /v1/flight/dump returned no path"
[ -s "$DUMP_PATH" ] || die "flight dump artifact missing or empty: $DUMP_PATH"
head -n 1 "$DUMP_PATH" | grep -q '"kind": "flight_header", "flight_version": 1' \
    || die "flight dump lacks its versioned header: $(head -n 1 "$DUMP_PATH")"
say "reconciling the dump with cde-analyze --forensics"
FORENSICS="$(target/release/cde-analyze "$DUMP_PATH" --forensics --check)" \
    || die "forensics reconciliation failed on $DUMP_PATH"
echo "$FORENSICS" | grep -q 'unanswered coverage' || die "no coverage line: $FORENSICS"
echo "$FORENSICS" | grep -q '0 line(s) skipped' || die "dump had malformed lines: $FORENSICS"
say "flight dump reconciled: $(echo "$FORENSICS" | grep 'unanswered coverage')"

poll_status "$PULSE_ID" done 120 >/dev/null
# Recovery is bounded by the SLO mid window (1m): warn clears once the
# lossy traffic ages out of it and the activity floor disengages.
say "pulse campaign done; waiting for /v1/health to recover (~60s)"
RECOVERED=""
for _ in $(seq 1 90); do
    HEALTH="$(health)"
    if echo "$HEALTH" | grep -q '"status": "ok"'; then
        RECOVERED=1
        break
    fi
    sleep 1
done
[ -n "$RECOVERED" ] || die "/v1/health never recovered after the lossy campaign (last: $HEALTH)"
say "health recovered to ok"

say "submitting alice's slow campaign, then kill -9 mid-flight"
curl -fsS -X POST -d '{"name": "victim", "weight": 1, "cap_per_second": 150, "cap_burst": 1}' \
    "http://$ADDR/v1/tenants" >/dev/null
VICTIM_ID="$(curl -fsS -X POST -d \
    '{"tenant": "victim", "label": "victim", "caches_hint": 6, "loss_hint": 0.25, "farm_size": 120, "redundancy": 2, "window": 8, "checkpoint_every": 8}' \
    "http://$ADDR/v1/campaigns" | json_field id)"
for _ in $(seq 1 300); do
    COMPLETED="$(curl -fsS "http://$ADDR/v1/campaigns/$VICTIM_ID" | json_field completed)"
    [ "${COMPLETED:-0}" -ge 40 ] && break
    sleep 0.1
done
[ "${COMPLETED:-0}" -ge 40 ] || die "victim campaign made no progress"
[ "$COMPLETED" -lt 240 ] || die "victim finished before the kill landed"
say "kill -9 at $COMPLETED/240 completions"
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""

# The dump discipline is tmp + fsync + rename, exactly like checkpoints:
# however the kill lands, no torn or half-written flight artifact may
# survive, and every committed dump must still parse.
if ls "$DIR"/ckpt/flight-*.jsonl.tmp >/dev/null 2>&1; then
    die "kill -9 left a torn flight dump temp file behind"
fi
for dump in "$DIR"/ckpt/flight-*.jsonl; do
    [ -e "$dump" ] || continue
    head -n 1 "$dump" | grep -q '"flight_version": 1' \
        || die "committed flight dump $dump does not parse after kill -9"
done

say "restarting with --resume"
start_daemon --resume
STATUS="$(poll_status "$VICTIM_ID" done 60)"
RESUMED_FROM="$(echo "$STATUS" | json_field resumed_from)"
[ "${RESUMED_FROM:-0}" -gt 0 ] || die "resume did not continue from the snapshot: $STATUS"
echo "$STATUS" | grep -q '"completed": 240' || die "resumed campaign incomplete: $STATUS"
echo "$STATUS" | grep -q '"fully_accounted": true' || die "probes leaked across the kill: $STATUS"
say "campaign $VICTIM_ID resumed from $RESUMED_FROM and completed"

say "graceful shutdown over HTTP"
curl -fsS -X POST "http://$ADDR/v1/shutdown" >/dev/null
wait "$DAEMON_PID" || die "daemon did not exit cleanly after /v1/shutdown"
DAEMON_PID=""

say "checking telemetry JSONL for per-tenant campaign spans"
grep -q '"kind": "campaign_tenant", "tenant": "bob"' "$DIR/events.jsonl" \
    || die "bob's span tenant tag missing from $DIR/events.jsonl"
grep -q '"kind": "campaign_tenant", "tenant": "victim"' "$DIR/events.jsonl" \
    || die "victim's span tenant tag missing from $DIR/events.jsonl"
grep -q '"kind": "campaign_begin"' "$DIR/events.jsonl" || die "no campaign spans captured"

say "OK"
