//! DNS substrate for the CDE (Caches Discovery and Enumeration)
//! reproduction.
//!
//! This crate implements the parts of the DNS the paper's measurement
//! techniques rely on, from scratch:
//!
//! * [`Name`] — case-normalised domain names with subdomain algebra,
//! * [`Record`]/[`RData`] — typed resource records (A, AAAA, NS, CNAME, MX,
//!   TXT, SPF, SOA, PTR, SRV, OPT and opaque),
//! * [`Message`] — full RFC 1035 wire encode/decode with name compression,
//! * [`Zone`] — authoritative answer synthesis including referrals, CNAME
//!   chains, wildcards, NODATA and NXDOMAIN.
//!
//! Referral responses and CNAME chains are not incidental features: the
//! paper's *names hierarchy* and *CNAME chain* local-cache bypasses
//! (§IV-B2) are built directly on them.
//!
//! # Examples
//!
//! Build the zone fragment the paper uses for the CNAME-chain bypass and
//! resolve one of the aliases:
//!
//! ```
//! use cde_dns::{Name, RData, Record, RecordType, Ttl, Zone};
//! use cde_dns::zone::LookupResult;
//! use std::net::Ipv4Addr;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let apex: Name = "cache.example".parse()?;
//! let mut zone = Zone::with_soa(apex.clone(), Ttl::from_secs(300));
//! let target = apex.prepend_label("name")?;
//! zone.add(Record::new(
//!     target.clone(),
//!     Ttl::from_secs(3600),
//!     RData::A(Ipv4Addr::new(198, 51, 100, 4)),
//! ))?;
//! for i in 1..=8 {
//!     zone.add(Record::new(
//!         apex.prepend_label(format!("x-{i}"))?,
//!         Ttl::from_secs(3600),
//!         RData::Cname(target.clone()),
//!     ))?;
//! }
//! match zone.lookup(&apex.prepend_label("x-3")?, RecordType::A) {
//!     LookupResult::Cname { chain, target_records } => {
//!         assert_eq!(chain.len(), 1);
//!         assert_eq!(target_records.len(), 1);
//!     }
//!     other => panic!("unexpected {other:?}"),
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod edns;
pub mod error;
pub mod master;
pub mod message;
pub mod name;
pub mod rr;
pub mod wire;
pub mod zone;

pub use edns::{Edns, EdnsMessage};
pub use error::{NameError, WireError, ZoneError};
pub use message::{Flags, Message, MessagePeek, Opcode, Question, Rcode};
pub use name::Name;
pub use rr::{RData, Record, RecordClass, RecordType, Soa, Ttl};
pub use zone::{LookupResult, Zone};
