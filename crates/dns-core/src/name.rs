//! Domain names.
//!
//! [`Name`] stores a fully-qualified domain name as a sequence of labels,
//! normalised to lowercase (DNS name comparison is case-insensitive,
//! RFC 1034 §3.1). The root name has zero labels.

use crate::error::NameError;
use std::borrow::Borrow;
use std::fmt;
use std::str::FromStr;

/// Maximum length of a single label in octets (RFC 1035 §2.3.4).
pub const MAX_LABEL_LEN: usize = 63;
/// Maximum length of a name in wire form, including length octets and the
/// terminating root label (RFC 1035 §2.3.4).
pub const MAX_NAME_LEN: usize = 255;

/// A fully-qualified, case-normalised DNS domain name.
///
/// # Examples
///
/// ```
/// use cde_dns::Name;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let name: Name = "WWW.Cache.Example".parse()?;
/// assert_eq!(name.to_string(), "www.cache.example.");
/// assert_eq!(name.label_count(), 3);
/// assert!(name.is_subdomain_of(&"cache.example".parse()?));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Name {
    /// Labels from leftmost (most specific) to rightmost (closest to root).
    labels: Vec<Box<[u8]>>,
}

impl Name {
    /// The root name (zero labels).
    ///
    /// # Examples
    ///
    /// ```
    /// use cde_dns::Name;
    /// assert!(Name::root().is_root());
    /// assert_eq!(Name::root().to_string(), ".");
    /// ```
    pub fn root() -> Name {
        Name { labels: Vec::new() }
    }

    /// Parses a name from its textual (dot-separated) representation.
    ///
    /// Accepts an optional trailing dot. The empty string and `"."` both
    /// denote the root. Labels are normalised to ASCII lowercase.
    ///
    /// # Errors
    ///
    /// Returns [`NameError`] when a label is empty or over 63 octets, when
    /// the whole name exceeds 255 octets in wire form, or when a label
    /// contains bytes outside `[A-Za-z0-9_-]`.
    pub fn parse(text: &str) -> Result<Name, NameError> {
        let trimmed = text.strip_suffix('.').unwrap_or(text);
        if trimmed.is_empty() {
            return Ok(Name::root());
        }
        let mut labels = Vec::new();
        for raw in trimmed.split('.') {
            labels.push(Label::validate(raw.as_bytes())?);
        }
        let name = Name { labels };
        name.check_total_len()?;
        Ok(name)
    }

    /// Builds a name from label byte strings, most-specific first.
    ///
    /// # Errors
    ///
    /// Same validation as [`Name::parse`].
    pub fn from_labels<I, L>(labels: I) -> Result<Name, NameError>
    where
        I: IntoIterator<Item = L>,
        L: AsRef<[u8]>,
    {
        let mut out = Vec::new();
        for l in labels {
            out.push(Label::validate(l.as_ref())?);
        }
        let name = Name { labels: out };
        name.check_total_len()?;
        Ok(name)
    }

    fn check_total_len(&self) -> Result<(), NameError> {
        if self.wire_len() > MAX_NAME_LEN {
            return Err(NameError::NameTooLong);
        }
        Ok(())
    }

    /// Length of this name in uncompressed wire form (length octets plus the
    /// terminating zero octet).
    pub fn wire_len(&self) -> usize {
        1 + self.labels.iter().map(|l| 1 + l.len()).sum::<usize>()
    }

    /// Number of labels; the root has zero.
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// `true` when this is the root name.
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// Iterates over the labels, most-specific (leftmost) first.
    pub fn labels(&self) -> impl Iterator<Item = &[u8]> + '_ {
        self.labels.iter().map(|l| l.borrow())
    }

    /// The leftmost label, or `None` for the root.
    pub fn first_label(&self) -> Option<&[u8]> {
        self.labels.first().map(|l| l.borrow())
    }

    /// Returns the parent name (this name with its leftmost label removed),
    /// or `None` for the root.
    ///
    /// # Examples
    ///
    /// ```
    /// use cde_dns::Name;
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let n: Name = "a.b.example".parse()?;
    /// assert_eq!(n.parent().unwrap().to_string(), "b.example.");
    /// # Ok(())
    /// # }
    /// ```
    pub fn parent(&self) -> Option<Name> {
        if self.is_root() {
            None
        } else {
            Some(Name {
                labels: self.labels[1..].to_vec(),
            })
        }
    }

    /// `true` when `self` equals `other` or sits below it in the tree.
    ///
    /// Every name is a subdomain of the root; a name is a subdomain of
    /// itself.
    pub fn is_subdomain_of(&self, other: &Name) -> bool {
        if other.labels.len() > self.labels.len() {
            return false;
        }
        let skip = self.labels.len() - other.labels.len();
        self.labels[skip..] == other.labels[..]
    }

    /// `true` when `self` is strictly below `other`.
    pub fn is_strict_subdomain_of(&self, other: &Name) -> bool {
        self.labels.len() > other.labels.len() && self.is_subdomain_of(other)
    }

    /// Prepends `label` to this name, producing a child name.
    ///
    /// # Errors
    ///
    /// Returns [`NameError`] when the label is invalid or the result would
    /// exceed the 255-octet wire limit.
    ///
    /// # Examples
    ///
    /// ```
    /// use cde_dns::Name;
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let apex: Name = "cache.example".parse()?;
    /// let child = apex.prepend_label("x-1")?;
    /// assert_eq!(child.to_string(), "x-1.cache.example.");
    /// # Ok(())
    /// # }
    /// ```
    pub fn prepend_label(&self, label: impl AsRef<[u8]>) -> Result<Name, NameError> {
        let mut labels = Vec::with_capacity(self.labels.len() + 1);
        labels.push(Label::validate(label.as_ref())?);
        labels.extend(self.labels.iter().cloned());
        let name = Name { labels };
        name.check_total_len()?;
        Ok(name)
    }

    /// Concatenates `self` (as the more-specific part) onto `suffix`.
    ///
    /// # Errors
    ///
    /// Returns [`NameError::NameTooLong`] when the result exceeds the wire
    /// limit.
    pub fn concat(&self, suffix: &Name) -> Result<Name, NameError> {
        let mut labels = Vec::with_capacity(self.labels.len() + suffix.labels.len());
        labels.extend(self.labels.iter().cloned());
        labels.extend(suffix.labels.iter().cloned());
        let name = Name { labels };
        name.check_total_len()?;
        Ok(name)
    }

    /// Strips `suffix` from the end of this name, returning the relative
    /// prefix as a new name, or `None` when `self` is not a subdomain of
    /// `suffix`.
    pub fn strip_suffix(&self, suffix: &Name) -> Option<Name> {
        if !self.is_subdomain_of(suffix) {
            return None;
        }
        let keep = self.labels.len() - suffix.labels.len();
        Some(Name {
            labels: self.labels[..keep].to_vec(),
        })
    }

    /// All names from `self` up to and including the root, starting with
    /// `self`.
    ///
    /// # Examples
    ///
    /// ```
    /// use cde_dns::Name;
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let n: Name = "a.b".parse()?;
    /// let chain: Vec<String> = n.ancestors().map(|a| a.to_string()).collect();
    /// assert_eq!(chain, ["a.b.", "b.", "."]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn ancestors(&self) -> Ancestors {
        Ancestors {
            current: Some(self.clone()),
        }
    }
}

/// Iterator over a name and its ancestors up to the root.
///
/// Produced by [`Name::ancestors`].
#[derive(Debug, Clone)]
pub struct Ancestors {
    current: Option<Name>,
}

impl Iterator for Ancestors {
    type Item = Name;

    fn next(&mut self) -> Option<Name> {
        let out = self.current.take()?;
        self.current = out.parent();
        Some(out)
    }
}

/// Label validation helper namespace.
struct Label;

impl Label {
    /// Validates and lowercases one label.
    fn validate(raw: &[u8]) -> Result<Box<[u8]>, NameError> {
        if raw.is_empty() {
            return Err(NameError::EmptyLabel);
        }
        if raw.len() > MAX_LABEL_LEN {
            return Err(NameError::LabelTooLong);
        }
        let mut out = Vec::with_capacity(raw.len());
        for &b in raw {
            let ok = b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'*';
            if !ok {
                return Err(NameError::InvalidCharacter(b));
            }
            out.push(b.to_ascii_lowercase());
        }
        Ok(out.into_boxed_slice())
    }
}

impl FromStr for Name {
    type Err = NameError;

    fn from_str(s: &str) -> Result<Name, NameError> {
        Name::parse(s)
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_root() {
            return write!(f, ".");
        }
        for l in &self.labels {
            // Labels are validated ASCII, so lossless.
            f.write_str(std::str::from_utf8(l).expect("labels are ascii"))?;
            f.write_str(".")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Name({self})")
    }
}

impl serde::Serialize for Name {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

impl<'de> serde::Deserialize<'de> for Name {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Name, D::Error> {
        let s = String::deserialize(deserializer)?;
        s.parse().map_err(serde::de::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display_roundtrip() {
        assert_eq!(n("www.example.com").to_string(), "www.example.com.");
        assert_eq!(n("www.example.com.").to_string(), "www.example.com.");
        assert_eq!(n(".").to_string(), ".");
        assert_eq!(n("").to_string(), ".");
    }

    #[test]
    fn case_insensitive_equality() {
        assert_eq!(n("WWW.ExAmPlE.COM"), n("www.example.com"));
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        n("ABC.de").hash(&mut h1);
        n("abc.DE").hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn rejects_empty_interior_label() {
        assert_eq!("a..b".parse::<Name>().unwrap_err(), NameError::EmptyLabel);
    }

    #[test]
    fn rejects_long_label() {
        let label = "a".repeat(64);
        assert_eq!(label.parse::<Name>().unwrap_err(), NameError::LabelTooLong);
        let ok = "a".repeat(63);
        assert!(ok.parse::<Name>().is_ok());
    }

    #[test]
    fn rejects_too_long_name() {
        // Four 63-octet labels → 4*(63+1)+1 = 257 > 255.
        let parts = vec!["a".repeat(63); 4];
        let text = parts.join(".");
        assert_eq!(text.parse::<Name>().unwrap_err(), NameError::NameTooLong);
    }

    #[test]
    fn rejects_invalid_character() {
        assert_eq!(
            "ex ample".parse::<Name>().unwrap_err(),
            NameError::InvalidCharacter(b' ')
        );
    }

    #[test]
    fn wildcard_label_accepted() {
        assert_eq!(n("*.example").label_count(), 2);
    }

    #[test]
    fn subdomain_relationships() {
        let apex = n("cache.example");
        assert!(n("x.cache.example").is_subdomain_of(&apex));
        assert!(n("a.b.cache.example").is_subdomain_of(&apex));
        assert!(apex.is_subdomain_of(&apex));
        assert!(!apex.is_strict_subdomain_of(&apex));
        assert!(n("x.cache.example").is_strict_subdomain_of(&apex));
        assert!(!n("cache2.example").is_subdomain_of(&apex));
        assert!(!n("ache.example").is_subdomain_of(&apex));
        assert!(apex.is_subdomain_of(&Name::root()));
    }

    #[test]
    fn parent_chain_terminates_at_root() {
        let mut cur = Some(n("a.b.c"));
        let mut hops = 0;
        while let Some(c) = cur {
            cur = c.parent();
            hops += 1;
        }
        assert_eq!(hops, 4); // a.b.c, b.c, c, root
    }

    #[test]
    fn ancestors_iterator_matches_parent_chain() {
        let chain: Vec<String> = n("a.b.c").ancestors().map(|a| a.to_string()).collect();
        assert_eq!(chain, vec!["a.b.c.", "b.c.", "c.", "."]);
    }

    #[test]
    fn prepend_and_strip() {
        let apex = n("cache.example");
        let child = apex.prepend_label("x-17").unwrap();
        assert_eq!(child.to_string(), "x-17.cache.example.");
        let rel = child.strip_suffix(&apex).unwrap();
        assert_eq!(rel.to_string(), "x-17.");
        assert!(child.strip_suffix(&n("other.example")).is_none());
    }

    #[test]
    fn concat_joins_names() {
        let rel = n("www");
        let apex = n("cache.example");
        assert_eq!(rel.concat(&apex).unwrap(), n("www.cache.example"));
        assert_eq!(Name::root().concat(&apex).unwrap(), apex);
    }

    #[test]
    fn wire_len_counts_length_octets() {
        assert_eq!(Name::root().wire_len(), 1);
        assert_eq!(n("a").wire_len(), 3); // 1+1 label, +1 root
        assert_eq!(n("ab.cd").wire_len(), 7);
    }

    #[test]
    fn ordering_is_deterministic() {
        let mut v = [n("b.example"), n("a.example"), n("a.a.example")];
        v.sort();
        assert_eq!(v[0], n("a.a.example"));
    }

    #[test]
    fn from_labels_builds_name() {
        let name = Name::from_labels(["x-1", "cache", "example"]).unwrap();
        assert_eq!(name, n("x-1.cache.example"));
    }
}
