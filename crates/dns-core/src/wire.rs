//! DNS wire-format primitives.
//!
//! [`WireWriter`] encodes names with RFC 1035 §4.1.4 compression pointers;
//! [`WireReader`] decodes them, guarding against pointer loops and forward
//! references.

use crate::error::NameError;
use crate::error::WireError;
use crate::name::{Name, MAX_NAME_LEN};
use bytes::{BufMut, BytesMut};

/// Compression pointers address at most 14 bits of offset.
const MAX_POINTER_TARGET: usize = 0x3FFF;
/// A 255-octet name holds at most 127 one-octet labels.
const MAX_LABELS: usize = 127;
/// Cap on remembered suffix offsets: bounds the linear suffix scan in
/// [`WireWriter::put_name`] for pathological many-name messages while
/// leaving typical probe/answer traffic fully compressed.
const MAX_TRACKED_OFFSETS: usize = 192;

/// Growable wire-format encoder with name compression.
///
/// The writer is designed for reuse on hot paths: [`WireWriter::clear`]
/// resets it without releasing its buffers, so a warmed-up writer encodes
/// messages with **zero heap allocations**. Compression state is an
/// offset list compared directly against the written bytes (no per-name
/// hashing or cloning).
///
/// # Examples
///
/// ```
/// use cde_dns::wire::WireWriter;
/// use cde_dns::Name;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut w = WireWriter::new();
/// let name: Name = "www.cache.example".parse()?;
/// w.put_name(&name);
/// w.put_name(&name); // second occurrence compresses to 2 bytes
/// assert!(w.len() < 2 * name.wire_len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: BytesMut,
    /// Buffer offsets at which an already-emitted name suffix starts.
    name_offsets: Vec<u16>,
}

impl WireWriter {
    /// Creates an empty writer.
    pub fn new() -> WireWriter {
        WireWriter {
            buf: BytesMut::with_capacity(512),
            name_offsets: Vec::with_capacity(32),
        }
    }

    /// Resets the writer for a fresh message, keeping its allocations.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.name_offsets.clear();
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one octet.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Appends a big-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.put_u16(v);
    }

    /// Appends a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32(v);
    }

    /// Appends raw bytes.
    pub fn put_slice(&mut self, v: &[u8]) {
        self.buf.put_slice(v);
    }

    /// Appends a length-prefixed character string (≤ 255 octets).
    ///
    /// # Errors
    ///
    /// Returns [`WireError::CharacterStringTooLong`] for longer inputs.
    pub fn put_character_string(&mut self, v: &[u8]) -> Result<(), WireError> {
        if v.len() > 255 {
            return Err(WireError::CharacterStringTooLong);
        }
        self.buf.put_u8(v.len() as u8);
        self.buf.put_slice(v);
        Ok(())
    }

    /// Appends `name`, reusing compression pointers for suffixes that were
    /// already emitted.
    ///
    /// Allocation-free: suffix matching walks the written buffer directly
    /// instead of keeping cloned `Name` keys.
    pub fn put_name(&mut self, name: &Name) {
        // A name holds at most 127 labels, so the refs fit on the stack.
        let mut labels: [&[u8]; MAX_LABELS] = [&[]; MAX_LABELS];
        let mut n = 0;
        for label in name.labels() {
            labels[n] = label;
            n += 1;
        }
        // Longest matching suffix wins: try from the whole name down.
        let (emit, pointer) = (0..n)
            .find_map(|i| self.find_suffix(&labels[i..n]).map(|off| (i, Some(off))))
            .unwrap_or((n, None));
        for label in labels[..emit].iter() {
            let here = self.buf.len();
            if here <= MAX_POINTER_TARGET && self.name_offsets.len() < MAX_TRACKED_OFFSETS {
                self.name_offsets.push(here as u16);
            }
            self.buf.put_u8(label.len() as u8);
            self.buf.put_slice(label);
        }
        match pointer {
            Some(off) => self.buf.put_u16(0xC000 | off),
            None => self.buf.put_u8(0),
        }
    }

    /// Looks for a recorded suffix position whose label sequence equals
    /// `labels` (and then terminates), walking any pointer chains already
    /// in the buffer.
    fn find_suffix(&self, labels: &[&[u8]]) -> Option<u16> {
        if labels.is_empty() {
            return None;
        }
        self.name_offsets
            .iter()
            .copied()
            .find(|&off| self.suffix_matches(off as usize, labels))
    }

    fn suffix_matches(&self, mut pos: usize, labels: &[&[u8]]) -> bool {
        for expected in labels {
            pos = match self.resolve_pointers(pos) {
                Some(p) => p,
                None => return false,
            };
            let len = self.buf[pos] as usize;
            if len == 0 || len != expected.len() {
                return false;
            }
            if &self.buf[pos + 1..pos + 1 + len] != *expected {
                return false;
            }
            pos += 1 + len;
        }
        // The stored name must terminate here: a longer stored name would
        // compress to the wrong target.
        matches!(self.resolve_pointers(pos), Some(p) if self.buf[p] == 0)
    }

    /// Follows compression-pointer chains starting at `pos` down to a
    /// label (or terminal zero) offset. Everything in the buffer was
    /// written by this writer, so chains are finite and backward-only.
    fn resolve_pointers(&self, mut pos: usize) -> Option<usize> {
        loop {
            let b = *self.buf.get(pos)?;
            if b & 0xC0 == 0xC0 {
                let lo = *self.buf.get(pos + 1)? as usize;
                pos = ((b & 0x3F) as usize) << 8 | lo;
            } else {
                return Some(pos);
            }
        }
    }

    /// Appends `name` without creating or following compression pointers.
    ///
    /// Required inside RDATA of types whose compression is forbidden by
    /// RFC 3597 (everything but the classic types).
    pub fn put_name_uncompressed(&mut self, name: &Name) {
        for label in name.labels() {
            self.buf.put_u8(label.len() as u8);
            self.buf.put_slice(label);
        }
        self.buf.put_u8(0);
    }

    /// Overwrites the big-endian `u16` at `offset` (used to patch RDLENGTH).
    ///
    /// # Panics
    ///
    /// Panics when `offset + 2` exceeds the bytes written so far.
    pub fn patch_u16(&mut self, offset: usize, v: u16) {
        assert!(offset + 2 <= self.buf.len(), "patch offset out of range");
        self.buf[offset] = (v >> 8) as u8;
        self.buf[offset + 1] = (v & 0xFF) as u8;
    }

    /// Consumes the writer and returns the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf.to_vec()
    }

    /// Borrows the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

/// Wire-format decoder over a full message buffer.
///
/// The reader keeps the whole message visible so compression pointers can be
/// chased; there is no seek operation — pointers are followed
/// internally and the main cursor keeps advancing past the pointer itself.
#[derive(Debug, Clone)]
pub struct WireReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Creates a reader over a complete DNS message.
    pub fn new(data: &'a [u8]) -> WireReader<'a> {
        WireReader { data, pos: 0 }
    }

    /// Creates a reader positioned at `pos` within the message (pointer
    /// chasing still sees the whole buffer).
    pub fn new_at(data: &'a [u8], pos: usize) -> WireReader<'a> {
        WireReader {
            data,
            pos: pos.min(data.len()),
        }
    }

    /// Current cursor offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes remaining after the cursor.
    pub fn remaining(&self) -> usize {
        self.data.len().saturating_sub(self.pos)
    }

    /// `true` when the cursor is at the end of the buffer.
    pub fn is_at_end(&self) -> bool {
        self.remaining() == 0
    }

    /// Reads one octet.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEof`] when the buffer is exhausted.
    pub fn read_u8(&mut self) -> Result<u8, WireError> {
        let b = *self.data.get(self.pos).ok_or(WireError::UnexpectedEof)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a big-endian `u16`.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEof`] when fewer than two bytes remain.
    pub fn read_u16(&mut self) -> Result<u16, WireError> {
        let hi = self.read_u8()? as u16;
        let lo = self.read_u8()? as u16;
        Ok(hi << 8 | lo)
    }

    /// Reads a big-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEof`] when fewer than four bytes remain.
    pub fn read_u32(&mut self) -> Result<u32, WireError> {
        let hi = self.read_u16()? as u32;
        let lo = self.read_u16()? as u32;
        Ok(hi << 16 | lo)
    }

    /// Reads `len` raw bytes.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEof`] when fewer than `len` bytes remain.
    pub fn read_slice(&mut self, len: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < len {
            return Err(WireError::UnexpectedEof);
        }
        let out = &self.data[self.pos..self.pos + len];
        self.pos += len;
        Ok(out)
    }

    /// Reads a length-prefixed character string.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEof`] when the declared length overruns the
    /// buffer.
    pub fn read_character_string(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.read_u8()? as usize;
        self.read_slice(len)
    }

    /// Reads a (possibly compressed) domain name.
    ///
    /// The temporary label buffer lives on the stack as `(offset, len)`
    /// spans into the message — no per-label heap churn; only the final
    /// [`Name`] owns memory.
    ///
    /// # Errors
    ///
    /// Fails on truncated labels, reserved label types, pointer loops,
    /// forward pointers, or labels violating [`Name`] constraints.
    pub fn read_name(&mut self) -> Result<Name, WireError> {
        let mut spans = [(0u32, 0u8); MAX_LABELS];
        let mut count = 0usize;
        self.walk_name(|pos, len| {
            // Pre-check the name-length limits so `spans` cannot overflow
            // on adversarial pointer chains.
            if count == MAX_LABELS {
                return Err(WireError::Name(NameError::NameTooLong));
            }
            spans[count] = (pos as u32, len as u8);
            count += 1;
            Ok(())
        })?;
        Name::from_labels(
            spans[..count]
                .iter()
                .map(|&(pos, len)| &self.data[pos as usize..pos as usize + len as usize]),
        )
        .map_err(WireError::from)
    }

    /// Compares the (possibly compressed) name at the cursor against
    /// `name` without allocating, advancing the cursor past the wire name
    /// in either case.
    ///
    /// Comparison is case-insensitive, as wire names may differ in case
    /// from the canonical (lowercased) `Name`.
    ///
    /// # Errors
    ///
    /// Same structural errors as [`WireReader::read_name`]; a well-formed
    /// non-matching name is `Ok(false)`, not an error.
    pub fn name_matches(&mut self, name: &Name) -> Result<bool, WireError> {
        let mut expected = name.labels();
        let mut equal = true;
        let data = self.data;
        self.walk_name(|pos, len| {
            if equal {
                equal = match expected.next() {
                    Some(label) => {
                        label.len() == len && data[pos..pos + len].eq_ignore_ascii_case(label)
                    }
                    None => false,
                };
            }
            Ok(())
        })?;
        Ok(equal && expected.next().is_none())
    }

    /// Walks the name at the cursor, invoking `visit(offset, len)` per
    /// label and leaving the cursor just past the name. Shared structure
    /// validation for [`read_name`](Self::read_name) and
    /// [`name_matches`](Self::name_matches).
    fn walk_name(
        &mut self,
        mut visit: impl FnMut(usize, usize) -> Result<(), WireError>,
    ) -> Result<(), WireError> {
        let mut pos = self.pos;
        // After the first pointer hop the main cursor no longer advances.
        let mut cursor_fixed: Option<usize> = None;
        let mut hops = 0usize;
        let mut wire_len = 1usize;

        loop {
            let len = *self.data.get(pos).ok_or(WireError::UnexpectedEof)? as usize;
            match len & 0xC0 {
                0x00 => {
                    pos += 1;
                    if len == 0 {
                        break;
                    }
                    if self.data.get(pos..pos + len).is_none() {
                        return Err(WireError::UnexpectedEof);
                    }
                    wire_len += 1 + len;
                    if wire_len > MAX_NAME_LEN {
                        return Err(WireError::Name(NameError::NameTooLong));
                    }
                    visit(pos, len)?;
                    pos += len;
                }
                0xC0 => {
                    let lo = *self.data.get(pos + 1).ok_or(WireError::UnexpectedEof)? as usize;
                    let target = (len & 0x3F) << 8 | lo;
                    if cursor_fixed.is_none() {
                        cursor_fixed = Some(pos + 2);
                    }
                    // Pointers must point strictly backwards; this also
                    // bounds the hop count, but keep an explicit guard.
                    if target >= pos {
                        return Err(WireError::BadCompressionPointer(target));
                    }
                    hops += 1;
                    if hops > 128 {
                        return Err(WireError::BadCompressionPointer(target));
                    }
                    pos = target;
                }
                other => return Err(WireError::BadLabelType(other as u8)),
            }
        }

        self.pos = cursor_fixed.unwrap_or(pos);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn u8_u16_u32_roundtrip() {
        let mut w = WireWriter::new();
        w.put_u8(0xAB);
        w.put_u16(0x1234);
        w.put_u32(0xDEADBEEF);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.read_u8().unwrap(), 0xAB);
        assert_eq!(r.read_u16().unwrap(), 0x1234);
        assert_eq!(r.read_u32().unwrap(), 0xDEADBEEF);
        assert!(r.is_at_end());
    }

    #[test]
    fn read_past_end_is_eof() {
        let mut r = WireReader::new(&[0x01]);
        assert_eq!(r.read_u16().unwrap_err(), WireError::UnexpectedEof);
    }

    #[test]
    fn name_roundtrip_uncompressed() {
        let mut w = WireWriter::new();
        w.put_name(&n("www.cache.example"));
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), n("www.cache.example").wire_len());
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.read_name().unwrap(), n("www.cache.example"));
        assert!(r.is_at_end());
    }

    #[test]
    fn root_name_is_single_zero_octet() {
        let mut w = WireWriter::new();
        w.put_name(&Name::root());
        assert_eq!(w.into_bytes(), vec![0]);
    }

    #[test]
    fn second_occurrence_compresses_to_pointer() {
        let mut w = WireWriter::new();
        w.put_name(&n("a.b.example"));
        let first_len = w.len();
        w.put_name(&n("a.b.example"));
        assert_eq!(w.len(), first_len + 2);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.read_name().unwrap(), n("a.b.example"));
        assert_eq!(r.read_name().unwrap(), n("a.b.example"));
        assert!(r.is_at_end());
    }

    #[test]
    fn shared_suffix_compresses() {
        let mut w = WireWriter::new();
        w.put_name(&n("x.cache.example"));
        w.put_name(&n("y.cache.example"));
        let bytes = w.into_bytes();
        // Second name should be "y" label (2 bytes) + pointer (2 bytes).
        assert_eq!(bytes.len(), n("x.cache.example").wire_len() + 4);
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.read_name().unwrap(), n("x.cache.example"));
        assert_eq!(r.read_name().unwrap(), n("y.cache.example"));
    }

    #[test]
    fn cursor_lands_after_pointer() {
        let mut w = WireWriter::new();
        w.put_name(&n("p.q"));
        w.put_name(&n("p.q"));
        w.put_u16(0xBEEF);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        r.read_name().unwrap();
        r.read_name().unwrap();
        assert_eq!(r.read_u16().unwrap(), 0xBEEF);
    }

    #[test]
    fn forward_pointer_rejected() {
        // Pointer to offset 4 placed at offset 0 (forward reference).
        let bytes = [0xC0, 0x04, 0, 0, 0x00];
        let mut r = WireReader::new(&bytes);
        assert!(matches!(
            r.read_name().unwrap_err(),
            WireError::BadCompressionPointer(_)
        ));
    }

    #[test]
    fn self_pointer_rejected() {
        let bytes = [0xC0, 0x00];
        let mut r = WireReader::new(&bytes);
        assert!(matches!(
            r.read_name().unwrap_err(),
            WireError::BadCompressionPointer(0)
        ));
    }

    #[test]
    fn reserved_label_bits_rejected() {
        let bytes = [0x80, 0x00];
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.read_name().unwrap_err(), WireError::BadLabelType(0x80));
    }

    #[test]
    fn truncated_label_rejected() {
        let bytes = [0x05, b'a', b'b'];
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.read_name().unwrap_err(), WireError::UnexpectedEof);
    }

    #[test]
    fn character_string_roundtrip() {
        let mut w = WireWriter::new();
        w.put_character_string(b"v=spf1 -all").unwrap();
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.read_character_string().unwrap(), b"v=spf1 -all");
    }

    #[test]
    fn character_string_over_255_rejected() {
        let mut w = WireWriter::new();
        let long = vec![b'a'; 256];
        assert_eq!(
            w.put_character_string(&long).unwrap_err(),
            WireError::CharacterStringTooLong
        );
    }

    #[test]
    fn patch_u16_overwrites_in_place() {
        let mut w = WireWriter::new();
        w.put_u16(0);
        w.put_u8(7);
        w.patch_u16(0, 0x0102);
        assert_eq!(w.into_bytes(), vec![1, 2, 7]);
    }

    #[test]
    fn uncompressed_emit_never_points() {
        let mut w = WireWriter::new();
        w.put_name(&n("a.b.c"));
        w.put_name_uncompressed(&n("a.b.c"));
        let bytes = w.into_bytes();
        // Second copy occupies full wire length.
        assert_eq!(bytes.len(), 2 * n("a.b.c").wire_len());
    }
}
