//! Error types for the DNS substrate.

use std::fmt;

/// Errors produced while parsing or constructing [domain names](crate::name::Name).
///
/// # Examples
///
/// ```
/// use cde_dns::{Name, NameError};
///
/// let err = "a..b".parse::<Name>().unwrap_err();
/// assert_eq!(err, NameError::EmptyLabel);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NameError {
    /// A label exceeded 63 octets.
    LabelTooLong,
    /// The name as a whole exceeded 255 octets in wire form.
    NameTooLong,
    /// An interior label was empty (e.g. `a..b`).
    EmptyLabel,
    /// A label contained a byte outside the supported hostname alphabet.
    InvalidCharacter(u8),
}

impl fmt::Display for NameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameError::LabelTooLong => write!(f, "label exceeds 63 octets"),
            NameError::NameTooLong => write!(f, "name exceeds 255 octets"),
            NameError::EmptyLabel => write!(f, "empty interior label"),
            NameError::InvalidCharacter(b) => {
                write!(f, "invalid character {b:#04x} in domain name label")
            }
        }
    }
}

impl std::error::Error for NameError {}

/// Errors produced while encoding or decoding DNS wire format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the structure was complete.
    UnexpectedEof,
    /// A compression pointer referenced a later offset or formed a loop.
    BadCompressionPointer(usize),
    /// A label length byte used the reserved `0b10`/`0b01` prefixes.
    BadLabelType(u8),
    /// An embedded name was invalid.
    Name(NameError),
    /// A record's RDLENGTH disagreed with the parsed RDATA size.
    RdataLengthMismatch {
        /// RDLENGTH value from the wire.
        declared: usize,
        /// Size actually consumed while parsing the RDATA.
        actual: usize,
    },
    /// Unknown or unsupported record type encountered where a concrete type
    /// was required.
    UnsupportedType(u16),
    /// A character-string (e.g. in TXT) exceeded 255 octets.
    CharacterStringTooLong,
    /// The message exceeded the 64 KiB UDP/TCP envelope.
    MessageTooLong,
    /// Trailing bytes remained after the declared record counts were parsed.
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof => write!(f, "unexpected end of wire data"),
            WireError::BadCompressionPointer(off) => {
                write!(f, "invalid compression pointer to offset {off}")
            }
            WireError::BadLabelType(b) => write!(f, "reserved label type bits {b:#04x}"),
            WireError::Name(e) => write!(f, "invalid name in wire data: {e}"),
            WireError::RdataLengthMismatch { declared, actual } => write!(
                f,
                "rdata length mismatch: declared {declared}, parsed {actual}"
            ),
            WireError::UnsupportedType(t) => write!(f, "unsupported record type {t}"),
            WireError::CharacterStringTooLong => {
                write!(f, "character string exceeds 255 octets")
            }
            WireError::MessageTooLong => write!(f, "message exceeds 65535 octets"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Name(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NameError> for WireError {
    fn from(e: NameError) -> Self {
        WireError::Name(e)
    }
}

/// Errors produced while assembling or querying zones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZoneError {
    /// The record's owner name is not at or below the zone apex.
    OutOfZone {
        /// Offending owner name.
        name: String,
        /// Apex of the zone that rejected it.
        apex: String,
    },
    /// A CNAME was added alongside other data at the same owner name.
    CnameConflict(String),
    /// The zone is missing a SOA record at its apex.
    MissingSoa,
    /// A delegation (NS at a non-apex name) conflicts with authoritative data.
    DelegationConflict(String),
}

impl fmt::Display for ZoneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZoneError::OutOfZone { name, apex } => {
                write!(f, "record {name} is outside zone {apex}")
            }
            ZoneError::CnameConflict(n) => {
                write!(f, "CNAME at {n} conflicts with other data")
            }
            ZoneError::MissingSoa => write!(f, "zone lacks a SOA record at its apex"),
            ZoneError::DelegationConflict(n) => {
                write!(f, "delegation at {n} conflicts with authoritative data")
            }
        }
    }
}

impl std::error::Error for ZoneError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_error_display_is_lowercase_and_terse() {
        let msgs = [
            NameError::LabelTooLong.to_string(),
            NameError::NameTooLong.to_string(),
            NameError::EmptyLabel.to_string(),
            NameError::InvalidCharacter(0xff).to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(!m.ends_with('.'));
            assert!(m.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn wire_error_source_chains_name_error() {
        use std::error::Error as _;
        let e = WireError::from(NameError::EmptyLabel);
        assert!(e.source().is_some());
        assert_eq!(
            e.source().unwrap().to_string(),
            NameError::EmptyLabel.to_string()
        );
    }

    #[test]
    fn zone_error_display_mentions_offender() {
        let e = ZoneError::OutOfZone {
            name: "a.other.example".into(),
            apex: "cache.example".into(),
        };
        let s = e.to_string();
        assert!(s.contains("a.other.example"));
        assert!(s.contains("cache.example"));
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NameError>();
        assert_send_sync::<WireError>();
        assert_send_sync::<ZoneError>();
    }
}
