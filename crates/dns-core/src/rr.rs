//! Resource records: types, classes, RDATA and TTLs.

use crate::error::WireError;
use crate::name::Name;
use crate::wire::{WireReader, WireWriter};
use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

/// Time-to-live of a record, in seconds.
///
/// A thin newtype so TTLs cannot be confused with other `u32` quantities
/// (ports, serials, counts).
///
/// # Examples
///
/// ```
/// use cde_dns::Ttl;
/// let t = Ttl::from_secs(300);
/// assert_eq!(t.as_secs(), 300);
/// assert_eq!(t.clamp(Ttl::from_secs(60), Ttl::from_secs(120)), Ttl::from_secs(120));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ttl(u32);

impl Ttl {
    /// Zero TTL: never cacheable.
    pub const ZERO: Ttl = Ttl(0);

    /// Creates a TTL from whole seconds.
    pub fn from_secs(secs: u32) -> Ttl {
        Ttl(secs)
    }

    /// This TTL in whole seconds.
    pub fn as_secs(self) -> u32 {
        self.0
    }

    /// Clamps into `[min, max]`, the adjustment resolution platforms apply
    /// (paper §II-C footnote 2).
    pub fn clamp(self, min: Ttl, max: Ttl) -> Ttl {
        Ttl(self.0.clamp(min.0, max.0))
    }

    /// Saturating subtraction, used for TTL decay on cached answers.
    pub fn saturating_sub(self, secs: u32) -> Ttl {
        Ttl(self.0.saturating_sub(secs))
    }
}

impl fmt::Display for Ttl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}s", self.0)
    }
}

impl From<u32> for Ttl {
    fn from(secs: u32) -> Ttl {
        Ttl(secs)
    }
}

/// DNS record types used by the study (plus an escape hatch for others).
///
/// Covers the types the paper's probers trigger (Table I: TXT/SPF, MX, A,
/// plus DKIM/DMARC which ride on TXT) and those the CDE techniques rely on
/// (A, NS, CNAME).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum RecordType {
    /// IPv4 host address.
    A,
    /// Authoritative nameserver.
    Ns,
    /// Canonical name (alias).
    Cname,
    /// Start of authority.
    Soa,
    /// Domain name pointer (reverse lookups).
    Ptr,
    /// Mail exchange.
    Mx,
    /// Text strings (modern SPF, DKIM, DMARC all use TXT).
    Txt,
    /// IPv6 host address.
    Aaaa,
    /// Service locator.
    Srv,
    /// EDNS(0) OPT pseudo-record (RFC 6891).
    Opt,
    /// The obsolete SPF RRTYPE (99), still observed in 14.2% of the paper's
    /// SMTP-triggered queries.
    Spf,
    /// Any other type, carried numerically.
    Other(u16),
}

impl RecordType {
    /// Numeric RRTYPE value.
    pub fn to_u16(self) -> u16 {
        match self {
            RecordType::A => 1,
            RecordType::Ns => 2,
            RecordType::Cname => 5,
            RecordType::Soa => 6,
            RecordType::Ptr => 12,
            RecordType::Mx => 15,
            RecordType::Txt => 16,
            RecordType::Aaaa => 28,
            RecordType::Srv => 33,
            RecordType::Opt => 41,
            RecordType::Spf => 99,
            RecordType::Other(v) => v,
        }
    }

    /// Maps a numeric RRTYPE to the enum; unknown values become
    /// [`RecordType::Other`].
    pub fn from_u16(v: u16) -> RecordType {
        match v {
            1 => RecordType::A,
            2 => RecordType::Ns,
            5 => RecordType::Cname,
            6 => RecordType::Soa,
            12 => RecordType::Ptr,
            15 => RecordType::Mx,
            16 => RecordType::Txt,
            28 => RecordType::Aaaa,
            33 => RecordType::Srv,
            41 => RecordType::Opt,
            99 => RecordType::Spf,
            other => RecordType::Other(other),
        }
    }
}

impl fmt::Display for RecordType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordType::A => write!(f, "A"),
            RecordType::Ns => write!(f, "NS"),
            RecordType::Cname => write!(f, "CNAME"),
            RecordType::Soa => write!(f, "SOA"),
            RecordType::Ptr => write!(f, "PTR"),
            RecordType::Mx => write!(f, "MX"),
            RecordType::Txt => write!(f, "TXT"),
            RecordType::Aaaa => write!(f, "AAAA"),
            RecordType::Srv => write!(f, "SRV"),
            RecordType::Opt => write!(f, "OPT"),
            RecordType::Spf => write!(f, "SPF"),
            RecordType::Other(v) => write!(f, "TYPE{v}"),
        }
    }
}

/// DNS classes. Only `IN` matters for this study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RecordClass {
    /// Internet.
    #[default]
    In,
    /// Any other class, carried numerically.
    Other(u16),
}

impl RecordClass {
    /// Numeric class value.
    pub fn to_u16(self) -> u16 {
        match self {
            RecordClass::In => 1,
            RecordClass::Other(v) => v,
        }
    }

    /// Maps a numeric class to the enum.
    pub fn from_u16(v: u16) -> RecordClass {
        match v {
            1 => RecordClass::In,
            other => RecordClass::Other(other),
        }
    }
}

impl fmt::Display for RecordClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordClass::In => write!(f, "IN"),
            RecordClass::Other(v) => write!(f, "CLASS{v}"),
        }
    }
}

/// SOA RDATA fields.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Soa {
    /// Primary master nameserver.
    pub mname: Name,
    /// Responsible mailbox, encoded as a name.
    pub rname: Name,
    /// Zone serial number.
    pub serial: u32,
    /// Secondary refresh interval, seconds.
    pub refresh: u32,
    /// Retry interval, seconds.
    pub retry: u32,
    /// Expiry upper bound, seconds.
    pub expire: u32,
    /// Negative-caching TTL (RFC 2308).
    pub minimum: u32,
}

/// Typed RDATA payloads.
///
/// # Examples
///
/// ```
/// use cde_dns::RData;
/// use std::net::Ipv4Addr;
///
/// let rdata = RData::A(Ipv4Addr::new(192, 0, 2, 7));
/// assert_eq!(rdata.record_type().to_string(), "A");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RData {
    /// IPv4 address.
    A(Ipv4Addr),
    /// IPv6 address.
    Aaaa(Ipv6Addr),
    /// Nameserver host name.
    Ns(Name),
    /// Alias target.
    Cname(Name),
    /// Pointer target.
    Ptr(Name),
    /// Mail exchange: preference and host.
    Mx {
        /// Lower values are preferred.
        preference: u16,
        /// Mail server host name.
        exchange: Name,
    },
    /// One or more character strings.
    Txt(Vec<Vec<u8>>),
    /// Obsolete SPF type; same shape as TXT.
    Spf(Vec<Vec<u8>>),
    /// Start of authority.
    Soa(Soa),
    /// Service locator.
    Srv {
        /// Lower values are tried first.
        priority: u16,
        /// Relative weight among equal-priority targets.
        weight: u16,
        /// Service port.
        port: u16,
        /// Host providing the service.
        target: Name,
    },
    /// Opaque RDATA for unknown types.
    Opaque {
        /// Numeric RRTYPE this payload belongs to.
        rtype: u16,
        /// Verbatim RDATA bytes.
        data: Vec<u8>,
    },
}

impl RData {
    /// The RRTYPE this payload belongs to.
    pub fn record_type(&self) -> RecordType {
        match self {
            RData::A(_) => RecordType::A,
            RData::Aaaa(_) => RecordType::Aaaa,
            RData::Ns(_) => RecordType::Ns,
            RData::Cname(_) => RecordType::Cname,
            RData::Ptr(_) => RecordType::Ptr,
            RData::Mx { .. } => RecordType::Mx,
            RData::Txt(_) => RecordType::Txt,
            RData::Spf(_) => RecordType::Spf,
            RData::Soa(_) => RecordType::Soa,
            RData::Srv { .. } => RecordType::Srv,
            RData::Opaque { rtype, .. } => RecordType::from_u16(*rtype),
        }
    }

    /// Convenience constructor for single-string TXT data.
    pub fn txt(s: impl Into<Vec<u8>>) -> RData {
        RData::Txt(vec![s.into()])
    }

    /// Encodes the RDATA (without the RDLENGTH prefix).
    ///
    /// Names inside classic types use compression against the surrounding
    /// message; per RFC 3597, unknown types are emitted verbatim.
    pub fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        match self {
            RData::A(ip) => w.put_slice(&ip.octets()),
            RData::Aaaa(ip) => w.put_slice(&ip.octets()),
            RData::Ns(n) | RData::Cname(n) | RData::Ptr(n) => w.put_name(n),
            RData::Mx {
                preference,
                exchange,
            } => {
                w.put_u16(*preference);
                w.put_name(exchange);
            }
            RData::Txt(strings) | RData::Spf(strings) => {
                for s in strings {
                    w.put_character_string(s)?;
                }
            }
            RData::Soa(soa) => {
                w.put_name(&soa.mname);
                w.put_name(&soa.rname);
                w.put_u32(soa.serial);
                w.put_u32(soa.refresh);
                w.put_u32(soa.retry);
                w.put_u32(soa.expire);
                w.put_u32(soa.minimum);
            }
            RData::Srv {
                priority,
                weight,
                port,
                target,
            } => {
                w.put_u16(*priority);
                w.put_u16(*weight);
                w.put_u16(*port);
                // RFC 2782: target must not be compressed.
                w.put_name_uncompressed(target);
            }
            RData::Opaque { data, .. } => w.put_slice(data),
        }
        Ok(())
    }

    /// Decodes RDATA of type `rtype` spanning exactly `rdlength` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncation, malformed embedded names, or an
    /// RDATA that does not consume exactly `rdlength` bytes.
    pub fn decode(
        r: &mut WireReader<'_>,
        rtype: RecordType,
        rdlength: usize,
    ) -> Result<RData, WireError> {
        let start = r.position();
        let rdata = match rtype {
            RecordType::A => {
                let o = r.read_slice(4)?;
                RData::A(Ipv4Addr::new(o[0], o[1], o[2], o[3]))
            }
            RecordType::Aaaa => {
                let o = r.read_slice(16)?;
                let mut a = [0u8; 16];
                a.copy_from_slice(o);
                RData::Aaaa(Ipv6Addr::from(a))
            }
            RecordType::Ns => RData::Ns(r.read_name()?),
            RecordType::Cname => RData::Cname(r.read_name()?),
            RecordType::Ptr => RData::Ptr(r.read_name()?),
            RecordType::Mx => RData::Mx {
                preference: r.read_u16()?,
                exchange: r.read_name()?,
            },
            RecordType::Txt | RecordType::Spf => {
                let mut strings = Vec::new();
                while r.position() < start + rdlength {
                    strings.push(r.read_character_string()?.to_vec());
                }
                if rtype == RecordType::Txt {
                    RData::Txt(strings)
                } else {
                    RData::Spf(strings)
                }
            }
            RecordType::Soa => RData::Soa(Soa {
                mname: r.read_name()?,
                rname: r.read_name()?,
                serial: r.read_u32()?,
                refresh: r.read_u32()?,
                retry: r.read_u32()?,
                expire: r.read_u32()?,
                minimum: r.read_u32()?,
            }),
            RecordType::Srv => RData::Srv {
                priority: r.read_u16()?,
                weight: r.read_u16()?,
                port: r.read_u16()?,
                target: r.read_name()?,
            },
            RecordType::Opt | RecordType::Other(_) => RData::Opaque {
                rtype: rtype.to_u16(),
                data: r.read_slice(rdlength)?.to_vec(),
            },
        };
        let consumed = r.position() - start;
        if consumed != rdlength {
            return Err(WireError::RdataLengthMismatch {
                declared: rdlength,
                actual: consumed,
            });
        }
        Ok(rdata)
    }
}

/// A complete resource record: owner name, class, TTL and typed RDATA.
///
/// # Examples
///
/// ```
/// use cde_dns::{Name, RData, Record, Ttl};
/// use std::net::Ipv4Addr;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let rr = Record::new(
///     "name.cache.example".parse::<Name>()?,
///     Ttl::from_secs(3600),
///     RData::A(Ipv4Addr::new(198, 51, 100, 4)),
/// );
/// assert_eq!(rr.rtype().to_string(), "A");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Record {
    name: Name,
    class: RecordClass,
    ttl: Ttl,
    rdata: RData,
}

impl Record {
    /// Creates an `IN`-class record.
    pub fn new(name: Name, ttl: Ttl, rdata: RData) -> Record {
        Record {
            name,
            class: RecordClass::In,
            ttl,
            rdata,
        }
    }

    /// Creates a record with an explicit class. Pseudo-records overload the
    /// class field (EDNS carries the UDP payload size there, RFC 6891).
    pub fn new_with_class(name: Name, class: RecordClass, ttl: Ttl, rdata: RData) -> Record {
        Record {
            name,
            class,
            ttl,
            rdata,
        }
    }

    /// Owner name.
    pub fn name(&self) -> &Name {
        &self.name
    }

    /// Record class.
    pub fn class(&self) -> RecordClass {
        self.class
    }

    /// Time to live.
    pub fn ttl(&self) -> Ttl {
        self.ttl
    }

    /// Record type, derived from the RDATA.
    pub fn rtype(&self) -> RecordType {
        self.rdata.record_type()
    }

    /// Typed payload.
    pub fn rdata(&self) -> &RData {
        &self.rdata
    }

    /// Returns a copy with the TTL replaced (used for decay/clamping).
    pub fn with_ttl(&self, ttl: Ttl) -> Record {
        Record {
            ttl,
            ..self.clone()
        }
    }

    /// Encodes the full record including owner name and RDLENGTH.
    pub fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        w.put_name(&self.name);
        w.put_u16(self.rtype().to_u16());
        w.put_u16(self.class.to_u16());
        w.put_u32(self.ttl.as_secs());
        let len_at = w.len();
        w.put_u16(0); // RDLENGTH placeholder
        let before = w.len();
        self.rdata.encode(w)?;
        let rdlen = w.len() - before;
        if rdlen > u16::MAX as usize {
            return Err(WireError::MessageTooLong);
        }
        w.patch_u16(len_at, rdlen as u16);
        Ok(())
    }

    /// Decodes one record.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncation or malformed RDATA.
    pub fn decode(r: &mut WireReader<'_>) -> Result<Record, WireError> {
        let name = r.read_name()?;
        let rtype = RecordType::from_u16(r.read_u16()?);
        let class = RecordClass::from_u16(r.read_u16()?);
        let ttl = Ttl::from_secs(r.read_u32()?);
        let rdlength = r.read_u16()? as usize;
        let rdata = RData::decode(r, rtype, rdlength)?;
        Ok(Record {
            name,
            class,
            ttl,
            rdata,
        })
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {}",
            self.name,
            self.ttl.as_secs(),
            self.class,
            self.rtype()
        )?;
        match &self.rdata {
            RData::A(ip) => write!(f, " {ip}"),
            RData::Aaaa(ip) => write!(f, " {ip}"),
            RData::Ns(n) | RData::Cname(n) | RData::Ptr(n) => write!(f, " {n}"),
            RData::Mx {
                preference,
                exchange,
            } => write!(f, " {preference} {exchange}"),
            RData::Txt(strings) | RData::Spf(strings) => {
                for s in strings {
                    write!(f, " \"{}\"", String::from_utf8_lossy(s))?;
                }
                Ok(())
            }
            RData::Soa(soa) => write!(
                f,
                " {} {} {} {} {} {} {}",
                soa.mname, soa.rname, soa.serial, soa.refresh, soa.retry, soa.expire, soa.minimum
            ),
            RData::Srv {
                priority,
                weight,
                port,
                target,
            } => write!(f, " {priority} {weight} {port} {target}"),
            RData::Opaque { data, .. } => write!(f, " \\# {}", data.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn roundtrip(record: &Record) -> Record {
        let mut w = WireWriter::new();
        record.encode(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let out = Record::decode(&mut r).unwrap();
        assert!(r.is_at_end(), "decoder left {} bytes", r.remaining());
        out
    }

    #[test]
    fn record_type_u16_roundtrip() {
        for t in [
            RecordType::A,
            RecordType::Ns,
            RecordType::Cname,
            RecordType::Soa,
            RecordType::Ptr,
            RecordType::Mx,
            RecordType::Txt,
            RecordType::Aaaa,
            RecordType::Srv,
            RecordType::Opt,
            RecordType::Spf,
            RecordType::Other(4242),
        ] {
            assert_eq!(RecordType::from_u16(t.to_u16()), t);
        }
    }

    #[test]
    fn a_record_roundtrip() {
        let rr = Record::new(
            name("name.cache.example"),
            Ttl::from_secs(3600),
            RData::A(Ipv4Addr::new(10, 1, 2, 3)),
        );
        assert_eq!(roundtrip(&rr), rr);
    }

    #[test]
    fn aaaa_record_roundtrip() {
        let rr = Record::new(
            name("v6.cache.example"),
            Ttl::from_secs(60),
            RData::Aaaa("2001:db8::1".parse().unwrap()),
        );
        assert_eq!(roundtrip(&rr), rr);
    }

    #[test]
    fn cname_record_roundtrip() {
        let rr = Record::new(
            name("x-1.cache.example"),
            Ttl::from_secs(30),
            RData::Cname(name("name.cache.example")),
        );
        assert_eq!(roundtrip(&rr), rr);
    }

    #[test]
    fn mx_record_roundtrip() {
        let rr = Record::new(
            name("enterprise.example"),
            Ttl::from_secs(7200),
            RData::Mx {
                preference: 10,
                exchange: name("mail.enterprise.example"),
            },
        );
        assert_eq!(roundtrip(&rr), rr);
    }

    #[test]
    fn txt_multi_string_roundtrip() {
        let rr = Record::new(
            name("_dmarc.enterprise.example"),
            Ttl::from_secs(300),
            RData::Txt(vec![b"v=DMARC1;".to_vec(), b"p=reject".to_vec()]),
        );
        assert_eq!(roundtrip(&rr), rr);
    }

    #[test]
    fn spf_qtype_roundtrip() {
        let rr = Record::new(
            name("enterprise.example"),
            Ttl::from_secs(300),
            RData::Spf(vec![b"v=spf1 -all".to_vec()]),
        );
        let out = roundtrip(&rr);
        assert_eq!(out.rtype(), RecordType::Spf);
        assert_eq!(out, rr);
    }

    #[test]
    fn soa_record_roundtrip() {
        let rr = Record::new(
            name("cache.example"),
            Ttl::from_secs(86400),
            RData::Soa(Soa {
                mname: name("ns1.cache.example"),
                rname: name("hostmaster.cache.example"),
                serial: 2017010101,
                refresh: 7200,
                retry: 3600,
                expire: 1209600,
                minimum: 300,
            }),
        );
        assert_eq!(roundtrip(&rr), rr);
    }

    #[test]
    fn srv_record_roundtrip() {
        let rr = Record::new(
            name("_dns._udp.cache.example"),
            Ttl::from_secs(120),
            RData::Srv {
                priority: 0,
                weight: 5,
                port: 53,
                target: name("ns1.cache.example"),
            },
        );
        assert_eq!(roundtrip(&rr), rr);
    }

    #[test]
    fn opaque_record_roundtrip() {
        let rr = Record::new(
            name("odd.cache.example"),
            Ttl::from_secs(10),
            RData::Opaque {
                rtype: 4242,
                data: vec![1, 2, 3, 4, 5],
            },
        );
        assert_eq!(roundtrip(&rr), rr);
    }

    #[test]
    fn ttl_clamp_behaviour() {
        let min = Ttl::from_secs(60);
        let max = Ttl::from_secs(600);
        assert_eq!(Ttl::from_secs(10).clamp(min, max), min);
        assert_eq!(Ttl::from_secs(1000).clamp(min, max), max);
        assert_eq!(Ttl::from_secs(300).clamp(min, max), Ttl::from_secs(300));
    }

    #[test]
    fn ttl_decay_saturates() {
        assert_eq!(Ttl::from_secs(5).saturating_sub(10), Ttl::ZERO);
    }

    #[test]
    fn display_renders_master_file_style() {
        let rr = Record::new(
            name("name.cache.example"),
            Ttl::from_secs(3600),
            RData::A(Ipv4Addr::new(198, 51, 100, 4)),
        );
        assert_eq!(rr.to_string(), "name.cache.example. 3600 IN A 198.51.100.4");
    }

    #[test]
    fn rdata_length_mismatch_detected() {
        // Declare a 5-byte A record.
        let mut w = WireWriter::new();
        w.put_name(&name("a.b"));
        w.put_u16(RecordType::A.to_u16());
        w.put_u16(1);
        w.put_u32(60);
        w.put_u16(5);
        w.put_slice(&[1, 2, 3, 4, 9]);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert!(matches!(
            Record::decode(&mut r).unwrap_err(),
            WireError::RdataLengthMismatch {
                declared: 5,
                actual: 4
            }
        ));
    }
}
