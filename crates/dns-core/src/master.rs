//! Master-file (zone file) parsing, RFC 1035 §5.
//!
//! The paper specifies its measurement zones as master-file fragments
//! (§IV-B2):
//!
//! ```text
//! $ORIGIN cache.example.
//! x-1   3600 IN CNAME name.cache.example.
//! name  3600 IN A     198.51.100.4
//! sub        IN NS    ns.sub.cache.example.
//! ```
//!
//! This module parses that dialect — `$ORIGIN`/`$TTL` directives,
//! comments, relative and absolute names, `@` for the origin — into a
//! [`Zone`]. It intentionally omits multi-line parentheses and `$INCLUDE`
//! (not needed by any fragment in the paper).

use crate::error::{NameError, ZoneError};
use crate::name::Name;
use crate::rr::{RData, Record, Soa, Ttl};
use crate::zone::Zone;
use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

/// Errors produced while parsing a master file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MasterError {
    /// A record line appeared before any `$ORIGIN` and used a relative name.
    MissingOrigin {
        /// 1-based line number.
        line: usize,
    },
    /// A line could not be tokenised into owner/TTL/class/type/rdata.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// An invalid domain name.
    Name {
        /// 1-based line number.
        line: usize,
        /// Underlying name error.
        source: NameError,
    },
    /// The assembled record violated zone invariants.
    Zone {
        /// 1-based line number.
        line: usize,
        /// Underlying zone error.
        source: ZoneError,
    },
}

impl fmt::Display for MasterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MasterError::MissingOrigin { line } => {
                write!(f, "line {line}: relative name before any $ORIGIN")
            }
            MasterError::Malformed { line, reason } => {
                write!(f, "line {line}: {reason}")
            }
            MasterError::Name { line, source } => {
                write!(f, "line {line}: {source}")
            }
            MasterError::Zone { line, source } => {
                write!(f, "line {line}: {source}")
            }
        }
    }
}

impl std::error::Error for MasterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MasterError::Name { source, .. } => Some(source),
            MasterError::Zone { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Parses master-file `text` into a zone.
///
/// The zone apex is the first `$ORIGIN`; `origin` provides it when the
/// text has none (pass `None` to require an in-file `$ORIGIN`).
///
/// # Errors
///
/// Returns [`MasterError`] on syntax errors, invalid names, or records
/// that violate zone invariants (out-of-zone owner, CNAME conflicts).
///
/// # Examples
///
/// ```
/// use cde_dns::master::parse_zone;
/// use cde_dns::RecordType;
/// use cde_dns::zone::LookupResult;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let zone = parse_zone(
///     "$ORIGIN cache.example.\n\
///      $TTL 3600\n\
///      name      IN A     198.51.100.4\n\
///      x-1       IN CNAME name.cache.example.\n",
///     None,
/// )?;
/// assert!(matches!(
///     zone.lookup(&"name.cache.example".parse()?, RecordType::A),
///     LookupResult::Answer(_)
/// ));
/// # Ok(())
/// # }
/// ```
pub fn parse_zone(text: &str, origin: Option<Name>) -> Result<Zone, MasterError> {
    let mut origin = origin;
    let mut default_ttl = Ttl::from_secs(3600);
    let mut zone: Option<Zone> = None;
    let mut last_owner: Option<Name> = None;

    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw_line);
        if line.trim().is_empty() {
            continue;
        }
        // The owner field is omitted when the line starts with whitespace.
        let owner_omitted = line.starts_with(|c: char| c.is_whitespace());
        let tokens: Vec<&str> = line.split_whitespace().collect();

        if tokens[0] == "$ORIGIN" {
            let name = parse_name(tokens.get(1).copied(), &origin, line_no)?;
            if zone.is_none() {
                zone = Some(Zone::new(name.clone()));
            }
            origin = Some(name);
            continue;
        }
        if tokens[0] == "$TTL" {
            let secs: u32 = tokens.get(1).and_then(|t| t.parse().ok()).ok_or_else(|| {
                MasterError::Malformed {
                    line: line_no,
                    reason: "$TTL needs a numeric argument".into(),
                }
            })?;
            default_ttl = Ttl::from_secs(secs);
            continue;
        }

        let mut rest = &tokens[..];
        let owner = if owner_omitted {
            last_owner.clone().ok_or_else(|| MasterError::Malformed {
                line: line_no,
                reason: "owner omitted with no previous owner".into(),
            })?
        } else {
            let owner = parse_owner(tokens[0], &origin, line_no)?;
            rest = &tokens[1..];
            owner
        };
        last_owner = Some(owner.clone());

        // Optional TTL and class, in either order.
        let mut ttl = default_ttl;
        let mut i = 0;
        for _ in 0..2 {
            match rest.get(i) {
                Some(tok) if tok.chars().all(|c| c.is_ascii_digit()) => {
                    ttl = Ttl::from_secs(tok.parse().map_err(|_| MasterError::Malformed {
                        line: line_no,
                        reason: "ttl out of range".into(),
                    })?);
                    i += 1;
                }
                Some(&"IN") => i += 1,
                _ => {}
            }
        }
        let Some(type_tok) = rest.get(i) else {
            return Err(MasterError::Malformed {
                line: line_no,
                reason: "missing record type".into(),
            });
        };
        let rdata_tokens = &rest[i + 1..];
        let rdata = parse_rdata(type_tok, rdata_tokens, &origin, line_no)?;

        let zone_ref =
            zone.get_or_insert_with(|| Zone::new(origin.clone().unwrap_or_else(Name::root)));
        zone_ref
            .add(Record::new(owner, ttl, rdata))
            .map_err(|source| MasterError::Zone {
                line: line_no,
                source,
            })?;
    }

    zone.ok_or(MasterError::MissingOrigin { line: 0 })
}

fn strip_comment(line: &str) -> &str {
    match line.find(';') {
        Some(pos) => &line[..pos],
        None => line,
    }
}

fn parse_owner(tok: &str, origin: &Option<Name>, line: usize) -> Result<Name, MasterError> {
    if tok == "@" {
        return origin.clone().ok_or(MasterError::MissingOrigin { line });
    }
    parse_name(Some(tok), origin, line)
}

fn parse_name(tok: Option<&str>, origin: &Option<Name>, line: usize) -> Result<Name, MasterError> {
    let tok = tok.ok_or_else(|| MasterError::Malformed {
        line,
        reason: "missing name".into(),
    })?;
    if tok == "@" {
        return origin.clone().ok_or(MasterError::MissingOrigin { line });
    }
    if let Some(absolute) = tok.strip_suffix('.') {
        return absolute
            .parse()
            .map_err(|source| MasterError::Name { line, source });
    }
    // Relative name: append the origin.
    let origin = origin.clone().ok_or(MasterError::MissingOrigin { line })?;
    let rel: Name = tok
        .parse()
        .map_err(|source| MasterError::Name { line, source })?;
    rel.concat(&origin)
        .map_err(|source| MasterError::Name { line, source })
}

fn parse_rdata(
    rtype: &str,
    tokens: &[&str],
    origin: &Option<Name>,
    line: usize,
) -> Result<RData, MasterError> {
    let need = |n: usize| -> Result<(), MasterError> {
        if tokens.len() < n {
            Err(MasterError::Malformed {
                line,
                reason: format!("{rtype} rdata needs {n} fields, got {}", tokens.len()),
            })
        } else {
            Ok(())
        }
    };
    match rtype {
        "A" => {
            need(1)?;
            let ip: Ipv4Addr = tokens[0].parse().map_err(|_| MasterError::Malformed {
                line,
                reason: format!("bad IPv4 address {}", tokens[0]),
            })?;
            Ok(RData::A(ip))
        }
        "AAAA" => {
            need(1)?;
            let ip: Ipv6Addr = tokens[0].parse().map_err(|_| MasterError::Malformed {
                line,
                reason: format!("bad IPv6 address {}", tokens[0]),
            })?;
            Ok(RData::Aaaa(ip))
        }
        "NS" => {
            need(1)?;
            Ok(RData::Ns(parse_name(Some(tokens[0]), origin, line)?))
        }
        "CNAME" => {
            need(1)?;
            Ok(RData::Cname(parse_name(Some(tokens[0]), origin, line)?))
        }
        "PTR" => {
            need(1)?;
            Ok(RData::Ptr(parse_name(Some(tokens[0]), origin, line)?))
        }
        "MX" => {
            need(2)?;
            let preference = tokens[0].parse().map_err(|_| MasterError::Malformed {
                line,
                reason: "bad MX preference".into(),
            })?;
            Ok(RData::Mx {
                preference,
                exchange: parse_name(Some(tokens[1]), origin, line)?,
            })
        }
        "TXT" | "SPF" => {
            need(1)?;
            let strings: Vec<Vec<u8>> = tokens
                .iter()
                .map(|t| t.trim_matches('"').as_bytes().to_vec())
                .collect();
            Ok(if rtype == "TXT" {
                RData::Txt(strings)
            } else {
                RData::Spf(strings)
            })
        }
        "SOA" => {
            need(7)?;
            let num = |i: usize| -> Result<u32, MasterError> {
                tokens[i].parse().map_err(|_| MasterError::Malformed {
                    line,
                    reason: format!("bad SOA numeric field {}", tokens[i]),
                })
            };
            Ok(RData::Soa(Soa {
                mname: parse_name(Some(tokens[0]), origin, line)?,
                rname: parse_name(Some(tokens[1]), origin, line)?,
                serial: num(2)?,
                refresh: num(3)?,
                retry: num(4)?,
                expire: num(5)?,
                minimum: num(6)?,
            }))
        }
        "SRV" => {
            need(4)?;
            let num = |i: usize| -> Result<u16, MasterError> {
                tokens[i].parse().map_err(|_| MasterError::Malformed {
                    line,
                    reason: format!("bad SRV numeric field {}", tokens[i]),
                })
            };
            Ok(RData::Srv {
                priority: num(0)?,
                weight: num(1)?,
                port: num(2)?,
                target: parse_name(Some(tokens[3]), origin, line)?,
            })
        }
        other => Err(MasterError::Malformed {
            line,
            reason: format!("unsupported record type {other}"),
        }),
    }
}

/// Renders `zone` back to master-file text (one record per line,
/// absolute names). `parse_zone(render_zone(z))` reproduces `z`.
pub fn render_zone(zone: &Zone) -> String {
    let mut out = String::new();
    out.push_str(&format!("$ORIGIN {}\n", zone.apex()));
    for record in zone.iter() {
        out.push_str(&record.to_string());
        out.push('\n');
    }
    out
}

/// Convenience: the paper's §IV-B2a CNAME-chain fragment for `q` aliases.
///
/// # Examples
///
/// ```
/// use cde_dns::master::{cname_chain_fragment, parse_zone};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let text = cname_chain_fragment("cache.example", 3);
/// let zone = parse_zone(&text, None)?;
/// assert_eq!(zone.record_count(), 4); // 3 aliases + 1 target
/// # Ok(())
/// # }
/// ```
pub fn cname_chain_fragment(apex: &str, q: usize) -> String {
    let mut out = format!("$ORIGIN {apex}.\n$TTL 3600\n");
    for i in 1..=q {
        out.push_str(&format!("x-{i} IN CNAME name.{apex}.\n"));
    }
    out.push_str("name IN A 198.51.100.4\n");
    out
}

/// Convenience: the paper's §IV-B2b names-hierarchy parent fragment.
pub fn names_hierarchy_parent_fragment(apex: &str, sub_ns_addr: Ipv4Addr) -> String {
    format!(
        "$ORIGIN {apex}.\n\
         sub IN NS ns.sub.{apex}.\n\
         ns.sub.{apex}. IN A {sub_ns_addr}\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rr::RecordType;
    use crate::zone::LookupResult;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn parses_the_papers_cname_fragment() {
        // Verbatim structure from §IV-B2a.
        let text = "\
            $ORIGIN cache.example.\n\
            x-1 IN CNAME name.cache.example.\n\
            x-2 IN CNAME name.cache.example.\n\
            name IN A 198.51.100.4\n";
        let zone = parse_zone(text, None).unwrap();
        assert_eq!(zone.apex(), &n("cache.example"));
        match zone.lookup(&n("x-1.cache.example"), RecordType::A) {
            LookupResult::Cname {
                chain,
                target_records,
            } => {
                assert_eq!(chain.len(), 1);
                assert_eq!(target_records.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_the_papers_hierarchy_fragment() {
        // Structure from §IV-B2b: delegation plus glue in the parent.
        let text = "\
            $ORIGIN cache.example.\n\
            sub IN NS ns.sub.cache.example.\n\
            ns.sub.cache.example. IN A 10.0.0.30\n";
        let zone = parse_zone(text, None).unwrap();
        assert!(matches!(
            zone.lookup(&n("x-1.sub.cache.example"), RecordType::A),
            LookupResult::Referral { .. }
        ));
    }

    #[test]
    fn relative_and_absolute_names_mix() {
        let text = "\
            $ORIGIN cache.example.\n\
            www IN A 192.0.2.1\n\
            mail.cache.example. IN A 192.0.2.2\n";
        let zone = parse_zone(text, None).unwrap();
        assert!(matches!(
            zone.lookup(&n("www.cache.example"), RecordType::A),
            LookupResult::Answer(_)
        ));
        assert!(matches!(
            zone.lookup(&n("mail.cache.example"), RecordType::A),
            LookupResult::Answer(_)
        ));
    }

    #[test]
    fn at_sign_denotes_origin() {
        let text = "\
            $ORIGIN cache.example.\n\
            @ IN NS ns1\n\
            ns1 IN A 192.0.2.53\n";
        let zone = parse_zone(text, None).unwrap();
        assert_eq!(
            zone.records_at(&n("cache.example"), RecordType::Ns).len(),
            1
        );
    }

    #[test]
    fn ttl_and_class_in_any_order() {
        let text = "\
            $ORIGIN e.\n\
            a 60 IN A 1.1.1.1\n\
            b IN 90 A 2.2.2.2\n\
            c A 3.3.3.3\n";
        let zone = parse_zone(text, None).unwrap();
        assert_eq!(
            zone.records_at(&n("a.e"), RecordType::A)[0].ttl(),
            Ttl::from_secs(60)
        );
        assert_eq!(
            zone.records_at(&n("b.e"), RecordType::A)[0].ttl(),
            Ttl::from_secs(90)
        );
        assert_eq!(
            zone.records_at(&n("c.e"), RecordType::A)[0].ttl(),
            Ttl::from_secs(3600)
        );
    }

    #[test]
    fn dollar_ttl_sets_default() {
        let text = "$ORIGIN e.\n$TTL 120\nx IN A 1.2.3.4\n";
        let zone = parse_zone(text, None).unwrap();
        assert_eq!(
            zone.records_at(&n("x.e"), RecordType::A)[0].ttl(),
            Ttl::from_secs(120)
        );
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\
            ;zone fragment for cache.example\n\
            $ORIGIN cache.example.\n\
            \n\
            name IN A 1.2.3.4 ; the honey record\n";
        let zone = parse_zone(text, None).unwrap();
        assert_eq!(zone.record_count(), 1);
    }

    #[test]
    fn omitted_owner_repeats_previous() {
        let text = "\
            $ORIGIN e.\n\
            multi IN A 1.1.1.1\n\
            \x20     IN A 2.2.2.2\n";
        let zone = parse_zone(text, None).unwrap();
        assert_eq!(zone.records_at(&n("multi.e"), RecordType::A).len(), 2);
    }

    #[test]
    fn soa_mx_txt_srv_parse() {
        let text = "\
            $ORIGIN e.\n\
            @ IN SOA ns1.e. hostmaster.e. 2017010101 7200 3600 1209600 300\n\
            @ IN MX 10 mail.e.\n\
            @ IN TXT \"v=spf1_-all\"\n\
            _dns._udp IN SRV 0 5 53 ns1.e.\n";
        let zone = parse_zone(text, None).unwrap();
        assert!(zone.soa().is_some());
        assert_eq!(zone.records_at(&n("e"), RecordType::Mx).len(), 1);
        assert_eq!(zone.records_at(&n("e"), RecordType::Txt).len(), 1);
        assert_eq!(zone.records_at(&n("_dns._udp.e"), RecordType::Srv).len(), 1);
    }

    #[test]
    fn relative_name_without_origin_fails() {
        let err = parse_zone("www IN A 1.2.3.4\n", None).unwrap_err();
        assert!(matches!(err, MasterError::MissingOrigin { .. }));
    }

    #[test]
    fn explicit_origin_argument_works() {
        let zone = parse_zone("www IN A 1.2.3.4\n", Some(n("cache.example"))).unwrap();
        assert!(matches!(
            zone.lookup(&n("www.cache.example"), RecordType::A),
            LookupResult::Answer(_)
        ));
    }

    #[test]
    fn bad_ip_reports_line_number() {
        let err = parse_zone("$ORIGIN e.\nx IN A not-an-ip\n", None).unwrap_err();
        match err {
            MasterError::Malformed { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unsupported_type_rejected() {
        let err = parse_zone("$ORIGIN e.\nx IN NAPTR whatever\n", None).unwrap_err();
        assert!(matches!(err, MasterError::Malformed { .. }));
    }

    #[test]
    fn cname_conflict_surfaces_zone_error() {
        let text = "$ORIGIN e.\nd IN A 1.1.1.1\nd IN CNAME x.e.\n";
        let err = parse_zone(text, None).unwrap_err();
        assert!(matches!(err, MasterError::Zone { line: 3, .. }));
    }

    #[test]
    fn render_parse_roundtrip() {
        let text = cname_chain_fragment("cache.example", 4);
        let zone = parse_zone(&text, None).unwrap();
        let rendered = render_zone(&zone);
        let back = parse_zone(&rendered, None).unwrap();
        assert_eq!(back.record_count(), zone.record_count());
        assert_eq!(back.apex(), zone.apex());
    }

    #[test]
    fn hierarchy_fragment_helper_parses() {
        let text = names_hierarchy_parent_fragment("cache.example", Ipv4Addr::new(10, 0, 0, 30));
        let zone = parse_zone(&text, None).unwrap();
        assert!(matches!(
            zone.lookup(&n("q.sub.cache.example"), RecordType::A),
            LookupResult::Referral { .. }
        ));
    }
}
