//! Authoritative zones and answer synthesis.
//!
//! A [`Zone`] holds the records of one cut of the namespace and answers
//! queries the way an authoritative nameserver does: authoritative data,
//! referrals at delegation points (the mechanism behind the paper's
//! *names-hierarchy* local-cache bypass, §IV-B2b), CNAMEs, NXDOMAIN and
//! NODATA.

use crate::error::ZoneError;
use crate::name::Name;
use crate::rr::{RData, Record, RecordType, Soa, Ttl};
use std::collections::BTreeMap;

/// Outcome of a zone lookup, before packaging into a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LookupResult {
    /// Authoritative records answering the question directly.
    Answer(Vec<Record>),
    /// The name is an alias; the CNAME record plus any chased records within
    /// this zone.
    Cname {
        /// The full chain followed inside this zone (first element is the
        /// CNAME at the queried name).
        chain: Vec<Record>,
        /// Records of the queried type at the final target, when the target
        /// stays inside this zone and has them.
        target_records: Vec<Record>,
    },
    /// The query falls under a delegation: NS records of the child zone and
    /// any in-zone glue addresses.
    Referral {
        /// NS records at the delegation point.
        ns_records: Vec<Record>,
        /// A/AAAA glue for the nameserver names, when present in this zone.
        glue: Vec<Record>,
    },
    /// The name exists but has no records of the queried type.
    NoData {
        /// SOA record for negative caching, when the zone has one.
        soa: Option<Record>,
    },
    /// The name does not exist.
    NxDomain {
        /// SOA record for negative caching, when the zone has one.
        soa: Option<Record>,
    },
}

/// One authoritative zone: an apex name and its records.
///
/// # Examples
///
/// ```
/// use cde_dns::{Name, RData, Record, RecordType, Ttl, Zone};
/// use cde_dns::zone::LookupResult;
/// use std::net::Ipv4Addr;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let apex: Name = "cache.example".parse()?;
/// let mut zone = Zone::new(apex.clone());
/// zone.add(Record::new(
///     apex.prepend_label("name")?,
///     Ttl::from_secs(3600),
///     RData::A(Ipv4Addr::new(198, 51, 100, 4)),
/// ))?;
/// let result = zone.lookup(&apex.prepend_label("name")?, RecordType::A);
/// assert!(matches!(result, LookupResult::Answer(ref rrs) if rrs.len() == 1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Zone {
    apex: Name,
    /// name → (type → records). BTreeMap keeps iteration deterministic.
    records: BTreeMap<Name, BTreeMap<RecordType, Vec<Record>>>,
}

impl Zone {
    /// Creates an empty zone rooted at `apex`.
    pub fn new(apex: Name) -> Zone {
        Zone {
            apex,
            records: BTreeMap::new(),
        }
    }

    /// Creates a zone with a standard SOA record at the apex.
    ///
    /// `negative_ttl` becomes the SOA MINIMUM used for negative caching.
    pub fn with_soa(apex: Name, negative_ttl: Ttl) -> Zone {
        let mut zone = Zone::new(apex.clone());
        let soa = Record::new(
            apex.clone(),
            Ttl::from_secs(86400),
            RData::Soa(Soa {
                mname: apex.prepend_label("ns1").unwrap_or_else(|_| apex.clone()),
                rname: apex
                    .prepend_label("hostmaster")
                    .unwrap_or_else(|_| apex.clone()),
                serial: 20170101,
                refresh: 7200,
                retry: 3600,
                expire: 1209600,
                minimum: negative_ttl.as_secs(),
            }),
        );
        zone.records
            .entry(apex)
            .or_default()
            .entry(RecordType::Soa)
            .or_default()
            .push(soa);
        zone
    }

    /// The zone apex (origin).
    pub fn apex(&self) -> &Name {
        &self.apex
    }

    /// Total number of records in the zone.
    pub fn record_count(&self) -> usize {
        self.records
            .values()
            .flat_map(|m| m.values())
            .map(|v| v.len())
            .sum()
    }

    /// Whether `name` belongs to this zone's cut of the namespace.
    pub fn contains_name(&self, name: &Name) -> bool {
        name.is_subdomain_of(&self.apex)
    }

    /// Adds a record.
    ///
    /// # Errors
    ///
    /// * [`ZoneError::OutOfZone`] when the owner name is outside the apex.
    /// * [`ZoneError::CnameConflict`] when a CNAME would coexist with other
    ///   data at the same name (RFC 1034 §3.6.2).
    pub fn add(&mut self, record: Record) -> Result<(), ZoneError> {
        if !self.contains_name(record.name()) {
            return Err(ZoneError::OutOfZone {
                name: record.name().to_string(),
                apex: self.apex.to_string(),
            });
        }
        let by_type = self.records.entry(record.name().clone()).or_default();
        let adding_cname = record.rtype() == RecordType::Cname;
        let has_cname = by_type.contains_key(&RecordType::Cname);
        let has_other = by_type.keys().any(|t| *t != RecordType::Cname);
        if (adding_cname && has_other) || (!adding_cname && has_cname) {
            return Err(ZoneError::CnameConflict(record.name().to_string()));
        }
        by_type.entry(record.rtype()).or_default().push(record);
        Ok(())
    }

    /// Removes all records at `name` of type `rtype`, returning them.
    pub fn remove(&mut self, name: &Name, rtype: RecordType) -> Vec<Record> {
        let Some(by_type) = self.records.get_mut(name) else {
            return Vec::new();
        };
        let out = by_type.remove(&rtype).unwrap_or_default();
        if by_type.is_empty() {
            self.records.remove(name);
        }
        out
    }

    /// Records of `rtype` at exactly `name`, if any.
    pub fn records_at(&self, name: &Name, rtype: RecordType) -> &[Record] {
        self.records
            .get(name)
            .and_then(|m| m.get(&rtype))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Iterates over every record in the zone in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = &Record> + '_ {
        self.records
            .values()
            .flat_map(|m| m.values())
            .flat_map(|v| v.iter())
    }

    /// The apex SOA record, if present.
    pub fn soa(&self) -> Option<&Record> {
        self.records_at(&self.apex, RecordType::Soa).first()
    }

    /// Finds the closest delegation point strictly between the apex and
    /// `name` (exclusive of the apex, inclusive of `name` itself when NS
    /// records exist there and `name` ≠ apex).
    fn delegation_for(&self, name: &Name) -> Option<&Name> {
        // Walk from just below the apex down towards `name`.
        let mut candidates: Vec<Name> = name
            .ancestors()
            .take_while(|a| a.is_strict_subdomain_of(&self.apex))
            .collect();
        candidates.reverse(); // closest-to-apex first
        for cand in &candidates {
            if self
                .records
                .get(cand)
                .is_some_and(|m| m.contains_key(&RecordType::Ns))
            {
                return self.records.get_key_value(cand).map(|(k, _)| k);
            }
        }
        None
    }

    /// `true` when the zone has a wildcard record covering `name`.
    fn wildcard_match(&self, name: &Name, rtype: RecordType) -> Option<Vec<Record>> {
        // RFC 1034 §4.3.3: the wildcard is `*.<parent>`; it only applies when
        // the queried name does not exist.
        let mut parent = name.parent()?;
        loop {
            let star = parent.prepend_label("*").ok()?;
            if let Some(by_type) = self.records.get(&star) {
                let rrs = by_type.get(&rtype)?;
                // Synthesise records at the queried name.
                return Some(
                    rrs.iter()
                        .map(|rr| Record::new(name.clone(), rr.ttl(), rr.rdata().clone()))
                        .collect(),
                );
            }
            if !parent.is_strict_subdomain_of(&self.apex) {
                return None;
            }
            parent = parent.parent()?;
        }
    }

    /// Whether any record exists at or below `name` (decides NODATA vs
    /// NXDOMAIN: an "empty non-terminal" exists).
    fn name_exists(&self, name: &Name) -> bool {
        if self.records.contains_key(name) {
            return true;
        }
        self.records.keys().any(|k| k.is_strict_subdomain_of(name))
    }

    /// Answers a query the way an authoritative server would.
    ///
    /// Handles, in priority order: out-of-zone (treated as NXDOMAIN with no
    /// SOA), delegations (referral), exact-match data, CNAME chasing within
    /// the zone, wildcard synthesis, NODATA and NXDOMAIN.
    pub fn lookup(&self, name: &Name, rtype: RecordType) -> LookupResult {
        if !self.contains_name(name) {
            return LookupResult::NxDomain { soa: None };
        }

        // Delegation check first: data below a zone cut is not authoritative
        // here. An NS query *at* the apex is authoritative, handled by the
        // subdomain guard in `delegation_for`.
        if let Some(cut) = self.delegation_for(name) {
            // NS queries at the cut itself are answered as a referral too
            // (the parent is not authoritative for the child).
            let ns_records = self.records_at(cut, RecordType::Ns).to_vec();
            let mut glue = Vec::new();
            for ns in &ns_records {
                if let RData::Ns(host) = ns.rdata() {
                    for t in [RecordType::A, RecordType::Aaaa] {
                        glue.extend(self.records_at(host, t).iter().cloned());
                    }
                }
            }
            return LookupResult::Referral { ns_records, glue };
        }

        if let Some(by_type) = self.records.get(name) {
            if let Some(rrs) = by_type.get(&rtype) {
                return LookupResult::Answer(rrs.clone());
            }
            if let Some(cnames) = by_type.get(&RecordType::Cname) {
                return self.chase_cname(name, rtype, cnames);
            }
            return LookupResult::NoData {
                soa: self.soa().cloned(),
            };
        }

        if let Some(rrs) = self.wildcard_match(name, rtype) {
            return LookupResult::Answer(rrs);
        }

        if self.name_exists(name) {
            return LookupResult::NoData {
                soa: self.soa().cloned(),
            };
        }
        LookupResult::NxDomain {
            soa: self.soa().cloned(),
        }
    }

    fn chase_cname(&self, _name: &Name, rtype: RecordType, cnames: &[Record]) -> LookupResult {
        let mut chain = vec![cnames[0].clone()];
        let mut target = match cnames[0].rdata() {
            RData::Cname(t) => t.clone(),
            _ => unreachable!("cname slot holds cname rdata"),
        };
        // Bounded chase to defend against alias loops.
        for _ in 0..16 {
            if !self.contains_name(&target) {
                return LookupResult::Cname {
                    chain,
                    target_records: Vec::new(),
                };
            }
            match self.records.get(&target) {
                Some(by_type) => {
                    if let Some(rrs) = by_type.get(&rtype) {
                        return LookupResult::Cname {
                            chain,
                            target_records: rrs.clone(),
                        };
                    }
                    if let Some(next) = by_type.get(&RecordType::Cname) {
                        chain.push(next[0].clone());
                        target = match next[0].rdata() {
                            RData::Cname(t) => t.clone(),
                            _ => unreachable!(),
                        };
                        continue;
                    }
                    return LookupResult::Cname {
                        chain,
                        target_records: Vec::new(),
                    };
                }
                None => {
                    return LookupResult::Cname {
                        chain,
                        target_records: Vec::new(),
                    };
                }
            }
        }
        LookupResult::Cname {
            chain,
            target_records: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn a(name: &str, ip: [u8; 4]) -> Record {
        Record::new(
            n(name),
            Ttl::from_secs(3600),
            RData::A(Ipv4Addr::new(ip[0], ip[1], ip[2], ip[3])),
        )
    }

    fn test_zone() -> Zone {
        let mut z = Zone::with_soa(n("cache.example"), Ttl::from_secs(300));
        z.add(a("name.cache.example", [198, 51, 100, 4])).unwrap();
        z.add(Record::new(
            n("x-1.cache.example"),
            Ttl::from_secs(60),
            RData::Cname(n("name.cache.example")),
        ))
        .unwrap();
        // Delegation: sub.cache.example → ns.sub.cache.example with glue.
        z.add(Record::new(
            n("sub.cache.example"),
            Ttl::from_secs(3600),
            RData::Ns(n("ns.sub.cache.example")),
        ))
        .unwrap();
        z.add(a("ns.sub.cache.example", [192, 0, 2, 53])).unwrap();
        z
    }

    #[test]
    fn authoritative_answer() {
        let z = test_zone();
        match z.lookup(&n("name.cache.example"), RecordType::A) {
            LookupResult::Answer(rrs) => {
                assert_eq!(rrs.len(), 1);
                assert_eq!(rrs[0].rtype(), RecordType::A);
            }
            other => panic!("expected answer, got {other:?}"),
        }
    }

    #[test]
    fn cname_is_chased_within_zone() {
        let z = test_zone();
        match z.lookup(&n("x-1.cache.example"), RecordType::A) {
            LookupResult::Cname {
                chain,
                target_records,
            } => {
                assert_eq!(chain.len(), 1);
                assert_eq!(chain[0].rtype(), RecordType::Cname);
                assert_eq!(target_records.len(), 1);
                assert_eq!(target_records[0].name(), &n("name.cache.example"));
            }
            other => panic!("expected cname, got {other:?}"),
        }
    }

    #[test]
    fn multi_hop_cname_chain() {
        let mut z = Zone::new(n("cache.example"));
        z.add(Record::new(
            n("one.cache.example"),
            Ttl::from_secs(60),
            RData::Cname(n("two.cache.example")),
        ))
        .unwrap();
        z.add(Record::new(
            n("two.cache.example"),
            Ttl::from_secs(60),
            RData::Cname(n("three.cache.example")),
        ))
        .unwrap();
        z.add(a("three.cache.example", [1, 2, 3, 4])).unwrap();
        match z.lookup(&n("one.cache.example"), RecordType::A) {
            LookupResult::Cname {
                chain,
                target_records,
            } => {
                assert_eq!(chain.len(), 2);
                assert_eq!(target_records.len(), 1);
            }
            other => panic!("expected cname, got {other:?}"),
        }
    }

    #[test]
    fn cname_loop_terminates() {
        let mut z = Zone::new(n("cache.example"));
        z.add(Record::new(
            n("l1.cache.example"),
            Ttl::from_secs(60),
            RData::Cname(n("l2.cache.example")),
        ))
        .unwrap();
        z.add(Record::new(
            n("l2.cache.example"),
            Ttl::from_secs(60),
            RData::Cname(n("l1.cache.example")),
        ))
        .unwrap();
        // Must not hang; returns the partial chain.
        match z.lookup(&n("l1.cache.example"), RecordType::A) {
            LookupResult::Cname { target_records, .. } => assert!(target_records.is_empty()),
            other => panic!("expected cname, got {other:?}"),
        }
    }

    #[test]
    fn referral_below_delegation_with_glue() {
        let z = test_zone();
        match z.lookup(&n("x-7.sub.cache.example"), RecordType::A) {
            LookupResult::Referral { ns_records, glue } => {
                assert_eq!(ns_records.len(), 1);
                assert_eq!(ns_records[0].name(), &n("sub.cache.example"));
                assert_eq!(glue.len(), 1);
                assert_eq!(glue[0].name(), &n("ns.sub.cache.example"));
            }
            other => panic!("expected referral, got {other:?}"),
        }
    }

    #[test]
    fn query_at_delegation_point_is_referral() {
        let z = test_zone();
        assert!(matches!(
            z.lookup(&n("sub.cache.example"), RecordType::A),
            LookupResult::Referral { .. }
        ));
    }

    #[test]
    fn nxdomain_includes_soa() {
        let z = test_zone();
        match z.lookup(&n("missing.cache.example"), RecordType::A) {
            LookupResult::NxDomain { soa } => assert!(soa.is_some()),
            other => panic!("expected nxdomain, got {other:?}"),
        }
    }

    #[test]
    fn nodata_for_existing_name_with_other_type() {
        let z = test_zone();
        match z.lookup(&n("name.cache.example"), RecordType::Mx) {
            LookupResult::NoData { soa } => assert!(soa.is_some()),
            other => panic!("expected nodata, got {other:?}"),
        }
    }

    #[test]
    fn empty_non_terminal_is_nodata_not_nxdomain() {
        let mut z = Zone::new(n("cache.example"));
        z.add(a("a.b.cache.example", [9, 9, 9, 9])).unwrap();
        // b.cache.example has no records itself but exists as a non-terminal.
        assert!(matches!(
            z.lookup(&n("b.cache.example"), RecordType::A),
            LookupResult::NoData { .. }
        ));
    }

    #[test]
    fn out_of_zone_name_rejected_on_add() {
        let mut z = Zone::new(n("cache.example"));
        let err = z.add(a("other.example", [1, 1, 1, 1])).unwrap_err();
        assert!(matches!(err, ZoneError::OutOfZone { .. }));
    }

    #[test]
    fn out_of_zone_lookup_is_nxdomain_without_soa() {
        let z = test_zone();
        assert_eq!(
            z.lookup(&n("unrelated.example"), RecordType::A),
            LookupResult::NxDomain { soa: None }
        );
    }

    #[test]
    fn cname_conflict_rejected() {
        let mut z = Zone::new(n("cache.example"));
        z.add(a("dual.cache.example", [1, 1, 1, 1])).unwrap();
        let err = z
            .add(Record::new(
                n("dual.cache.example"),
                Ttl::from_secs(60),
                RData::Cname(n("name.cache.example")),
            ))
            .unwrap_err();
        assert!(matches!(err, ZoneError::CnameConflict(_)));
        // And the converse.
        let mut z2 = Zone::new(n("cache.example"));
        z2.add(Record::new(
            n("dual.cache.example"),
            Ttl::from_secs(60),
            RData::Cname(n("name.cache.example")),
        ))
        .unwrap();
        assert!(z2.add(a("dual.cache.example", [1, 1, 1, 1])).is_err());
    }

    #[test]
    fn wildcard_synthesis() {
        let mut z = Zone::new(n("cache.example"));
        z.add(a("*.wild.cache.example", [7, 7, 7, 7])).unwrap();
        match z.lookup(&n("anything.wild.cache.example"), RecordType::A) {
            LookupResult::Answer(rrs) => {
                assert_eq!(rrs.len(), 1);
                assert_eq!(rrs[0].name(), &n("anything.wild.cache.example"));
            }
            other => panic!("expected wildcard answer, got {other:?}"),
        }
    }

    #[test]
    fn exact_match_beats_wildcard() {
        let mut z = Zone::new(n("cache.example"));
        z.add(a("*.wild.cache.example", [7, 7, 7, 7])).unwrap();
        z.add(a("fixed.wild.cache.example", [8, 8, 8, 8])).unwrap();
        match z.lookup(&n("fixed.wild.cache.example"), RecordType::A) {
            LookupResult::Answer(rrs) => {
                assert_eq!(rrs[0].rdata(), &RData::A(Ipv4Addr::new(8, 8, 8, 8)));
            }
            other => panic!("expected exact answer, got {other:?}"),
        }
    }

    #[test]
    fn remove_deletes_records() {
        let mut z = test_zone();
        let removed = z.remove(&n("name.cache.example"), RecordType::A);
        assert_eq!(removed.len(), 1);
        assert!(matches!(
            z.lookup(&n("name.cache.example"), RecordType::A),
            LookupResult::NxDomain { .. } | LookupResult::NoData { .. }
        ));
    }

    #[test]
    fn record_count_and_iter_agree() {
        let z = test_zone();
        assert_eq!(z.record_count(), z.iter().count());
        assert!(z.record_count() >= 4);
    }

    #[test]
    fn apex_ns_is_not_a_referral() {
        let mut z = Zone::with_soa(n("cache.example"), Ttl::from_secs(300));
        z.add(Record::new(
            n("cache.example"),
            Ttl::from_secs(3600),
            RData::Ns(n("ns1.cache.example")),
        ))
        .unwrap();
        assert!(matches!(
            z.lookup(&n("cache.example"), RecordType::Ns),
            LookupResult::Answer(_)
        ));
    }
}
