//! DNS messages: header, questions and full encode/decode.

use crate::error::WireError;
use crate::name::Name;
use crate::rr::{Record, RecordClass, RecordType};
use crate::wire::{WireReader, WireWriter};
use std::fmt;

/// Operation codes (RFC 1035 §4.1.1). Only QUERY appears in the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Opcode {
    /// Standard query.
    #[default]
    Query,
    /// Inverse query (obsolete).
    IQuery,
    /// Server status request.
    Status,
    /// Any other opcode value.
    Other(u8),
}

impl Opcode {
    /// Numeric opcode value (4 bits).
    pub fn to_u8(self) -> u8 {
        match self {
            Opcode::Query => 0,
            Opcode::IQuery => 1,
            Opcode::Status => 2,
            Opcode::Other(v) => v & 0x0F,
        }
    }

    /// Maps the 4-bit opcode field.
    pub fn from_u8(v: u8) -> Opcode {
        match v & 0x0F {
            0 => Opcode::Query,
            1 => Opcode::IQuery,
            2 => Opcode::Status,
            other => Opcode::Other(other),
        }
    }
}

/// Response codes (RFC 1035 §4.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Rcode {
    /// No error.
    #[default]
    NoError,
    /// Format error.
    FormErr,
    /// Server failure.
    ServFail,
    /// Name does not exist (authoritative).
    NxDomain,
    /// Not implemented.
    NotImp,
    /// Query refused by policy.
    Refused,
    /// Any other rcode.
    Other(u8),
}

impl Rcode {
    /// Numeric rcode (4 bits).
    pub fn to_u8(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Other(v) => v & 0x0F,
        }
    }

    /// Maps the 4-bit rcode field.
    pub fn from_u8(v: u8) -> Rcode {
        match v & 0x0F {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            other => Rcode::Other(other),
        }
    }
}

/// Header flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Flags {
    /// Response (vs query).
    pub qr: bool,
    /// Operation code.
    pub opcode: Opcode,
    /// Authoritative answer.
    pub aa: bool,
    /// Truncated.
    pub tc: bool,
    /// Recursion desired.
    pub rd: bool,
    /// Recursion available.
    pub ra: bool,
    /// Response code.
    pub rcode: Rcode,
}

impl Flags {
    /// Packs the flags into the header's second 16-bit word.
    pub fn to_u16(self) -> u16 {
        let mut v = 0u16;
        if self.qr {
            v |= 0x8000;
        }
        v |= (self.opcode.to_u8() as u16) << 11;
        if self.aa {
            v |= 0x0400;
        }
        if self.tc {
            v |= 0x0200;
        }
        if self.rd {
            v |= 0x0100;
        }
        if self.ra {
            v |= 0x0080;
        }
        v |= self.rcode.to_u8() as u16;
        v
    }

    /// Unpacks the header's second 16-bit word.
    pub fn from_u16(v: u16) -> Flags {
        Flags {
            qr: v & 0x8000 != 0,
            opcode: Opcode::from_u8((v >> 11) as u8),
            aa: v & 0x0400 != 0,
            tc: v & 0x0200 != 0,
            rd: v & 0x0100 != 0,
            ra: v & 0x0080 != 0,
            rcode: Rcode::from_u8(v as u8),
        }
    }
}

/// A question: name, type and class.
///
/// # Examples
///
/// ```
/// use cde_dns::{Question, RecordType};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let q = Question::new("name.cache.example".parse()?, RecordType::A);
/// assert_eq!(q.qtype(), RecordType::A);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Question {
    qname: Name,
    qtype: RecordType,
    qclass: RecordClass,
}

impl Question {
    /// Creates an `IN`-class question.
    pub fn new(qname: Name, qtype: RecordType) -> Question {
        Question {
            qname,
            qtype,
            qclass: RecordClass::In,
        }
    }

    /// Queried name.
    pub fn qname(&self) -> &Name {
        &self.qname
    }

    /// Queried type.
    pub fn qtype(&self) -> RecordType {
        self.qtype
    }

    /// Queried class.
    pub fn qclass(&self) -> RecordClass {
        self.qclass
    }

    fn encode(&self, w: &mut WireWriter) {
        w.put_name(&self.qname);
        w.put_u16(self.qtype.to_u16());
        w.put_u16(self.qclass.to_u16());
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Question, WireError> {
        Ok(Question {
            qname: r.read_name()?,
            qtype: RecordType::from_u16(r.read_u16()?),
            qclass: RecordClass::from_u16(r.read_u16()?),
        })
    }
}

impl fmt::Display for Question {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.qname, self.qclass, self.qtype)
    }
}

/// A complete DNS message.
///
/// # Examples
///
/// ```
/// use cde_dns::{Message, Question, RecordType};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let query = Message::query(
///     0x2b1d,
///     Question::new("x-1.cache.example".parse()?, RecordType::A),
/// );
/// let bytes = query.encode()?;
/// let back = Message::decode(&bytes)?;
/// assert_eq!(back, query);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Transaction identifier.
    pub id: u16,
    /// Header flags.
    pub flags: Flags,
    /// Question section.
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<Record>,
    /// Authority section (NS records of referrals live here).
    pub authorities: Vec<Record>,
    /// Additional section (glue, OPT).
    pub additionals: Vec<Record>,
}

impl Message {
    /// Builds a recursion-desired query with a single question.
    pub fn query(id: u16, question: Question) -> Message {
        Message {
            id,
            flags: Flags {
                rd: true,
                ..Flags::default()
            },
            questions: vec![question],
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// Builds a response skeleton echoing `query`'s id and question.
    pub fn response_to(query: &Message) -> Message {
        Message {
            id: query.id,
            flags: Flags {
                qr: true,
                opcode: query.flags.opcode,
                rd: query.flags.rd,
                ra: true,
                ..Flags::default()
            },
            questions: query.questions.clone(),
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// First question, if any. Virtually all real traffic has exactly one.
    pub fn question(&self) -> Option<&Question> {
        self.questions.first()
    }

    /// `true` when this is a response.
    pub fn is_response(&self) -> bool {
        self.flags.qr
    }

    /// Encodes to wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::MessageTooLong`] when the encoded form exceeds
    /// 65 535 octets.
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        let mut w = WireWriter::new();
        self.encode_into(&mut w)?;
        Ok(w.into_bytes())
    }

    /// Encodes into a reusable writer, clearing it first. The encoded
    /// message is left in `w` (read it via [`WireWriter::as_slice`]);
    /// the writer keeps its buffer across calls, so steady-state encoding
    /// does not allocate.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::MessageTooLong`] when the encoded form exceeds
    /// 65 535 octets.
    pub fn encode_into(&self, w: &mut WireWriter) -> Result<(), WireError> {
        w.clear();
        w.put_u16(self.id);
        w.put_u16(self.flags.to_u16());
        w.put_u16(self.questions.len() as u16);
        w.put_u16(self.answers.len() as u16);
        w.put_u16(self.authorities.len() as u16);
        w.put_u16(self.additionals.len() as u16);
        for q in &self.questions {
            q.encode(w);
        }
        for section in [&self.answers, &self.authorities, &self.additionals] {
            for rr in section {
                rr.encode(w)?;
            }
        }
        if w.len() > u16::MAX as usize {
            return Err(WireError::MessageTooLong);
        }
        Ok(())
    }

    /// Encodes a recursion-desired single-question `IN`-class query
    /// directly into `w`, without constructing a [`Message`]. This is the
    /// probe hot path: with a warm writer it performs zero allocations.
    ///
    /// The layout is identical to
    /// `Message::query(id, Question::new(qname, qtype)).encode()`, and a
    /// single question can never exceed the 64 KiB message limit, so this
    /// is infallible.
    pub fn encode_query_into(w: &mut WireWriter, id: u16, qname: &Name, qtype: RecordType) {
        w.clear();
        w.put_u16(id);
        w.put_u16(
            Flags {
                rd: true,
                ..Flags::default()
            }
            .to_u16(),
        );
        w.put_u16(1); // qdcount
        w.put_u16(0); // ancount
        w.put_u16(0); // nscount
        w.put_u16(0); // arcount
        w.put_name(qname);
        w.put_u16(qtype.to_u16());
        w.put_u16(RecordClass::In.to_u16());
    }

    /// Decodes a full message, rejecting trailing bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncation, malformed names/records, or
    /// trailing bytes beyond the declared section counts.
    pub fn decode(bytes: &[u8]) -> Result<Message, WireError> {
        let mut r = WireReader::new(bytes);
        let id = r.read_u16()?;
        let flags = Flags::from_u16(r.read_u16()?);
        let qd = r.read_u16()? as usize;
        let an = r.read_u16()? as usize;
        let ns = r.read_u16()? as usize;
        let ar = r.read_u16()? as usize;
        // Reject counts the payload cannot possibly hold before any
        // count-sized allocation: a question is at least 5 bytes (1-byte
        // root name + type + class), a record at least 11 (root name +
        // type + class + TTL + empty RDATA). Untrusted datagrams can
        // otherwise claim 65535 sections from a 12-byte header and drive
        // `Vec::with_capacity` allocations far past the input size.
        const MIN_QUESTION: usize = 5;
        const MIN_RECORD: usize = 11;
        let need = qd
            .saturating_mul(MIN_QUESTION)
            .saturating_add((an + ns + ar).saturating_mul(MIN_RECORD));
        if need > r.remaining() {
            return Err(WireError::UnexpectedEof);
        }
        let mut questions = Vec::with_capacity(qd);
        for _ in 0..qd {
            questions.push(Question::decode(&mut r)?);
        }
        let mut read_section = |count: usize| -> Result<Vec<Record>, WireError> {
            let mut out = Vec::with_capacity(count);
            for _ in 0..count {
                out.push(Record::decode(&mut r)?);
            }
            Ok(out)
        };
        let answers = read_section(an)?;
        let authorities = read_section(ns)?;
        let additionals = read_section(ar)?;
        if !r.is_at_end() {
            return Err(WireError::TrailingBytes(r.remaining()));
        }
        Ok(Message {
            id,
            flags,
            questions,
            answers,
            authorities,
            additionals,
        })
    }
}

/// A zero-copy view of a DNS message header plus the location of its
/// question section.
///
/// Response matching on a measurement hot path only needs the id, the
/// header flags and a comparison of the echoed question against the
/// outstanding probe — a full [`Message::decode`] allocates section
/// vectors and owned names for data that is immediately discarded.
/// `MessagePeek` borrows the datagram instead and performs no heap
/// allocation at all.
///
/// # Examples
///
/// ```
/// use cde_dns::{Message, MessagePeek, Question, RecordType};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let qname = "x-1.cache.example".parse()?;
/// let query = Message::query(0x2b1d, Question::new(qname, RecordType::A));
/// let bytes = query.encode()?;
///
/// let peek = MessagePeek::parse(&bytes)?;
/// assert_eq!(peek.id(), 0x2b1d);
/// assert!(!peek.is_response());
/// assert!(peek.question_matches(&"x-1.cache.example".parse()?, RecordType::A)?);
/// assert!(!peek.question_matches(&"other.example".parse()?, RecordType::A)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MessagePeek<'a> {
    bytes: &'a [u8],
    id: u16,
    flags: Flags,
    qdcount: u16,
    question_start: usize,
}

impl<'a> MessagePeek<'a> {
    /// Parses the 12-byte header, borrowing the datagram.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEof`] when `bytes` is shorter than
    /// a DNS header.
    pub fn parse(bytes: &'a [u8]) -> Result<MessagePeek<'a>, WireError> {
        let mut r = WireReader::new(bytes);
        let id = r.read_u16()?;
        let flags = Flags::from_u16(r.read_u16()?);
        let qdcount = r.read_u16()?;
        // Skip an/ns/ar counts; the question section starts right after.
        r.read_u16()?;
        r.read_u16()?;
        r.read_u16()?;
        Ok(MessagePeek {
            bytes,
            id,
            flags,
            qdcount,
            question_start: 12,
        })
    }

    /// Transaction id.
    pub fn id(&self) -> u16 {
        self.id
    }

    /// Header flags.
    pub fn flags(&self) -> Flags {
        self.flags
    }

    /// `true` when the QR bit marks this as a response.
    pub fn is_response(&self) -> bool {
        self.flags.qr
    }

    /// Declared question count.
    pub fn qdcount(&self) -> u16 {
        self.qdcount
    }

    /// Checks whether the first question is exactly `(qname, qtype)` in
    /// class `IN`, without allocating.
    ///
    /// A message with no question section returns `Ok(false)`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] when the question section is structurally
    /// malformed (truncated or bad compression).
    pub fn question_matches(&self, qname: &Name, qtype: RecordType) -> Result<bool, WireError> {
        if self.qdcount == 0 {
            return Ok(false);
        }
        let mut r = WireReader::new_at(self.bytes, self.question_start);
        let name_ok = r.name_matches(qname)?;
        let wire_qtype = r.read_u16()?;
        let wire_qclass = r.read_u16()?;
        Ok(name_ok && wire_qtype == qtype.to_u16() && wire_qclass == RecordClass::In.to_u16())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rr::{RData, Ttl};
    use std::net::Ipv4Addr;

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn opcode_rcode_roundtrip() {
        for op in [
            Opcode::Query,
            Opcode::IQuery,
            Opcode::Status,
            Opcode::Other(7),
        ] {
            assert_eq!(Opcode::from_u8(op.to_u8()), op);
        }
        for rc in [
            Rcode::NoError,
            Rcode::FormErr,
            Rcode::ServFail,
            Rcode::NxDomain,
            Rcode::NotImp,
            Rcode::Refused,
            Rcode::Other(9),
        ] {
            assert_eq!(Rcode::from_u8(rc.to_u8()), rc);
        }
    }

    #[test]
    fn flags_bits_roundtrip() {
        let f = Flags {
            qr: true,
            opcode: Opcode::Query,
            aa: true,
            tc: false,
            rd: true,
            ra: true,
            rcode: Rcode::NxDomain,
        };
        assert_eq!(Flags::from_u16(f.to_u16()), f);
    }

    #[test]
    fn flags_qr_bit_is_msb() {
        let f = Flags {
            qr: true,
            ..Flags::default()
        };
        assert_eq!(f.to_u16() & 0x8000, 0x8000);
    }

    #[test]
    fn query_roundtrip() {
        let q = Message::query(
            0xABCD,
            Question::new(name("x-1.cache.example"), RecordType::A),
        );
        let bytes = q.encode().unwrap();
        assert_eq!(Message::decode(&bytes).unwrap(), q);
    }

    #[test]
    fn query_sets_rd() {
        let q = Message::query(1, Question::new(name("a.b"), RecordType::Txt));
        assert!(q.flags.rd);
        assert!(!q.is_response());
    }

    #[test]
    fn response_echoes_id_and_question() {
        let q = Message::query(42, Question::new(name("a.b"), RecordType::Mx));
        let mut resp = Message::response_to(&q);
        resp.answers.push(Record::new(
            name("a.b"),
            Ttl::from_secs(60),
            RData::Mx {
                preference: 10,
                exchange: name("mail.a.b"),
            },
        ));
        assert_eq!(resp.id, 42);
        assert!(resp.is_response());
        assert_eq!(resp.question(), q.question());
        let bytes = resp.encode().unwrap();
        assert_eq!(Message::decode(&bytes).unwrap(), resp);
    }

    #[test]
    fn full_message_with_all_sections_roundtrips() {
        let q = Message::query(7, Question::new(name("w.sub.cache.example"), RecordType::A));
        let mut resp = Message::response_to(&q);
        resp.flags.aa = true;
        resp.answers.push(Record::new(
            name("w.sub.cache.example"),
            Ttl::from_secs(30),
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        ));
        resp.authorities.push(Record::new(
            name("sub.cache.example"),
            Ttl::from_secs(3600),
            RData::Ns(name("ns.sub.cache.example")),
        ));
        resp.additionals.push(Record::new(
            name("ns.sub.cache.example"),
            Ttl::from_secs(3600),
            RData::A(Ipv4Addr::new(192, 0, 2, 53)),
        ));
        let bytes = resp.encode().unwrap();
        let back = Message::decode(&bytes).unwrap();
        assert_eq!(back, resp);
        assert_eq!(back.authorities.len(), 1);
        assert_eq!(back.additionals.len(), 1);
    }

    #[test]
    fn compression_shrinks_repeated_names() {
        let q = Message::query(7, Question::new(name("host.cache.example"), RecordType::A));
        let mut resp = Message::response_to(&q);
        for i in 0..4 {
            resp.answers.push(Record::new(
                name("host.cache.example"),
                Ttl::from_secs(30),
                RData::A(Ipv4Addr::new(192, 0, 2, i)),
            ));
        }
        let bytes = resp.encode().unwrap();
        // Owner name of each answer should be a 2-byte pointer, so the
        // whole message stays well under the uncompressed size.
        let uncompressed = 12
            + name("host.cache.example").wire_len()
            + 4
            + 4 * (name("host.cache.example").wire_len() + 10 + 4);
        assert!(bytes.len() < uncompressed);
        assert_eq!(Message::decode(&bytes).unwrap(), resp);
    }

    #[test]
    fn encode_query_into_matches_message_encode() {
        let qname = name("x-17.cache.example");
        let full = Message::query(0x5ace, Question::new(qname.clone(), RecordType::Txt))
            .encode()
            .unwrap();
        let mut w = WireWriter::new();
        // Dirty the writer first: encode_query_into must clear it.
        w.put_u16(0xFFFF);
        Message::encode_query_into(&mut w, 0x5ace, &qname, RecordType::Txt);
        assert_eq!(w.as_slice(), &full[..]);
    }

    #[test]
    fn encode_into_reuses_writer() {
        let a = Message::query(1, Question::new(name("a.cache.example"), RecordType::A));
        let b = Message::query(2, Question::new(name("b.cache.example"), RecordType::A));
        let mut w = WireWriter::new();
        a.encode_into(&mut w).unwrap();
        assert_eq!(w.as_slice(), &a.encode().unwrap()[..]);
        b.encode_into(&mut w).unwrap();
        assert_eq!(w.as_slice(), &b.encode().unwrap()[..]);
    }

    #[test]
    fn peek_reads_header_and_question() {
        let qname = name("probe.cache.example");
        let q = Message::query(0xBEEF, Question::new(qname.clone(), RecordType::A));
        let mut resp = Message::response_to(&q);
        resp.answers.push(Record::new(
            qname.clone(),
            Ttl::from_secs(60),
            RData::A(Ipv4Addr::new(192, 0, 2, 5)),
        ));
        let bytes = resp.encode().unwrap();
        let peek = MessagePeek::parse(&bytes).unwrap();
        assert_eq!(peek.id(), 0xBEEF);
        assert!(peek.is_response());
        assert_eq!(peek.qdcount(), 1);
        assert_eq!(peek.flags().rcode, Rcode::NoError);
        assert!(peek.question_matches(&qname, RecordType::A).unwrap());
        assert!(!peek.question_matches(&qname, RecordType::Txt).unwrap());
        assert!(!peek
            .question_matches(&name("other.cache.example"), RecordType::A)
            .unwrap());
    }

    #[test]
    fn peek_question_match_is_case_insensitive() {
        let q = Message::query(9, Question::new(name("MiXeD.Cache.Example"), RecordType::A));
        let bytes = q.encode().unwrap();
        let peek = MessagePeek::parse(&bytes).unwrap();
        assert!(peek
            .question_matches(&name("mixed.cache.example"), RecordType::A)
            .unwrap());
    }

    #[test]
    fn peek_rejects_short_and_empty_question() {
        assert!(MessagePeek::parse(&[0u8; 11]).is_err());
        // Header-only message (qdcount = 0): parses, matches nothing.
        let m = Message {
            id: 3,
            flags: Flags::default(),
            questions: Vec::new(),
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        };
        let bytes = m.encode().unwrap();
        let peek = MessagePeek::parse(&bytes).unwrap();
        assert!(!peek.question_matches(&name("a.b"), RecordType::A).unwrap());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let q = Message::query(1, Question::new(name("a.b"), RecordType::A));
        let mut bytes = q.encode().unwrap();
        bytes.push(0);
        assert!(matches!(
            Message::decode(&bytes).unwrap_err(),
            WireError::TrailingBytes(1)
        ));
    }

    #[test]
    fn truncated_header_rejected() {
        assert_eq!(
            Message::decode(&[0, 1, 2]).unwrap_err(),
            WireError::UnexpectedEof
        );
    }

    #[test]
    fn section_count_overrun_rejected() {
        let q = Message::query(1, Question::new(name("a.b"), RecordType::A));
        let mut bytes = q.encode().unwrap();
        // Claim one answer that is not present.
        bytes[7] = 1;
        assert_eq!(
            Message::decode(&bytes).unwrap_err(),
            WireError::UnexpectedEof
        );
    }
}
