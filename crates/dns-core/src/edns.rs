//! EDNS(0) — the OPT pseudo-record, RFC 6891.
//!
//! The paper (§II-C) lists "adoption of new mechanisms for DNS, such as
//! the transport layer EDNS mechanism" among the studies its tools
//! enable: which resolver software speaks EDNS is visible in the queries
//! arriving at the CDE nameservers. This module encodes and decodes the
//! OPT pseudo-record so platforms can advertise EDNS and measurements can
//! detect it.

use crate::message::Message;
use crate::name::Name;
use crate::rr::{RData, Record, RecordType, Ttl};

/// Default advertised UDP payload size for EDNS speakers.
pub const DEFAULT_UDP_PAYLOAD: u16 = 4096;

/// Decoded EDNS parameters from an OPT pseudo-record.
///
/// # Examples
///
/// ```
/// use cde_dns::edns::Edns;
///
/// let edns = Edns::new(4096);
/// let record = edns.to_record();
/// assert_eq!(Edns::from_record(&record), Some(edns));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edns {
    /// Sender's maximum UDP payload size (carried in the CLASS field).
    pub udp_payload: u16,
    /// Extended RCODE high bits (TTL byte 0).
    pub extended_rcode: u8,
    /// EDNS version (TTL byte 1); only version 0 exists.
    pub version: u8,
    /// DNSSEC-OK bit (TTL bit 15 of the low half).
    pub dnssec_ok: bool,
}

impl Edns {
    /// Version-0 EDNS with the given payload size and no flags.
    pub fn new(udp_payload: u16) -> Edns {
        Edns {
            udp_payload,
            extended_rcode: 0,
            version: 0,
            dnssec_ok: false,
        }
    }

    /// Packs into an OPT pseudo-record (owner is the root, RFC 6891 §6.1).
    pub fn to_record(self) -> Record {
        let ttl = (self.extended_rcode as u32) << 24
            | (self.version as u32) << 16
            | if self.dnssec_ok { 0x8000 } else { 0 };
        Record::new_with_class(
            Name::root(),
            crate::rr::RecordClass::Other(self.udp_payload),
            Ttl::from_secs(ttl),
            RData::Opaque {
                rtype: RecordType::Opt.to_u16(),
                data: Vec::new(),
            },
        )
    }

    /// Unpacks from an OPT pseudo-record; `None` when `record` is not OPT.
    pub fn from_record(record: &Record) -> Option<Edns> {
        if record.rtype() != RecordType::Opt {
            return None;
        }
        let ttl = record.ttl().as_secs();
        Some(Edns {
            udp_payload: record.class().to_u16(),
            extended_rcode: (ttl >> 24) as u8,
            version: (ttl >> 16) as u8,
            dnssec_ok: ttl & 0x8000 != 0,
        })
    }
}

impl Default for Edns {
    fn default() -> Edns {
        Edns::new(DEFAULT_UDP_PAYLOAD)
    }
}

/// Message-level EDNS helpers.
pub trait EdnsMessage {
    /// Appends an OPT pseudo-record to the additional section.
    fn set_edns(&mut self, edns: Edns);

    /// The message's EDNS parameters, when an OPT record is present.
    fn edns(&self) -> Option<Edns>;
}

impl EdnsMessage for Message {
    fn set_edns(&mut self, edns: Edns) {
        // At most one OPT per message (RFC 6891 §6.1.1).
        self.additionals.retain(|r| r.rtype() != RecordType::Opt);
        self.additionals.push(edns.to_record());
    }

    fn edns(&self) -> Option<Edns> {
        self.additionals.iter().find_map(Edns::from_record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Question;

    #[test]
    fn record_roundtrip_preserves_fields() {
        let edns = Edns {
            udp_payload: 1232,
            extended_rcode: 1,
            version: 0,
            dnssec_ok: true,
        };
        assert_eq!(Edns::from_record(&edns.to_record()), Some(edns));
    }

    #[test]
    fn non_opt_record_yields_none() {
        let rr = Record::new(
            "a.b".parse().unwrap(),
            Ttl::from_secs(60),
            RData::A(std::net::Ipv4Addr::new(1, 2, 3, 4)),
        );
        assert_eq!(Edns::from_record(&rr), None);
    }

    #[test]
    fn message_edns_roundtrip_through_wire() {
        let mut q = Message::query(
            9,
            Question::new("name.cache.example".parse().unwrap(), RecordType::A),
        );
        q.set_edns(Edns::new(4096));
        let bytes = q.encode().unwrap();
        let back = Message::decode(&bytes).unwrap();
        assert_eq!(back.edns(), Some(Edns::new(4096)));
    }

    #[test]
    fn set_edns_replaces_existing_opt() {
        let mut q = Message::query(9, Question::new("a.b".parse().unwrap(), RecordType::A));
        q.set_edns(Edns::new(512));
        q.set_edns(Edns::new(4096));
        assert_eq!(
            q.additionals
                .iter()
                .filter(|r| r.rtype() == RecordType::Opt)
                .count(),
            1
        );
        assert_eq!(q.edns().unwrap().udp_payload, 4096);
    }

    #[test]
    fn message_without_opt_has_no_edns() {
        let q = Message::query(9, Question::new("a.b".parse().unwrap(), RecordType::A));
        assert_eq!(q.edns(), None);
    }
}
