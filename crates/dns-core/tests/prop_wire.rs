//! Property-based tests: wire-format round trips and name algebra.

use cde_dns::{Flags, Message, Name, Opcode, Question, RData, Rcode, Record, RecordType, Soa, Ttl};
use proptest::prelude::*;
use std::net::{Ipv4Addr, Ipv6Addr};

/// Strategy for one valid label (1–16 chars keeps names under limits).
fn label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9_-]{1,16}").expect("valid regex")
}

/// Strategy for a name of 1–5 labels.
fn name() -> impl Strategy<Value = Name> {
    proptest::collection::vec(label(), 1..=5)
        .prop_map(|labels| Name::from_labels(labels).expect("labels are valid"))
}

fn rdata() -> impl Strategy<Value = RData> {
    prop_oneof![
        any::<[u8; 4]>().prop_map(|o| RData::A(Ipv4Addr::from(o))),
        any::<[u8; 16]>().prop_map(|o| RData::Aaaa(Ipv6Addr::from(o))),
        name().prop_map(RData::Ns),
        name().prop_map(RData::Cname),
        name().prop_map(RData::Ptr),
        (any::<u16>(), name()).prop_map(|(preference, exchange)| RData::Mx {
            preference,
            exchange
        }),
        proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..4)
            .prop_map(RData::Txt),
        proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..4)
            .prop_map(RData::Spf),
        (
            name(),
            name(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>()
        )
            .prop_map(|(mname, rname, serial, refresh, retry, expire, minimum)| {
                RData::Soa(Soa {
                    mname,
                    rname,
                    serial,
                    refresh,
                    retry,
                    expire,
                    minimum,
                })
            }),
        (any::<u16>(), any::<u16>(), any::<u16>(), name()).prop_map(
            |(priority, weight, port, target)| RData::Srv {
                priority,
                weight,
                port,
                target
            }
        ),
        (
            256u16..=4000,
            proptest::collection::vec(any::<u8>(), 0..128)
        )
            .prop_map(|(rtype, data)| RData::Opaque { rtype, data }),
    ]
}

fn record() -> impl Strategy<Value = Record> {
    (name(), any::<u32>(), rdata()).prop_map(|(n, ttl, rd)| Record::new(n, Ttl::from_secs(ttl), rd))
}

fn question() -> impl Strategy<Value = Question> {
    (name(), any::<u16>()).prop_map(|(n, t)| Question::new(n, RecordType::from_u16(t)))
}

fn message() -> impl Strategy<Value = Message> {
    (
        any::<u16>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        0u8..6,
        proptest::collection::vec(question(), 0..3),
        proptest::collection::vec(record(), 0..6),
        proptest::collection::vec(record(), 0..3),
        proptest::collection::vec(record(), 0..3),
    )
        .prop_map(
            |(id, qr, aa, rd, rcode, questions, answers, authorities, additionals)| Message {
                id,
                flags: Flags {
                    qr,
                    opcode: Opcode::Query,
                    aa,
                    tc: false,
                    rd,
                    ra: qr,
                    rcode: Rcode::from_u8(rcode),
                },
                questions,
                answers,
                authorities,
                additionals,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn record_wire_roundtrip(rr in record()) {
        let mut w = cde_dns::wire::WireWriter::new();
        rr.encode(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut r = cde_dns::wire::WireReader::new(&bytes);
        let back = Record::decode(&mut r).unwrap();
        prop_assert_eq!(back, rr);
        prop_assert!(r.is_at_end());
    }

    #[test]
    fn message_wire_roundtrip(msg in message()) {
        let bytes = msg.encode().unwrap();
        let back = Message::decode(&bytes).unwrap();
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn decode_arbitrary_bytes_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Message::decode(&bytes);
    }

    #[test]
    fn decode_truncated_valid_message_never_panics(msg in message(), keep in 0usize..600) {
        // Every prefix of a valid encoding must decode cleanly or error,
        // never panic — this is the wire shape a cut-off datagram has.
        let bytes = msg.encode().unwrap();
        let cut = keep.min(bytes.len());
        if cut < bytes.len() {
            prop_assert!(Message::decode(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn decode_bitflipped_message_never_panics(
        msg in message(),
        flips in proptest::collection::vec((0usize..600, 0u8..8), 1..8),
    ) {
        // Random bit flips model on-path corruption; they may produce
        // pointer loops, bad label types, or wild counts.
        let mut bytes = msg.encode().unwrap();
        for (pos, bit) in flips {
            let len = bytes.len();
            bytes[pos % len] ^= 1 << bit;
        }
        let _ = Message::decode(&bytes);
    }

    #[test]
    fn decode_claimed_counts_beyond_payload_error(
        qd in 1u16..=u16::MAX,
        an in 0u16..=u16::MAX,
        ns in 0u16..=u16::MAX,
        ar in 0u16..=u16::MAX,
    ) {
        // A bare 12-byte header claiming non-empty sections must be
        // rejected up front (no count-sized allocations from untrusted
        // counts).
        let mut bytes = vec![0u8; 12];
        bytes[4..6].copy_from_slice(&qd.to_be_bytes());
        bytes[6..8].copy_from_slice(&an.to_be_bytes());
        bytes[8..10].copy_from_slice(&ns.to_be_bytes());
        bytes[10..12].copy_from_slice(&ar.to_be_bytes());
        prop_assert!(Message::decode(&bytes).is_err());
    }

    #[test]
    fn decode_pointer_heavy_bytes_never_panics(
        header in proptest::collection::vec(any::<u8>(), 12..13),
        body in proptest::collection::vec((0xC0u8..=0xFF, any::<u8>()), 1..32),
    ) {
        // Saturate the name parser with compression pointers (0b11
        // prefixes), the shape loops and forward references take.
        let mut bytes = header;
        bytes[4] = 0;
        bytes[5] = 1; // one question, so decoding reaches read_name
        for (hi, lo) in body {
            bytes.push(hi);
            bytes.push(lo);
        }
        let _ = Message::decode(&bytes);
    }

    #[test]
    fn name_parse_display_roundtrip(n in name()) {
        let text = n.to_string();
        let back: Name = text.parse().unwrap();
        prop_assert_eq!(back, n);
    }

    #[test]
    fn subdomain_of_parent_always_holds(n in name()) {
        for anc in n.ancestors() {
            prop_assert!(n.is_subdomain_of(&anc));
        }
    }

    #[test]
    fn strip_then_concat_is_identity(n in name(), k in 0usize..5) {
        let ancestors: Vec<Name> = n.ancestors().collect();
        let suffix = &ancestors[k.min(ancestors.len() - 1)];
        let prefix = n.strip_suffix(suffix).unwrap();
        prop_assert_eq!(prefix.concat(suffix).unwrap(), n);
    }

    #[test]
    fn compression_is_transparent(names in proptest::collection::vec(name(), 1..6)) {
        // Encode many (possibly suffix-sharing) names into one buffer and
        // decode them back in order.
        let mut w = cde_dns::wire::WireWriter::new();
        for n in &names {
            w.put_name(n);
        }
        let bytes = w.into_bytes();
        let mut r = cde_dns::wire::WireReader::new(&bytes);
        for n in &names {
            prop_assert_eq!(&r.read_name().unwrap(), n);
        }
        prop_assert!(r.is_at_end());
    }

    #[test]
    fn ttl_clamp_is_idempotent_and_bounded(t in any::<u32>(), lo in 0u32..1000, hi in 1000u32..100000) {
        let min = Ttl::from_secs(lo);
        let max = Ttl::from_secs(hi);
        let c = Ttl::from_secs(t).clamp(min, max);
        prop_assert!(c >= min && c <= max);
        prop_assert_eq!(c.clamp(min, max), c);
    }
}
