//! A fault-injecting wrapper any [`Transport`] can wear.
//!
//! [`FaultyTransport`] interposes a [`FaultInjector`] at the query/reply
//! seam of an inner transport: queries may be dropped, REFUSED or
//! truncated before the inner transport ever sees them, and replies may
//! be dropped, delayed or mangled on the way back. The wrapper keeps the
//! paper's cache semantics honest — a query that *reached* the resolver
//! warms its cache even when the reply is lost, while a query dropped on
//! the way out leaves the cache cold — so `enumerate_*` and the planner's
//! observed-loss feedback react to injected faults exactly as they would
//! to real ones.
//!
//! This is the hermetic chaos path ([`SimTransport`](crate::SimTransport)
//! inside, fully deterministic); the live counterpart is the fault layer
//! inside the [reactor](crate::reactor) and
//! [`UdpTransport::with_faults`](crate::UdpTransport::with_faults).

use crate::metrics::EngineMetrics;
use crate::transport::{Transport, TransportReply};
use cde_core::AccessProvider;
use cde_dns::{Name, Rcode, RecordType};
use cde_faults::{Delivery, Direction, FaultInjector, FaultPlan, FaultStats, Verdict};
use cde_netsim::{SimDuration, SimTime};
use cde_platform::NameserverNet;
use cde_telemetry::{EventKind as TelemetryEvent, TelemetryHub};
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Duration;

/// Typical size of one CDE probe datagram on the wire, used to size
/// truncation decisions (the inner transport encodes for real; only the
/// injector's verdict needs a length).
const NOMINAL_PROBE_LEN: usize = 64;

/// An inner [`Transport`] wrapped in a [`FaultPlan`].
#[derive(Debug)]
pub struct FaultyTransport<T: Transport> {
    inner: T,
    injector: FaultInjector,
    metrics: Arc<EngineMetrics>,
    telemetry: Arc<TelemetryHub>,
    next_token: u64,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner` so every probe runs the gauntlet of `plan`.
    pub fn new(inner: T, plan: &FaultPlan) -> FaultyTransport<T> {
        FaultyTransport {
            inner,
            injector: FaultInjector::new(plan),
            metrics: Arc::new(EngineMetrics::new()),
            telemetry: cde_telemetry::global(),
            next_token: 1,
        }
    }

    /// Routes this wrapper's probe events into `hub` instead of the
    /// process-global one — chaos tests use per-run hubs so two runs of
    /// the same seed can diff their event streams.
    pub fn with_telemetry(mut self, hub: Arc<TelemetryHub>) -> FaultyTransport<T> {
        self.telemetry = hub;
        self
    }

    /// Counters of what the fault layer actually injected.
    pub fn fault_stats(&self) -> Arc<FaultStats> {
        self.injector.stats()
    }

    /// The plan seed — print it when a chaos assertion fails.
    pub fn seed(&self) -> u64 {
        self.injector.seed()
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Unwraps back to the inner transport.
    pub fn into_inner(self) -> T {
        self.inner
    }

    fn fresh_token(&mut self) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        t
    }

    fn timed_out(&self, token: u64) -> TransportReply {
        self.metrics.record_timeout();
        self.telemetry
            .emit(0, TelemetryEvent::ProbeTimedOut { token, attempts: 1 });
        TransportReply::TimedOut
    }

    fn answered(&self, token: u64, latency: Option<SimDuration>, rcode: Rcode) -> TransportReply {
        let rtt_us = latency.map(|l| l.as_micros()).unwrap_or(0);
        self.metrics.record_received(Duration::from_micros(rtt_us));
        self.telemetry.emit(
            0,
            TelemetryEvent::ProbeMatched {
                token,
                attempt: 0,
                rtt_us,
                retransmit_ambiguous: false,
            },
        );
        TransportReply::Answered { latency, rcode }
    }

    /// First copy that survived truncation, if any: a truncated datagram
    /// fails DNS decoding at the receiver, so only intact copies count.
    fn first_intact(copies: &[Delivery]) -> Option<Delivery> {
        copies.iter().copied().find(|c| c.truncate_to.is_none())
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn query(
        &mut self,
        ingress: Ipv4Addr,
        qname: &Name,
        qtype: RecordType,
        now: SimTime,
    ) -> TransportReply {
        let token = self.fresh_token();
        self.metrics.record_sent();
        self.telemetry
            .emit(0, TelemetryEvent::ProbeSent { token, attempt: 0 });

        let clock = Duration::from_micros(now.as_micros());
        let outbound = self
            .injector
            .decide(Direction::ClientToServer, clock, NOMINAL_PROBE_LEN);
        let query_delay = match outbound {
            Verdict::Refuse => {
                // The resolver refuses without resolving: an answer comes
                // back, but the platform never sees the query (no cache
                // warming, no honey fetch).
                return self.answered(token, Some(SimDuration::from_micros(0)), Rcode::Refused);
            }
            Verdict::Drop(_) => return self.timed_out(token),
            Verdict::Deliver(ref copies) => match Self::first_intact(copies) {
                // Every copy was truncated: the resolver drops them all
                // as malformed, the cache stays cold.
                None => return self.timed_out(token),
                Some(copy) => copy.delay,
            },
        };

        // The query reached the platform: the inner transport resolves it
        // for real (warming caches), then the reply runs the gauntlet.
        match self.inner.query(ingress, qname, qtype, now) {
            TransportReply::TimedOut => self.timed_out(token),
            TransportReply::Answered { latency, rcode } => {
                let inbound =
                    self.injector
                        .decide(Direction::ServerToClient, clock, NOMINAL_PROBE_LEN);
                match inbound {
                    // The cache is already warm; losing or mangling the
                    // reply only makes the *probe* look lost.
                    Verdict::Drop(_) | Verdict::Refuse => self.timed_out(token),
                    Verdict::Deliver(ref copies) => match Self::first_intact(copies) {
                        None => self.timed_out(token),
                        Some(copy) => {
                            let injected = query_delay + copy.delay;
                            let latency = latency.map(|l| {
                                SimDuration::from_micros(
                                    l.as_micros() + injected.as_micros() as u64,
                                )
                            });
                            self.answered(token, latency, rcode)
                        }
                    },
                }
            }
        }
    }

    fn net(&self) -> &NameserverNet {
        self.inner.net()
    }

    fn net_mut(&mut self) -> &mut NameserverNet {
        self.inner.net_mut()
    }

    fn measures_latency(&self) -> bool {
        self.inner.measures_latency()
    }

    fn metrics(&self) -> Arc<EngineMetrics> {
        Arc::clone(&self.metrics)
    }
}

impl<T: Transport> AccessProvider for FaultyTransport<T> {
    type Channel<'a>
        = crate::transport::EngineAccess<'a, FaultyTransport<T>>
    where
        Self: 'a;

    fn channel(&mut self, ingress: Ipv4Addr) -> Self::Channel<'_> {
        crate::transport::EngineAccess::new(self, ingress)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SimTransport;
    use cde_core::CdeInfra;
    use cde_faults::LossFault;
    use cde_netsim::Link;
    use cde_platform::{PlatformBuilder, ResolutionPlatform, SelectorKind};
    use cde_probers::DirectProber;

    fn sim(seed: u64) -> (SimTransport, Ipv4Addr, Name) {
        let mut net = NameserverNet::new();
        let mut infra = CdeInfra::install(&mut net);
        let ingress = Ipv4Addr::new(192, 0, 2, 1);
        let platform: ResolutionPlatform = PlatformBuilder::new(seed)
            .ingress(vec![ingress])
            .egress(vec![Ipv4Addr::new(192, 0, 3, 1)])
            .cluster(1, SelectorKind::Random)
            .build();
        let prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), seed);
        let session = infra.new_session(&mut net, 0);
        let transport = SimTransport::new(platform, net, prober);
        (transport, ingress, session.honey)
    }

    #[test]
    fn clean_plan_is_transparent() {
        let (inner, ingress, qname) = sim(11);
        let mut faulty = FaultyTransport::new(inner, &FaultPlan::clean(1));
        let reply = faulty.query(ingress, &qname, RecordType::A, SimTime::ZERO);
        assert!(reply.is_answered(), "clean plan must not perturb probes");
        assert!(!faulty.fault_stats().anything_injected());
        let m = faulty.metrics().snapshot();
        assert_eq!((m.sent, m.received, m.timeouts), (1, 1, 0));
    }

    #[test]
    fn query_loss_times_out_without_warming() {
        let (inner, ingress, qname) = sim(11);
        let plan = FaultPlan {
            query_loss: LossFault::Uniform { rate: 0.999 },
            ..FaultPlan::clean(2)
        };
        let mut faulty = FaultyTransport::new(inner, &plan);
        let mut timeouts = 0;
        for _ in 0..20 {
            if let TransportReply::TimedOut =
                faulty.query(ingress, &qname, RecordType::A, SimTime::ZERO)
            {
                timeouts += 1;
            }
        }
        assert!(timeouts >= 18, "0.999 loss must time out, got {timeouts}");
        assert!(faulty.fault_stats().query_drops() >= 18);
        assert_eq!(faulty.metrics().snapshot().timeouts, timeouts);
        // The inner transport was never invoked for dropped queries.
        assert_eq!(
            faulty.inner().metrics().snapshot().sent,
            20 - timeouts,
            "dropped queries must not reach the platform"
        );
    }

    #[test]
    fn rate_limit_refusal_is_visible_as_refused_rcode() {
        let (inner, ingress, qname) = sim(11);
        let plan = FaultPlan {
            rate_limit: Some(cde_faults::RateLimitFault {
                qps: 1.0,
                burst: 1.0,
                action: cde_faults::RateLimitAction::Refuse,
            }),
            ..FaultPlan::clean(3)
        };
        let mut faulty = FaultyTransport::new(inner, &plan);
        // First query passes; the second (same instant) is refused.
        assert!(faulty
            .query(ingress, &qname, RecordType::A, SimTime::ZERO)
            .is_answered());
        match faulty.query(ingress, &qname, RecordType::A, SimTime::ZERO) {
            TransportReply::Answered { rcode, .. } => assert_eq!(rcode, Rcode::Refused),
            other => panic!("expected REFUSED answer, got {other:?}"),
        }
        assert_eq!(faulty.fault_stats().refused(), 1);
    }

    #[test]
    fn reply_delay_inflates_measured_latency() {
        let (inner, ingress, qname) = sim(11);
        let plan = FaultPlan {
            delay: Some(cde_faults::DelayFault {
                jitter: Duration::ZERO,
                spike_rate: 1.0,
                spike: Duration::from_millis(30),
            }),
            ..FaultPlan::clean(4)
        };
        // Same platform seed as the faulty run: identical base latency.
        let (clean_inner, clean_ingress, clean_qname) = sim(11);
        let mut clean = FaultyTransport::new(clean_inner, &FaultPlan::clean(4));
        let baseline = match clean.query(clean_ingress, &clean_qname, RecordType::A, SimTime::ZERO)
        {
            TransportReply::Answered { latency, .. } => latency.unwrap(),
            other => panic!("expected answer, got {other:?}"),
        };
        let mut faulty = FaultyTransport::new(inner, &plan);
        match faulty.query(ingress, &qname, RecordType::A, SimTime::ZERO) {
            TransportReply::Answered { latency, .. } => {
                // Spikes fire on both directions: ≥ 60ms over baseline.
                assert!(
                    latency.unwrap().as_micros() >= baseline.as_micros() + 60_000,
                    "injected spikes must inflate latency"
                );
            }
            other => panic!("expected answer, got {other:?}"),
        }
        assert!(faulty.fault_stats().delayed() >= 2);
    }
}
