//! One-call hermetic live deployments.
//!
//! [`LiveTestbed`] wires the full live chain together on loopback:
//!
//! ```text
//! UdpTransport ──UDP──▶ LoopbackResolver(platform) ──UDP──▶ WireAuthority
//!      ▲                        │ observations                   │
//!      └────────────────────────┴────────── zone sync ◀──────────┘
//! ```
//!
//! Everything binds `127.0.0.1:0`, so tests and examples run anywhere
//! with no fixtures, no privileges and no port collisions.

use crate::authority::WireAuthority;
use crate::clock::EngineClock;
use crate::reactor::{ReactorConfig, ReactorTransport};
use crate::resolver::{LoopbackResolver, ResolverConfig};
use crate::retry::RetryPolicy;
use crate::udp::UdpTransport;
use cde_platform::{NameserverNet, ResolutionPlatform};
use std::io;
use std::time::Duration;

/// A launched authority + resolver pair over one platform and world.
#[derive(Debug)]
pub struct LiveTestbed {
    authority: WireAuthority,
    resolver: LoopbackResolver,
    initial_net: NameserverNet,
}

impl LiveTestbed {
    /// Launches the wire authority for `net` and a loopback resolver
    /// serving `platform`, with upstream replay wired between them.
    pub fn launch(
        platform: ResolutionPlatform,
        net: NameserverNet,
        cfg: ResolverConfig,
    ) -> io::Result<LiveTestbed> {
        LiveTestbed::launch_with_upstream_delay(platform, net, cfg, Duration::ZERO)
    }

    /// Like [`LiveTestbed::launch`], but the authority holds every answer
    /// back by `upstream_delay` before it goes on the wire. Cache *hits*
    /// never leave the resolver, so only misses pay the delay — the
    /// wall-clock contrast the §IV-B3 timing side channel measures.
    pub fn launch_with_upstream_delay(
        platform: ResolutionPlatform,
        net: NameserverNet,
        cfg: ResolverConfig,
        upstream_delay: Duration,
    ) -> io::Result<LiveTestbed> {
        let clock = EngineClock::start();
        let authority = WireAuthority::launch_with_delay(&net, clock, upstream_delay)?;
        let resolver =
            LoopbackResolver::launch(platform, net.clone(), Some(&authority), cfg, clock)?;
        Ok(LiveTestbed {
            authority,
            resolver,
            initial_net: net,
        })
    }

    /// A live transport over this testbed, owning a canonical copy of the
    /// authoritative world.
    ///
    /// The resolver's observation stream is drained by whichever transport
    /// reads it first — create one transport per testbed.
    pub fn transport(&self, policy: RetryPolicy, seed: u64) -> io::Result<UdpTransport> {
        UdpTransport::connect(
            &self.resolver,
            Some(&self.authority),
            self.initial_net.clone(),
            policy,
            seed,
        )
    }

    /// A reactor-backed transport over this testbed: same seam as
    /// [`LiveTestbed::transport`], but probes multiplex through the
    /// event-driven [`Reactor`](crate::reactor::Reactor) instead of
    /// blocking per call.
    ///
    /// Like [`LiveTestbed::transport`], the observation stream is drained
    /// by whichever transport reads it first — create one per testbed.
    pub fn reactor_transport(&self, config: ReactorConfig) -> io::Result<ReactorTransport> {
        ReactorTransport::connect(
            &self.resolver,
            Some(&self.authority),
            self.initial_net.clone(),
            config,
        )
    }

    /// The wire authority (source logs, served-query counter).
    pub fn authority(&self) -> &WireAuthority {
        &self.authority
    }

    /// The loopback resolver front-end.
    pub fn resolver(&self) -> &LoopbackResolver {
        &self.resolver
    }
}
