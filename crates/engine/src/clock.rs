//! Wall-clock → virtual-time bridge.
//!
//! The measurement algorithms in `cde-core` reason in [`SimTime`]; a live
//! engine runs on the host's monotonic clock. [`EngineClock`] anchors a
//! `SimTime` axis at engine start-up so both sides agree on "now": log
//! entries recorded by the wire authority carry comparable timestamps, and
//! session TTLs expire against real elapsed time.

use cde_netsim::{SimDuration, SimTime};
use std::time::Instant;

/// Maps the host's monotonic clock onto the virtual [`SimTime`] axis.
///
/// Cheap to copy; every component of one engine shares the same epoch so
/// timestamps are mutually comparable.
#[derive(Debug, Clone, Copy)]
pub struct EngineClock {
    epoch: Instant,
}

impl EngineClock {
    /// Starts a clock whose [`SimTime::ZERO`] is "now".
    pub fn start() -> EngineClock {
        EngineClock {
            epoch: Instant::now(),
        }
    }

    /// Current virtual time: microseconds elapsed since the epoch.
    pub fn now(&self) -> SimTime {
        SimTime::ZERO + self.elapsed()
    }

    /// Elapsed time since the epoch as a [`SimDuration`].
    pub fn elapsed(&self) -> SimDuration {
        SimDuration::from_micros(self.epoch.elapsed().as_micros() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let clock = EngineClock::start();
        let a = clock.now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = clock.now();
        assert!(b > a);
        assert!(b.since(a) >= SimDuration::from_millis(1));
    }

    #[test]
    fn copies_share_the_epoch() {
        let clock = EngineClock::start();
        let copy = clock;
        std::thread::sleep(std::time::Duration::from_millis(1));
        let a = clock.now().as_micros();
        let b = copy.now().as_micros();
        // Both read the same axis; they differ only by the time between
        // the two calls.
        assert!(b >= a);
        assert!(b - a < 1_000_000);
    }
}
