//! **cde-engine** — the live wire-level measurement engine.
//!
//! Everything else in this workspace drives *simulated* resolution
//! platforms through `cde-netsim`'s virtual time. This crate adds the
//! missing layer for the paper's actual modus operandi — an
//! Internet-facing measurement system — while staying hermetic:
//!
//! * [`transport`] — the [`Transport`](transport::Transport) abstraction
//!   plus [`EngineAccess`](transport::EngineAccess), which adapts any
//!   transport to `cde-core`'s `AccessChannel` so every enumeration /
//!   mapping / survey algorithm runs unchanged over the wire.
//! * [`udp`] — [`UdpTransport`](udp::UdpTransport): real `std::net` UDP
//!   sockets with a socket pool, randomized query IDs and source ports,
//!   read deadlines, retries with jittered backoff.
//! * [`sim`] — [`SimTransport`](sim::SimTransport): the same interface
//!   over an in-process `cde-platform::ResolutionPlatform`.
//! * [`authority`] — [`WireAuthority`](authority::WireAuthority): a
//!   loopback UDP authoritative nameserver farm serving the `CdeInfra`
//!   zones (honey records, CNAME farm, delegated subzone) with
//!   `cde-dns` wire encoding, recording observed sources.
//! * [`resolver`] — [`LoopbackResolver`](resolver::LoopbackResolver): a
//!   loopback recursive-resolver shim backed by a simulated cache
//!   platform, with injectable loss, for hermetic end-to-end tests.
//! * [`reactor`] — the sharded event-driven probe
//!   [`Reactor`](reactor::Reactor): one event loop per core, each
//!   multiplexing thousands of in-flight probes over its own
//!   non-blocking sockets, with a correlation table (query-id / source /
//!   question validation against spoofed and stray replies), a
//!   hierarchical timer wheel for deadlines and retransmits, batched
//!   `sendmmsg`/`recvmmsg` syscalls via `cde-sysio`, and pooled
//!   zero-alloc encodings. Probes are partitioned across shards by a
//!   stable hash of the target ingress
//!   ([`shard_for_target`](reactor::shard_for_target)), submitted over
//!   per-shard lock-free rings, and the per-shard metrics blocks merge
//!   on snapshot; [`ReactorTransport`](reactor::ReactorTransport)
//!   is its one-probe-at-a-time [`Transport`](transport::Transport) seam.
//!   With [`ReactorConfig::insight`](reactor::ReactorConfig::insight)
//!   set, the loops additionally feed per-target `cde-insight` RTT
//!   digests at reply-match time and sample wall-clock timers around
//!   the six hot-path phases (timers, encode, send-batch, recv-batch,
//!   decode, correlate) — the capture tier of the §IV-B3 latency side
//!   channel.
//! * [`rto`] — [`RtoTable`](rto::RtoTable): per-ingress adaptive
//!   retransmission timeouts (the RFC 6298 estimator from `cde-insight`
//!   in atomic cells). With
//!   [`ReactorConfig::adaptive`](reactor::ReactorConfig::adaptive) set,
//!   the shard loops arm learned deadlines instead of the static
//!   [`RetryPolicy`](retry::RetryPolicy) schedule (which remains the
//!   upper bound), so lossy-path campaigns stop paying worst-case
//!   retransmit budgets.
//! * [`scheduler`] — campaign execution: crossbeam worker pools, bounded
//!   in-flight probes, token-bucket rate limiting, loss feedback into
//!   `cde-core::planner`; [`PipelinedCampaign`](scheduler::PipelinedCampaign)
//!   streams probes through a reactor with a bounded window.
//! * [`timer`] — [`TimerWheel`](timer::TimerWheel): the hierarchical
//!   timing wheel backing the reactor's deadlines.
//! * [`bufpool`] — [`BufferPool`](bufpool::BufferPool): recycled probe
//!   encodings for the reactor's alloc-free hot path.
//! * [`metrics`] — [`EngineMetrics`](metrics::EngineMetrics): atomic
//!   counters, latency and reactor-tick histograms, and in-loop health
//!   gauges (timer-wheel depth, slab occupancy, send-batch fill) with a
//!   `snapshot()` API; implements `cde-telemetry`'s `Collector`, so one
//!   `registry.register(reactor.metrics())` exposes everything over
//!   Prometheus text or JSON. Probe lifecycle events (`planned → sent →
//!   retried → matched | timed_out`, plus drop reasons) stream through a
//!   `cde_telemetry::TelemetryHub`; see `ReactorConfig::{telemetry,
//!   registry}` and `PipelinedCampaign::named`.
//! * [`testbed`] — [`LiveTestbed`](testbed::LiveTestbed): the whole live
//!   chain (transport → resolver → authority) launched on loopback in
//!   one call.
//! * [`faulty`] — [`FaultyTransport`](faulty::FaultyTransport): any
//!   transport wrapped in a deterministic `cde-faults::FaultPlan`
//!   (bursty loss, duplication, delay spikes, REFUSED rate limiting);
//!   the reactor and [`UdpTransport`](udp::UdpTransport) additionally
//!   wear plans natively at their socket seams for live-loopback chaos.
//! * [`flight`] — [`FlightRecorder`](flight::FlightRecorder): the
//!   always-on black box. With
//!   [`ReactorConfig::flight`](reactor::ReactorConfig::flight) set, each
//!   shard loop writes a bounded seqlock ring of full-fidelity probe
//!   lifecycle records (send/match/expiry timestamps, RTO used,
//!   disposition, wire size, query id) plus per-datagram fault-layer
//!   wire observations, drop-oldest with exact shed accounting. Dump
//!   triggers snapshot it to a versioned JSONL artifact that
//!   `cde-analyze --forensics` reconciles into a per-ingress fate table
//!   (query-lost vs reply-lost vs matched-late-as-stray).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod authority;
pub mod bufpool;
pub mod clock;
pub mod faulty;
pub mod flight;
pub mod metrics;
pub mod ratelimit;
pub mod reactor;
pub mod resolver;
pub mod retry;
pub mod rto;
pub mod scheduler;
mod shard;
pub mod sim;
pub mod testbed;
pub mod timer;
pub mod transport;
pub mod udp;

pub use authority::WireAuthority;
pub use bufpool::{BufferPool, PoolStats};
/// Datagrams per `sendmmsg`/`recvmmsg` syscall — the denominator for
/// [`MetricsSnapshot::batch_fill_ratio`](metrics::MetricsSnapshot::batch_fill_ratio).
pub use cde_sysio::MAX_BATCH;
pub use clock::EngineClock;
pub use faulty::FaultyTransport;
pub use flight::{FlightDisposition, FlightOptions, FlightRecord, FlightRecorder, FlightRing};
pub use metrics::{EngineMetrics, MetricsBlock, MetricsSnapshot};
pub use ratelimit::{RateConfig, RateLimiter, TenantRate, WeightedRateLimiter};
pub use reactor::{
    shard_for_target, InsightOptions, ProbeCompletion, PulseOptions, Reactor, ReactorConfig,
    ReactorHandle, ReactorInsight, ReactorTransport, ShardedReactor,
};
pub use resolver::{LoopbackResolver, ResolverConfig};
pub use retry::RetryPolicy;
pub use rto::{AdaptiveRtoConfig, RtoTable};
pub use scheduler::{
    run_campaign, run_campaign_pipelined, run_campaign_pipelined_reported, CampaignOptions,
    CampaignReport, PipelinedCampaign, Probe, ProbeOutcome,
};
pub use sim::SimTransport;
pub use testbed::LiveTestbed;
pub use timer::TimerWheel;
pub use transport::{EngineAccess, Transport, TransportReply};
pub use udp::UdpTransport;
