//! **cde-flight** — an always-on, bounded, lock-free flight recorder.
//!
//! Aggregate counters (`unanswered`, `strays`, `fully_accounted`) can
//! say *that* probes were lost but never *which* probe died *where* —
//! and the paper's enumeration math cares about the difference: a query
//! that never reached the authority left the cache cold, while a reply
//! that died on the way back left it warm, so the two failures pull the
//! coupon-collector bound in opposite directions. The flight recorder
//! keeps the last `capacity` probe-lifecycle records per shard in a
//! fixed-size ring written from the shard event loops, cheap enough to
//! leave on in production, so a health transition, an operator request,
//! or SIGUSR1 can snapshot exactly what the engine just did.
//!
//! Design:
//!
//! * Each shard owns one [`FlightRing`]; the shard loop is its **only
//!   writer** (mirroring the reactor's share-nothing topology), so
//!   writes need no CAS loops — just a per-slot seqlock so concurrent
//!   readers (dump triggers on other threads) never observe a torn
//!   record.
//! * A record is seven `u64` data words plus one sequence word, all
//!   plain atomics (the crate forbids `unsafe`). The writer bumps the
//!   sequence to an odd value, stores the words, then publishes an even
//!   value derived from the monotonic write index; readers retry on
//!   odd/unequal sequences.
//! * The ring drops oldest on wrap and accounts every shed record
//!   exactly: `shed() == written().saturating_sub(capacity)`.
//! * [`FlightRecorder`] owns all shard rings plus the shared epoch
//!   instant every timestamp is measured from, merges snapshots in
//!   `recorded_at_us` order, and renders the versioned JSONL dump
//!   artifact (`flight_version` 1) consumed by `cde-analyze
//!   --forensics`.

use std::net::Ipv4Addr;
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use cde_telemetry::json::write_str;

/// Enables the flight recorder on a reactor
/// ([`ReactorConfig::flight`](crate::reactor::ReactorConfig::flight)).
#[derive(Debug, Clone)]
pub struct FlightOptions {
    /// Records retained per shard before drop-oldest kicks in.
    pub per_shard: usize,
}

impl Default for FlightOptions {
    /// 4096 records/shard — 256 KiB of atomics per shard, several
    /// seconds of history at typical loopback probe rates.
    fn default() -> Self {
        FlightOptions { per_shard: 4096 }
    }
}

/// Where a recorded datagram or probe ended up.
///
/// The first four variants close out a *probe*; the last three record
/// individual *wire observations* (one datagram each) that the
/// forensics reconciler joins back to probes by token or query id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlightDisposition {
    /// A matching reply arrived with a non-REFUSED rcode.
    Answered,
    /// A matching reply arrived carrying rcode REFUSED.
    Refused,
    /// Every attempt's deadline expired without a matching reply.
    TimedOut,
    /// The target address had no socket route; never sent.
    Unroutable,
    /// A reply datagram with no live correlation entry (late, spoofed,
    /// or duplicated) — recorded with the query id it carried.
    StrayReply,
    /// The fault layer dropped an outbound query datagram.
    QueryDropped,
    /// The fault layer dropped an inbound reply datagram.
    ReplyDropped,
}

impl FlightDisposition {
    /// Stable lower-snake name used in the JSONL dump.
    pub fn as_str(self) -> &'static str {
        match self {
            FlightDisposition::Answered => "answered",
            FlightDisposition::Refused => "refused",
            FlightDisposition::TimedOut => "timed_out",
            FlightDisposition::Unroutable => "unroutable",
            FlightDisposition::StrayReply => "stray_reply",
            FlightDisposition::QueryDropped => "query_dropped",
            FlightDisposition::ReplyDropped => "reply_dropped",
        }
    }

    fn to_u8(self) -> u8 {
        match self {
            FlightDisposition::Answered => 0,
            FlightDisposition::Refused => 1,
            FlightDisposition::TimedOut => 2,
            FlightDisposition::Unroutable => 3,
            FlightDisposition::StrayReply => 4,
            FlightDisposition::QueryDropped => 5,
            FlightDisposition::ReplyDropped => 6,
        }
    }

    fn from_u8(v: u8) -> Option<FlightDisposition> {
        Some(match v {
            0 => FlightDisposition::Answered,
            1 => FlightDisposition::Refused,
            2 => FlightDisposition::TimedOut,
            3 => FlightDisposition::Unroutable,
            4 => FlightDisposition::StrayReply,
            5 => FlightDisposition::QueryDropped,
            6 => FlightDisposition::ReplyDropped,
            _ => return None,
        })
    }
}

/// One fixed-size lifecycle record. All timestamps are µs since the
/// recorder's epoch (reactor launch); zero means "never happened".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightRecord {
    /// Caller-assigned probe token; [`FlightRecord::NO_TOKEN`] for wire
    /// observations that could not be correlated to a live probe.
    pub token: u64,
    /// Target ingress the probe (or datagram) concerned.
    pub ingress: Ipv4Addr,
    /// Shard that wrote the record.
    pub shard: u16,
    /// Send attempts made when the record was written (0 = never sent).
    pub attempts: u8,
    /// Terminal state of the probe, or kind of wire observation.
    pub disposition: FlightDisposition,
    /// When the record was written (µs since epoch). Monotone per shard.
    pub recorded_at_us: u64,
    /// When the last attempt hit the wire (0 = never sent).
    pub sent_at_us: u64,
    /// When a matching reply was correlated (0 = no match).
    pub matched_at_us: u64,
    /// When the final deadline gave up (0 = did not expire).
    pub expired_at_us: u64,
    /// Retransmission timeout armed for the last attempt, µs.
    pub rto_us: u32,
    /// Encoded datagram size on the wire, bytes.
    pub wire_size: u16,
    /// DNS query id of the last attempt (the correlation digest).
    pub qid: u16,
}

impl FlightRecord {
    /// Token sentinel for uncorrelated wire observations.
    pub const NO_TOKEN: u64 = u64::MAX;
}

/// Data words per slot (the sequence word is separate).
const WORDS: usize = 7;

#[derive(Debug)]
struct Slot {
    /// Even = consistent (value `2 * (write_index + 1)`), odd = write
    /// in progress, 0 = never written.
    seq: AtomicU64,
    words: [AtomicU64; WORDS],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            words: Default::default(),
        }
    }
}

fn pack(rec: &FlightRecord) -> [u64; WORDS] {
    [
        rec.token,
        rec.recorded_at_us,
        rec.sent_at_us,
        rec.matched_at_us,
        rec.expired_at_us,
        (u64::from(u32::from(rec.ingress)) << 32) | u64::from(rec.rto_us),
        (u64::from(rec.wire_size) << 48)
            | (u64::from(rec.qid) << 32)
            | (u64::from(rec.shard) << 16)
            | (u64::from(rec.attempts) << 8)
            | u64::from(rec.disposition.to_u8()),
    ]
}

fn unpack(words: &[u64; WORDS]) -> Option<FlightRecord> {
    Some(FlightRecord {
        token: words[0],
        recorded_at_us: words[1],
        sent_at_us: words[2],
        matched_at_us: words[3],
        expired_at_us: words[4],
        ingress: Ipv4Addr::from((words[5] >> 32) as u32),
        rto_us: words[5] as u32,
        wire_size: (words[6] >> 48) as u16,
        qid: (words[6] >> 32) as u16,
        shard: (words[6] >> 16) as u16,
        attempts: (words[6] >> 8) as u8,
        disposition: FlightDisposition::from_u8(words[6] as u8)?,
    })
}

/// One shard's bounded record ring: single writer (the owning shard
/// loop), any number of concurrent snapshot readers.
#[derive(Debug)]
pub struct FlightRing {
    epoch: Instant,
    slots: Box<[Slot]>,
    /// Records ever written (monotonic); the next write index.
    head: AtomicU64,
}

impl FlightRing {
    fn new(epoch: Instant, capacity: usize) -> FlightRing {
        let capacity = capacity.max(1);
        FlightRing {
            epoch,
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Microseconds elapsed since the recorder's shared epoch — the
    /// time base for every field of a [`FlightRecord`].
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// µs since epoch for an arbitrary [`Instant`] taken after launch.
    pub fn instant_us(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.epoch).as_micros() as u64
    }

    /// Appends a record, overwriting the oldest once full. Returns
    /// `true` when an old record was shed to make room.
    ///
    /// Must only be called from the ring's single writer (the owning
    /// shard loop); readers may snapshot concurrently.
    pub fn record(&self, rec: &FlightRecord) -> bool {
        let i = self.head.load(Ordering::Relaxed);
        let cap = self.slots.len() as u64;
        #[allow(clippy::manual_is_multiple_of)] // MSRV 1.81
        let slot = &self.slots[(i % cap) as usize];
        // Seqlock write: go odd (the swap's acquire half keeps the word
        // stores from floating above it), store the payload, publish the
        // even sequence derived from the write index.
        slot.seq.swap(2 * i + 1, Ordering::AcqRel);
        let words = pack(rec);
        for (w, v) in slot.words.iter().zip(words) {
            w.store(v, Ordering::Relaxed);
        }
        slot.seq.store(2 * (i + 1), Ordering::Release);
        self.head.store(i + 1, Ordering::Release);
        i >= cap
    }

    /// Records ever written to this ring.
    pub fn written(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Records overwritten before ever being read — exact by
    /// construction: every write past capacity evicts exactly one.
    pub fn shed(&self) -> u64 {
        self.written().saturating_sub(self.slots.len() as u64)
    }

    /// Slots in the ring.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Tear-free copy of the current contents, oldest first. Slots
    /// being overwritten mid-read are skipped, never misread.
    pub fn snapshot(&self) -> Vec<FlightRecord> {
        let mut out: Vec<(u64, FlightRecord)> = Vec::with_capacity(self.slots.len());
        for (idx, slot) in self.slots.iter().enumerate() {
            let s1 = slot.seq.load(Ordering::Acquire);
            #[allow(clippy::manual_is_multiple_of)] // MSRV 1.81
            if s1 == 0 || s1 % 2 == 1 {
                continue; // never written, or write in progress
            }
            let mut words = [0u64; WORDS];
            for (v, w) in words.iter_mut().zip(slot.words.iter()) {
                *v = w.load(Ordering::Relaxed);
            }
            // Order the relaxed word loads before the confirming
            // sequence load (the classic seqlock read fence).
            fence(Ordering::Acquire);
            let s2 = slot.seq.load(Ordering::Relaxed);
            if s1 != s2 {
                continue; // overwritten while reading
            }
            let write_index = s1 / 2 - 1;
            if write_index % self.slots.len() as u64 != idx as u64 {
                continue; // torn sequence (cannot happen single-writer)
            }
            if let Some(rec) = unpack(&words) {
                out.push((write_index, rec));
            }
        }
        out.sort_unstable_by_key(|(i, _)| *i);
        out.into_iter().map(|(_, r)| r).collect()
    }
}

/// All shard rings plus the shared epoch: the engine-wide black box.
#[derive(Debug)]
pub struct FlightRecorder {
    rings: Vec<Arc<FlightRing>>,
    per_shard: usize,
}

impl FlightRecorder {
    /// One ring per shard, all measuring time from one shared epoch so
    /// merged timestamps are comparable across shards.
    pub fn new(shards: usize, per_shard: usize) -> FlightRecorder {
        let epoch = Instant::now();
        FlightRecorder {
            rings: (0..shards.max(1))
                .map(|_| Arc::new(FlightRing::new(epoch, per_shard)))
                .collect(),
            per_shard: per_shard.max(1),
        }
    }

    /// The writer handle for one shard.
    pub fn ring(&self, shard: usize) -> Arc<FlightRing> {
        Arc::clone(&self.rings[shard])
    }

    /// Number of shard rings.
    pub fn shards(&self) -> usize {
        self.rings.len()
    }

    /// Slots per shard ring.
    pub fn per_shard(&self) -> usize {
        self.per_shard
    }

    /// Total records ever written across shards.
    pub fn written(&self) -> u64 {
        self.rings.iter().map(|r| r.written()).sum()
    }

    /// Total records shed (overwritten unread) across shards.
    pub fn shed(&self) -> u64 {
        self.rings.iter().map(|r| r.shed()).sum()
    }

    /// Merged tear-free snapshot of every shard ring, ordered by
    /// `recorded_at_us` (shards share the epoch, so the order is the
    /// engine-wide wall-clock order up to clock resolution).
    pub fn snapshot(&self) -> Vec<FlightRecord> {
        let mut all: Vec<FlightRecord> = self.rings.iter().flat_map(|r| r.snapshot()).collect();
        all.sort_by_key(|r| (r.recorded_at_us, r.shard, r.token));
        all
    }

    /// Renders the versioned dump artifact: one JSON header line
    /// (`"kind": "flight_header"`, `flight_version` 1, ring geometry,
    /// exact written/shed totals) followed by one line per record in
    /// merged timestamp order.
    pub fn render_jsonl(&self) -> String {
        let records = self.snapshot();
        let mut out = String::with_capacity(64 + records.len() * 160);
        out.push_str(&format!(
            "{{\"kind\": \"flight_header\", \"flight_version\": 1, \
             \"shards\": {}, \"capacity_per_shard\": {}, \
             \"written\": {}, \"shed\": {}, \"records\": {}}}\n",
            self.rings.len(),
            self.per_shard,
            self.written(),
            self.shed(),
            records.len(),
        ));
        for rec in &records {
            render_record(&mut out, rec);
            out.push('\n');
        }
        out
    }
}

fn render_record(out: &mut String, rec: &FlightRecord) {
    out.push_str("{\"kind\": \"flight_record\", \"token\": ");
    if rec.token == FlightRecord::NO_TOKEN {
        out.push_str("null");
    } else {
        out.push_str(&rec.token.to_string());
    }
    out.push_str(", \"ingress\": ");
    write_str(out, &rec.ingress.to_string());
    out.push_str(&format!(
        ", \"shard\": {}, \"attempts\": {}, \"disposition\": \"{}\", \
         \"recorded_at_us\": {}, \"sent_at_us\": {}, \"matched_at_us\": {}, \
         \"expired_at_us\": {}, \"rto_us\": {}, \"wire_size\": {}, \"qid\": {}}}",
        rec.shard,
        rec.attempts,
        rec.disposition.as_str(),
        rec.recorded_at_us,
        rec.sent_at_us,
        rec.matched_at_us,
        rec.expired_at_us,
        rec.rto_us,
        rec.wire_size,
        rec.qid,
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::thread;

    fn rec(token: u64, at: u64, disposition: FlightDisposition) -> FlightRecord {
        FlightRecord {
            token,
            ingress: Ipv4Addr::new(192, 0, 2, (token % 200) as u8 + 1),
            shard: 0,
            attempts: (token % 5) as u8,
            disposition,
            recorded_at_us: at,
            sent_at_us: at.saturating_sub(10),
            matched_at_us: 0,
            expired_at_us: at,
            rto_us: 150_000,
            wire_size: 33,
            qid: (token as u16).wrapping_mul(31),
        }
    }

    #[test]
    fn pack_roundtrips_every_field() {
        let r = FlightRecord {
            token: 0xdead_beef_cafe_f00d,
            ingress: Ipv4Addr::new(10, 1, 2, 3),
            shard: 513,
            attempts: 7,
            disposition: FlightDisposition::ReplyDropped,
            recorded_at_us: u64::MAX / 3,
            sent_at_us: 12345,
            matched_at_us: 0,
            expired_at_us: 99999,
            rto_us: u32::MAX,
            wire_size: 512,
            qid: 0xbeef,
        };
        assert_eq!(unpack(&pack(&r)), Some(r));
    }

    #[test]
    fn disposition_names_roundtrip() {
        for v in 0..7u8 {
            let d = FlightDisposition::from_u8(v).unwrap();
            assert_eq!(d.to_u8(), v);
            assert!(!d.as_str().is_empty());
        }
        assert_eq!(FlightDisposition::from_u8(7), None);
    }

    #[test]
    fn ring_wraparound_sheds_exactly_and_keeps_newest() {
        let ring = FlightRing::new(Instant::now(), 8);
        let mut sheds = 0u64;
        for i in 0..20 {
            if ring.record(&rec(i, i * 100, FlightDisposition::Answered)) {
                sheds += 1;
            }
        }
        assert_eq!(ring.written(), 20);
        assert_eq!(ring.shed(), 12);
        assert_eq!(sheds, 12);
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 8);
        // Oldest-first, exactly the last 8 written.
        let tokens: Vec<u64> = snap.iter().map(|r| r.token).collect();
        assert_eq!(tokens, (12..20).collect::<Vec<u64>>());
    }

    #[test]
    fn empty_and_partial_rings_snapshot_cleanly() {
        let ring = FlightRing::new(Instant::now(), 16);
        assert!(ring.snapshot().is_empty());
        assert_eq!(ring.shed(), 0);
        ring.record(&rec(1, 5, FlightDisposition::TimedOut));
        ring.record(&rec(2, 9, FlightDisposition::StrayReply));
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].token, 1);
        assert_eq!(snap[1].disposition, FlightDisposition::StrayReply);
    }

    /// The satellite test: shard writers hammering their own rings
    /// through many wraparounds while readers snapshot concurrently.
    /// Shed accounting stays exact, no snapshot ever contains a torn
    /// record, and the merged dump is timestamp-ordered.
    #[test]
    fn concurrent_shard_writers_never_tear_and_shed_exactly() {
        const SHARDS: usize = 4;
        const CAP: usize = 32;
        const WRITES: u64 = 4000;
        let recorder = Arc::new(FlightRecorder::new(SHARDS, CAP));
        let stop = Arc::new(AtomicBool::new(false));

        let writers: Vec<_> = (0..SHARDS)
            .map(|s| {
                let ring = recorder.ring(s);
                thread::spawn(move || {
                    let mut sheds = 0u64;
                    for i in 0..WRITES {
                        // Token encodes (shard, i) so readers can verify
                        // internal consistency of whatever they observe.
                        let token = (s as u64) << 32 | i;
                        let mut r = rec(token, 0, FlightDisposition::TimedOut);
                        r.shard = s as u16;
                        r.recorded_at_us = i + 1;
                        r.sent_at_us = i + 1; // mirror field for tear check
                        r.qid = i as u16;
                        if ring.record(&r) {
                            sheds += 1;
                        }
                    }
                    sheds
                })
            })
            .collect();

        let readers: Vec<_> = (0..2)
            .map(|_| {
                let recorder = Arc::clone(&recorder);
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    let mut seen = 0u64;
                    loop {
                        // Check-after-snapshot: even if the writers beat
                        // us to the finish, one full pass still runs.
                        let done = stop.load(Ordering::Relaxed);
                        for r in recorder.snapshot() {
                            seen += 1;
                            // A torn record would mix words of two
                            // different writes; every word is derived
                            // from the same (shard, i), so check the
                            // cross-field invariants.
                            let s = (r.token >> 32) as u16;
                            let i = r.token & 0xffff_ffff;
                            assert_eq!(r.shard, s, "token/shard torn");
                            assert_eq!(r.recorded_at_us, i + 1, "token/ts torn");
                            assert_eq!(r.sent_at_us, i + 1, "ts/ts torn");
                            assert_eq!(r.qid, i as u16, "token/qid torn");
                        }
                        if done {
                            break;
                        }
                    }
                    seen
                })
            })
            .collect();

        let mut writer_sheds = 0u64;
        for w in writers {
            writer_sheds += w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            assert!(r.join().unwrap() > 0, "reader never saw a record");
        }

        assert_eq!(recorder.written(), SHARDS as u64 * WRITES);
        assert_eq!(recorder.shed(), SHARDS as u64 * (WRITES - CAP as u64));
        assert_eq!(writer_sheds, recorder.shed());

        // Quiescent merged snapshot: full, timestamp-ordered, newest
        // CAP records of each shard.
        let snap = recorder.snapshot();
        assert_eq!(snap.len(), SHARDS * CAP);
        for pair in snap.windows(2) {
            assert!(pair[0].recorded_at_us <= pair[1].recorded_at_us);
        }
        for r in &snap {
            assert!(r.token & 0xffff_ffff >= WRITES - CAP as u64);
        }
    }

    #[test]
    fn jsonl_dump_has_versioned_header_and_ordered_records() {
        let recorder = FlightRecorder::new(2, 8);
        recorder
            .ring(0)
            .record(&rec(7, 50, FlightDisposition::Answered));
        recorder
            .ring(1)
            .record(&rec(9, 20, FlightDisposition::QueryDropped));
        let mut stray = rec(FlightRecord::NO_TOKEN, 80, FlightDisposition::StrayReply);
        stray.ingress = Ipv4Addr::new(127, 0, 0, 1);
        recorder.ring(0).record(&stray);

        let dump = recorder.render_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"kind\": \"flight_header\""));
        assert!(lines[0].contains("\"flight_version\": 1"));
        assert!(lines[0].contains("\"shards\": 2"));
        assert!(lines[0].contains("\"written\": 3"));
        assert!(lines[0].contains("\"shed\": 0"));
        // Ordered by recorded_at_us across shards: 20, 50, 80.
        assert!(lines[1].contains("\"disposition\": \"query_dropped\""));
        assert!(lines[2].contains("\"disposition\": \"answered\""));
        assert!(lines[3].contains("\"token\": null"));
        assert!(lines[3].contains("\"ingress\": \"127.0.0.1\""));
    }

    #[test]
    fn epoch_timestamps_are_shared_across_rings() {
        let recorder = FlightRecorder::new(3, 4);
        let a = recorder.ring(0).now_us();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = recorder.ring(2).now_us();
        assert!(b > a, "later ring read must be later on the shared epoch");
    }
}
