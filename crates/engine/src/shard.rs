//! One reactor shard: an independent event loop owning its sockets,
//! correlation slab, timer wheel and buffer pool.
//!
//! The sharded reactor (see [`crate::reactor`]) runs N of these, one per
//! core. Nothing on a shard's hot path is shared with another shard:
//! probes arrive over a per-shard lock-free ring ([`cde_sysio::MpscRing`]),
//! partitioned by [`shard_for_target`] so every probe for a given target
//! ingress always lands on the same shard (and therefore the same socket
//! pool and correlation slab — replies can only match where the query
//! was sent from). The only cross-shard structures are intrinsically
//! mergeable: the per-shard [`MetricsBlock`], the shared telemetry hub,
//! the shared rate limiter (per-ingress buckets, each owned by exactly
//! one shard's targets), and the insight digest set (lock-free atomics).

use crate::bufpool::BufferPool;
use crate::flight::{FlightDisposition, FlightRecord, FlightRing};
use crate::metrics::MetricsBlock;
use crate::ratelimit::RateLimiter;
use crate::reactor::{ProbeCompletion, ReactorInsight};
use crate::retry::RetryPolicy;
use crate::rto::RtoTable;
use crate::timer::TimerWheel;
use crate::transport::TransportReply;
use cde_dns::wire::WireWriter;
use cde_dns::{Message, MessagePeek, Name, RecordType};
use cde_faults::{refused_reply, Direction, FaultInjector, FaultPlan, Verdict};
use cde_insight::Phase;
use cde_netsim::{DetRng, SimDuration};
use cde_pulse::{ExemplarReservoir, ProbeExemplar};
use cde_sysio::{MpscRing, RecvSlot, SendItem, MAX_BATCH};
use cde_telemetry::{DropReason, EventKind as TelemetryEvent, TelemetryHub};
use crossbeam::channel::Sender;
use rand::Rng;
use std::cmp::Ordering as CmpOrdering;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::Thread;
use std::time::{Duration, Instant};

/// Timer-wheel granularity. Deadlines and backoffs are millisecond-scale,
/// so a 1 ms tick wastes no precision the wire could deliver.
pub(crate) const TICK: Duration = Duration::from_millis(1);
/// Idle sleep while probes are in flight (lets the loopback serving
/// threads run on small machines; bounds added reply latency).
const BUSY_IDLE: Duration = Duration::from_micros(500);
/// Idle sleep with nothing in flight; bounds shutdown latency.
const DRAINED_IDLE: Duration = Duration::from_millis(20);

/// Picks the shard that owns `ingress`, out of `shards`.
///
/// The partition is a stable FNV-1a hash of the address octets: pure,
/// total (every ingress maps to exactly one shard below `shards`) and
/// independent of process state, so a submitter, a test and a resumed
/// campaign all agree on placement. Replies arrive on the socket that
/// sent the query, so partitioning by target keeps correlation entirely
/// shard-local.
pub fn shard_for_target(ingress: Ipv4Addr, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in ingress.octets() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash % shards as u64) as usize
}

/// Wakes a parked shard loop when work arrives.
///
/// The submitter and the loop run the classic sleeping-consumer
/// handshake: the loop publishes `sleeping = true` (SeqCst), then
/// re-checks its ring before parking; a producer pushes, then checks
/// `sleeping` (SeqCst) and unparks. The SeqCst total order rules out
/// the lost-wakeup interleaving, and `unpark` before `park` leaves a
/// token, so even a race inside `park_timeout` costs nothing. Staleness
/// is additionally bounded by the loop's idle timeout.
#[derive(Debug)]
pub(crate) struct ShardWaker {
    sleeping: AtomicBool,
    thread: OnceLock<Thread>,
    /// Time base for the wake stamp below (`Instant` can't live in an
    /// atomic, so wakes are stamped as nanoseconds since this epoch).
    epoch: Instant,
    /// Nanoseconds-since-epoch of the last producer wake, 0 when none is
    /// outstanding. The woken loop swaps it back to 0 and the difference
    /// is the wake-to-first-poll latency.
    wake_at_nanos: AtomicU64,
}

impl Default for ShardWaker {
    fn default() -> ShardWaker {
        ShardWaker {
            sleeping: AtomicBool::new(false),
            thread: OnceLock::new(),
            epoch: Instant::now(),
            wake_at_nanos: AtomicU64::new(0),
        }
    }
}

/// What one [`ShardWaker::park`] call did, for the shard's runtime
/// telemetry.
pub(crate) struct ParkOutcome {
    /// How long the loop actually slept.
    pub(crate) slept: Duration,
    /// Unpark-to-resume latency, when a producer's wake ended the sleep
    /// (absent on plain timeouts).
    pub(crate) wake_latency: Option<Duration>,
}

impl ShardWaker {
    /// Binds the waker to the calling thread (the shard loop, once).
    fn register(&self) {
        let _ = self.thread.set(std::thread::current());
    }

    fn now_nanos(&self) -> u64 {
        // `max(1)`: 0 means "no wake outstanding".
        (self.epoch.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64).max(1)
    }

    /// Producer side: unparks the loop if it is (or is about to be)
    /// parked. Cheap when the loop is running hot — one SeqCst load.
    pub(crate) fn wake(&self) {
        if self.sleeping.swap(false, Ordering::SeqCst) {
            self.wake_at_nanos.store(self.now_nanos(), Ordering::SeqCst);
            if let Some(thread) = self.thread.get() {
                thread.unpark();
            }
        }
    }

    /// Unconditional unpark — shutdown/drain use this so a parked loop
    /// notices the flag immediately instead of after its idle timeout.
    pub(crate) fn force_wake(&self) {
        self.sleeping.store(false, Ordering::SeqCst);
        if let Some(thread) = self.thread.get() {
            thread.unpark();
        }
    }

    /// Consumer side: parks for up to `timeout` unless `has_work`
    /// observes queued work after the sleep flag is published. `None`
    /// when the park was skipped.
    fn park(&self, has_work: impl Fn() -> bool, timeout: Duration) -> Option<ParkOutcome> {
        self.sleeping.store(true, Ordering::SeqCst);
        if has_work() {
            self.sleeping.store(false, Ordering::SeqCst);
            return None;
        }
        let parked_at = Instant::now();
        std::thread::park_timeout(timeout);
        self.sleeping.store(false, Ordering::SeqCst);
        let wake_latency = match self.wake_at_nanos.swap(0, Ordering::SeqCst) {
            0 => None,
            at => Some(Duration::from_nanos(self.now_nanos().saturating_sub(at))),
        };
        Some(ParkOutcome {
            slept: parked_at.elapsed(),
            wake_latency,
        })
    }
}

/// A probe handed to a shard.
pub(crate) struct Submission {
    pub(crate) token: u64,
    pub(crate) ingress: Ipv4Addr,
    pub(crate) qname: Name,
    pub(crate) qtype: RecordType,
    pub(crate) done: Sender<ProbeCompletion>,
}

/// Where one in-flight probe stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PendingState {
    /// Waiting to be (re)sent — rate-limit delay or retransmit backoff.
    Scheduled,
    /// On the wire, awaiting a reply until the deadline timer fires.
    Waiting,
}

/// One correlation-table entry.
pub(crate) struct Pending {
    generation: u64,
    token: u64,
    ingress: Ipv4Addr,
    qname: Name,
    qtype: RecordType,
    target: SocketAddrV4,
    /// Cached wire encoding; retransmits patch bytes 0–1 (the id).
    bytes: Vec<u8>,
    socket: usize,
    id: u16,
    attempt: u32,
    sent_at: Instant,
    /// When the submission entered a correlation slot (exemplar lifetime
    /// base).
    admitted_at: Instant,
    /// Admission-to-first-send latency in microseconds; `u64::MAX` until
    /// the first send goes out.
    queue_us: u64,
    /// Deadline armed for the most recent attempt, in microseconds —
    /// the "RTO used" the flight record reports. 0 until the first send.
    last_rto_us: u32,
    state: PendingState,
    done: Sender<ProbeCompletion>,
}

/// What a timer firing means. Events are validated against the slot's
/// generation and attempt, so cancellation is free (stale events no-op);
/// the wheel additionally sheds stale events at cascade time via
/// [`TimerWheel::advance_filtered`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct TimerEvent {
    slot: usize,
    generation: u64,
    attempt: u32,
    kind: EventKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EventKind {
    /// The attempt's read deadline passed: retransmit or give up.
    Deadline,
    /// A scheduled (delayed) send is now due.
    Send,
}

/// A datagram held back by the fault layer, ordered by due tick (ties
/// broken by injection order so replay is exact).
pub(crate) struct DelayedDatagram {
    due: u64,
    seq: u64,
    socket: usize,
    bytes: Vec<u8>,
    addr: SocketAddrV4,
}

impl PartialEq for DelayedDatagram {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for DelayedDatagram {}
impl PartialOrd for DelayedDatagram {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for DelayedDatagram {
    // Reversed: BinaryHeap is a max-heap, we want earliest-due first.
    fn cmp(&self, other: &Self) -> CmpOrdering {
        (other.due, other.seq).cmp(&(self.due, self.seq))
    }
}

/// The reactor's chaos shim: a [`FaultInjector`] at the socket seam plus
/// the holding pens for delayed copies in both directions.
///
/// The injector's decision stream is stateful and must run in
/// transmission order, so a reactor with faults configured clamps to a
/// single shard (see [`crate::reactor::Reactor::launch`]).
pub(crate) struct FaultLayer {
    injector: FaultInjector,
    /// Outbound copies waiting for their injected delay.
    delayed_out: BinaryHeap<DelayedDatagram>,
    /// Inbound datagrams (delayed replies, synthesized REFUSED answers)
    /// waiting to re-enter correlation.
    delayed_in: BinaryHeap<DelayedDatagram>,
    seq: u64,
}

impl FaultLayer {
    pub(crate) fn new(plan: &FaultPlan) -> FaultLayer {
        FaultLayer {
            injector: FaultInjector::new(plan),
            delayed_out: BinaryHeap::new(),
            delayed_in: BinaryHeap::new(),
            seq: 0,
        }
    }

    pub(crate) fn stats(&self) -> Arc<cde_faults::FaultStats> {
        self.injector.stats()
    }

    fn push_out(&mut self, due: u64, socket: usize, bytes: Vec<u8>, addr: SocketAddrV4) {
        self.seq += 1;
        let seq = self.seq;
        self.delayed_out.push(DelayedDatagram {
            due,
            seq,
            socket,
            bytes,
            addr,
        });
    }

    fn push_in(&mut self, due: u64, socket: usize, bytes: Vec<u8>, addr: SocketAddrV4) {
        self.seq += 1;
        let seq = self.seq;
        self.delayed_in.push(DelayedDatagram {
            due,
            seq,
            socket,
            bytes,
            addr,
        });
    }
}

/// One shard's event loop. Everything here is owned by the loop thread;
/// the `Arc`s cross threads only for submission (`ring`, `waker`),
/// control (`shutdown`, `drain`, `exited`) and mergeable observability.
pub(crate) struct ShardLoop {
    pub(crate) targets: HashMap<Ipv4Addr, SocketAddr>,
    pub(crate) sockets: Vec<UdpSocket>,
    pub(crate) next_socket: usize,
    pub(crate) ring: Arc<MpscRing<Submission>>,
    pub(crate) waker: Arc<ShardWaker>,
    pub(crate) exited: Arc<AtomicBool>,
    pub(crate) slots: Vec<Option<Pending>>,
    pub(crate) free_slots: Vec<usize>,
    pub(crate) occupied: usize,
    pub(crate) correlation: HashMap<(usize, u16), usize>,
    pub(crate) timers: TimerWheel<TimerEvent>,
    pub(crate) expired: Vec<TimerEvent>,
    pub(crate) ready: VecDeque<usize>,
    pub(crate) admitted: Vec<usize>,
    pub(crate) pool: BufferPool,
    pub(crate) writer: WireWriter,
    pub(crate) recv_slots: Vec<RecvSlot>,
    pub(crate) policy: RetryPolicy,
    pub(crate) limiter: Option<Arc<RateLimiter>>,
    pub(crate) rng: DetRng,
    pub(crate) generation: u64,
    pub(crate) start: Instant,
    pub(crate) block: Arc<MetricsBlock>,
    pub(crate) telemetry: Arc<TelemetryHub>,
    pub(crate) shutdown: Arc<AtomicBool>,
    pub(crate) drain: Arc<AtomicBool>,
    pub(crate) faults: Option<FaultLayer>,
    pub(crate) insight: Option<Arc<ReactorInsight>>,
    pub(crate) shard_id: u32,
    pub(crate) exemplars: Option<Arc<ExemplarReservoir>>,
    /// Adaptive per-ingress RTO table, shared across shards (each
    /// ingress's cell is only ever written by the one shard that owns
    /// the ingress). `None` runs the static [`RetryPolicy`] schedule.
    pub(crate) rto: Option<Arc<RtoTable>>,
    /// This shard's flight-recorder ring; the loop is its single
    /// writer. `None` when the recorder is off.
    pub(crate) flight: Option<Arc<FlightRing>>,
}

/// Builds a shard's pending-slot vector (the type is private to this
/// module, so the reactor's launch code sizes it through here).
pub(crate) fn empty_slots(max_in_flight: usize) -> Vec<Option<Pending>> {
    (0..max_in_flight).map(|_| None).collect()
}

/// Attempts-made for a flight record from a zero-based attempt index.
fn attempts_made(attempt: u32) -> u8 {
    (attempt + 1).min(255) as u8
}

impl ShardLoop {
    /// Writes one record into this shard's flight ring (the caller has
    /// already checked the ring exists) and keeps the counters exact.
    fn flight_write(&self, ring: &FlightRing, rec: &FlightRecord) {
        if ring.record(rec) {
            self.block.record_flight_shed();
        }
        self.block.record_flight_record();
    }

    /// Starts a sampled phase timer; `None` when capture is off or this
    /// entry is not sampled. Zero-cost (no clock read) in both cases.
    #[inline]
    fn phase_begin(&self, phase: Phase) -> Option<Instant> {
        self.insight.as_ref().and_then(|i| i.phases().begin(phase))
    }

    /// Closes a sampled phase timer opened by [`Self::phase_begin`].
    #[inline]
    fn phase_end(&self, phase: Phase, started: Option<Instant>) {
        if let (Some(insight), Some(_)) = (&self.insight, started) {
            insight.phases().end(phase, started);
        }
    }

    pub(crate) fn run(mut self) {
        self.waker.register();
        while !self.shutdown.load(Ordering::SeqCst) {
            let iter_start = Instant::now();
            let mut progress = self.admit();
            progress |= self.fire_timers();
            progress |= self.send_ready();
            progress |= self.receive();
            progress |= self.release_delayed();
            self.block.set_wheel_pending(self.timers.len() as u64);
            self.block.set_ring_depth(self.ring.len() as u64);
            self.block.record_loop_iteration(iter_start.elapsed());
            // Graceful drain: once asked, exit as soon as the queued
            // backlog is admitted and every in-flight probe has answered
            // or timed out — all completions delivered, nothing dropped.
            if self.drain.load(Ordering::SeqCst) && self.occupied == 0 && self.ring.is_empty() {
                break;
            }
            if progress {
                // Busy: stay hot, but let serving threads run on small
                // machines.
                std::thread::yield_now();
            } else {
                self.idle_wait();
            }
        }
        // Final gauge flush so a post-shutdown scrape reflects the
        // drained state instead of the last mid-flight sample.
        self.block.set_in_flight(self.occupied as u64);
        self.block.set_wheel_pending(self.timers.len() as u64);
        self.block.set_ring_depth(self.ring.len() as u64);
        self.exited.store(true, Ordering::SeqCst);
    }

    fn now_tick(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    fn ticks(d: Duration) -> u64 {
        if d.is_zero() {
            0
        } else {
            (d.as_millis() as u64).max(1)
        }
    }

    /// Pulls submissions into free correlation slots; batch-debits the
    /// rate limiter for everything admitted this round.
    fn admit(&mut self) -> bool {
        debug_assert!(self.admitted.is_empty());
        while !self.free_slots.is_empty() {
            match self.ring.pop() {
                Some(sub) => self.admit_one(sub),
                None => break,
            }
        }
        if self.admitted.is_empty() {
            return false;
        }
        self.block.set_in_flight(self.occupied as u64);
        let admitted = std::mem::take(&mut self.admitted);
        if let Some(limiter) = self.limiter.clone() {
            // Batch-aware token take: one bucket update per distinct
            // ingress in the admitted burst, not one per probe.
            let mut groups: Vec<(Ipv4Addr, u32)> = Vec::new();
            for &slot in &admitted {
                let ingress = self.slots[slot].as_ref().expect("admitted slot").ingress;
                match groups.iter_mut().find(|(ip, _)| *ip == ingress) {
                    Some((_, n)) => *n += 1,
                    None => groups.push((ingress, 1)),
                }
            }
            let mut waits: Vec<(Ipv4Addr, Duration)> = Vec::with_capacity(groups.len());
            for (ingress, n) in groups {
                waits.push((ingress, limiter.debit_n(ingress, n)));
            }
            let now_tick = self.now_tick();
            for &slot in &admitted {
                let ingress = self.slots[slot].as_ref().expect("admitted slot").ingress;
                let wait = waits
                    .iter()
                    .find(|(ip, _)| *ip == ingress)
                    .map(|(_, w)| *w)
                    .unwrap_or_default();
                if wait.is_zero() {
                    self.ready.push_back(slot);
                } else {
                    // Pay the limiter by scheduling, not sleeping.
                    self.block.record_rate_limit_stall(wait);
                    let p = self.slots[slot].as_ref().expect("admitted slot");
                    self.timers.schedule(
                        now_tick + Self::ticks(wait),
                        TimerEvent {
                            slot,
                            generation: p.generation,
                            attempt: 0,
                            kind: EventKind::Send,
                        },
                    );
                }
            }
        } else {
            self.ready.extend(admitted.iter().copied());
        }
        self.admitted = admitted;
        self.admitted.clear();
        true
    }

    fn admit_one(&mut self, sub: Submission) {
        let target = match self.targets.get(&sub.ingress) {
            Some(SocketAddr::V4(v4)) => *v4,
            // No route to this ingress — indistinguishable from loss.
            _ => {
                if let Some(ring) = &self.flight {
                    let now_us = ring.now_us();
                    self.flight_write(
                        ring,
                        &FlightRecord {
                            token: sub.token,
                            ingress: sub.ingress,
                            shard: self.shard_id as u16,
                            attempts: 0,
                            disposition: FlightDisposition::Unroutable,
                            recorded_at_us: now_us,
                            sent_at_us: 0,
                            matched_at_us: 0,
                            expired_at_us: now_us,
                            rto_us: 0,
                            wire_size: 0,
                            qid: 0,
                        },
                    );
                }
                self.block.record_timeout();
                self.telemetry.emit(
                    0,
                    TelemetryEvent::ProbeTimedOut {
                        token: sub.token,
                        attempts: 0,
                    },
                );
                let _ = sub.done.send(ProbeCompletion {
                    token: sub.token,
                    reply: TransportReply::TimedOut,
                });
                return;
            }
        };
        let slot = self.free_slots.pop().expect("admit checked free_slots");
        self.generation += 1;
        self.slots[slot] = Some(Pending {
            generation: self.generation,
            token: sub.token,
            ingress: sub.ingress,
            qname: sub.qname,
            qtype: sub.qtype,
            target,
            bytes: self.pool.take(),
            socket: usize::MAX,
            id: 0,
            attempt: 0,
            sent_at: Instant::now(),
            admitted_at: Instant::now(),
            queue_us: u64::MAX,
            last_rto_us: 0,
            state: PendingState::Scheduled,
            done: sub.done,
        });
        self.occupied += 1;
        self.admitted.push(slot);
    }

    /// Advances the wheel and acts on expired, still-valid events.
    ///
    /// Stale events (slot retired, superseded generation or attempt) are
    /// shed inside the wheel itself — at cascade as well as expiry — so
    /// a deep in-flight window's worth of cancelled deadlines never
    /// rides the cascade chain. The surviving events are re-validated
    /// here anyway: completing one expiry can invalidate the next one in
    /// the same batch.
    fn fire_timers(&mut self) -> bool {
        let now_tick = self.now_tick();
        let mut expired = std::mem::take(&mut self.expired);
        expired.clear();
        let t_timers = self.phase_begin(Phase::Timers);
        {
            let slots = &self.slots;
            self.timers.advance_filtered(now_tick, &mut expired, |ev| {
                slots[ev.slot]
                    .as_ref()
                    .is_some_and(|p| p.generation == ev.generation && p.attempt == ev.attempt)
            });
        }
        self.phase_end(Phase::Timers, t_timers);
        let mut progress = false;
        for ev in expired.drain(..) {
            let Some(p) = self.slots[ev.slot].as_ref() else {
                continue;
            };
            if p.generation != ev.generation || p.attempt != ev.attempt {
                continue; // lazily cancelled
            }
            match ev.kind {
                EventKind::Send => {
                    if p.state == PendingState::Scheduled {
                        self.ready.push_back(ev.slot);
                        progress = true;
                    }
                }
                EventKind::Deadline => {
                    if p.state != PendingState::Waiting {
                        continue;
                    }
                    progress = true;
                    // The attempt is dead: late replies to its id must
                    // land as strays, never match.
                    self.correlation.remove(&(p.socket, p.id));
                    // A deadline expiry is an unambiguous loss signal
                    // (unlike replies after a retransmit): back the
                    // learned RTO off before deciding retry-vs-give-up.
                    if let Some(table) = &self.rto {
                        table.observe_timeout(p.ingress);
                        self.block.record_rto_backoff();
                    }
                    if ev.attempt + 1 >= self.policy.attempts.max(1) {
                        self.block.record_timeout();
                        self.telemetry.emit(
                            0,
                            TelemetryEvent::ProbeTimedOut {
                                token: p.token,
                                attempts: ev.attempt + 1,
                            },
                        );
                        self.complete(ev.slot, TransportReply::TimedOut);
                    } else {
                        let delay = self.policy.delay_before(ev.attempt + 1, &mut self.rng);
                        let p = self.slots[ev.slot].as_mut().expect("checked above");
                        p.attempt += 1;
                        p.state = PendingState::Scheduled;
                        let token = p.token;
                        self.block.record_retry();
                        self.telemetry.emit(
                            0,
                            TelemetryEvent::ProbeRetried {
                                token,
                                attempt: ev.attempt + 1,
                            },
                        );
                        self.timers.schedule(
                            now_tick + Self::ticks(delay),
                            TimerEvent {
                                slot: ev.slot,
                                generation: ev.generation,
                                attempt: ev.attempt + 1,
                                kind: EventKind::Send,
                            },
                        );
                    }
                }
            }
        }
        self.expired = expired;
        progress
    }

    /// Drains the ready queue in batches: one `sendmmsg` per socket per
    /// round, rotating sockets for source-port diversity.
    fn send_ready(&mut self) -> bool {
        if self.ready.is_empty() {
            return false;
        }
        let mut progress = false;
        for _ in 0..self.sockets.len() {
            if self.ready.is_empty() {
                break;
            }
            let socket_idx = self.next_socket;
            self.next_socket = (self.next_socket + 1) % self.sockets.len();
            let count = self.ready.len().min(MAX_BATCH);
            let mut batch = [0usize; MAX_BATCH];
            for b in batch.iter_mut().take(count) {
                *b = self.ready.pop_front().expect("counted");
            }
            let batch = &batch[..count];
            // Arm each probe: fresh id patched into the cached encoding
            // (first send encodes via the reusable writer — no per-probe
            // allocation either way).
            let t_encode = self.phase_begin(Phase::Encode);
            for &slot in batch {
                let id = fresh_id(&mut self.rng, &self.correlation, socket_idx);
                let p = self.slots[slot].as_mut().expect("ready slot occupied");
                p.socket = socket_idx;
                p.id = id;
                if p.bytes.is_empty() {
                    Message::encode_query_into(&mut self.writer, id, &p.qname, p.qtype);
                    p.bytes.extend_from_slice(self.writer.as_slice());
                } else {
                    p.bytes[0..2].copy_from_slice(&id.to_be_bytes());
                }
                self.correlation.insert((socket_idx, id), slot);
            }
            self.phase_end(Phase::Encode, t_encode);
            let outcome = if self.faults.is_some() {
                // Chaos path: every armed probe is "sent" from the
                // engine's point of view (deadlines, retries and loss
                // feedback behave), but each datagram runs the fault
                // gauntlet on its way to the wire.
                let mut layer = self.faults.take().expect("checked is_some");
                for &slot in batch {
                    self.emit_faulty(&mut layer, socket_idx, slot);
                }
                self.faults = Some(layer);
                Ok(count)
            } else {
                let empty: &[u8] = &[];
                let mut items = [SendItem {
                    payload: empty,
                    dest: SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0),
                }; MAX_BATCH];
                for (item, &slot) in items.iter_mut().zip(batch) {
                    let p = self.slots[slot].as_ref().expect("ready slot occupied");
                    *item = SendItem {
                        payload: &p.bytes,
                        dest: p.target,
                    };
                }
                let t_send = self.phase_begin(Phase::SendBatch);
                let sent = cde_sysio::send_batch(&self.sockets[socket_idx], &items[..count]);
                self.phase_end(Phase::SendBatch, t_send);
                sent
            };
            let now_tick = self.now_tick();
            match outcome {
                Ok(sent) => {
                    if sent > 0 {
                        progress = true;
                        self.block.record_send_batch(sent);
                    }
                    for (i, &slot) in batch.iter().enumerate().rev() {
                        if i < sent {
                            let p = self.slots[slot].as_mut().expect("ready slot occupied");
                            p.state = PendingState::Waiting;
                            p.sent_at = Instant::now();
                            if p.queue_us == u64::MAX {
                                p.queue_us = p
                                    .admitted_at
                                    .elapsed()
                                    .as_micros()
                                    .min(u128::from(u64::MAX))
                                    as u64;
                            }
                            self.block.record_sent();
                            self.telemetry.emit(
                                0,
                                TelemetryEvent::ProbeSent {
                                    token: p.token,
                                    attempt: p.attempt,
                                },
                            );
                            // Adaptive deadlines never exceed the static
                            // schedule: `timeout_for` stays the upper
                            // bound, so graces derived from
                            // `RetryPolicy::worst_case` remain honest.
                            let timeout = match &self.rto {
                                Some(table) => {
                                    self.block.record_adaptive_deadline();
                                    table
                                        .deadline_for(p.ingress, p.attempt)
                                        .min(self.policy.timeout_for(p.attempt))
                                }
                                None => self.policy.timeout_for(p.attempt),
                            };
                            p.last_rto_us = timeout.as_micros().min(u128::from(u32::MAX)) as u32;
                            let deadline = now_tick + Self::ticks(timeout).max(1);
                            self.timers.schedule(
                                deadline,
                                TimerEvent {
                                    slot,
                                    generation: p.generation,
                                    attempt: p.attempt,
                                    kind: EventKind::Deadline,
                                },
                            );
                        } else {
                            // Kernel backpressure: retract and retry next
                            // round (reverse order keeps FIFO).
                            let p = self.slots[slot].as_ref().expect("ready slot occupied");
                            self.correlation.remove(&(socket_idx, p.id));
                            self.ready.push_front(slot);
                        }
                    }
                }
                Err(_) => {
                    // A hard socket error: fail the whole batch rather
                    // than spin on it.
                    for &slot in batch {
                        let p = self.slots[slot].as_ref().expect("ready slot occupied");
                        self.correlation.remove(&(socket_idx, p.id));
                        self.block.record_timeout();
                        self.complete(slot, TransportReply::TimedOut);
                    }
                }
            }
        }
        progress
    }

    /// Drains every socket's receive queue in batches and correlates.
    fn receive(&mut self) -> bool {
        let mut progress = false;
        let mut recv_slots = std::mem::take(&mut self.recv_slots);
        for socket_idx in 0..self.sockets.len() {
            loop {
                let t_recv = self.phase_begin(Phase::RecvBatch);
                let got =
                    cde_sysio::recv_batch(&self.sockets[socket_idx], &mut recv_slots).unwrap_or(0);
                self.phase_end(Phase::RecvBatch, t_recv);
                if got == 0 {
                    break;
                }
                progress = true;
                for rs in recv_slots.iter().take(got) {
                    let Some(from) = rs.from() else { continue };
                    if self.faults.is_some() {
                        self.receive_faulty(socket_idx, rs.bytes(), from);
                    } else {
                        self.process_datagram(socket_idx, rs.bytes(), from);
                    }
                }
                if got < recv_slots.len() {
                    break;
                }
            }
        }
        self.recv_slots = recv_slots;
        progress
    }

    /// Sends one armed probe through the fault layer: dropped, REFUSED
    /// (a synthesized answer queued inbound), or delivered — possibly
    /// delayed, duplicated or truncated.
    fn emit_faulty(&mut self, layer: &mut FaultLayer, socket_idx: usize, slot: usize) {
        let now = self.start.elapsed();
        let now_tick = self.now_tick();
        let p = self.slots[slot].as_ref().expect("ready slot occupied");
        match layer
            .injector
            .decide(Direction::ClientToServer, now, p.bytes.len())
        {
            Verdict::Refuse => {
                // The "resolver" answers REFUSED without resolving: the
                // synthesized reply re-enters through correlation (from
                // the probed target, so the anti-spoofing checks pass).
                if let Some(reply) = refused_reply(&p.bytes) {
                    layer.push_in(now_tick, socket_idx, reply, p.target);
                }
            }
            // Nothing reaches the wire; the deadline timer will fire.
            // The flight ring keeps the engine-side wire observation —
            // this query died *outbound*, so the cache behind the target
            // stayed cold. Forensics joins it back by token.
            Verdict::Drop(_) => {
                if let Some(ring) = &self.flight {
                    let now_us = ring.now_us();
                    self.flight_write(
                        ring,
                        &FlightRecord {
                            token: p.token,
                            ingress: p.ingress,
                            shard: self.shard_id as u16,
                            attempts: attempts_made(p.attempt),
                            disposition: FlightDisposition::QueryDropped,
                            recorded_at_us: now_us,
                            sent_at_us: now_us,
                            matched_at_us: 0,
                            expired_at_us: 0,
                            rto_us: 0,
                            wire_size: p.bytes.len().min(usize::from(u16::MAX)) as u16,
                            qid: p.id,
                        },
                    );
                }
            }
            Verdict::Deliver(copies) => {
                for copy in copies {
                    let len = copy.truncate_to.unwrap_or(p.bytes.len()).min(p.bytes.len());
                    if copy.delay.is_zero() && len == p.bytes.len() {
                        let _ = self.sockets[socket_idx].send_to(&p.bytes, p.target);
                    } else {
                        layer.push_out(
                            now_tick + Self::ticks(copy.delay),
                            socket_idx,
                            p.bytes[..len].to_vec(),
                            p.target,
                        );
                    }
                }
            }
        }
    }

    /// Runs one received datagram through the reply-direction gauntlet
    /// before correlation: lost replies vanish, delayed/duplicated
    /// copies queue up (late duplicates then land as strays — exactly
    /// the taxonomy a chaotic wire produces).
    fn receive_faulty(&mut self, socket_idx: usize, bytes: &[u8], from: SocketAddrV4) {
        let now = self.start.elapsed();
        let now_tick = self.now_tick();
        let mut immediate = 0u32;
        {
            let layer = self.faults.as_mut().expect("faults enabled");
            match layer
                .injector
                .decide(Direction::ServerToClient, now, bytes.len())
            {
                // The reply existed and died *inbound*: the query did
                // reach the serving chain (the cache is warm). Joined
                // back to its probe by the correlation entry, which is
                // still live — the deadline hasn't retired it yet.
                Verdict::Drop(_) => {
                    if let Some(ring) = &self.flight {
                        let peeked = MessagePeek::parse(bytes).ok();
                        let qid = peeked.as_ref().map(MessagePeek::id).unwrap_or(0);
                        let (token, ingress, attempts) = peeked
                            .and_then(|pk| self.correlation.get(&(socket_idx, pk.id())).copied())
                            .and_then(|slot| self.slots[slot].as_ref())
                            .map(|p| (p.token, p.ingress, attempts_made(p.attempt)))
                            .unwrap_or((FlightRecord::NO_TOKEN, *from.ip(), 0));
                        let now_us = ring.now_us();
                        let rec = FlightRecord {
                            token,
                            ingress,
                            shard: self.shard_id as u16,
                            attempts,
                            disposition: FlightDisposition::ReplyDropped,
                            recorded_at_us: now_us,
                            sent_at_us: 0,
                            matched_at_us: 0,
                            expired_at_us: 0,
                            rto_us: 0,
                            wire_size: bytes.len().min(usize::from(u16::MAX)) as u16,
                            qid,
                        };
                        if ring.record(&rec) {
                            self.block.record_flight_shed();
                        }
                        self.block.record_flight_record();
                    }
                }
                Verdict::Refuse => {}
                Verdict::Deliver(copies) => {
                    for copy in copies {
                        let len = copy.truncate_to.unwrap_or(bytes.len()).min(bytes.len());
                        if copy.delay.is_zero() && len == bytes.len() {
                            immediate += 1;
                        } else {
                            layer.push_in(
                                now_tick + Self::ticks(copy.delay),
                                socket_idx,
                                bytes[..len].to_vec(),
                                from,
                            );
                        }
                    }
                }
            }
        }
        for _ in 0..immediate {
            self.process_datagram(socket_idx, bytes, from);
        }
    }

    /// Flushes fault-layer datagrams whose injected delay has elapsed:
    /// outbound copies hit the wire, inbound ones re-enter correlation.
    fn release_delayed(&mut self) -> bool {
        if self.faults.is_none() {
            return false;
        }
        let mut layer = self.faults.take().expect("checked is_none");
        let now_tick = self.now_tick();
        let mut progress = false;
        while layer.delayed_out.peek().is_some_and(|d| d.due <= now_tick) {
            let d = layer.delayed_out.pop().expect("peeked");
            let _ = self.sockets[d.socket].send_to(&d.bytes, d.addr);
            progress = true;
        }
        while layer.delayed_in.peek().is_some_and(|d| d.due <= now_tick) {
            let d = layer.delayed_in.pop().expect("peeked");
            self.process_datagram(d.socket, &d.bytes, d.addr);
            progress = true;
        }
        self.faults = Some(layer);
        progress
    }

    /// Correlates one inbound datagram, enforcing the anti-spoofing
    /// checks: id match, source address match, echoed-question match.
    fn process_datagram(&mut self, socket_idx: usize, bytes: &[u8], from: SocketAddrV4) {
        let t_decode = self.phase_begin(Phase::Decode);
        let parsed = MessagePeek::parse(bytes);
        self.phase_end(Phase::Decode, t_decode);
        let Ok(peek) = parsed else {
            self.block.record_decode_error();
            return;
        };
        if !peek.is_response() {
            return;
        }
        let t_correlate = self.phase_begin(Phase::Correlate);
        let Some(&slot) = self.correlation.get(&(socket_idx, peek.id())) else {
            // Wrong id, or a duplicate/late reply after the deadline
            // already retired the attempt — including a reply that
            // somehow landed on a socket whose shard never sent the
            // probe (correlation is strictly shard-local).
            if let Some(ring) = &self.flight {
                let now_us = ring.now_us();
                self.flight_write(
                    ring,
                    &FlightRecord {
                        token: FlightRecord::NO_TOKEN,
                        ingress: *from.ip(),
                        shard: self.shard_id as u16,
                        attempts: 0,
                        disposition: FlightDisposition::StrayReply,
                        recorded_at_us: now_us,
                        sent_at_us: 0,
                        matched_at_us: 0,
                        expired_at_us: 0,
                        rto_us: 0,
                        wire_size: bytes.len().min(usize::from(u16::MAX)) as u16,
                        qid: peek.id(),
                    },
                );
            }
            self.block.record_stray_reply();
            self.telemetry.emit(
                0,
                TelemetryEvent::ReplyDropped {
                    reason: DropReason::Stray,
                },
            );
            self.phase_end(Phase::Correlate, t_correlate);
            return;
        };
        let p = self.slots[slot].as_ref().expect("correlated slot occupied");
        if from != p.target {
            // Right id, wrong source: off-path spoofing. Keep waiting for
            // the genuine answer.
            self.block.record_spoofed_reply();
            self.telemetry.emit(
                0,
                TelemetryEvent::ReplyDropped {
                    reason: DropReason::Spoofed,
                },
            );
            self.phase_end(Phase::Correlate, t_correlate);
            return;
        }
        match peek.question_matches(&p.qname, p.qtype) {
            Ok(true) => {}
            Ok(false) => {
                // Id collision: someone else's answer hashed onto our id.
                self.block.record_qname_mismatch();
                self.telemetry.emit(
                    0,
                    TelemetryEvent::ReplyDropped {
                        reason: DropReason::Duplicate,
                    },
                );
                self.phase_end(Phase::Correlate, t_correlate);
                return;
            }
            Err(_) => {
                self.block.record_decode_error();
                self.phase_end(Phase::Correlate, t_correlate);
                return;
            }
        }
        self.phase_end(Phase::Correlate, t_correlate);
        let rtt = p.sent_at.elapsed();
        let rtt_us = rtt.as_micros().min(u128::from(u64::MAX)) as u64;
        // A reply arriving after a retransmit can belong to *either*
        // attempt; its last-send RTT is untrustworthy for timing
        // analysis, so both the digest and the event carry the flag.
        let retransmit_ambiguous = p.attempt > 0;
        self.block.record_received(rtt);
        // Karn's rule at the one place attempt counts are known: only
        // first-attempt replies feed the estimator a sample; ambiguous
        // deliveries just clear its backoff.
        if let Some(table) = &self.rto {
            if retransmit_ambiguous {
                table.observe_delivery_ambiguous(p.ingress);
            } else {
                table.observe_rtt(p.ingress, rtt_us);
            }
        }
        if let Some(insight) = &self.insight {
            insight
                .digests()
                .record(p.ingress, rtt_us, retransmit_ambiguous);
        }
        self.telemetry.emit(
            0,
            TelemetryEvent::ProbeMatched {
                token: p.token,
                attempt: p.attempt,
                rtt_us,
                retransmit_ambiguous,
            },
        );
        self.complete(
            slot,
            TransportReply::Answered {
                latency: Some(SimDuration::from_micros(rtt.as_micros() as u64)),
                rcode: peek.flags().rcode,
            },
        );
    }

    /// Retires a slot: frees the correlation entry, recycles the buffer,
    /// delivers the completion. Timers die by lazy cancellation.
    fn complete(&mut self, slot: usize, reply: TransportReply) {
        let p = self.slots[slot].take().expect("completing occupied slot");
        self.correlation.remove(&(p.socket, p.id));
        if let Some(ring) = self.flight.as_ref().map(Arc::clone) {
            let now_us = ring.now_us();
            let disposition = match &reply {
                TransportReply::Answered { rcode, .. } => {
                    if *rcode == cde_dns::Rcode::Refused {
                        FlightDisposition::Refused
                    } else {
                        FlightDisposition::Answered
                    }
                }
                TransportReply::TimedOut => FlightDisposition::TimedOut,
            };
            let ever_sent = p.queue_us != u64::MAX;
            self.flight_write(
                &ring,
                &FlightRecord {
                    token: p.token,
                    ingress: p.ingress,
                    shard: self.shard_id as u16,
                    attempts: if ever_sent {
                        attempts_made(p.attempt)
                    } else {
                        0
                    },
                    disposition,
                    recorded_at_us: now_us,
                    sent_at_us: if ever_sent {
                        ring.instant_us(p.sent_at)
                    } else {
                        0
                    },
                    matched_at_us: if disposition == FlightDisposition::TimedOut {
                        0
                    } else {
                        now_us
                    },
                    expired_at_us: if disposition == FlightDisposition::TimedOut {
                        now_us
                    } else {
                        0
                    },
                    rto_us: p.last_rto_us,
                    wire_size: p.bytes.len().min(usize::from(u16::MAX)) as u16,
                    qid: p.id,
                },
            );
        }
        self.pool.give(p.bytes);
        self.occupied -= 1;
        self.free_slots.push(slot);
        self.block.set_in_flight(self.occupied as u64);
        if let Some(reservoir) = &self.exemplars {
            let rtt_us = match &reply {
                TransportReply::Answered {
                    latency: Some(l), ..
                } => l.as_micros(),
                _ => 0,
            };
            reservoir.record(ProbeExemplar {
                token: p.token,
                shard: self.shard_id,
                ingress: p.ingress,
                attempts: p.attempt + 1,
                rtt_us,
                queue_us: if p.queue_us == u64::MAX {
                    0
                } else {
                    p.queue_us
                },
                lifetime_us: p
                    .admitted_at
                    .elapsed()
                    .as_micros()
                    .min(u128::from(u64::MAX)) as u64,
                answered: matches!(reply, TransportReply::Answered { .. }),
            });
        }
        let _ = p.done.send(ProbeCompletion {
            token: p.token,
            reply,
        });
    }

    /// Nothing to do right now: park until the next timer, a submission
    /// (the waker's unpark), or the idle bound — whichever comes first.
    fn idle_wait(&mut self) {
        let wait = if self.occupied == 0 && self.ready.is_empty() {
            DRAINED_IDLE
        } else if self.occupied > 0 {
            // A reply can land any microsecond and nothing wakes this
            // sleep for it, so its length is pure added RTT. Keep it at
            // BUSY_IDLE — the 4 ms timer-distance nap here used to
            // quantize every measured RTT to ~4 ms, drowning the
            // hit/miss contrast the timing side channel reads.
            BUSY_IDLE
        } else {
            // Only scheduled (unsent) probes: sleep toward their send
            // timers, nothing inbound can arrive yet.
            let now = self.now_tick();
            let ticks_away = self.timers.next_due().map_or(1, |t| t.saturating_sub(now));
            (TICK * ticks_away.clamp(1, 4) as u32)
                .min(Duration::from_millis(4))
                .max(BUSY_IDLE)
        };
        let ring = &self.ring;
        if let Some(outcome) = self.waker.park(|| !ring.is_empty(), wait) {
            self.block.record_park(outcome.slept);
            if let Some(latency) = outcome.wake_latency {
                self.block.record_wake_latency(latency);
            }
        }
    }
}

/// Picks a query id unused on `socket`, preferring a random draw and
/// linearly probing on collision.
fn fresh_id(rng: &mut DetRng, correlation: &HashMap<(usize, u16), usize>, socket: usize) -> u16 {
    let mut id: u16 = rng.gen();
    for _ in 0..=u16::MAX {
        if !correlation.contains_key(&(socket, id)) {
            return id;
        }
        id = id.wrapping_add(1);
    }
    id // unreachable: the table can never hold 65 536 entries per socket
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_total_and_stable() {
        for shards in 1..=9usize {
            for a in 0..=255u8 {
                let ip = Ipv4Addr::new(10, 0, a, a.wrapping_mul(7));
                let s = shard_for_target(ip, shards);
                assert!(s < shards);
                assert_eq!(s, shard_for_target(ip, shards), "must be deterministic");
            }
        }
    }

    #[test]
    fn partition_spreads_across_shards() {
        // Not a uniformity proof — just that FNV over last-octet-varying
        // addresses doesn't collapse onto one shard.
        let shards = 4;
        let mut seen = vec![0usize; shards];
        for d in 1..=64u8 {
            seen[shard_for_target(Ipv4Addr::new(192, 0, 2, d), shards)] += 1;
        }
        assert!(
            seen.iter().all(|&n| n > 0),
            "64 consecutive addresses left a shard empty: {seen:?}"
        );
    }

    #[test]
    fn waker_roundtrip_wakes_parked_thread() {
        let waker = Arc::new(ShardWaker::default());
        let ready = Arc::new(AtomicBool::new(false));
        let handle = std::thread::spawn({
            let waker = Arc::clone(&waker);
            let ready = Arc::clone(&ready);
            move || {
                waker.register();
                // Park with no work: only the producer's wake (or the
                // generous timeout) ends this.
                waker.park(|| ready.load(Ordering::SeqCst), Duration::from_secs(5));
                ready.load(Ordering::SeqCst)
            }
        });
        std::thread::sleep(Duration::from_millis(50));
        ready.store(true, Ordering::SeqCst);
        waker.wake();
        assert!(handle.join().unwrap(), "parked thread saw the work");
    }

    #[test]
    fn waker_skips_park_when_work_arrives_first() {
        let waker = ShardWaker::default();
        waker.register();
        let start = Instant::now();
        let outcome = waker.park(|| true, Duration::from_secs(5));
        assert!(start.elapsed() < Duration::from_secs(1));
        assert!(outcome.is_none(), "skipped park reports no outcome");
    }

    #[test]
    fn park_outcome_carries_wake_latency() {
        let waker = Arc::new(ShardWaker::default());
        let handle = std::thread::spawn({
            let waker = Arc::clone(&waker);
            move || {
                waker.register();
                waker.park(|| false, Duration::from_secs(5))
            }
        });
        std::thread::sleep(Duration::from_millis(50));
        waker.wake();
        let outcome = handle.join().unwrap().expect("the loop really parked");
        assert!(outcome.slept >= Duration::from_millis(10));
        let latency = outcome
            .wake_latency
            .expect("ended by a wake, not a timeout");
        assert!(latency < Duration::from_secs(1), "latency {latency:?}");
    }

    #[test]
    fn timeout_park_has_no_wake_latency() {
        let waker = ShardWaker::default();
        waker.register();
        let outcome = waker
            .park(|| false, Duration::from_millis(20))
            .expect("parked");
        assert!(outcome.slept >= Duration::from_millis(10));
        assert!(outcome.wake_latency.is_none());
    }
}
