//! Hierarchical timer wheel for per-probe deadlines.
//!
//! The reactor keeps thousands of probes in flight, each with a retransmit
//! deadline and possibly a scheduled (rate-limited or backed-off) send. A
//! heap would cost `O(log n)` per operation and, worse, per-timer
//! cancellation bookkeeping; the classic alternative (Varghese & Lauck) is
//! a *hierarchical timing wheel*: constant-time insert, timers hashed into
//! slots by expiry tick, far timers parked in coarser wheels and cascaded
//! inward as time passes.
//!
//! The wheel is deliberately clock-free: callers feed it *ticks* (the
//! reactor converts `Instant`s at one place). Cancellation is lazy — the
//! reactor validates each expired entry against its correlation slot
//! generation, so cancelled timers simply fire into the void.

/// Slots per level. 64 keeps slot indices to a 6-bit shift per level.
const SLOTS: usize = 64;
const SLOT_BITS: u32 = 6;
/// Levels: spans of 64, 4 096 and 262 144 ticks (≈ 4.4 min at 1 ms/tick),
/// beyond which deadlines are clamped into the outermost wheel and
/// re-cascaded as they approach.
const LEVELS: usize = 3;

/// A hierarchical timing wheel holding values of type `T`.
///
/// All deadlines are absolute tick numbers; `advance` drains every entry
/// whose deadline is at or before the new current tick.
#[derive(Debug)]
pub struct TimerWheel<T> {
    levels: [Vec<Vec<(u64, T)>>; LEVELS],
    /// Entries already due when scheduled; drained on the next advance.
    overdue: Vec<T>,
    now: u64,
    len: usize,
}

impl<T> TimerWheel<T> {
    /// An empty wheel positioned at tick `now`.
    pub fn new(now: u64) -> TimerWheel<T> {
        TimerWheel {
            levels: std::array::from_fn(|_| (0..SLOTS).map(|_| Vec::new()).collect()),
            overdue: Vec::new(),
            now,
            len: 0,
        }
    }

    /// Currently scheduled (not yet expired) timers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no timers are scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The wheel's current tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Schedules `value` to expire at absolute tick `deadline`. A deadline
    /// at or before the current tick fires on the next [`advance`](Self::advance).
    pub fn schedule(&mut self, deadline: u64, value: T) {
        self.len += 1;
        if deadline <= self.now {
            self.overdue.push(value);
            return;
        }
        let delta = deadline - self.now;
        // Pick the finest level whose span covers the delta; the slot is
        // indexed by the deadline's digits at that level, so the entry
        // fires (or cascades) exactly when the wheel reaches it.
        let level = match delta {
            d if d < (1 << SLOT_BITS) => 0,
            d if d < (1 << (2 * SLOT_BITS)) => 1,
            _ => 2,
        };
        let clamped = if level == LEVELS - 1 {
            // Far future: park in the outermost wheel's farthest slot and
            // re-cascade when it comes around.
            deadline.min(self.now + (1 << (3 * SLOT_BITS)) - 1)
        } else {
            deadline
        };
        let slot = (clamped >> (SLOT_BITS * level as u32)) as usize % SLOTS;
        self.levels[level][slot].push((deadline, value));
    }

    /// Advances the wheel to `now`, appending every expired value to
    /// `expired` (in no particular order). Ticks before the current tick
    /// are ignored.
    pub fn advance(&mut self, now: u64, expired: &mut Vec<T>) {
        self.advance_filtered(now, expired, |_| true);
    }

    /// Like [`advance`](Self::advance), but entries for which `live`
    /// returns `false` are dropped instead of expired — at cascade time
    /// as well as at their deadline.
    ///
    /// Cancellation in this wheel is lazy (cancelled timers keep their
    /// slot until they fire), which is free for short timers but lets a
    /// busy reactor accumulate thousands of dead retransmit deadlines
    /// that coarser wheels keep cascading inward. Passing the liveness
    /// check here sheds them at the first wheel touch instead of
    /// carrying them to expiry. `live` is advisory: the caller must
    /// still validate expired values, since handling one expiry can
    /// invalidate another entry already appended to `expired`.
    pub fn advance_filtered(
        &mut self,
        now: u64,
        expired: &mut Vec<T>,
        mut live: impl FnMut(&T) -> bool,
    ) {
        self.drain_overdue(expired, &mut live);
        while self.now < now {
            self.now += 1;
            let tick = self.now;
            // Cascade coarser wheels at their boundaries *before* draining
            // the fine slot, so a cascaded entry due this very tick fires.
            if tick.trailing_zeros() >= SLOT_BITS {
                self.cascade(1, ((tick >> SLOT_BITS) % SLOTS as u64) as usize, &mut live);
            }
            if tick.trailing_zeros() >= 2 * SLOT_BITS {
                self.cascade(
                    2,
                    ((tick >> (2 * SLOT_BITS)) % SLOTS as u64) as usize,
                    &mut live,
                );
            }
            // A cascade may re-file an entry due at this very tick into
            // `overdue`; drain it in the same pass.
            self.drain_overdue(expired, &mut live);
            let slot = (tick % SLOTS as u64) as usize;
            for (deadline, value) in self.levels[0][slot].drain(..) {
                debug_assert!(deadline <= tick);
                self.len -= 1;
                if live(&value) {
                    expired.push(value);
                }
            }
        }
    }

    fn drain_overdue(&mut self, expired: &mut Vec<T>, live: &mut impl FnMut(&T) -> bool) {
        self.len -= self.overdue.len();
        for value in self.overdue.drain(..) {
            if live(&value) {
                expired.push(value);
            }
        }
    }

    /// Re-files every live entry of `levels[level][slot]` into a finer
    /// wheel (or, for clamped far-future entries, back into this one);
    /// dead entries are dropped here instead of riding the cascade.
    fn cascade(&mut self, level: usize, slot: usize, live: &mut impl FnMut(&T) -> bool) {
        let entries = std::mem::take(&mut self.levels[level][slot]);
        for (deadline, value) in entries {
            self.len -= 1;
            if live(&value) {
                self.schedule(deadline, value);
            }
        }
    }

    /// A tick at or before the earliest pending expiry — the longest the
    /// caller may sleep without missing a timer. `None` when the wheel is
    /// empty. The bound is exact for timers within the current fine-wheel
    /// window and conservative (the next cascade boundary) beyond it.
    pub fn next_due(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        if !self.overdue.is_empty() {
            return Some(self.now);
        }
        for k in 1..=SLOTS as u64 {
            let tick = self.now + k;
            if !self.levels[0][(tick % SLOTS as u64) as usize].is_empty() {
                return Some(tick);
            }
        }
        // Nothing fine-grained: wake at the next level-1 cascade boundary
        // (≤ 64 ticks away); coarser entries are ≥ one full window out.
        Some((self.now | ((1 << SLOT_BITS) - 1)) + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut TimerWheel<u64>, to: u64) -> Vec<u64> {
        let mut out = Vec::new();
        w.advance(to, &mut out);
        out.sort_unstable();
        out
    }

    #[test]
    fn fires_at_exact_ticks() {
        let mut w = TimerWheel::new(0);
        for deadline in [1u64, 5, 63, 64, 100] {
            w.schedule(deadline, deadline);
        }
        assert_eq!(w.len(), 5);
        assert_eq!(drain(&mut w, 4), vec![1]);
        assert_eq!(drain(&mut w, 63), vec![5, 63]);
        assert_eq!(drain(&mut w, 99), vec![64]);
        assert_eq!(drain(&mut w, 100), vec![100]);
        assert!(w.is_empty());
    }

    #[test]
    fn overdue_fires_immediately() {
        let mut w = TimerWheel::new(50);
        w.schedule(50, 1);
        w.schedule(10, 2);
        assert_eq!(drain(&mut w, 50), vec![1, 2]);
    }

    #[test]
    fn cascades_across_all_levels() {
        let mut w = TimerWheel::new(0);
        // One per level, plus one beyond the outermost span (clamped).
        let deadlines = [40u64, 1_000, 100_000, 1 << 20];
        for &d in &deadlines {
            w.schedule(d, d);
        }
        for &d in &deadlines {
            let before = drain(&mut w, d - 1);
            assert!(before.is_empty(), "{d}: fired early: {before:?}");
            assert_eq!(drain(&mut w, d), vec![d], "{d}: did not fire on time");
        }
        assert!(w.is_empty());
    }

    #[test]
    fn many_timers_in_one_slot() {
        let mut w = TimerWheel::new(0);
        for i in 0..100u64 {
            w.schedule(7, i);
        }
        let fired = drain(&mut w, 7);
        assert_eq!(fired.len(), 100);
    }

    #[test]
    fn next_due_bounds_the_sleep() {
        let mut w = TimerWheel::new(0);
        assert_eq!(w.next_due(), None);
        w.schedule(30, 1);
        assert_eq!(w.next_due(), Some(30));
        // A far timer alone: conservative bound, never past the deadline.
        let mut far = TimerWheel::new(0);
        far.schedule(5_000, 1);
        let due = far.next_due().unwrap();
        assert!(due <= 5_000 && due > 0);
        // Following the bound repeatedly reaches the timer.
        let mut hops = 0;
        let mut out = Vec::new();
        while !far.is_empty() {
            let t = far.next_due().unwrap();
            far.advance(t, &mut out);
            hops += 1;
            assert!(hops < 200, "next_due loops without progress");
        }
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn filtered_advance_drops_dead_entries() {
        let mut w = TimerWheel::new(0);
        for i in 0..10u64 {
            w.schedule(5, i);
        }
        let mut out = Vec::new();
        w.advance_filtered(5, &mut out, |&v| v % 2 == 0);
        out.sort_unstable();
        assert_eq!(out, vec![0, 2, 4, 6, 8]);
        assert!(w.is_empty(), "dead entries must leave the wheel");
    }

    #[test]
    fn filtered_cascade_sheds_before_expiry() {
        let mut w = TimerWheel::new(0);
        // Far timers parked in a coarse wheel; all dead by cascade time.
        for i in 0..50u64 {
            w.schedule(1_000, i);
        }
        assert_eq!(w.len(), 50);
        let mut out = Vec::new();
        // Advance past the level-1 cascade boundary but short of expiry:
        // the dead entries must be dropped at the cascade, not at 1000.
        w.advance_filtered(999, &mut out, |_| false);
        assert!(out.is_empty());
        assert!(w.is_empty(), "cascade must shed dead entries");
        // Overdue entries are filtered too.
        w.schedule(10, 7);
        w.advance_filtered(999, &mut out, |_| true);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn interleaved_schedule_and_advance() {
        let mut w = TimerWheel::new(0);
        let mut fired = Vec::new();
        for round in 1..=500u64 {
            w.schedule(round + 3, round);
            w.advance(round, &mut fired);
        }
        w.advance(504, &mut fired);
        fired.sort_unstable();
        assert_eq!(fired, (1..=500).collect::<Vec<_>>());
    }
}
