//! Token-bucket rate limiting for probe campaigns.
//!
//! Live probing must be polite twice over: a *global* budget caps the
//! engine's aggregate send rate, and a *per-target* budget keeps any single
//! ingress address from seeing a burst even when the global budget would
//! allow it (the paper's measurements deliberately spread load for this
//! reason). Both are classic token buckets; `acquire` blocks the calling
//! worker until both buckets can pay.

use cde_telemetry::{Collector, Metric};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Refill rate and burst capacity of one bucket.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateConfig {
    /// Sustained rate in tokens (probes) per second.
    pub per_second: f64,
    /// Bucket capacity: probes that may be sent back-to-back after idle.
    pub burst: f64,
}

impl RateConfig {
    /// A rate of `per_second` with a small default burst of 4.
    pub fn per_second(per_second: f64) -> RateConfig {
        RateConfig {
            per_second,
            burst: 4.0,
        }
    }
}

#[derive(Debug)]
struct Bucket {
    tokens: f64,
    last_refill: Instant,
}

impl Bucket {
    fn full(cfg: &RateConfig) -> Bucket {
        Bucket {
            tokens: cfg.burst,
            last_refill: Instant::now(),
        }
    }

    /// Takes `n` tokens at once — one bucket update for a whole send
    /// batch instead of `n` lock round-trips.
    fn debit_n(&mut self, cfg: &RateConfig, n: u32) -> Duration {
        let now = Instant::now();
        let elapsed = now.duration_since(self.last_refill).as_secs_f64();
        self.tokens = (self.tokens + elapsed * cfg.per_second).min(cfg.burst);
        self.last_refill = now;
        self.tokens -= f64::from(n);
        if self.tokens >= 0.0 {
            Duration::ZERO
        } else {
            // The deficit is repaid by future refill; the caller sleeps
            // until the bucket is whole again.
            Duration::from_secs_f64(-self.tokens / cfg.per_second)
        }
    }

    /// Returns `tokens` to the bucket, capped at its burst capacity.
    fn refund(&mut self, cfg: &RateConfig, tokens: f64) {
        self.tokens = (self.tokens + tokens).min(cfg.burst);
    }
}

/// A global plus optional per-target token-bucket limiter.
///
/// Thread-safe: campaign workers share one limiter behind an `Arc`.
#[derive(Debug)]
pub struct RateLimiter {
    global_cfg: RateConfig,
    global: Mutex<Bucket>,
    per_target_cfg: Option<RateConfig>,
    per_target: Mutex<HashMap<Ipv4Addr, Bucket>>,
    /// Tokens debited (probes paid for), for telemetry.
    tokens_debited: AtomicU64,
    /// Debits that came back with a non-zero wait.
    delayed_debits: AtomicU64,
    /// Cumulative wait imposed across all debits, in microseconds.
    delay_us: AtomicU64,
}

impl RateLimiter {
    /// Creates a limiter with a global budget and, optionally, a separate
    /// budget applied to each distinct target address.
    pub fn new(global: RateConfig, per_target: Option<RateConfig>) -> RateLimiter {
        RateLimiter {
            global: Mutex::new(Bucket::full(&global)),
            global_cfg: global,
            per_target_cfg: per_target,
            per_target: Mutex::new(HashMap::new()),
            tokens_debited: AtomicU64::new(0),
            delayed_debits: AtomicU64::new(0),
            delay_us: AtomicU64::new(0),
        }
    }

    fn record_debit(&self, n: u32, wait: Duration) {
        self.tokens_debited
            .fetch_add(u64::from(n), Ordering::Relaxed);
        if !wait.is_zero() {
            self.delayed_debits.fetch_add(1, Ordering::Relaxed);
            self.delay_us.fetch_add(
                wait.as_micros().min(u128::from(u64::MAX)) as u64,
                Ordering::Relaxed,
            );
        }
    }

    /// Computes the wait needed to send one probe to `target` now and
    /// debits both buckets. Does not sleep.
    pub fn debit(&self, target: Ipv4Addr) -> Duration {
        self.debit_n(target, 1)
    }

    /// Batch-aware token take: debits `n` probes to `target` in one
    /// bucket update and returns the wait the *batch* must absorb before
    /// it is within budget. The reactor pays this by scheduling the
    /// batch's sends after the returned delay instead of sleeping.
    pub fn debit_n(&self, target: Ipv4Addr, n: u32) -> Duration {
        if n == 0 {
            return Duration::ZERO;
        }
        let global_wait = self.global.lock().debit_n(&self.global_cfg, n);
        let target_wait = match &self.per_target_cfg {
            Some(cfg) => self
                .per_target
                .lock()
                .entry(target)
                .or_insert_with(|| Bucket::full(cfg))
                .debit_n(cfg, n),
            None => Duration::ZERO,
        };
        if target_wait > global_wait {
            // The per-target bucket defers this batch further into the
            // future than the global budget does. Keeping the global
            // tokens debited *now* would let one slow target hold the
            // shared budget hostage — other targets stall for capacity
            // this batch cannot use until `target_wait` passes. Global
            // refill arriving during that extra wait pays for the batch
            // instead, so hand the difference back (equivalent to
            // charging the global bucket at actual send time).
            let covered = (target_wait - global_wait).as_secs_f64() * self.global_cfg.per_second;
            self.global
                .lock()
                .refund(&self.global_cfg, f64::from(n).min(covered));
        }
        let wait = global_wait.max(target_wait);
        self.record_debit(n, wait);
        wait
    }

    /// Blocks until one probe to `target` is within budget; returns the
    /// time actually waited.
    pub fn acquire(&self, target: Ipv4Addr) -> Duration {
        let wait = self.debit(target);
        if !wait.is_zero() {
            std::thread::sleep(wait);
        }
        wait
    }

    /// Tokens debited so far (probes paid for).
    pub fn tokens_debited(&self) -> u64 {
        self.tokens_debited.load(Ordering::Relaxed)
    }

    /// Debits that imposed a non-zero wait.
    pub fn delayed_debits(&self) -> u64 {
        self.delayed_debits.load(Ordering::Relaxed)
    }

    /// Cumulative wait imposed on callers.
    pub fn total_delay(&self) -> Duration {
        Duration::from_micros(self.delay_us.load(Ordering::Relaxed))
    }
}

impl Collector for RateLimiter {
    fn collect(&self, out: &mut Vec<Metric>) {
        out.push(Metric::counter(
            "cde_ratelimit_tokens_total",
            "Probe tokens debited from the rate limiter",
            self.tokens_debited(),
        ));
        out.push(Metric::counter(
            "cde_ratelimit_delayed_debits_total",
            "Debits that imposed a non-zero pacing wait",
            self.delayed_debits(),
        ));
        out.push(Metric::counter(
            "cde_ratelimit_delay_us_total",
            "Cumulative pacing wait imposed, in microseconds",
            self.delay_us.load(Ordering::Relaxed),
        ));
        out.push(Metric::gauge(
            "cde_ratelimit_targets",
            "Distinct targets with a live per-target bucket",
            self.per_target.lock().len() as f64,
        ));
    }
}

/// Per-tenant registration for a [`WeightedRateLimiter`]: a relative
/// weight (share of the global budget) plus an optional absolute cap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantRate {
    /// Relative weight; tenant share = global × weight / Σ weights.
    /// Must be > 0 — every registered tenant always has a non-zero
    /// refill rate, so no tenant can be starved.
    pub weight: f64,
    /// Optional absolute ceiling applied on top of the weighted share.
    pub cap: Option<RateConfig>,
}

impl TenantRate {
    /// A weight-only registration with no absolute cap.
    pub fn weighted(weight: f64) -> TenantRate {
        TenantRate { weight, cap: None }
    }
}

#[derive(Debug)]
struct TenantState {
    rate: TenantRate,
    share_cfg: RateConfig,
    share: Bucket,
    cap: Option<Bucket>,
    debited: u64,
    delay_us: u64,
}

/// A multi-tenant generalisation of [`RateLimiter`]: one global token
/// bucket whose refill is *shared* between tenants in proportion to
/// their weights, with optional per-tenant absolute caps.
///
/// Fairness model:
/// * Each tenant owns a **share bucket** refilled at
///   `global.per_second × weight / Σ weights` — re-derived whenever the
///   tenant set or a weight changes. A tenant can never exceed its
///   share over a sustained window, so a heavy tenant cannot crowd a
///   light one out of the global budget.
/// * Every share rate is strictly positive (weights must be > 0), so
///   scheduling is starvation-free: any tenant that keeps asking is
///   served at least at its share rate.
/// * The **global bucket** still bounds the aggregate, and uses the
///   same held-token refund as [`RateLimiter::debit_n`]: a tenant whose
///   own share defers a probe far into the future hands the global
///   tokens back rather than holding them hostage.
///
/// Thread-safe; campaign workers share one limiter behind an `Arc`.
#[derive(Debug)]
pub struct WeightedRateLimiter {
    global_cfg: RateConfig,
    global: Mutex<Bucket>,
    tenants: Mutex<HashMap<String, TenantState>>,
}

impl WeightedRateLimiter {
    /// A weighted limiter sharing `global` between registered tenants.
    pub fn new(global: RateConfig) -> WeightedRateLimiter {
        WeightedRateLimiter {
            global: Mutex::new(Bucket::full(&global)),
            global_cfg: global,
            tenants: Mutex::new(HashMap::new()),
        }
    }

    /// The global budget all tenant shares are carved from.
    pub fn global_config(&self) -> RateConfig {
        self.global_cfg
    }

    /// Registers `tenant` (or updates its registration) and re-derives
    /// every tenant's share of the global budget.
    ///
    /// # Panics
    ///
    /// Panics if `rate.weight` is not strictly positive and finite —
    /// zero-weight tenants would reintroduce starvation.
    pub fn register(&self, tenant: &str, rate: TenantRate) {
        assert!(
            rate.weight > 0.0 && rate.weight.is_finite(),
            "tenant weight must be positive and finite, got {}",
            rate.weight
        );
        let mut tenants = self.tenants.lock();
        match tenants.get_mut(tenant) {
            Some(state) => {
                state.rate = rate;
                state.cap = rate.cap.map(|cfg| Bucket::full(&cfg));
            }
            None => {
                // Placeholder share; fixed up below once the new weight
                // sum is known.
                let share_cfg = self.global_cfg;
                tenants.insert(
                    tenant.to_owned(),
                    TenantState {
                        rate,
                        share_cfg,
                        share: Bucket::full(&share_cfg),
                        cap: rate.cap.map(|cfg| Bucket::full(&cfg)),
                        debited: 0,
                        delay_us: 0,
                    },
                );
            }
        }
        Self::recompute_shares(&self.global_cfg, &mut tenants);
    }

    /// Re-derives each tenant's share config from the current weights.
    fn recompute_shares(global: &RateConfig, tenants: &mut HashMap<String, TenantState>) {
        let total: f64 = tenants.values().map(|s| s.rate.weight).sum();
        if total <= 0.0 {
            return;
        }
        for state in tenants.values_mut() {
            let fraction = state.rate.weight / total;
            state.share_cfg = RateConfig {
                per_second: global.per_second * fraction,
                // Keep at least one token of headroom so a tiny weight
                // still admits whole probes.
                burst: (global.burst * fraction).max(1.0),
            };
        }
    }

    /// Debits `n` probes from `tenant`'s share (auto-registering it
    /// with weight 1 if unknown), its optional cap, and the global
    /// bucket; returns the wait the caller must absorb before sending.
    /// Does not sleep.
    pub fn debit_n(&self, tenant: &str, n: u32) -> Duration {
        if n == 0 {
            return Duration::ZERO;
        }
        let inner_wait = {
            let mut tenants = self.tenants.lock();
            if !tenants.contains_key(tenant) {
                drop(tenants);
                self.register(tenant, TenantRate::weighted(1.0));
                tenants = self.tenants.lock();
            }
            let state = tenants.get_mut(tenant).expect("registered above");
            let share_wait = state.share.debit_n(&state.share_cfg, n);
            let cap_wait = match (&mut state.cap, state.rate.cap) {
                (Some(bucket), Some(cfg)) => bucket.debit_n(&cfg, n),
                _ => Duration::ZERO,
            };
            state.debited += u64::from(n);
            share_wait.max(cap_wait)
        };
        let global_wait = self.global.lock().debit_n(&self.global_cfg, n);
        if inner_wait > global_wait {
            // Same hostage-avoidance refund as `RateLimiter::debit_n`:
            // tokens this deferred batch cannot use yet go back to the
            // shared pool for other tenants.
            let covered = (inner_wait - global_wait).as_secs_f64() * self.global_cfg.per_second;
            self.global
                .lock()
                .refund(&self.global_cfg, f64::from(n).min(covered));
        }
        let wait = inner_wait.max(global_wait);
        if !wait.is_zero() {
            let mut tenants = self.tenants.lock();
            if let Some(state) = tenants.get_mut(tenant) {
                state.delay_us += wait.as_micros().min(u128::from(u64::MAX)) as u64;
            }
        }
        wait
    }

    /// Blocks until one probe from `tenant` is within budget; returns
    /// the time actually waited.
    pub fn acquire(&self, tenant: &str) -> Duration {
        let wait = self.debit_n(tenant, 1);
        if !wait.is_zero() {
            std::thread::sleep(wait);
        }
        wait
    }

    /// Tokens debited by `tenant` so far.
    pub fn tenant_debited(&self, tenant: &str) -> u64 {
        self.tenants.lock().get(tenant).map_or(0, |s| s.debited)
    }

    /// The share rate currently derived for `tenant`, if registered.
    pub fn tenant_share(&self, tenant: &str) -> Option<RateConfig> {
        self.tenants.lock().get(tenant).map(|s| s.share_cfg)
    }
}

/// Per-tenant token counters and derived share rates, labelled by
/// tenant so one scrape shows how the global budget is being split.
impl Collector for WeightedRateLimiter {
    fn collect(&self, out: &mut Vec<Metric>) {
        let tenants = self.tenants.lock();
        let mut names: Vec<&String> = tenants.keys().collect();
        names.sort();
        for name in names {
            let state = &tenants[name];
            out.push(
                Metric::counter(
                    "cde_ratelimit_tenant_tokens_total",
                    "Probe tokens debited per tenant",
                    state.debited,
                )
                .with_label("tenant", name.clone()),
            );
            out.push(
                Metric::counter(
                    "cde_ratelimit_tenant_delay_us_total",
                    "Cumulative pacing wait imposed per tenant, microseconds",
                    state.delay_us,
                )
                .with_label("tenant", name.clone()),
            );
            out.push(
                Metric::gauge(
                    "cde_ratelimit_tenant_share_per_second",
                    "Weighted share of the global probe budget, probes/s",
                    state.share_cfg.per_second,
                )
                .with_label("tenant", name.clone()),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn ip(d: u8) -> Ipv4Addr {
        Ipv4Addr::new(192, 0, 2, d)
    }

    #[test]
    fn burst_is_free_then_rate_applies() {
        let limiter = RateLimiter::new(
            RateConfig {
                per_second: 1000.0,
                burst: 8.0,
            },
            None,
        );
        for _ in 0..8 {
            assert_eq!(limiter.debit(ip(1)), Duration::ZERO);
        }
        // The ninth probe must wait roughly one refill period.
        let wait = limiter.debit(ip(1));
        assert!(wait > Duration::ZERO);
        assert!(wait <= Duration::from_millis(5));
    }

    #[test]
    fn per_target_budget_bites_before_global() {
        let limiter = RateLimiter::new(
            RateConfig {
                per_second: 1_000_000.0,
                burst: 1000.0,
            },
            Some(RateConfig {
                per_second: 100.0,
                burst: 1.0,
            }),
        );
        assert_eq!(limiter.debit(ip(1)), Duration::ZERO);
        // Second probe to the same target exceeds its budget...
        assert!(limiter.debit(ip(1)) > Duration::ZERO);
        // ...while a different target still has its own burst.
        assert_eq!(limiter.debit(ip(2)), Duration::ZERO);
    }

    #[test]
    fn batch_debit_equals_serial_debits() {
        let cfg = RateConfig {
            per_second: 1000.0,
            burst: 8.0,
        };
        let serial = RateLimiter::new(cfg, None);
        let batch = RateLimiter::new(cfg, None);
        let mut serial_wait = Duration::ZERO;
        for _ in 0..12 {
            serial_wait = serial_wait.max(serial.debit(ip(1)));
        }
        let batch_wait = batch.debit_n(ip(1), 12);
        // 12 probes against a burst of 8 at 1000/s: both shapes owe the
        // refill time of the 4-token deficit (~4 ms), modulo timing noise.
        assert!(batch_wait > Duration::from_millis(2));
        assert!(serial_wait > Duration::from_millis(2));
        let diff = batch_wait.abs_diff(serial_wait);
        assert!(diff < Duration::from_millis(2), "diff {diff:?}");
        assert_eq!(batch.debit_n(ip(1), 0), Duration::ZERO);
    }

    #[test]
    fn debit_counters_feed_the_collector() {
        let limiter = RateLimiter::new(
            RateConfig {
                per_second: 1000.0,
                burst: 2.0,
            },
            Some(RateConfig {
                per_second: 1000.0,
                burst: 2.0,
            }),
        );
        limiter.debit(ip(1));
        limiter.debit_n(ip(2), 4); // exceeds the burst → delayed
        assert_eq!(limiter.tokens_debited(), 5);
        assert_eq!(limiter.delayed_debits(), 1);
        assert!(limiter.total_delay() > Duration::ZERO);
        let mut out = Vec::new();
        limiter.collect(&mut out);
        let targets = out
            .iter()
            .find(|m| m.name == "cde_ratelimit_targets")
            .unwrap();
        assert!(
            matches!(targets.value, cde_telemetry::MetricValue::Gauge(v) if v == 2.0),
            "two per-target buckets expected"
        );
    }

    #[test]
    fn exhausted_per_target_bucket_does_not_hold_global_hostage() {
        let limiter = RateLimiter::new(
            RateConfig {
                per_second: 100.0,
                burst: 8.0,
            },
            Some(RateConfig {
                per_second: 1.0,
                burst: 1.0,
            }),
        );
        // Eight probes to one target: its 1-token/s bucket defers the
        // batch ~7 s out — far beyond anything the global bucket
        // constrains. Those global tokens are refunded because refill
        // arriving during the per-target wait pays for the batch.
        let slow = limiter.debit_n(ip(1), 8);
        assert!(slow >= Duration::from_secs(5), "got {slow:?}");
        // The global burst must still be available to other targets.
        // Before the refund fix these eight tokens were gone and ip(2)
        // stalled behind a target it shares nothing with.
        assert_eq!(limiter.debit(ip(2)), Duration::ZERO);
    }

    #[test]
    fn weighted_shares_split_the_global_budget() {
        let limiter = WeightedRateLimiter::new(RateConfig {
            per_second: 400.0,
            burst: 8.0,
        });
        limiter.register("light", TenantRate::weighted(1.0));
        limiter.register("heavy", TenantRate::weighted(3.0));
        let light = limiter.tenant_share("light").unwrap();
        let heavy = limiter.tenant_share("heavy").unwrap();
        assert!((light.per_second - 100.0).abs() < 1e-9);
        assert!((heavy.per_second - 300.0).abs() < 1e-9);
        // Registering a third tenant re-derives everyone's share.
        limiter.register("mid", TenantRate::weighted(4.0));
        let light = limiter.tenant_share("light").unwrap();
        assert!((light.per_second - 50.0).abs() < 1e-9);
    }

    #[test]
    fn tenant_cap_binds_below_the_share() {
        let limiter = WeightedRateLimiter::new(RateConfig {
            per_second: 10_000.0,
            burst: 1000.0,
        });
        limiter.register(
            "capped",
            TenantRate {
                weight: 1.0,
                cap: Some(RateConfig {
                    per_second: 100.0,
                    burst: 1.0,
                }),
            },
        );
        assert_eq!(limiter.debit_n("capped", 1), Duration::ZERO);
        // The share would allow far more, but the absolute cap bites.
        assert!(limiter.debit_n("capped", 1) > Duration::ZERO);
    }

    #[test]
    fn slow_tenant_does_not_starve_fast_tenant() {
        let limiter = WeightedRateLimiter::new(RateConfig {
            per_second: 100.0,
            burst: 8.0,
        });
        limiter.register(
            "slow",
            TenantRate {
                weight: 1.0,
                cap: Some(RateConfig {
                    per_second: 1.0,
                    burst: 1.0,
                }),
            },
        );
        limiter.register("fast", TenantRate::weighted(1.0));
        // "slow" asks for a burst its cap defers seconds into the
        // future; the refund keeps the global pool whole for "fast".
        let deferred = limiter.debit_n("slow", 8);
        assert!(deferred >= Duration::from_secs(5), "got {deferred:?}");
        assert_eq!(limiter.debit_n("fast", 1), Duration::ZERO);
    }

    #[test]
    fn unknown_tenant_is_auto_registered_and_counted() {
        let limiter = WeightedRateLimiter::new(RateConfig {
            per_second: 1000.0,
            burst: 8.0,
        });
        assert_eq!(limiter.debit_n("walk-in", 2), Duration::ZERO);
        assert_eq!(limiter.tenant_debited("walk-in"), 2);
        let mut out = Vec::new();
        limiter.collect(&mut out);
        let tokens = out
            .iter()
            .find(|m| m.name == "cde_ratelimit_tenant_tokens_total")
            .expect("per-tenant counter exported");
        assert!(tokens
            .labels
            .iter()
            .any(|(k, v)| *k == "tenant" && v == "walk-in"));
    }

    #[test]
    fn weighted_acquire_paces_tenants_by_weight() {
        let limiter = Arc::new(WeightedRateLimiter::new(RateConfig {
            per_second: 4000.0,
            burst: 1.0,
        }));
        limiter.register("light", TenantRate::weighted(1.0));
        limiter.register("heavy", TenantRate::weighted(3.0));
        let run = |tenant: &'static str| {
            let limiter = Arc::clone(&limiter);
            std::thread::spawn(move || {
                let t0 = Instant::now();
                let mut sent = 0u64;
                while t0.elapsed() < Duration::from_millis(250) {
                    limiter.acquire(tenant);
                    sent += 1;
                }
                sent
            })
        };
        let light = run("light");
        let heavy = run("heavy");
        let light = light.join().unwrap() as f64;
        let heavy = heavy.join().unwrap() as f64;
        let ratio = heavy / light.max(1.0);
        // Weights 1:3 → sustained throughput ratio ≈ 3, generous slack
        // for scheduler noise on loaded CI machines.
        assert!(
            (1.8..=5.0).contains(&ratio),
            "heavy/light ratio {ratio:.2} (heavy {heavy}, light {light})"
        );
    }

    #[test]
    fn sustained_rate_converges() {
        let limiter = RateLimiter::new(
            RateConfig {
                per_second: 2000.0,
                burst: 1.0,
            },
            None,
        );
        let t0 = Instant::now();
        for _ in 0..20 {
            limiter.acquire(ip(1));
        }
        // 20 probes at 2000/s need ≥ ~9.5 ms (first is burst).
        assert!(t0.elapsed() >= Duration::from_millis(7));
    }
}
