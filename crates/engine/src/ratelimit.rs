//! Token-bucket rate limiting for probe campaigns.
//!
//! Live probing must be polite twice over: a *global* budget caps the
//! engine's aggregate send rate, and a *per-target* budget keeps any single
//! ingress address from seeing a burst even when the global budget would
//! allow it (the paper's measurements deliberately spread load for this
//! reason). Both are classic token buckets; `acquire` blocks the calling
//! worker until both buckets can pay.

use cde_telemetry::{Collector, Metric};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Refill rate and burst capacity of one bucket.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateConfig {
    /// Sustained rate in tokens (probes) per second.
    pub per_second: f64,
    /// Bucket capacity: probes that may be sent back-to-back after idle.
    pub burst: f64,
}

impl RateConfig {
    /// A rate of `per_second` with a small default burst of 4.
    pub fn per_second(per_second: f64) -> RateConfig {
        RateConfig {
            per_second,
            burst: 4.0,
        }
    }
}

#[derive(Debug)]
struct Bucket {
    tokens: f64,
    last_refill: Instant,
}

impl Bucket {
    fn full(cfg: &RateConfig) -> Bucket {
        Bucket {
            tokens: cfg.burst,
            last_refill: Instant::now(),
        }
    }

    /// Takes one token, returning how long the caller must wait first.
    fn debit(&mut self, cfg: &RateConfig) -> Duration {
        self.debit_n(cfg, 1)
    }

    /// Takes `n` tokens at once — one bucket update for a whole send
    /// batch instead of `n` lock round-trips.
    fn debit_n(&mut self, cfg: &RateConfig, n: u32) -> Duration {
        let now = Instant::now();
        let elapsed = now.duration_since(self.last_refill).as_secs_f64();
        self.tokens = (self.tokens + elapsed * cfg.per_second).min(cfg.burst);
        self.last_refill = now;
        self.tokens -= f64::from(n);
        if self.tokens >= 0.0 {
            Duration::ZERO
        } else {
            // The deficit is repaid by future refill; the caller sleeps
            // until the bucket is whole again.
            Duration::from_secs_f64(-self.tokens / cfg.per_second)
        }
    }
}

/// A global plus optional per-target token-bucket limiter.
///
/// Thread-safe: campaign workers share one limiter behind an `Arc`.
#[derive(Debug)]
pub struct RateLimiter {
    global_cfg: RateConfig,
    global: Mutex<Bucket>,
    per_target_cfg: Option<RateConfig>,
    per_target: Mutex<HashMap<Ipv4Addr, Bucket>>,
    /// Tokens debited (probes paid for), for telemetry.
    tokens_debited: AtomicU64,
    /// Debits that came back with a non-zero wait.
    delayed_debits: AtomicU64,
    /// Cumulative wait imposed across all debits, in microseconds.
    delay_us: AtomicU64,
}

impl RateLimiter {
    /// Creates a limiter with a global budget and, optionally, a separate
    /// budget applied to each distinct target address.
    pub fn new(global: RateConfig, per_target: Option<RateConfig>) -> RateLimiter {
        RateLimiter {
            global: Mutex::new(Bucket::full(&global)),
            global_cfg: global,
            per_target_cfg: per_target,
            per_target: Mutex::new(HashMap::new()),
            tokens_debited: AtomicU64::new(0),
            delayed_debits: AtomicU64::new(0),
            delay_us: AtomicU64::new(0),
        }
    }

    fn record_debit(&self, n: u32, wait: Duration) {
        self.tokens_debited
            .fetch_add(u64::from(n), Ordering::Relaxed);
        if !wait.is_zero() {
            self.delayed_debits.fetch_add(1, Ordering::Relaxed);
            self.delay_us.fetch_add(
                wait.as_micros().min(u128::from(u64::MAX)) as u64,
                Ordering::Relaxed,
            );
        }
    }

    /// Computes the wait needed to send one probe to `target` now and
    /// debits both buckets. Does not sleep.
    pub fn debit(&self, target: Ipv4Addr) -> Duration {
        let global_wait = self.global.lock().debit(&self.global_cfg);
        let target_wait = match &self.per_target_cfg {
            Some(cfg) => self
                .per_target
                .lock()
                .entry(target)
                .or_insert_with(|| Bucket::full(cfg))
                .debit(cfg),
            None => Duration::ZERO,
        };
        let wait = global_wait.max(target_wait);
        self.record_debit(1, wait);
        wait
    }

    /// Batch-aware token take: debits `n` probes to `target` in one
    /// bucket update and returns the wait the *batch* must absorb before
    /// it is within budget. The reactor pays this by scheduling the
    /// batch's sends after the returned delay instead of sleeping.
    pub fn debit_n(&self, target: Ipv4Addr, n: u32) -> Duration {
        if n == 0 {
            return Duration::ZERO;
        }
        let global_wait = self.global.lock().debit_n(&self.global_cfg, n);
        let target_wait = match &self.per_target_cfg {
            Some(cfg) => self
                .per_target
                .lock()
                .entry(target)
                .or_insert_with(|| Bucket::full(cfg))
                .debit_n(cfg, n),
            None => Duration::ZERO,
        };
        let wait = global_wait.max(target_wait);
        self.record_debit(n, wait);
        wait
    }

    /// Blocks until one probe to `target` is within budget; returns the
    /// time actually waited.
    pub fn acquire(&self, target: Ipv4Addr) -> Duration {
        let wait = self.debit(target);
        if !wait.is_zero() {
            std::thread::sleep(wait);
        }
        wait
    }

    /// Tokens debited so far (probes paid for).
    pub fn tokens_debited(&self) -> u64 {
        self.tokens_debited.load(Ordering::Relaxed)
    }

    /// Debits that imposed a non-zero wait.
    pub fn delayed_debits(&self) -> u64 {
        self.delayed_debits.load(Ordering::Relaxed)
    }

    /// Cumulative wait imposed on callers.
    pub fn total_delay(&self) -> Duration {
        Duration::from_micros(self.delay_us.load(Ordering::Relaxed))
    }
}

impl Collector for RateLimiter {
    fn collect(&self, out: &mut Vec<Metric>) {
        out.push(Metric::counter(
            "cde_ratelimit_tokens_total",
            "Probe tokens debited from the rate limiter",
            self.tokens_debited(),
        ));
        out.push(Metric::counter(
            "cde_ratelimit_delayed_debits_total",
            "Debits that imposed a non-zero pacing wait",
            self.delayed_debits(),
        ));
        out.push(Metric::counter(
            "cde_ratelimit_delay_us_total",
            "Cumulative pacing wait imposed, in microseconds",
            self.delay_us.load(Ordering::Relaxed),
        ));
        out.push(Metric::gauge(
            "cde_ratelimit_targets",
            "Distinct targets with a live per-target bucket",
            self.per_target.lock().len() as f64,
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(d: u8) -> Ipv4Addr {
        Ipv4Addr::new(192, 0, 2, d)
    }

    #[test]
    fn burst_is_free_then_rate_applies() {
        let limiter = RateLimiter::new(
            RateConfig {
                per_second: 1000.0,
                burst: 8.0,
            },
            None,
        );
        for _ in 0..8 {
            assert_eq!(limiter.debit(ip(1)), Duration::ZERO);
        }
        // The ninth probe must wait roughly one refill period.
        let wait = limiter.debit(ip(1));
        assert!(wait > Duration::ZERO);
        assert!(wait <= Duration::from_millis(5));
    }

    #[test]
    fn per_target_budget_bites_before_global() {
        let limiter = RateLimiter::new(
            RateConfig {
                per_second: 1_000_000.0,
                burst: 1000.0,
            },
            Some(RateConfig {
                per_second: 100.0,
                burst: 1.0,
            }),
        );
        assert_eq!(limiter.debit(ip(1)), Duration::ZERO);
        // Second probe to the same target exceeds its budget...
        assert!(limiter.debit(ip(1)) > Duration::ZERO);
        // ...while a different target still has its own burst.
        assert_eq!(limiter.debit(ip(2)), Duration::ZERO);
    }

    #[test]
    fn batch_debit_equals_serial_debits() {
        let cfg = RateConfig {
            per_second: 1000.0,
            burst: 8.0,
        };
        let serial = RateLimiter::new(cfg, None);
        let batch = RateLimiter::new(cfg, None);
        let mut serial_wait = Duration::ZERO;
        for _ in 0..12 {
            serial_wait = serial_wait.max(serial.debit(ip(1)));
        }
        let batch_wait = batch.debit_n(ip(1), 12);
        // 12 probes against a burst of 8 at 1000/s: both shapes owe the
        // refill time of the 4-token deficit (~4 ms), modulo timing noise.
        assert!(batch_wait > Duration::from_millis(2));
        assert!(serial_wait > Duration::from_millis(2));
        let diff = batch_wait.abs_diff(serial_wait);
        assert!(diff < Duration::from_millis(2), "diff {diff:?}");
        assert_eq!(batch.debit_n(ip(1), 0), Duration::ZERO);
    }

    #[test]
    fn debit_counters_feed_the_collector() {
        let limiter = RateLimiter::new(
            RateConfig {
                per_second: 1000.0,
                burst: 2.0,
            },
            Some(RateConfig {
                per_second: 1000.0,
                burst: 2.0,
            }),
        );
        limiter.debit(ip(1));
        limiter.debit_n(ip(2), 4); // exceeds the burst → delayed
        assert_eq!(limiter.tokens_debited(), 5);
        assert_eq!(limiter.delayed_debits(), 1);
        assert!(limiter.total_delay() > Duration::ZERO);
        let mut out = Vec::new();
        limiter.collect(&mut out);
        let targets = out
            .iter()
            .find(|m| m.name == "cde_ratelimit_targets")
            .unwrap();
        assert!(
            matches!(targets.value, cde_telemetry::MetricValue::Gauge(v) if v == 2.0),
            "two per-target buckets expected"
        );
    }

    #[test]
    fn sustained_rate_converges() {
        let limiter = RateLimiter::new(
            RateConfig {
                per_second: 2000.0,
                burst: 1.0,
            },
            None,
        );
        let t0 = Instant::now();
        for _ in 0..20 {
            limiter.acquire(ip(1));
        }
        // 20 probes at 2000/s need ≥ ~9.5 ms (first is burst).
        assert!(t0.elapsed() >= Duration::from_millis(7));
    }
}
