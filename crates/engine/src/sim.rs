//! The simulated transport backend.
//!
//! [`SimTransport`] runs the engine interface over an in-process
//! [`ResolutionPlatform`], probing through the same [`DirectProber`] the
//! rest of the workspace uses. It exists so a measurement campaign can be
//! developed, seeded and regression-tested deterministically, then pointed
//! at [`UdpTransport`](crate::udp::UdpTransport) without touching the
//! algorithm code.

use crate::metrics::EngineMetrics;
use crate::transport::{Transport, TransportReply};
use cde_core::AccessProvider;
use cde_dns::{Name, RecordType};
use cde_netsim::SimTime;
use cde_platform::{NameserverNet, ResolutionPlatform, ResolveResult};
use cde_probers::{DirectProber, ProbeReply};
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Duration;

/// [`Transport`] over an in-process simulated platform.
#[derive(Debug)]
pub struct SimTransport {
    prober: DirectProber,
    platform: ResolutionPlatform,
    net: NameserverNet,
    metrics: Arc<EngineMetrics>,
}

impl SimTransport {
    /// Wraps a platform, its authoritative world and a prober.
    pub fn new(
        platform: ResolutionPlatform,
        net: NameserverNet,
        prober: DirectProber,
    ) -> SimTransport {
        SimTransport {
            prober,
            platform,
            net,
            metrics: Arc::new(EngineMetrics::new()),
        }
    }

    /// Ground-truth access to the platform (validation only).
    pub fn platform(&self) -> &ResolutionPlatform {
        &self.platform
    }

    /// The prober's cumulative loss estimate.
    pub fn observed_loss_rate(&self) -> f64 {
        self.prober.observed_loss_rate()
    }

    /// Tears the transport apart, returning the platform and net.
    pub fn into_parts(self) -> (ResolutionPlatform, NameserverNet, DirectProber) {
        (self.platform, self.net, self.prober)
    }
}

impl Transport for SimTransport {
    fn query(
        &mut self,
        ingress: Ipv4Addr,
        qname: &Name,
        qtype: RecordType,
        now: SimTime,
    ) -> TransportReply {
        self.metrics.record_sent();
        match self.prober.probe(
            &mut self.platform,
            ingress,
            qname,
            qtype,
            now,
            &mut self.net,
        ) {
            ProbeReply::Answered {
                result, latency, ..
            } => {
                self.metrics
                    .record_received(Duration::from_micros(latency.as_micros()));
                TransportReply::Answered {
                    latency: Some(latency),
                    rcode: result_rcode(&result),
                }
            }
            ProbeReply::Timeout { .. } => {
                self.metrics.record_timeout();
                TransportReply::TimedOut
            }
        }
    }

    fn net(&self) -> &NameserverNet {
        &self.net
    }

    fn net_mut(&mut self) -> &mut NameserverNet {
        &mut self.net
    }

    fn metrics(&self) -> Arc<EngineMetrics> {
        Arc::clone(&self.metrics)
    }
}

fn result_rcode(result: &ResolveResult) -> cde_dns::Rcode {
    result.rcode()
}

impl AccessProvider for SimTransport {
    type Channel<'a>
        = crate::transport::EngineAccess<'a, SimTransport>
    where
        Self: 'a;

    fn channel(&mut self, ingress: Ipv4Addr) -> Self::Channel<'_> {
        crate::transport::EngineAccess::new(self, ingress)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cde_core::{enumerate_adaptive, AccessChannel, CdeInfra, SurveyOptions};
    use cde_netsim::Link;
    use cde_platform::{PlatformBuilder, SelectorKind};

    fn build(n: usize, seed: u64) -> (SimTransport, CdeInfra, Ipv4Addr) {
        let mut net = NameserverNet::new();
        let infra = CdeInfra::install(&mut net);
        let ingress = Ipv4Addr::new(192, 0, 2, 1);
        let platform = PlatformBuilder::new(seed)
            .ingress(vec![ingress])
            .egress((1..=3).map(|d| Ipv4Addr::new(192, 0, 3, d)).collect())
            .cluster(n, SelectorKind::Random)
            .build();
        let prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), seed);
        (SimTransport::new(platform, net, prober), infra, ingress)
    }

    #[test]
    fn existing_enumeration_runs_unchanged_over_sim_transport() {
        let (mut transport, mut infra, ingress) = build(5, 91);
        let mut access = crate::transport::EngineAccess::new(&mut transport, ingress);
        let e = enumerate_adaptive(
            &mut access,
            &mut infra,
            &SurveyOptions::default(),
            SimTime::ZERO,
        );
        assert_eq!(e.estimated, 5);
        let snap = transport.metrics().snapshot();
        assert!(snap.sent > 0);
        assert_eq!(snap.sent, snap.received);
    }

    #[test]
    fn trigger_reports_latency_and_metrics_count() {
        let (mut transport, mut infra, ingress) = build(1, 92);
        let session = {
            let mut access = crate::transport::EngineAccess::new(&mut transport, ingress);
            infra.new_session(access.net_mut(), 0)
        };
        let mut access = crate::transport::EngineAccess::new(&mut transport, ingress);
        let out = access.trigger(&session.honey, SimTime::ZERO);
        assert!(matches!(
            out,
            cde_core::TriggerOutcome::Delivered { latency: Some(_) }
        ));
        assert_eq!(infra.count_honey_fetches(access.net(), &session.honey), 1);
    }

    #[test]
    fn provider_channels_reach_distinct_ingresses() {
        let mut net = NameserverNet::new();
        let mut infra = CdeInfra::install(&mut net);
        let ing: Vec<Ipv4Addr> = (1..=2).map(|d| Ipv4Addr::new(192, 0, 2, d)).collect();
        let platform = PlatformBuilder::new(93)
            .ingress(ing.clone())
            .egress(vec![Ipv4Addr::new(192, 0, 3, 1)])
            .cluster(1, SelectorKind::Random)
            .cluster(1, SelectorKind::Random)
            .ingress_assignment(vec![0, 1])
            .build();
        let prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 93);
        let mut transport = SimTransport::new(platform, net, prober);
        let mapping = cde_core::map_ingress_to_clusters_with(
            &mut transport,
            &mut infra,
            &ing,
            cde_core::MappingOptions::default(),
            SimTime::ZERO,
        );
        assert_eq!(mapping.cluster_count(), 2);
    }
}
