//! Timeout, retry and backoff policy for wire probes.
//!
//! UDP gives no delivery guarantee, so every probe carries a read deadline
//! and a bounded retransmission schedule. Exponential backoff with jitter
//! avoids retransmit synchronisation across campaign workers — without the
//! jitter, a burst of probes lost to one congestion event would all
//! retransmit in lock-step and lose again.

use rand::Rng;
use std::time::Duration;

/// Retransmission schedule for one probe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, the initial send included. At least 1.
    pub attempts: u32,
    /// Read deadline for the first attempt.
    pub timeout: Duration,
    /// Multiplier applied to the deadline and delay per retry (≥ 1.0).
    pub backoff: f64,
    /// Delay before the first retransmission.
    pub base_delay: Duration,
    /// Jitter fraction in `[0, 1]`: each delay is scaled by a uniform
    /// factor from `[1 − jitter, 1 + jitter]`.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 3,
            timeout: Duration::from_millis(500),
            backoff: 2.0,
            base_delay: Duration::from_millis(20),
            jitter: 0.5,
        }
    }
}

impl RetryPolicy {
    /// A single-attempt policy with the given read deadline.
    pub fn single(timeout: Duration) -> RetryPolicy {
        RetryPolicy {
            attempts: 1,
            timeout,
            ..RetryPolicy::default()
        }
    }

    /// Read deadline for `attempt` (0-based): `timeout · backoff^attempt`.
    pub fn timeout_for(&self, attempt: u32) -> Duration {
        scale(self.timeout, self.backoff.powi(attempt as i32))
    }

    /// Jittered pause before retransmission number `attempt` (1-based;
    /// attempt 0 is the initial send and has no pause).
    pub fn delay_before<R: Rng + ?Sized>(&self, attempt: u32, rng: &mut R) -> Duration {
        if attempt == 0 {
            return Duration::ZERO;
        }
        let base = scale(self.base_delay, self.backoff.powi(attempt as i32 - 1));
        let jitter = self.jitter.clamp(0.0, 1.0);
        let factor = if jitter > 0.0 {
            1.0 - jitter + rng.gen_range(0.0..(2.0 * jitter))
        } else {
            1.0
        };
        scale(base, factor)
    }

    /// Worst-case wall time one probe can consume under this policy.
    pub fn worst_case(&self) -> Duration {
        let mut total = Duration::ZERO;
        for attempt in 0..self.attempts.max(1) {
            total += self.timeout_for(attempt);
            if attempt > 0 {
                // Upper bound of the jittered delay.
                total += scale(
                    scale(self.base_delay, self.backoff.powi(attempt as i32 - 1)),
                    1.0 + self.jitter.clamp(0.0, 1.0),
                );
            }
        }
        total
    }
}

fn scale(d: Duration, factor: f64) -> Duration {
    Duration::from_secs_f64((d.as_secs_f64() * factor).max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cde_netsim::DetRng;

    #[test]
    fn deadlines_grow_exponentially() {
        let p = RetryPolicy {
            attempts: 3,
            timeout: Duration::from_millis(100),
            backoff: 2.0,
            base_delay: Duration::from_millis(10),
            jitter: 0.0,
        };
        assert_eq!(p.timeout_for(0), Duration::from_millis(100));
        assert_eq!(p.timeout_for(1), Duration::from_millis(200));
        assert_eq!(p.timeout_for(2), Duration::from_millis(400));
    }

    #[test]
    fn jitter_spreads_delays() {
        let p = RetryPolicy {
            jitter: 0.5,
            ..RetryPolicy::default()
        };
        let mut rng = DetRng::seed(7);
        let lo = Duration::from_secs_f64(p.base_delay.as_secs_f64() * 0.5);
        let hi = Duration::from_secs_f64(p.base_delay.as_secs_f64() * 1.5);
        let mut distinct = std::collections::BTreeSet::new();
        for _ in 0..32 {
            let d = p.delay_before(1, &mut rng);
            assert!(d >= lo && d <= hi, "delay {d:?} outside [{lo:?}, {hi:?}]");
            distinct.insert(d.as_nanos());
        }
        assert!(distinct.len() > 16, "jitter should vary the delays");
    }

    #[test]
    fn initial_attempt_has_no_delay() {
        let mut rng = DetRng::seed(1);
        assert_eq!(
            RetryPolicy::default().delay_before(0, &mut rng),
            Duration::ZERO
        );
    }

    #[test]
    fn worst_case_bounds_every_schedule() {
        let p = RetryPolicy::default();
        let mut rng = DetRng::seed(3);
        let mut total = Duration::ZERO;
        for attempt in 0..p.attempts {
            total += p.timeout_for(attempt) + p.delay_before(attempt, &mut rng);
        }
        assert!(total <= p.worst_case());
    }
}
