//! The loopback resolver: a resolution platform behind real UDP sockets.
//!
//! [`LoopbackResolver`] stands in for the opaque DNS platform the paper
//! measures from outside. It binds one `127.0.0.1` socket per virtual
//! platform ingress and serves real DNS datagrams, answering from an
//! in-process [`ResolutionPlatform`] (caches, clusters, selectors — the
//! machinery under test). Every upstream query the platform makes is
//! *replayed* over real UDP to a [`WireAuthority`], so the cache-miss
//! traffic the measurement depends on crosses actual sockets, and the
//! authority's source attribution sees the platform's virtual egresses.
//!
//! Loss is injected here — deterministically, from a seeded RNG — which
//! is what makes retry/backoff behaviour testable hermetically.

use crate::authority::{obs_queue, ObsSender, Observation, SourceRegistrar, WireAuthority};
use crate::clock::EngineClock;
use cde_dns::{Message, Question, Rcode};
use cde_netsim::DetRng;
use cde_platform::{NameserverNet, ResolutionPlatform, ResolveResult};
use crossbeam::channel::{unbounded, Receiver, Sender};
use rand::Rng;
use std::collections::HashMap;
use std::io;
use std::net::{Ipv4Addr, SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

const MAX_DATAGRAM: usize = 4096;
/// Sleep between polls when no socket had traffic.
const IDLE_SLEEP: Duration = Duration::from_micros(200);
/// How long a replayed upstream query waits for the authority's answer.
const REPLAY_TIMEOUT: Duration = Duration::from_millis(250);
/// Datagrams drained per socket per loop pass. A reactor-driven campaign
/// lands whole `sendmmsg` bursts at once; draining one datagram per pass
/// (the old behaviour) would cap throughput at one query per
/// `IDLE_SLEEP`-ish iteration.
const RECV_BURST: usize = 64;

/// Behaviour knobs for the loopback platform front-end.
#[derive(Debug, Clone, Copy)]
pub struct ResolverConfig {
    /// Probability an inbound client query is silently dropped.
    pub query_loss: f64,
    /// Probability a computed response is silently dropped.
    pub response_loss: f64,
    /// Seed for the loss/latency RNG (deterministic runs).
    pub seed: u64,
    /// Fraction of the platform's simulated latency actually slept
    /// before responding (0.0 = answer immediately).
    pub latency_scale: f64,
}

impl Default for ResolverConfig {
    fn default() -> ResolverConfig {
        ResolverConfig {
            query_loss: 0.0,
            response_loss: 0.0,
            seed: 0,
            latency_scale: 0.0,
        }
    }
}

enum Control {
    /// Replace the resolver's authoritative world snapshot.
    Sync(NameserverNet),
}

/// Clone-able handle pushing zone snapshots to the resolver thread.
#[derive(Clone)]
pub struct ResolverSync {
    ctl: Sender<Control>,
}

impl ResolverSync {
    /// Ships a fresh snapshot of the authoritative world.
    pub fn sync(&self, net: &NameserverNet) {
        let mut snapshot = net.clone();
        snapshot.clear_logs();
        let _ = self.ctl.send(Control::Sync(snapshot));
    }
}

/// A resolution platform listening on real loopback UDP sockets.
pub struct LoopbackResolver {
    ingress_addrs: HashMap<Ipv4Addr, SocketAddr>,
    sync: ResolverSync,
    obs_rx: Receiver<Observation>,
    obs_dropped: Arc<AtomicU64>,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl LoopbackResolver {
    /// Binds one socket per platform ingress and starts serving.
    ///
    /// When `authority` is given, every upstream query the platform makes
    /// is replayed to it over real UDP, attributed to the platform egress
    /// that made it.
    pub fn launch(
        platform: ResolutionPlatform,
        net: NameserverNet,
        authority: Option<&WireAuthority>,
        cfg: ResolverConfig,
        clock: EngineClock,
    ) -> io::Result<LoopbackResolver> {
        let mut ingress_addrs = HashMap::new();
        let mut sockets = Vec::new();
        for &ingress in platform.ingress_ips() {
            let socket = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0))?;
            socket.set_nonblocking(true)?;
            ingress_addrs.insert(ingress, socket.local_addr()?);
            sockets.push((ingress, socket));
        }
        let (ctl_tx, ctl_rx) = unbounded();
        let (obs_tx, obs_rx, obs_dropped) = obs_queue(crate::authority::OBS_QUEUE_CAP);
        let shutdown = Arc::new(AtomicBool::new(false));
        let authority_link = authority.map(|a| (a.addrs().clone(), a.registrar()));
        let handle = std::thread::spawn({
            let shutdown = Arc::clone(&shutdown);
            move || {
                run(
                    platform,
                    net,
                    sockets,
                    ctl_rx,
                    obs_tx,
                    authority_link,
                    cfg,
                    clock,
                    shutdown,
                )
            }
        });
        Ok(LoopbackResolver {
            ingress_addrs,
            sync: ResolverSync { ctl: ctl_tx },
            obs_rx,
            obs_dropped,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The real socket standing in for virtual ingress `ingress`.
    pub fn addr_of(&self, ingress: Ipv4Addr) -> Option<SocketAddr> {
        self.ingress_addrs.get(&ingress).copied()
    }

    /// Virtual-ingress → real-socket table.
    pub fn ingress_addrs(&self) -> &HashMap<Ipv4Addr, SocketAddr> {
        &self.ingress_addrs
    }

    /// Zone-snapshot push handle (clone-able, thread-safe).
    pub fn syncer(&self) -> ResolverSync {
        self.sync.clone()
    }

    /// Drains the upstream queries observed since the last call.
    pub fn take_observations(&self) -> Vec<Observation> {
        self.obs_rx.try_iter().collect()
    }

    /// A clone of the observation stream, for a transport to drain.
    pub fn observations(&self) -> Receiver<Observation> {
        self.obs_rx.clone()
    }

    /// Observations evicted because the bounded back-channel overflowed.
    pub fn dropped_observations(&self) -> u64 {
        self.obs_dropped.load(Ordering::Relaxed)
    }
}

impl Drop for LoopbackResolver {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for LoopbackResolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoopbackResolver")
            .field("ingress_addrs", &self.ingress_addrs)
            .finish()
    }
}

/// Replays upstream queries observed in the local net to the wire
/// authority, one real socket per virtual egress.
struct Replayer {
    addrs: HashMap<Ipv4Addr, SocketAddr>,
    registrar: SourceRegistrar,
    sockets: HashMap<Ipv4Addr, UdpSocket>,
    rng: DetRng,
}

impl Replayer {
    fn replay(&mut self, server_vaddr: Ipv4Addr, egress: Ipv4Addr, question: &Question) {
        let Some(&target) = self.addrs.get(&server_vaddr) else {
            return;
        };
        let id: u16 = self.rng.gen();
        let socket = match self.socket_for(egress) {
            Some(s) => s,
            None => return,
        };
        let query = Message::query(id, question.clone());
        let Ok(bytes) = query.encode() else { return };
        if socket.send_to(&bytes, target).is_err() {
            return;
        }
        // Wait (briefly) for the authority's reply so the wire round trip
        // completes before the client sees its own response.
        let mut buf = [0u8; MAX_DATAGRAM];
        let _ = socket.recv_from(&mut buf);
    }

    fn socket_for(&mut self, egress: Ipv4Addr) -> Option<&UdpSocket> {
        if !self.sockets.contains_key(&egress) {
            let socket = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).ok()?;
            socket.set_read_timeout(Some(REPLAY_TIMEOUT)).ok()?;
            self.registrar
                .register(socket.local_addr().ok()?.port(), egress);
            self.sockets.insert(egress, socket);
        }
        self.sockets.get(&egress)
    }
}

/// The resolver thread's main loop.
#[allow(clippy::too_many_arguments)]
fn run(
    mut platform: ResolutionPlatform,
    mut net: NameserverNet,
    sockets: Vec<(Ipv4Addr, UdpSocket)>,
    ctl_rx: Receiver<Control>,
    obs_tx: ObsSender,
    authority_link: Option<(HashMap<Ipv4Addr, SocketAddr>, SourceRegistrar)>,
    cfg: ResolverConfig,
    clock: EngineClock,
    shutdown: Arc<AtomicBool>,
) {
    let mut rng = DetRng::seed(cfg.seed).fork("loopback-resolver");
    let mut replayer = authority_link.map(|(addrs, registrar)| Replayer {
        addrs,
        registrar,
        sockets: HashMap::new(),
        rng: DetRng::seed(cfg.seed).fork("replayer"),
    });
    let mut buf = [0u8; MAX_DATAGRAM];
    while !shutdown.load(Ordering::SeqCst) {
        // Zone edits first, so a snapshot pushed before a probe arrives is
        // always visible to that probe's resolution.
        while let Ok(Control::Sync(snapshot)) = ctl_rx.try_recv() {
            net = snapshot;
        }
        let mut idle = true;
        for (ingress, socket) in &sockets {
            // Drain a whole burst per pass: batched senders deliver many
            // datagrams between two polls of this loop.
            for _ in 0..RECV_BURST {
                let (len, peer) = match socket.recv_from(&mut buf) {
                    Ok(ok) => ok,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                };
                idle = false;
                handle_datagram(
                    &mut platform,
                    &mut net,
                    *ingress,
                    socket,
                    &buf[..len],
                    peer,
                    &mut rng,
                    &mut replayer,
                    &obs_tx,
                    &cfg,
                    clock,
                );
            }
        }
        if idle {
            std::thread::sleep(IDLE_SLEEP);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_datagram(
    platform: &mut ResolutionPlatform,
    net: &mut NameserverNet,
    ingress: Ipv4Addr,
    socket: &UdpSocket,
    datagram: &[u8],
    peer: SocketAddr,
    rng: &mut DetRng,
    replayer: &mut Option<Replayer>,
    obs_tx: &ObsSender,
    cfg: &ResolverConfig,
    clock: EngineClock,
) {
    // Untrusted bytes from the wire: drop anything malformed.
    let Ok(query) = Message::decode(datagram) else {
        return;
    };
    if query.is_response() {
        return;
    }
    let Some(question) = query.question().cloned() else {
        return;
    };
    // Injected request-direction loss: the query never "reaches" us.
    if cfg.query_loss > 0.0 && rng.gen_bool(cfg.query_loss) {
        return;
    }
    // Each distinct client port is a distinct synthetic client address, so
    // the platform's per-client behaviour (selectors, logs) still varies.
    let client = synth_client(peer);
    // Fresh logs so everything after handle_query is this query's traffic.
    net.clear_logs();
    let response = platform.handle_query(
        client,
        ingress,
        question.qname(),
        question.qtype(),
        clock.now(),
        net,
    );
    // Stream the upstream queries this resolution caused: replay each over
    // real UDP to the authority, then hand the observation (with its true
    // virtual egress) to whoever owns the canonical net.
    for server in net.servers() {
        let vaddr = server.addr();
        for entry in server.log() {
            if let Some(replayer) = replayer.as_mut() {
                replayer.replay(
                    vaddr,
                    entry.from,
                    &Question::new(entry.qname.clone(), entry.qtype),
                );
            }
            obs_tx.push((vaddr, entry.clone()));
        }
    }
    net.clear_logs();

    let mut resp = Message::response_to(&query);
    match response {
        Ok(platform_response) => {
            let outcome = platform_response.outcome;
            match outcome.result {
                ResolveResult::Records(records) => {
                    resp.answers = records;
                }
                ResolveResult::NxDomain => resp.flags.rcode = Rcode::NxDomain,
                ResolveResult::NoData => {}
                ResolveResult::ServFail => resp.flags.rcode = Rcode::ServFail,
            }
            if cfg.latency_scale > 0.0 {
                std::thread::sleep(Duration::from_micros(
                    (outcome.latency.as_micros() as f64 * cfg.latency_scale) as u64,
                ));
            }
        }
        // A query for an address that is not an ingress of this platform:
        // answer REFUSED, as a real open resolver would.
        Err(_) => resp.flags.rcode = Rcode::Refused,
    }
    // Injected response-direction loss: the answer is computed (caches
    // warmed, honey fetched) but never arrives.
    if cfg.response_loss > 0.0 && rng.gen_bool(cfg.response_loss) {
        return;
    }
    if let Ok(bytes) = resp.encode() {
        let _ = socket.send_to(&bytes, peer);
    }
}

/// Maps a real loopback peer to a synthetic client address in the CGNAT
/// range (`100.64.0.0/10`), one per source port.
fn synth_client(peer: SocketAddr) -> Ipv4Addr {
    let port = peer.port();
    Ipv4Addr::new(100, 64, (port >> 8) as u8, (port & 0xff) as u8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cde_dns::RecordType;
    use cde_platform::{PlatformBuilder, SelectorKind};

    fn n(s: &str) -> cde_dns::Name {
        s.parse().unwrap()
    }

    /// Installs CDE infra, opens one session, launches a resolver over it.
    fn launch_simple(cfg: ResolverConfig) -> (LoopbackResolver, Ipv4Addr, cde_dns::Name) {
        let mut net = NameserverNet::new();
        let mut infra = cde_core::CdeInfra::install(&mut net);
        let session = infra.new_session(&mut net, 0);
        let ingress = Ipv4Addr::new(192, 0, 2, 1);
        let platform = PlatformBuilder::new(17)
            .ingress(vec![ingress])
            .egress(vec![Ipv4Addr::new(192, 0, 3, 1)])
            .cluster(2, SelectorKind::Random)
            .build();
        let resolver =
            LoopbackResolver::launch(platform, net, None, cfg, EngineClock::start()).unwrap();
        (resolver, ingress, session.honey)
    }

    fn ask(addr: SocketAddr, id: u16, qname: &cde_dns::Name) -> Option<Message> {
        let sock = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        sock.set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        let query = Message::query(id, Question::new(qname.clone(), RecordType::A));
        sock.send_to(&query.encode().unwrap(), addr).unwrap();
        let mut buf = [0u8; MAX_DATAGRAM];
        let (len, _) = sock.recv_from(&mut buf).ok()?;
        Message::decode(&buf[..len]).ok()
    }

    #[test]
    fn resolves_cde_zone_names_over_real_udp() {
        let (resolver, ingress, honey) = launch_simple(ResolverConfig::default());
        let addr = resolver.addr_of(ingress).unwrap();
        let resp = ask(addr, 0x1234, &honey).unwrap();
        assert_eq!(resp.id, 0x1234);
        assert_eq!(resp.flags.rcode, Rcode::NoError);
        assert!(!resp.answers.is_empty());
        // The upstream fetch surfaced as an observation.
        let obs = resolver.take_observations();
        assert!(!obs.is_empty());
    }

    #[test]
    fn nxdomain_is_propagated() {
        let (resolver, ingress, _) = launch_simple(ResolverConfig::default());
        let addr = resolver.addr_of(ingress).unwrap();
        let resp = ask(addr, 7, &n("no-such-name.cache.example")).unwrap();
        assert_eq!(resp.flags.rcode, Rcode::NxDomain);
    }

    #[test]
    fn total_query_loss_times_out() {
        let (resolver, ingress, honey) = launch_simple(ResolverConfig {
            query_loss: 1.0,
            ..ResolverConfig::default()
        });
        let addr = resolver.addr_of(ingress).unwrap();
        assert!(ask(addr, 9, &honey).is_none());
    }

    #[test]
    fn zone_sync_exposes_new_honey_records() {
        let mut net = NameserverNet::new();
        let mut infra = cde_core::CdeInfra::install(&mut net);
        let ingress = Ipv4Addr::new(192, 0, 2, 1);
        let platform = PlatformBuilder::new(23)
            .ingress(vec![ingress])
            .egress(vec![Ipv4Addr::new(192, 0, 3, 1)])
            .cluster(1, SelectorKind::Random)
            .build();
        let resolver = LoopbackResolver::launch(
            platform,
            net.clone(),
            None,
            ResolverConfig::default(),
            EngineClock::start(),
        )
        .unwrap();
        let addr = resolver.addr_of(ingress).unwrap();
        // Plant a session honey record in the canonical net and sync it.
        let session = infra.new_session(&mut net, 0);
        resolver.syncer().sync(&net);
        let resp = ask(addr, 11, &session.honey).unwrap();
        assert_eq!(resp.flags.rcode, Rcode::NoError);
    }
}
