//! Engine observability: lock-free counters and a latency histogram.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of exponential latency buckets. Bucket `i` covers
/// `[BASE_US << i, BASE_US << (i + 1))` microseconds; the last bucket is
/// open-ended.
const BUCKETS: usize = 24;
/// Lower edge of bucket 0, in microseconds.
const BASE_US: u64 = 16;
/// Power-of-two send-batch size buckets: bucket `i` counts batches of
/// `2^i` to `2^(i+1) − 1` datagrams; the last bucket is open-ended.
const BATCH_BUCKETS: usize = 8;

/// Shared atomic counters for one engine (transport + scheduler).
///
/// All methods take `&self`; the struct is designed to sit behind an
/// `Arc` and be hammered from worker threads. `snapshot()` produces a
/// consistent-enough point-in-time copy for reporting (individual loads
/// are relaxed; exact cross-counter consistency is not needed for
/// telemetry).
#[derive(Debug, Default)]
pub struct EngineMetrics {
    /// Datagrams handed to the OS (every attempt counts).
    sent: AtomicU64,
    /// Responses received and matched to an outstanding query.
    received: AtomicU64,
    /// Probes that exhausted every attempt without an answer.
    timeouts: AtomicU64,
    /// Re-transmissions after a per-attempt deadline.
    retries: AtomicU64,
    /// Times a sender had to wait for rate-limiter tokens.
    rate_limit_stalls: AtomicU64,
    /// Total time spent waiting on the rate limiter, in microseconds.
    rate_limit_wait_us: AtomicU64,
    /// Datagrams that arrived but failed wire decoding or ID matching.
    decode_errors: AtomicU64,
    /// Latency histogram (microsecond buckets, exponential).
    latency_buckets: [AtomicU64; BUCKETS],
    /// Sum of all recorded latencies, in microseconds.
    latency_sum_us: AtomicU64,
    /// Count of recorded latencies.
    latency_count: AtomicU64,
    /// Probes currently in flight (reactor gauge).
    in_flight: AtomicU64,
    /// High-water mark of the in-flight gauge.
    in_flight_peak: AtomicU64,
    /// Well-formed replies with no matching outstanding probe (wrong or
    /// stale query id, or a reply arriving after the probe timed out).
    stray_replies: AtomicU64,
    /// Replies that matched a correlation key but came from a source
    /// address other than the probed target — spoofing, dropped.
    spoofed_replies: AtomicU64,
    /// Replies that matched `(socket, id)` but echoed a different
    /// question — a query-id collision, dropped.
    qname_mismatches: AtomicU64,
    /// Send-batch size histogram (power-of-two buckets).
    batch_buckets: [AtomicU64; BATCH_BUCKETS],
    /// Reactor loop iterations measured.
    loop_count: AtomicU64,
    /// Total reactor loop-iteration time, in microseconds.
    loop_sum_us: AtomicU64,
    /// Slowest reactor loop iteration, in microseconds.
    loop_max_us: AtomicU64,
}

impl EngineMetrics {
    /// Creates a zeroed metrics block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one datagram sent.
    pub fn record_sent(&self) {
        self.sent.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one matched response, with its round-trip time.
    pub fn record_received(&self, rtt: Duration) {
        self.received.fetch_add(1, Ordering::Relaxed);
        let us = rtt.as_micros().min(u128::from(u64::MAX)) as u64;
        self.latency_sum_us.fetch_add(us, Ordering::Relaxed);
        self.latency_count.fetch_add(1, Ordering::Relaxed);
        self.latency_buckets[Self::bucket_for(us)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a probe that ran out of attempts.
    pub fn record_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one retry (an attempt after the first).
    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a rate-limiter stall of `waited`.
    pub fn record_rate_limit_stall(&self, waited: Duration) {
        self.rate_limit_stalls.fetch_add(1, Ordering::Relaxed);
        self.rate_limit_wait_us.fetch_add(
            waited.as_micros().min(u128::from(u64::MAX)) as u64,
            Ordering::Relaxed,
        );
    }

    /// Records a datagram that could not be decoded/matched.
    pub fn record_decode_error(&self) {
        self.decode_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Sets the in-flight gauge, tracking its high-water mark.
    pub fn set_in_flight(&self, n: u64) {
        self.in_flight.store(n, Ordering::Relaxed);
        self.in_flight_peak.fetch_max(n, Ordering::Relaxed);
    }

    /// Records a well-formed reply that matched no outstanding probe.
    pub fn record_stray_reply(&self) {
        self.stray_replies.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a reply from an address other than the probed target.
    pub fn record_spoofed_reply(&self) {
        self.spoofed_replies.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an id-matched reply echoing the wrong question.
    pub fn record_qname_mismatch(&self) {
        self.qname_mismatches.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one batched send of `n` datagrams.
    pub fn record_send_batch(&self, n: usize) {
        if n == 0 {
            return;
        }
        let idx = (usize::BITS - 1 - (n.max(1)).leading_zeros()) as usize;
        self.batch_buckets[idx.min(BATCH_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one reactor loop iteration taking `took`.
    pub fn record_loop_iteration(&self, took: Duration) {
        let us = took.as_micros().min(u128::from(u64::MAX)) as u64;
        self.loop_count.fetch_add(1, Ordering::Relaxed);
        self.loop_sum_us.fetch_add(us, Ordering::Relaxed);
        self.loop_max_us.fetch_max(us, Ordering::Relaxed);
    }

    fn bucket_for(us: u64) -> usize {
        if us < BASE_US {
            return 0;
        }
        let idx = (64 - (us / BASE_US).leading_zeros()) as usize;
        idx.min(BUCKETS - 1)
    }

    /// Takes a point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut latency_buckets = [0u64; BUCKETS];
        for (dst, src) in latency_buckets.iter_mut().zip(&self.latency_buckets) {
            *dst = src.load(Ordering::Relaxed);
        }
        let mut batch_buckets = [0u64; BATCH_BUCKETS];
        for (dst, src) in batch_buckets.iter_mut().zip(&self.batch_buckets) {
            *dst = src.load(Ordering::Relaxed);
        }
        MetricsSnapshot {
            sent: self.sent.load(Ordering::Relaxed),
            received: self.received.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            rate_limit_stalls: self.rate_limit_stalls.load(Ordering::Relaxed),
            rate_limit_wait: Duration::from_micros(self.rate_limit_wait_us.load(Ordering::Relaxed)),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
            latency_buckets,
            latency_sum_us: self.latency_sum_us.load(Ordering::Relaxed),
            latency_count: self.latency_count.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            in_flight_peak: self.in_flight_peak.load(Ordering::Relaxed),
            stray_replies: self.stray_replies.load(Ordering::Relaxed),
            spoofed_replies: self.spoofed_replies.load(Ordering::Relaxed),
            qname_mismatches: self.qname_mismatches.load(Ordering::Relaxed),
            batch_buckets,
            loop_count: self.loop_count.load(Ordering::Relaxed),
            loop_sum_us: self.loop_sum_us.load(Ordering::Relaxed),
            loop_max_us: self.loop_max_us.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of [`EngineMetrics`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Datagrams sent (attempts included).
    pub sent: u64,
    /// Matched responses received.
    pub received: u64,
    /// Probes that timed out after all attempts.
    pub timeouts: u64,
    /// Retransmissions.
    pub retries: u64,
    /// Rate-limiter stalls.
    pub rate_limit_stalls: u64,
    /// Cumulative time spent stalled on the rate limiter.
    pub rate_limit_wait: Duration,
    /// Undecodable/unmatched datagrams.
    pub decode_errors: u64,
    /// Latency histogram counts (exponential microsecond buckets).
    pub latency_buckets: [u64; BUCKETS],
    /// Sum of recorded latencies in microseconds.
    pub latency_sum_us: u64,
    /// Number of recorded latencies.
    pub latency_count: u64,
    /// Probes in flight at snapshot time (reactor gauge).
    pub in_flight: u64,
    /// Highest in-flight count seen.
    pub in_flight_peak: u64,
    /// Replies with no matching outstanding probe (wrong/stale id, or
    /// arrival after the probe's timeout).
    pub stray_replies: u64,
    /// Id-matched replies from an unexpected source address.
    pub spoofed_replies: u64,
    /// Id-matched replies echoing the wrong question (id collisions).
    pub qname_mismatches: u64,
    /// Send-batch size histogram (power-of-two buckets).
    pub batch_buckets: [u64; BATCH_BUCKETS],
    /// Reactor loop iterations measured.
    pub loop_count: u64,
    /// Total reactor loop time in microseconds.
    pub loop_sum_us: u64,
    /// Slowest reactor loop iteration in microseconds.
    pub loop_max_us: u64,
}

impl MetricsSnapshot {
    /// Observed datagram loss rate: unanswered sends over sends.
    /// Retransmissions count as sends, so this tracks *wire* loss, not
    /// probe-level failure.
    pub fn loss_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            1.0 - (self.received as f64 / self.sent as f64).min(1.0)
        }
    }

    /// Mean round-trip latency over all matched responses.
    pub fn mean_latency(&self) -> Option<Duration> {
        self.latency_sum_us
            .checked_div(self.latency_count)
            .map(Duration::from_micros)
    }

    /// Approximate latency quantile (`q` in `[0, 1]`) from the histogram:
    /// upper edge of the bucket containing the q-th response.
    pub fn latency_quantile(&self, q: f64) -> Option<Duration> {
        if self.latency_count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((self.latency_count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &count) in self.latency_buckets.iter().enumerate() {
            seen += count;
            if seen >= target {
                let upper_us = if i == 0 { BASE_US } else { BASE_US << i };
                return Some(Duration::from_micros(upper_us));
            }
        }
        Some(Duration::from_micros(BASE_US << (BUCKETS - 1)))
    }

    /// Replies dropped without matching a probe, for any reason.
    pub fn dropped_replies(&self) -> u64 {
        self.stray_replies + self.spoofed_replies + self.qname_mismatches
    }

    /// Mean reactor loop-iteration time.
    pub fn mean_loop_latency(&self) -> Option<Duration> {
        self.loop_sum_us
            .checked_div(self.loop_count)
            .map(Duration::from_micros)
    }

    /// Number of batched sends recorded.
    pub fn batches_sent(&self) -> u64 {
        self.batch_buckets.iter().sum()
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "sent {}  received {}  timeouts {}  retries {}  decode errors {}",
            self.sent, self.received, self.timeouts, self.retries, self.decode_errors
        )?;
        writeln!(
            f,
            "rate-limit stalls {} (total wait {:?})  wire loss {:.2}%",
            self.rate_limit_stalls,
            self.rate_limit_wait,
            self.loss_rate() * 100.0
        )?;
        if self.in_flight_peak > 0 || self.dropped_replies() > 0 {
            writeln!(
                f,
                "in-flight {} (peak {})  dropped replies: {} stray, {} spoofed, {} id-collisions",
                self.in_flight,
                self.in_flight_peak,
                self.stray_replies,
                self.spoofed_replies,
                self.qname_mismatches
            )?;
        }
        if self.loop_count > 0 {
            writeln!(
                f,
                "reactor: {} loops (mean {:?}, max {:?})  {} send batches",
                self.loop_count,
                self.mean_loop_latency().unwrap_or_default(),
                Duration::from_micros(self.loop_max_us),
                self.batches_sent()
            )?;
        }
        match (
            self.mean_latency(),
            self.latency_quantile(0.5),
            self.latency_quantile(0.99),
        ) {
            (Some(mean), Some(p50), Some(p99)) => {
                write!(f, "latency mean {mean:?}  p50 ≤ {p50:?}  p99 ≤ {p99:?}")
            }
            _ => write!(f, "latency: no samples"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = EngineMetrics::new();
        m.record_sent();
        m.record_sent();
        m.record_received(Duration::from_micros(300));
        m.record_retry();
        m.record_timeout();
        m.record_rate_limit_stall(Duration::from_millis(2));
        m.record_decode_error();
        let s = m.snapshot();
        assert_eq!(s.sent, 2);
        assert_eq!(s.received, 1);
        assert_eq!(s.retries, 1);
        assert_eq!(s.timeouts, 1);
        assert_eq!(s.rate_limit_stalls, 1);
        assert_eq!(s.decode_errors, 1);
        assert!(s.rate_limit_wait >= Duration::from_millis(2));
        assert!((s.loss_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn reactor_counters_accumulate() {
        let m = EngineMetrics::new();
        m.set_in_flight(5);
        m.set_in_flight(9);
        m.set_in_flight(2);
        m.record_stray_reply();
        m.record_spoofed_reply();
        m.record_qname_mismatch();
        m.record_qname_mismatch();
        m.record_send_batch(1);
        m.record_send_batch(7);
        m.record_send_batch(32);
        m.record_send_batch(0); // ignored
        m.record_loop_iteration(Duration::from_micros(100));
        m.record_loop_iteration(Duration::from_micros(300));
        let s = m.snapshot();
        assert_eq!(s.in_flight, 2);
        assert_eq!(s.in_flight_peak, 9);
        assert_eq!(s.stray_replies, 1);
        assert_eq!(s.spoofed_replies, 1);
        assert_eq!(s.qname_mismatches, 2);
        assert_eq!(s.dropped_replies(), 4);
        assert_eq!(s.batches_sent(), 3);
        assert_eq!(s.batch_buckets[0], 1); // batch of 1
        assert_eq!(s.batch_buckets[2], 1); // batch of 7 → [4, 8)
        assert_eq!(s.batch_buckets[5], 1); // batch of 32
        assert_eq!(s.loop_count, 2);
        assert_eq!(s.mean_loop_latency(), Some(Duration::from_micros(200)));
        assert_eq!(s.loop_max_us, 300);
    }

    #[test]
    fn histogram_buckets_are_monotone() {
        let m = EngineMetrics::new();
        for us in [1u64, 20, 100, 1_000, 10_000, 100_000, 1_000_000] {
            m.record_received(Duration::from_micros(us));
        }
        let s = m.snapshot();
        assert_eq!(s.latency_count, 7);
        let p50 = s.latency_quantile(0.5).unwrap();
        let p99 = s.latency_quantile(0.99).unwrap();
        assert!(p50 <= p99);
        assert!(s.mean_latency().unwrap() > Duration::from_micros(100));
    }

    #[test]
    fn quantiles_cover_edges() {
        let m = EngineMetrics::new();
        assert_eq!(m.snapshot().latency_quantile(0.5), None);
        m.record_received(Duration::from_micros(64));
        let s = m.snapshot();
        assert!(s.latency_quantile(0.0).is_some());
        assert!(s.latency_quantile(1.0).is_some());
    }

    #[test]
    fn shared_across_threads() {
        use std::sync::Arc;
        let m = Arc::new(EngineMetrics::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    m.record_sent();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.snapshot().sent, 4000);
    }
}
