//! Engine observability: lock-free counters and a latency histogram.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of exponential latency buckets. Bucket `i` covers
/// `[BASE_US << i, BASE_US << (i + 1))` microseconds; the last bucket is
/// open-ended.
const BUCKETS: usize = 24;
/// Lower edge of bucket 0, in microseconds.
const BASE_US: u64 = 16;

/// Shared atomic counters for one engine (transport + scheduler).
///
/// All methods take `&self`; the struct is designed to sit behind an
/// `Arc` and be hammered from worker threads. `snapshot()` produces a
/// consistent-enough point-in-time copy for reporting (individual loads
/// are relaxed; exact cross-counter consistency is not needed for
/// telemetry).
#[derive(Debug, Default)]
pub struct EngineMetrics {
    /// Datagrams handed to the OS (every attempt counts).
    sent: AtomicU64,
    /// Responses received and matched to an outstanding query.
    received: AtomicU64,
    /// Probes that exhausted every attempt without an answer.
    timeouts: AtomicU64,
    /// Re-transmissions after a per-attempt deadline.
    retries: AtomicU64,
    /// Times a sender had to wait for rate-limiter tokens.
    rate_limit_stalls: AtomicU64,
    /// Total time spent waiting on the rate limiter, in microseconds.
    rate_limit_wait_us: AtomicU64,
    /// Datagrams that arrived but failed wire decoding or ID matching.
    decode_errors: AtomicU64,
    /// Latency histogram (microsecond buckets, exponential).
    latency_buckets: [AtomicU64; BUCKETS],
    /// Sum of all recorded latencies, in microseconds.
    latency_sum_us: AtomicU64,
    /// Count of recorded latencies.
    latency_count: AtomicU64,
}

impl EngineMetrics {
    /// Creates a zeroed metrics block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one datagram sent.
    pub fn record_sent(&self) {
        self.sent.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one matched response, with its round-trip time.
    pub fn record_received(&self, rtt: Duration) {
        self.received.fetch_add(1, Ordering::Relaxed);
        let us = rtt.as_micros().min(u128::from(u64::MAX)) as u64;
        self.latency_sum_us.fetch_add(us, Ordering::Relaxed);
        self.latency_count.fetch_add(1, Ordering::Relaxed);
        self.latency_buckets[Self::bucket_for(us)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a probe that ran out of attempts.
    pub fn record_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one retry (an attempt after the first).
    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a rate-limiter stall of `waited`.
    pub fn record_rate_limit_stall(&self, waited: Duration) {
        self.rate_limit_stalls.fetch_add(1, Ordering::Relaxed);
        self.rate_limit_wait_us.fetch_add(
            waited.as_micros().min(u128::from(u64::MAX)) as u64,
            Ordering::Relaxed,
        );
    }

    /// Records a datagram that could not be decoded/matched.
    pub fn record_decode_error(&self) {
        self.decode_errors.fetch_add(1, Ordering::Relaxed);
    }

    fn bucket_for(us: u64) -> usize {
        if us < BASE_US {
            return 0;
        }
        let idx = (64 - (us / BASE_US).leading_zeros()) as usize;
        idx.min(BUCKETS - 1)
    }

    /// Takes a point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut latency_buckets = [0u64; BUCKETS];
        for (dst, src) in latency_buckets.iter_mut().zip(&self.latency_buckets) {
            *dst = src.load(Ordering::Relaxed);
        }
        MetricsSnapshot {
            sent: self.sent.load(Ordering::Relaxed),
            received: self.received.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            rate_limit_stalls: self.rate_limit_stalls.load(Ordering::Relaxed),
            rate_limit_wait: Duration::from_micros(self.rate_limit_wait_us.load(Ordering::Relaxed)),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
            latency_buckets,
            latency_sum_us: self.latency_sum_us.load(Ordering::Relaxed),
            latency_count: self.latency_count.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of [`EngineMetrics`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Datagrams sent (attempts included).
    pub sent: u64,
    /// Matched responses received.
    pub received: u64,
    /// Probes that timed out after all attempts.
    pub timeouts: u64,
    /// Retransmissions.
    pub retries: u64,
    /// Rate-limiter stalls.
    pub rate_limit_stalls: u64,
    /// Cumulative time spent stalled on the rate limiter.
    pub rate_limit_wait: Duration,
    /// Undecodable/unmatched datagrams.
    pub decode_errors: u64,
    /// Latency histogram counts (exponential microsecond buckets).
    pub latency_buckets: [u64; BUCKETS],
    /// Sum of recorded latencies in microseconds.
    pub latency_sum_us: u64,
    /// Number of recorded latencies.
    pub latency_count: u64,
}

impl MetricsSnapshot {
    /// Observed datagram loss rate: unanswered sends over sends.
    /// Retransmissions count as sends, so this tracks *wire* loss, not
    /// probe-level failure.
    pub fn loss_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            1.0 - (self.received as f64 / self.sent as f64).min(1.0)
        }
    }

    /// Mean round-trip latency over all matched responses.
    pub fn mean_latency(&self) -> Option<Duration> {
        self.latency_sum_us
            .checked_div(self.latency_count)
            .map(Duration::from_micros)
    }

    /// Approximate latency quantile (`q` in `[0, 1]`) from the histogram:
    /// upper edge of the bucket containing the q-th response.
    pub fn latency_quantile(&self, q: f64) -> Option<Duration> {
        if self.latency_count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((self.latency_count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &count) in self.latency_buckets.iter().enumerate() {
            seen += count;
            if seen >= target {
                let upper_us = if i == 0 { BASE_US } else { BASE_US << i };
                return Some(Duration::from_micros(upper_us));
            }
        }
        Some(Duration::from_micros(BASE_US << (BUCKETS - 1)))
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "sent {}  received {}  timeouts {}  retries {}  decode errors {}",
            self.sent, self.received, self.timeouts, self.retries, self.decode_errors
        )?;
        writeln!(
            f,
            "rate-limit stalls {} (total wait {:?})  wire loss {:.2}%",
            self.rate_limit_stalls,
            self.rate_limit_wait,
            self.loss_rate() * 100.0
        )?;
        match (
            self.mean_latency(),
            self.latency_quantile(0.5),
            self.latency_quantile(0.99),
        ) {
            (Some(mean), Some(p50), Some(p99)) => {
                write!(f, "latency mean {mean:?}  p50 ≤ {p50:?}  p99 ≤ {p99:?}")
            }
            _ => write!(f, "latency: no samples"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = EngineMetrics::new();
        m.record_sent();
        m.record_sent();
        m.record_received(Duration::from_micros(300));
        m.record_retry();
        m.record_timeout();
        m.record_rate_limit_stall(Duration::from_millis(2));
        m.record_decode_error();
        let s = m.snapshot();
        assert_eq!(s.sent, 2);
        assert_eq!(s.received, 1);
        assert_eq!(s.retries, 1);
        assert_eq!(s.timeouts, 1);
        assert_eq!(s.rate_limit_stalls, 1);
        assert_eq!(s.decode_errors, 1);
        assert!(s.rate_limit_wait >= Duration::from_millis(2));
        assert!((s.loss_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_buckets_are_monotone() {
        let m = EngineMetrics::new();
        for us in [1u64, 20, 100, 1_000, 10_000, 100_000, 1_000_000] {
            m.record_received(Duration::from_micros(us));
        }
        let s = m.snapshot();
        assert_eq!(s.latency_count, 7);
        let p50 = s.latency_quantile(0.5).unwrap();
        let p99 = s.latency_quantile(0.99).unwrap();
        assert!(p50 <= p99);
        assert!(s.mean_latency().unwrap() > Duration::from_micros(100));
    }

    #[test]
    fn quantiles_cover_edges() {
        let m = EngineMetrics::new();
        assert_eq!(m.snapshot().latency_quantile(0.5), None);
        m.record_received(Duration::from_micros(64));
        let s = m.snapshot();
        assert!(s.latency_quantile(0.0).is_some());
        assert!(s.latency_quantile(1.0).is_some());
    }

    #[test]
    fn shared_across_threads() {
        use std::sync::Arc;
        let m = Arc::new(EngineMetrics::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    m.record_sent();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.snapshot().sent, 4000);
    }
}
