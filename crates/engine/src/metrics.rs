//! Engine observability: lock-free counters and a latency histogram.
//!
//! [`MetricsBlock`] is the shared atomic counter block every transport
//! and reactor shard hammers from its hot path. [`EngineMetrics`] owns
//! one block per reactor shard and presents them as a single engine:
//! every read-side method (`snapshot`, the `Collector` impl) merges the
//! blocks, while the write-side methods delegate to block 0 so code
//! that treats the engine as one counter set (the blocking transport,
//! the scheduler) keeps working unchanged. A sharded reactor instead
//! grabs `shard(i)` once at launch and records into its own block with
//! zero cross-core contention.
//!
//! Registering [`EngineMetrics`] into a
//! [`MetricsRegistry`](cde_telemetry::MetricsRegistry) exposes every
//! counter, gauge and histogram over Prometheus text or JSON snapshots;
//! with more than one block, each family is exported per shard with a
//! `shard` label.

use cde_telemetry::{Collector, Metric};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Number of exponential latency buckets. Bucket `i` covers
/// `[BASE_US << i, BASE_US << (i + 1))` microseconds; the last bucket is
/// open-ended.
const BUCKETS: usize = 24;
/// Lower edge of bucket 0, in microseconds.
const BASE_US: u64 = 16;
/// Power-of-two send-batch size buckets: bucket `i` counts batches of
/// `2^i` to `2^(i+1) − 1` datagrams; the last bucket is open-ended.
const BATCH_BUCKETS: usize = 8;

/// Shared atomic counters for one engine shard (or a whole unsharded
/// engine — a transport worker pool is "shard 0" of a 1-block engine).
///
/// All methods take `&self`; the struct is designed to sit behind an
/// `Arc` and be hammered from worker threads. `snapshot()` produces a
/// consistent-enough point-in-time copy for reporting (individual loads
/// are relaxed; exact cross-counter consistency is not needed for
/// telemetry).
#[derive(Debug, Default)]
pub struct MetricsBlock {
    /// Datagrams handed to the OS (every attempt counts).
    sent: AtomicU64,
    /// Responses received and matched to an outstanding query.
    received: AtomicU64,
    /// Probes that exhausted every attempt without an answer.
    timeouts: AtomicU64,
    /// Re-transmissions after a per-attempt deadline.
    retries: AtomicU64,
    /// Times a sender had to wait for rate-limiter tokens.
    rate_limit_stalls: AtomicU64,
    /// Total time spent waiting on the rate limiter, in microseconds.
    rate_limit_wait_us: AtomicU64,
    /// Datagrams that arrived but failed wire decoding or ID matching.
    decode_errors: AtomicU64,
    /// Latency histogram (microsecond buckets, exponential).
    latency_buckets: [AtomicU64; BUCKETS],
    /// Sum of all recorded latencies, in microseconds.
    latency_sum_us: AtomicU64,
    /// Count of recorded latencies.
    latency_count: AtomicU64,
    /// Probes currently in flight (reactor gauge).
    in_flight: AtomicU64,
    /// High-water mark of the in-flight gauge.
    in_flight_peak: AtomicU64,
    /// Well-formed replies with no matching outstanding probe (wrong or
    /// stale query id, or a reply arriving after the probe timed out).
    stray_replies: AtomicU64,
    /// Replies that matched a correlation key but came from a source
    /// address other than the probed target — spoofing, dropped.
    spoofed_replies: AtomicU64,
    /// Replies that matched `(socket, id)` but echoed a different
    /// question — a query-id collision, dropped.
    qname_mismatches: AtomicU64,
    /// Send-batch size histogram (power-of-two buckets).
    batch_buckets: [AtomicU64; BATCH_BUCKETS],
    /// Total datagrams across all batched sends (batch fill numerator).
    batch_datagrams: AtomicU64,
    /// Reactor loop iterations measured.
    loop_count: AtomicU64,
    /// Total reactor loop-iteration time, in microseconds.
    loop_sum_us: AtomicU64,
    /// Slowest reactor loop iteration, in microseconds.
    loop_max_us: AtomicU64,
    /// Reactor tick (loop-iteration) latency histogram, same exponential
    /// microsecond buckets as the probe latency histogram.
    loop_buckets: [AtomicU64; BUCKETS],
    /// Timers pending in the reactor's wheel (sampled every iteration).
    wheel_pending: AtomicU64,
    /// High-water mark of the wheel-pending gauge.
    wheel_pending_peak: AtomicU64,
    /// Correlation-slab capacity (set once at reactor launch; the
    /// occupancy gauge is `in_flight`, its high-water `in_flight_peak`).
    slab_capacity: AtomicU64,
    /// Submission-ring occupancy (sampled every loop iteration).
    ring_depth: AtomicU64,
    /// High-water mark of the submission-ring occupancy.
    ring_depth_peak: AtomicU64,
    /// Times the shard parked waiting for work.
    parks: AtomicU64,
    /// Total time spent parked, in microseconds.
    parked_us: AtomicU64,
    /// Times the shard was woken from a park by a submitter.
    unparks: AtomicU64,
    /// Total wake-to-first-poll latency, in microseconds: from the
    /// waker's unpark call to the parked loop resuming.
    wake_latency_us: AtomicU64,
    /// Slowest single wake-to-first-poll, in microseconds.
    wake_latency_max_us: AtomicU64,
    /// Sends whose deadline came from the adaptive RTO table rather
    /// than the static retry schedule.
    adaptive_deadlines: AtomicU64,
    /// Deadline expiries that backed a learned per-ingress RTO off.
    rto_backoffs: AtomicU64,
    /// Loss-aware submit window currently applied by the pipelined
    /// scheduler (0 when pacing is off or before the first adjustment).
    paced_window: AtomicU64,
    /// Lifecycle records written to the shard's flight ring.
    flight_records: AtomicU64,
    /// Flight-ring records overwritten unread (drop-oldest sheds).
    flight_shed: AtomicU64,
}

impl MetricsBlock {
    /// Creates a zeroed counter block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one datagram sent.
    pub fn record_sent(&self) {
        self.sent.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one matched response, with its round-trip time.
    pub fn record_received(&self, rtt: Duration) {
        self.received.fetch_add(1, Ordering::Relaxed);
        let us = rtt.as_micros().min(u128::from(u64::MAX)) as u64;
        self.latency_sum_us.fetch_add(us, Ordering::Relaxed);
        self.latency_count.fetch_add(1, Ordering::Relaxed);
        self.latency_buckets[bucket_for(us)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a probe that ran out of attempts.
    pub fn record_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one retry (an attempt after the first).
    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a rate-limiter stall of `waited`.
    pub fn record_rate_limit_stall(&self, waited: Duration) {
        self.rate_limit_stalls.fetch_add(1, Ordering::Relaxed);
        self.rate_limit_wait_us.fetch_add(
            waited.as_micros().min(u128::from(u64::MAX)) as u64,
            Ordering::Relaxed,
        );
    }

    /// Records a datagram that could not be decoded/matched.
    pub fn record_decode_error(&self) {
        self.decode_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Sets the in-flight gauge, tracking its high-water mark.
    pub fn set_in_flight(&self, n: u64) {
        self.in_flight.store(n, Ordering::Relaxed);
        self.in_flight_peak.fetch_max(n, Ordering::Relaxed);
    }

    /// Records a well-formed reply that matched no outstanding probe.
    pub fn record_stray_reply(&self) {
        self.stray_replies.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a reply from an address other than the probed target.
    pub fn record_spoofed_reply(&self) {
        self.spoofed_replies.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an id-matched reply echoing the wrong question.
    pub fn record_qname_mismatch(&self) {
        self.qname_mismatches.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one batched send of `n` datagrams.
    pub fn record_send_batch(&self, n: usize) {
        if n == 0 {
            return;
        }
        let idx = (usize::BITS - 1 - (n.max(1)).leading_zeros()) as usize;
        self.batch_buckets[idx.min(BATCH_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.batch_datagrams.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Records one reactor loop iteration taking `took`.
    pub fn record_loop_iteration(&self, took: Duration) {
        let us = took.as_micros().min(u128::from(u64::MAX)) as u64;
        self.loop_count.fetch_add(1, Ordering::Relaxed);
        self.loop_sum_us.fetch_add(us, Ordering::Relaxed);
        self.loop_max_us.fetch_max(us, Ordering::Relaxed);
        self.loop_buckets[bucket_for(us)].fetch_add(1, Ordering::Relaxed);
    }

    /// Sets the timer-wheel pending gauge, tracking its high-water mark.
    pub fn set_wheel_pending(&self, n: u64) {
        self.wheel_pending.store(n, Ordering::Relaxed);
        self.wheel_pending_peak.fetch_max(n, Ordering::Relaxed);
    }

    /// Records the correlation-slab capacity (once, at reactor launch).
    pub fn set_slab_capacity(&self, n: u64) {
        self.slab_capacity.store(n, Ordering::Relaxed);
    }

    /// Sets the submission-ring occupancy gauge, tracking its high-water
    /// mark.
    pub fn set_ring_depth(&self, n: u64) {
        self.ring_depth.store(n, Ordering::Relaxed);
        self.ring_depth_peak.fetch_max(n, Ordering::Relaxed);
    }

    /// Records one park of `slept` spent waiting for work.
    pub fn record_park(&self, slept: Duration) {
        self.parks.fetch_add(1, Ordering::Relaxed);
        self.parked_us.fetch_add(
            slept.as_micros().min(u128::from(u64::MAX)) as u64,
            Ordering::Relaxed,
        );
    }

    /// Records one wake-from-park and its wake-to-first-poll latency.
    pub fn record_wake_latency(&self, latency: Duration) {
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.unparks.fetch_add(1, Ordering::Relaxed);
        self.wake_latency_us.fetch_add(us, Ordering::Relaxed);
        self.wake_latency_max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Records one send armed with an adaptive (learned) deadline.
    pub fn record_adaptive_deadline(&self) {
        self.adaptive_deadlines.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one deadline expiry backing a learned RTO off.
    pub fn record_rto_backoff(&self) {
        self.rto_backoffs.fetch_add(1, Ordering::Relaxed);
    }

    /// Sets the loss-aware submit-window gauge.
    pub fn set_paced_window(&self, n: u64) {
        self.paced_window.store(n, Ordering::Relaxed);
    }

    /// Records one lifecycle record written to the flight ring.
    pub fn record_flight_record(&self) {
        self.flight_records.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one flight-ring record shed by drop-oldest.
    pub fn record_flight_shed(&self) {
        self.flight_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut latency_buckets = [0u64; BUCKETS];
        for (dst, src) in latency_buckets.iter_mut().zip(&self.latency_buckets) {
            *dst = src.load(Ordering::Relaxed);
        }
        let mut batch_buckets = [0u64; BATCH_BUCKETS];
        for (dst, src) in batch_buckets.iter_mut().zip(&self.batch_buckets) {
            *dst = src.load(Ordering::Relaxed);
        }
        let mut loop_buckets = [0u64; BUCKETS];
        for (dst, src) in loop_buckets.iter_mut().zip(&self.loop_buckets) {
            *dst = src.load(Ordering::Relaxed);
        }
        MetricsSnapshot {
            sent: self.sent.load(Ordering::Relaxed),
            received: self.received.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            rate_limit_stalls: self.rate_limit_stalls.load(Ordering::Relaxed),
            rate_limit_wait: Duration::from_micros(self.rate_limit_wait_us.load(Ordering::Relaxed)),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
            latency_buckets,
            latency_sum_us: self.latency_sum_us.load(Ordering::Relaxed),
            latency_count: self.latency_count.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            in_flight_peak: self.in_flight_peak.load(Ordering::Relaxed),
            stray_replies: self.stray_replies.load(Ordering::Relaxed),
            spoofed_replies: self.spoofed_replies.load(Ordering::Relaxed),
            qname_mismatches: self.qname_mismatches.load(Ordering::Relaxed),
            batch_buckets,
            batch_datagrams: self.batch_datagrams.load(Ordering::Relaxed),
            loop_count: self.loop_count.load(Ordering::Relaxed),
            loop_sum_us: self.loop_sum_us.load(Ordering::Relaxed),
            loop_max_us: self.loop_max_us.load(Ordering::Relaxed),
            loop_buckets,
            wheel_pending: self.wheel_pending.load(Ordering::Relaxed),
            wheel_pending_peak: self.wheel_pending_peak.load(Ordering::Relaxed),
            slab_capacity: self.slab_capacity.load(Ordering::Relaxed),
            ring_depth: self.ring_depth.load(Ordering::Relaxed),
            ring_depth_peak: self.ring_depth_peak.load(Ordering::Relaxed),
            parks: self.parks.load(Ordering::Relaxed),
            parked_us: self.parked_us.load(Ordering::Relaxed),
            unparks: self.unparks.load(Ordering::Relaxed),
            wake_latency_us: self.wake_latency_us.load(Ordering::Relaxed),
            wake_latency_max_us: self.wake_latency_max_us.load(Ordering::Relaxed),
            adaptive_deadlines: self.adaptive_deadlines.load(Ordering::Relaxed),
            rto_backoffs: self.rto_backoffs.load(Ordering::Relaxed),
            paced_window: self.paced_window.load(Ordering::Relaxed),
            flight_records: self.flight_records.load(Ordering::Relaxed),
            flight_shed: self.flight_shed.load(Ordering::Relaxed),
        }
    }
}

fn bucket_for(us: u64) -> usize {
    if us < BASE_US {
        return 0;
    }
    let idx = (64 - (us / BASE_US).leading_zeros()) as usize;
    idx.min(BUCKETS - 1)
}

/// Shared counters for one engine: one [`MetricsBlock`] per reactor
/// shard, merged on every read.
///
/// With one block (the default) this behaves exactly like the block
/// itself did before sharding — same methods, same exported families.
/// With N blocks, writers pick their block via [`EngineMetrics::shard`]
/// and readers see merged totals via [`EngineMetrics::snapshot`], or
/// per-shard series (labelled `shard="i"`) from the `Collector` impl.
#[derive(Debug)]
pub struct EngineMetrics {
    blocks: Vec<Arc<MetricsBlock>>,
}

impl Default for EngineMetrics {
    fn default() -> Self {
        Self::with_shards(1)
    }
}

impl EngineMetrics {
    /// A single-block engine (the unsharded shape).
    pub fn new() -> Self {
        Self::with_shards(1)
    }

    /// An engine with one zeroed block per shard.
    pub fn with_shards(shards: usize) -> Self {
        EngineMetrics {
            blocks: (0..shards.max(1))
                .map(|_| Arc::new(MetricsBlock::new()))
                .collect(),
        }
    }

    /// Number of per-shard blocks.
    pub fn shards(&self) -> usize {
        self.blocks.len()
    }

    /// The block for shard `i` — a reactor shard clones this once at
    /// launch and records into it without touching the other shards.
    ///
    /// # Panics
    ///
    /// If `i >= self.shards()`.
    pub fn shard(&self, i: usize) -> Arc<MetricsBlock> {
        Arc::clone(&self.blocks[i])
    }

    /// Snapshot of a single shard's block.
    ///
    /// # Panics
    ///
    /// If `i >= self.shards()`.
    pub fn shard_snapshot(&self, i: usize) -> MetricsSnapshot {
        self.blocks[i].snapshot()
    }

    /// Merged point-in-time copy across every shard. Counters and
    /// histograms sum; `loop_max_us` takes the slowest shard; the peak
    /// gauges sum per-shard peaks (an upper bound on the true global
    /// peak, since shards peak at different instants).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut merged = self.blocks[0].snapshot();
        for block in &self.blocks[1..] {
            merged.merge_from(&block.snapshot());
        }
        merged
    }

    /// Records one datagram sent (block 0 — unsharded writers).
    pub fn record_sent(&self) {
        self.blocks[0].record_sent();
    }

    /// Records one matched response, with its round-trip time.
    pub fn record_received(&self, rtt: Duration) {
        self.blocks[0].record_received(rtt);
    }

    /// Records a probe that ran out of attempts.
    pub fn record_timeout(&self) {
        self.blocks[0].record_timeout();
    }

    /// Records one retry (an attempt after the first).
    pub fn record_retry(&self) {
        self.blocks[0].record_retry();
    }

    /// Records a rate-limiter stall of `waited`.
    pub fn record_rate_limit_stall(&self, waited: Duration) {
        self.blocks[0].record_rate_limit_stall(waited);
    }

    /// Records a datagram that could not be decoded/matched.
    pub fn record_decode_error(&self) {
        self.blocks[0].record_decode_error();
    }

    /// Sets the in-flight gauge, tracking its high-water mark.
    pub fn set_in_flight(&self, n: u64) {
        self.blocks[0].set_in_flight(n);
    }

    /// Records a well-formed reply that matched no outstanding probe.
    pub fn record_stray_reply(&self) {
        self.blocks[0].record_stray_reply();
    }

    /// Records a reply from an address other than the probed target.
    pub fn record_spoofed_reply(&self) {
        self.blocks[0].record_spoofed_reply();
    }

    /// Records an id-matched reply echoing the wrong question.
    pub fn record_qname_mismatch(&self) {
        self.blocks[0].record_qname_mismatch();
    }

    /// Records one batched send of `n` datagrams.
    pub fn record_send_batch(&self, n: usize) {
        self.blocks[0].record_send_batch(n);
    }

    /// Records one reactor loop iteration taking `took`.
    pub fn record_loop_iteration(&self, took: Duration) {
        self.blocks[0].record_loop_iteration(took);
    }

    /// Sets the timer-wheel pending gauge, tracking its high-water mark.
    pub fn set_wheel_pending(&self, n: u64) {
        self.blocks[0].set_wheel_pending(n);
    }

    /// Records the correlation-slab capacity (once, at reactor launch).
    pub fn set_slab_capacity(&self, n: u64) {
        self.blocks[0].set_slab_capacity(n);
    }

    /// Sets the submission-ring occupancy gauge, tracking its high-water
    /// mark.
    pub fn set_ring_depth(&self, n: u64) {
        self.blocks[0].set_ring_depth(n);
    }

    /// Records one park of `slept` spent waiting for work.
    pub fn record_park(&self, slept: Duration) {
        self.blocks[0].record_park(slept);
    }

    /// Records one wake-from-park and its wake-to-first-poll latency.
    pub fn record_wake_latency(&self, latency: Duration) {
        self.blocks[0].record_wake_latency(latency);
    }

    /// Records one send armed with an adaptive (learned) deadline.
    pub fn record_adaptive_deadline(&self) {
        self.blocks[0].record_adaptive_deadline();
    }

    /// Records one deadline expiry backing a learned RTO off.
    pub fn record_rto_backoff(&self) {
        self.blocks[0].record_rto_backoff();
    }

    /// Sets the loss-aware submit-window gauge.
    pub fn set_paced_window(&self, n: u64) {
        self.blocks[0].set_paced_window(n);
    }
}

/// Point-in-time copy of a [`MetricsBlock`] (or of a whole
/// [`EngineMetrics`], merged across its shards).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Datagrams sent (attempts included).
    pub sent: u64,
    /// Matched responses received.
    pub received: u64,
    /// Probes that timed out after all attempts.
    pub timeouts: u64,
    /// Retransmissions.
    pub retries: u64,
    /// Rate-limiter stalls.
    pub rate_limit_stalls: u64,
    /// Cumulative time spent stalled on the rate limiter.
    pub rate_limit_wait: Duration,
    /// Undecodable/unmatched datagrams.
    pub decode_errors: u64,
    /// Latency histogram counts (exponential microsecond buckets).
    pub latency_buckets: [u64; BUCKETS],
    /// Sum of recorded latencies in microseconds.
    pub latency_sum_us: u64,
    /// Number of recorded latencies.
    pub latency_count: u64,
    /// Probes in flight at snapshot time (reactor gauge).
    pub in_flight: u64,
    /// Highest in-flight count seen. Across shards this sums per-shard
    /// peaks — an upper bound on the true simultaneous peak.
    pub in_flight_peak: u64,
    /// Replies with no matching outstanding probe (wrong/stale id, or
    /// arrival after the probe's timeout).
    pub stray_replies: u64,
    /// Id-matched replies from an unexpected source address.
    pub spoofed_replies: u64,
    /// Id-matched replies echoing the wrong question (id collisions).
    pub qname_mismatches: u64,
    /// Send-batch size histogram (power-of-two buckets).
    pub batch_buckets: [u64; BATCH_BUCKETS],
    /// Total datagrams across all batched sends.
    pub batch_datagrams: u64,
    /// Reactor loop iterations measured.
    pub loop_count: u64,
    /// Total reactor loop time in microseconds.
    pub loop_sum_us: u64,
    /// Slowest reactor loop iteration in microseconds.
    pub loop_max_us: u64,
    /// Reactor tick latency histogram (exponential microsecond buckets).
    pub loop_buckets: [u64; BUCKETS],
    /// Timers pending in the reactor wheel at snapshot time.
    pub wheel_pending: u64,
    /// Highest wheel-pending count seen (summed per-shard peaks when
    /// merged).
    pub wheel_pending_peak: u64,
    /// Correlation-slab capacity (0 outside a reactor; summed across
    /// shards when merged).
    pub slab_capacity: u64,
    /// Submission-ring occupancy at snapshot time (summed when merged).
    pub ring_depth: u64,
    /// Highest submission-ring occupancy seen (summed per-shard peaks
    /// when merged).
    pub ring_depth_peak: u64,
    /// Times the reactor loop parked waiting for work.
    pub parks: u64,
    /// Total time spent parked, in microseconds.
    pub parked_us: u64,
    /// Times the loop was woken from a park by a submitter.
    pub unparks: u64,
    /// Total wake-to-first-poll latency, in microseconds.
    pub wake_latency_us: u64,
    /// Slowest single wake-to-first-poll, in microseconds (max across
    /// shards when merged).
    pub wake_latency_max_us: u64,
    /// Sends whose deadline came from the adaptive RTO table.
    pub adaptive_deadlines: u64,
    /// Deadline expiries that backed a learned per-ingress RTO off.
    pub rto_backoffs: u64,
    /// Loss-aware submit window at snapshot time (0 when pacing is off;
    /// summed when merged, but only block 0's scheduler ever sets it).
    pub paced_window: u64,
    /// Lifecycle records written to the shard flight rings.
    pub flight_records: u64,
    /// Flight-ring records overwritten unread (drop-oldest sheds).
    pub flight_shed: u64,
}

impl MetricsSnapshot {
    /// Folds `other` into `self`: counters, histograms, gauges and slab
    /// capacity sum; `loop_max_us` takes the max; the peak gauges sum
    /// (each shard peaked independently, so the sum bounds the true
    /// global peak from above).
    pub fn merge_from(&mut self, other: &MetricsSnapshot) {
        self.sent += other.sent;
        self.received += other.received;
        self.timeouts += other.timeouts;
        self.retries += other.retries;
        self.rate_limit_stalls += other.rate_limit_stalls;
        self.rate_limit_wait += other.rate_limit_wait;
        self.decode_errors += other.decode_errors;
        for (dst, src) in self.latency_buckets.iter_mut().zip(&other.latency_buckets) {
            *dst += src;
        }
        self.latency_sum_us += other.latency_sum_us;
        self.latency_count += other.latency_count;
        self.in_flight += other.in_flight;
        self.in_flight_peak += other.in_flight_peak;
        self.stray_replies += other.stray_replies;
        self.spoofed_replies += other.spoofed_replies;
        self.qname_mismatches += other.qname_mismatches;
        for (dst, src) in self.batch_buckets.iter_mut().zip(&other.batch_buckets) {
            *dst += src;
        }
        self.batch_datagrams += other.batch_datagrams;
        self.loop_count += other.loop_count;
        self.loop_sum_us += other.loop_sum_us;
        self.loop_max_us = self.loop_max_us.max(other.loop_max_us);
        for (dst, src) in self.loop_buckets.iter_mut().zip(&other.loop_buckets) {
            *dst += src;
        }
        self.wheel_pending += other.wheel_pending;
        self.wheel_pending_peak += other.wheel_pending_peak;
        self.slab_capacity += other.slab_capacity;
        self.ring_depth += other.ring_depth;
        self.ring_depth_peak += other.ring_depth_peak;
        self.parks += other.parks;
        self.parked_us += other.parked_us;
        self.unparks += other.unparks;
        self.wake_latency_us += other.wake_latency_us;
        self.wake_latency_max_us = self.wake_latency_max_us.max(other.wake_latency_max_us);
        self.adaptive_deadlines += other.adaptive_deadlines;
        self.rto_backoffs += other.rto_backoffs;
        self.paced_window += other.paced_window;
        self.flight_records += other.flight_records;
        self.flight_shed += other.flight_shed;
    }

    /// Observed datagram loss rate: unanswered sends over sends.
    /// Retransmissions count as sends, so this tracks *wire* loss, not
    /// probe-level failure.
    pub fn loss_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            1.0 - (self.received as f64 / self.sent as f64).min(1.0)
        }
    }

    /// Mean round-trip latency over all matched responses.
    pub fn mean_latency(&self) -> Option<Duration> {
        self.latency_sum_us
            .checked_div(self.latency_count)
            .map(Duration::from_micros)
    }

    /// Approximate latency quantile (`q` in `[0, 1]`) from the histogram:
    /// upper edge of the bucket containing the q-th response.
    pub fn latency_quantile(&self, q: f64) -> Option<Duration> {
        Self::quantile_from(&self.latency_buckets, self.latency_count, q)
    }

    /// Approximate reactor tick-latency quantile from the loop histogram.
    pub fn loop_latency_quantile(&self, q: f64) -> Option<Duration> {
        Self::quantile_from(&self.loop_buckets, self.loop_count, q)
    }

    fn quantile_from(buckets: &[u64; BUCKETS], total: u64, q: f64) -> Option<Duration> {
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &count) in buckets.iter().enumerate() {
            seen += count;
            if seen >= target {
                let upper_us = if i == 0 { BASE_US } else { BASE_US << i };
                return Some(Duration::from_micros(upper_us));
            }
        }
        Some(Duration::from_micros(BASE_US << (BUCKETS - 1)))
    }

    /// Replies dropped without matching a probe, for any reason.
    pub fn dropped_replies(&self) -> u64 {
        self.stray_replies + self.spoofed_replies + self.qname_mismatches
    }

    /// Mean reactor loop-iteration time.
    pub fn mean_loop_latency(&self) -> Option<Duration> {
        self.loop_sum_us
            .checked_div(self.loop_count)
            .map(Duration::from_micros)
    }

    /// Number of batched sends recorded.
    pub fn batches_sent(&self) -> u64 {
        self.batch_buckets.iter().sum()
    }

    /// Mean send-batch fill against a batch capacity of `max_batch`
    /// datagrams: 1.0 means every `sendmmsg` went out full.
    pub fn batch_fill_ratio(&self, max_batch: usize) -> Option<f64> {
        let batches = self.batches_sent();
        if batches == 0 || max_batch == 0 {
            return None;
        }
        Some(self.batch_datagrams as f64 / (batches * max_batch as u64) as f64)
    }

    /// Correlation-slab occupancy high-water mark as a fraction of
    /// capacity — how close the reactor came to saturating its slab.
    pub fn slab_fill_peak(&self) -> Option<f64> {
        if self.slab_capacity == 0 {
            return None;
        }
        Some(self.in_flight_peak as f64 / self.slab_capacity as f64)
    }

    /// Reactor duty cycle: loop time over loop-plus-parked time, in
    /// `[0, 1]`. `None` before any loop or park was recorded.
    pub fn duty_cycle(&self) -> Option<f64> {
        let total = self.loop_sum_us + self.parked_us;
        if total == 0 {
            return None;
        }
        Some(self.loop_sum_us as f64 / total as f64)
    }

    /// Mean wake-to-first-poll latency across all unparks.
    pub fn mean_wake_latency(&self) -> Option<Duration> {
        self.wake_latency_us
            .checked_div(self.unparks)
            .map(Duration::from_micros)
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "sent {}  received {}  timeouts {}  retries {}  decode errors {}",
            self.sent, self.received, self.timeouts, self.retries, self.decode_errors
        )?;
        writeln!(
            f,
            "rate-limit stalls {} (total wait {:?})  wire loss {:.2}%",
            self.rate_limit_stalls,
            self.rate_limit_wait,
            self.loss_rate() * 100.0
        )?;
        writeln!(
            f,
            "in-flight {} (peak {})  dropped replies: {} stray, {} spoofed, {} id-collisions",
            self.in_flight,
            self.in_flight_peak,
            self.stray_replies,
            self.spoofed_replies,
            self.qname_mismatches
        )?;
        if self.loop_count > 0 {
            writeln!(
                f,
                "reactor: {} loops (mean {:?}, max {:?})  {} send batches",
                self.loop_count,
                self.mean_loop_latency().unwrap_or_default(),
                Duration::from_micros(self.loop_max_us),
                self.batches_sent()
            )?;
        }
        if self.parks > 0 {
            writeln!(
                f,
                "parking: {} parks / {} unparks  duty {:.1}%  wake mean {:?} max {:?}",
                self.parks,
                self.unparks,
                self.duty_cycle().unwrap_or_default() * 100.0,
                self.mean_wake_latency().unwrap_or_default(),
                Duration::from_micros(self.wake_latency_max_us)
            )?;
        }
        match (
            self.mean_latency(),
            self.latency_quantile(0.5),
            self.latency_quantile(0.99),
        ) {
            (Some(mean), Some(p50), Some(p99)) => {
                write!(f, "latency mean {mean:?}  p50 ≤ {p50:?}  p99 ≤ {p99:?}")
            }
            _ => write!(f, "latency: no samples"),
        }
    }
}

/// Cumulative Prometheus buckets from our exponential microsecond
/// histogram: bucket `i`'s upper edge is `BASE_US << i` µs, converted to
/// seconds. The open-ended top bucket is left to the implicit `+Inf`.
fn cumulative_seconds(buckets: &[u64; BUCKETS]) -> Vec<(f64, u64)> {
    let mut out = Vec::with_capacity(BUCKETS - 1);
    let mut cumulative = 0u64;
    for (i, &count) in buckets.iter().take(BUCKETS - 1).enumerate() {
        cumulative += count;
        out.push(((BASE_US << i) as f64 / 1e6, cumulative));
    }
    out
}

/// Pushes every exported family for one snapshot. `shard` of `None`
/// emits unlabelled series (the single-shard shape); `Some(i)` tags
/// every series with `shard="i"`.
fn collect_snapshot(s: &MetricsSnapshot, shard: Option<u64>, out: &mut Vec<Metric>) {
    let label = |m: Metric| match shard {
        Some(i) => m.with_label("shard", i.to_string()),
        None => m,
    };
    out.push(label(Metric::counter(
        "cde_engine_sent_total",
        "Datagrams handed to the OS (every attempt counts)",
        s.sent,
    )));
    out.push(label(Metric::counter(
        "cde_engine_received_total",
        "Responses matched to an outstanding probe",
        s.received,
    )));
    out.push(label(Metric::counter(
        "cde_engine_timeouts_total",
        "Probes that exhausted every attempt unanswered",
        s.timeouts,
    )));
    out.push(label(Metric::counter(
        "cde_engine_retries_total",
        "Retransmissions after a per-attempt deadline",
        s.retries,
    )));
    out.push(label(Metric::counter(
        "cde_engine_rate_limit_stalls_total",
        "Times a sender waited for rate-limiter tokens",
        s.rate_limit_stalls,
    )));
    out.push(label(Metric::counter(
        "cde_engine_rate_limit_wait_us_total",
        "Cumulative rate-limiter wait, in microseconds",
        s.rate_limit_wait.as_micros().min(u128::from(u64::MAX)) as u64,
    )));
    out.push(label(Metric::counter(
        "cde_engine_decode_errors_total",
        "Datagrams that failed wire decoding or matching",
        s.decode_errors,
    )));
    for (reason, count) in [
        ("stray", s.stray_replies),
        ("spoofed", s.spoofed_replies),
        ("duplicate", s.qname_mismatches),
    ] {
        out.push(label(
            Metric::counter(
                "cde_engine_dropped_replies_total",
                "Replies dropped without completing a probe, by reason",
                count,
            )
            .with_label("reason", reason),
        ));
    }
    out.push(label(Metric::gauge(
        "cde_engine_in_flight",
        "Probes currently in flight",
        s.in_flight as f64,
    )));
    out.push(label(Metric::gauge(
        "cde_engine_in_flight_peak",
        "Correlation-slab occupancy high-water mark",
        s.in_flight_peak as f64,
    )));
    out.push(label(Metric::gauge(
        "cde_engine_slab_capacity",
        "Correlation-slab capacity (0 outside a reactor)",
        s.slab_capacity as f64,
    )));
    out.push(label(Metric::gauge(
        "cde_engine_ring_depth",
        "Submission-ring occupancy at scrape time",
        s.ring_depth as f64,
    )));
    out.push(label(Metric::gauge(
        "cde_engine_ring_depth_peak",
        "High-water mark of the submission-ring occupancy",
        s.ring_depth_peak as f64,
    )));
    out.push(label(Metric::counter(
        "cde_engine_parks_total",
        "Times the reactor loop parked waiting for work",
        s.parks,
    )));
    out.push(label(Metric::counter(
        "cde_engine_parked_us_total",
        "Cumulative time the reactor loop spent parked, in microseconds",
        s.parked_us,
    )));
    out.push(label(Metric::counter(
        "cde_engine_unparks_total",
        "Times the reactor loop was woken from a park by a submitter",
        s.unparks,
    )));
    out.push(label(Metric::counter(
        "cde_engine_wake_latency_us_total",
        "Cumulative wake-to-first-poll latency, in microseconds",
        s.wake_latency_us,
    )));
    out.push(label(Metric::gauge(
        "cde_engine_wake_latency_max_us",
        "Slowest single wake-to-first-poll, in microseconds",
        s.wake_latency_max_us as f64,
    )));
    out.push(label(Metric::gauge(
        "cde_engine_duty_cycle",
        "Reactor loop time over loop-plus-parked time (1.0 = never idle)",
        s.duty_cycle().unwrap_or(0.0),
    )));
    out.push(label(Metric::counter(
        "cde_engine_adaptive_deadlines_total",
        "Sends armed with a learned (adaptive RTO) deadline",
        s.adaptive_deadlines,
    )));
    out.push(label(Metric::counter(
        "cde_engine_rto_backoffs_total",
        "Deadline expiries that backed a learned per-ingress RTO off",
        s.rto_backoffs,
    )));
    out.push(label(Metric::gauge(
        "cde_engine_paced_window",
        "Loss-aware submit window applied by the pipelined scheduler",
        s.paced_window as f64,
    )));
    out.push(label(Metric::counter(
        "cde_engine_flight_records_total",
        "Probe lifecycle records written to the flight recorder rings",
        s.flight_records,
    )));
    out.push(label(Metric::counter(
        "cde_engine_flight_shed_total",
        "Flight-recorder records overwritten unread (drop-oldest)",
        s.flight_shed,
    )));
    out.push(label(Metric::gauge(
        "cde_engine_wheel_pending",
        "Timers pending in the reactor wheel",
        s.wheel_pending as f64,
    )));
    out.push(label(Metric::gauge(
        "cde_engine_wheel_pending_peak",
        "High-water mark of pending reactor timers",
        s.wheel_pending_peak as f64,
    )));
    out.push(label(Metric::histogram(
        "cde_engine_probe_rtt_seconds",
        "Round-trip time of matched probes",
        cumulative_seconds(&s.latency_buckets),
        s.latency_sum_us as f64 / 1e6,
        s.latency_count,
    )));
    out.push(label(Metric::histogram(
        "cde_engine_loop_tick_seconds",
        "Reactor loop-iteration latency",
        cumulative_seconds(&s.loop_buckets),
        s.loop_sum_us as f64 / 1e6,
        s.loop_count,
    )));
    let mut batch_cumulative = Vec::with_capacity(BATCH_BUCKETS - 1);
    let mut seen = 0u64;
    for (i, &count) in s.batch_buckets.iter().take(BATCH_BUCKETS - 1).enumerate() {
        seen += count;
        batch_cumulative.push((((1u64 << (i + 1)) - 1) as f64, seen));
    }
    out.push(label(Metric::histogram(
        "cde_engine_send_batch_size",
        "Datagrams per batched send",
        batch_cumulative,
        s.batch_datagrams as f64,
        s.batches_sent(),
    )));
}

impl Collector for EngineMetrics {
    fn collect(&self, out: &mut Vec<Metric>) {
        if self.blocks.len() == 1 {
            collect_snapshot(&self.blocks[0].snapshot(), None, out);
        } else {
            for (i, block) in self.blocks.iter().enumerate() {
                collect_snapshot(&block.snapshot(), Some(i as u64), out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = EngineMetrics::new();
        m.record_sent();
        m.record_sent();
        m.record_received(Duration::from_micros(300));
        m.record_retry();
        m.record_timeout();
        m.record_rate_limit_stall(Duration::from_millis(2));
        m.record_decode_error();
        let s = m.snapshot();
        assert_eq!(s.sent, 2);
        assert_eq!(s.received, 1);
        assert_eq!(s.retries, 1);
        assert_eq!(s.timeouts, 1);
        assert_eq!(s.rate_limit_stalls, 1);
        assert_eq!(s.decode_errors, 1);
        assert!(s.rate_limit_wait >= Duration::from_millis(2));
        assert!((s.loss_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn reactor_counters_accumulate() {
        let m = EngineMetrics::new();
        m.set_in_flight(5);
        m.set_in_flight(9);
        m.set_in_flight(2);
        m.record_stray_reply();
        m.record_spoofed_reply();
        m.record_qname_mismatch();
        m.record_qname_mismatch();
        m.record_send_batch(1);
        m.record_send_batch(7);
        m.record_send_batch(32);
        m.record_send_batch(0); // ignored
        m.record_loop_iteration(Duration::from_micros(100));
        m.record_loop_iteration(Duration::from_micros(300));
        let s = m.snapshot();
        assert_eq!(s.in_flight, 2);
        assert_eq!(s.in_flight_peak, 9);
        assert_eq!(s.stray_replies, 1);
        assert_eq!(s.spoofed_replies, 1);
        assert_eq!(s.qname_mismatches, 2);
        assert_eq!(s.dropped_replies(), 4);
        assert_eq!(s.batches_sent(), 3);
        assert_eq!(s.batch_buckets[0], 1); // batch of 1
        assert_eq!(s.batch_buckets[2], 1); // batch of 7 → [4, 8)
        assert_eq!(s.batch_buckets[5], 1); // batch of 32
        assert_eq!(s.loop_count, 2);
        assert_eq!(s.mean_loop_latency(), Some(Duration::from_micros(200)));
        assert_eq!(s.loop_max_us, 300);
    }

    #[test]
    fn histogram_buckets_are_monotone() {
        let m = EngineMetrics::new();
        for us in [1u64, 20, 100, 1_000, 10_000, 100_000, 1_000_000] {
            m.record_received(Duration::from_micros(us));
        }
        let s = m.snapshot();
        assert_eq!(s.latency_count, 7);
        let p50 = s.latency_quantile(0.5).unwrap();
        let p99 = s.latency_quantile(0.99).unwrap();
        assert!(p50 <= p99);
        assert!(s.mean_latency().unwrap() > Duration::from_micros(100));
    }

    #[test]
    fn quantiles_cover_edges() {
        let m = EngineMetrics::new();
        assert_eq!(m.snapshot().latency_quantile(0.5), None);
        m.record_received(Duration::from_micros(64));
        let s = m.snapshot();
        assert!(s.latency_quantile(0.0).is_some());
        assert!(s.latency_quantile(1.0).is_some());
    }

    #[test]
    fn health_gauges_and_ratios() {
        let m = EngineMetrics::new();
        m.set_slab_capacity(1000);
        m.set_in_flight(250);
        m.set_wheel_pending(40);
        m.set_wheel_pending(10);
        m.record_send_batch(16);
        m.record_send_batch(32);
        m.record_loop_iteration(Duration::from_micros(50));
        let s = m.snapshot();
        assert_eq!(s.wheel_pending, 10);
        assert_eq!(s.wheel_pending_peak, 40);
        assert_eq!(s.slab_capacity, 1000);
        assert_eq!(s.slab_fill_peak(), Some(0.25));
        // 48 datagrams over 2 batches of capacity 32 → 0.75 fill.
        assert_eq!(s.batch_fill_ratio(32), Some(0.75));
        assert!(s.loop_latency_quantile(0.5).is_some());
        assert_eq!(EngineMetrics::new().snapshot().batch_fill_ratio(32), None);
        assert_eq!(EngineMetrics::new().snapshot().slab_fill_peak(), None);
    }

    #[test]
    fn display_always_reports_drop_counters() {
        let m = EngineMetrics::new();
        let quiet = m.snapshot().to_string();
        assert!(quiet.contains("0 stray, 0 spoofed, 0 id-collisions"));
        m.record_stray_reply();
        m.record_spoofed_reply();
        m.record_qname_mismatch();
        let busy = m.snapshot().to_string();
        assert!(busy.contains("1 stray, 1 spoofed, 1 id-collisions"));
    }

    #[test]
    fn collector_exports_families() {
        let m = EngineMetrics::new();
        m.record_sent();
        m.record_received(Duration::from_micros(500));
        m.record_stray_reply();
        m.set_slab_capacity(64);
        m.set_wheel_pending(3);
        let mut metrics = Vec::new();
        m.collect(&mut metrics);
        let find = |name: &str| metrics.iter().find(|x| x.name == name);
        assert!(matches!(
            find("cde_engine_sent_total").unwrap().value,
            cde_telemetry::MetricValue::Counter(1)
        ));
        let dropped: Vec<_> = metrics
            .iter()
            .filter(|x| x.name == "cde_engine_dropped_replies_total")
            .collect();
        assert_eq!(dropped.len(), 3);
        assert!(dropped.iter().any(|x| {
            x.labels == vec![("reason", "stray".to_string())]
                && matches!(x.value, cde_telemetry::MetricValue::Counter(1))
        }));
        match &find("cde_engine_probe_rtt_seconds").unwrap().value {
            cde_telemetry::MetricValue::Histogram {
                buckets,
                sum,
                count,
            } => {
                assert_eq!(*count, 1);
                assert!((sum - 0.0005).abs() < 1e-9);
                // Buckets are cumulative and end below the open top edge.
                assert_eq!(buckets.len(), BUCKETS - 1);
                assert_eq!(buckets.last().unwrap().1, 1);
                assert!(buckets
                    .windows(2)
                    .all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1));
            }
            other => panic!("expected histogram, got {other:?}"),
        }
        let wheel = find("cde_engine_wheel_pending").unwrap();
        assert!(matches!(wheel.value, cde_telemetry::MetricValue::Gauge(v) if v == 3.0));
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(EngineMetrics::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    m.record_sent();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.snapshot().sent, 4000);
    }

    #[test]
    fn shard_runtime_counters_accumulate() {
        let m = EngineMetrics::new();
        m.set_ring_depth(10);
        m.set_ring_depth(40);
        m.set_ring_depth(5);
        m.record_park(Duration::from_micros(800));
        m.record_park(Duration::from_micros(200));
        m.record_wake_latency(Duration::from_micros(30));
        m.record_wake_latency(Duration::from_micros(90));
        m.record_loop_iteration(Duration::from_micros(1000));
        let s = m.snapshot();
        assert_eq!(s.ring_depth, 5);
        assert_eq!(s.ring_depth_peak, 40);
        assert_eq!(s.parks, 2);
        assert_eq!(s.parked_us, 1000);
        assert_eq!(s.unparks, 2);
        assert_eq!(s.wake_latency_us, 120);
        assert_eq!(s.wake_latency_max_us, 90);
        assert_eq!(s.mean_wake_latency(), Some(Duration::from_micros(60)));
        // 1000 µs busy vs 1000 µs parked → 50% duty.
        assert!((s.duty_cycle().unwrap() - 0.5).abs() < 1e-9);
        assert_eq!(EngineMetrics::new().snapshot().duty_cycle(), None);
        let text = s.to_string();
        assert!(text.contains("2 parks / 2 unparks"), "{text}");
    }

    #[test]
    fn shard_runtime_series_are_exported() {
        let m = EngineMetrics::new();
        m.set_ring_depth(7);
        m.record_park(Duration::from_micros(100));
        m.record_wake_latency(Duration::from_micros(25));
        let mut metrics = Vec::new();
        m.collect(&mut metrics);
        let find = |name: &str| metrics.iter().find(|x| x.name == name);
        assert!(matches!(
            find("cde_engine_ring_depth").unwrap().value,
            cde_telemetry::MetricValue::Gauge(v) if v == 7.0
        ));
        assert!(matches!(
            find("cde_engine_parks_total").unwrap().value,
            cde_telemetry::MetricValue::Counter(1)
        ));
        assert!(matches!(
            find("cde_engine_unparks_total").unwrap().value,
            cde_telemetry::MetricValue::Counter(1)
        ));
        assert!(matches!(
            find("cde_engine_wake_latency_us_total").unwrap().value,
            cde_telemetry::MetricValue::Counter(25)
        ));
        assert!(find("cde_engine_duty_cycle").is_some());
        assert!(find("cde_engine_ring_depth_peak").is_some());
        assert!(find("cde_engine_parked_us_total").is_some());
        assert!(find("cde_engine_wake_latency_max_us").is_some());
    }

    /// Merge-on-read under fire: writers hammer every shard block while
    /// a reader snapshots; merged counters must never move backwards and
    /// must land exactly on the expected totals.
    #[test]
    fn merged_snapshot_is_monotonic_under_concurrent_writers() {
        const SHARDS: usize = 4;
        const PER_SHARD: u64 = 20_000;
        let m = Arc::new(EngineMetrics::with_shards(SHARDS));
        let writers: Vec<_> = (0..SHARDS)
            .map(|i| {
                let block = m.shard(i);
                std::thread::spawn(move || {
                    for n in 0..PER_SHARD {
                        block.record_sent();
                        block.record_received(Duration::from_micros(100));
                        block.set_ring_depth(n % 64);
                        if n % 8 == 0 {
                            block.record_park(Duration::from_micros(10));
                            block.record_wake_latency(Duration::from_micros(5));
                        }
                    }
                })
            })
            .collect();
        let reader = {
            let m = Arc::clone(&m);
            std::thread::spawn(move || {
                let mut last = m.snapshot();
                for _ in 0..500 {
                    let s = m.snapshot();
                    assert!(s.sent >= last.sent);
                    assert!(s.received >= last.received);
                    assert!(s.parks >= last.parks);
                    assert!(s.unparks >= last.unparks);
                    assert!(s.parked_us >= last.parked_us);
                    assert!(s.wake_latency_us >= last.wake_latency_us);
                    assert!(s.ring_depth_peak >= last.ring_depth_peak);
                    assert!(s.latency_count >= last.latency_count);
                    last = s;
                    std::thread::yield_now();
                }
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        reader.join().unwrap();
        let s = m.snapshot();
        assert_eq!(s.sent, SHARDS as u64 * PER_SHARD);
        assert_eq!(s.received, SHARDS as u64 * PER_SHARD);
        assert_eq!(s.parks, SHARDS as u64 * PER_SHARD / 8);
        assert_eq!(s.parks, s.unparks);
        assert_eq!(s.ring_depth_peak, SHARDS as u64 * 63);
    }

    #[test]
    fn sharded_snapshot_merges_blocks() {
        let m = EngineMetrics::with_shards(3);
        assert_eq!(m.shards(), 3);
        for i in 0..3 {
            let block = m.shard(i);
            for _ in 0..=i {
                block.record_sent();
                block.record_received(Duration::from_micros(100 * (i as u64 + 1)));
            }
            block.set_in_flight((i as u64 + 1) * 10);
            block.record_loop_iteration(Duration::from_micros(50 * (i as u64 + 1)));
            block.set_slab_capacity(100);
        }
        let s = m.snapshot();
        assert_eq!(s.sent, 6);
        assert_eq!(s.received, 6);
        assert_eq!(s.latency_count, 6);
        assert_eq!(s.latency_sum_us, 100 + 2 * 200 + 3 * 300);
        assert_eq!(s.in_flight, 10 + 20 + 30);
        assert_eq!(s.in_flight_peak, 60, "peaks sum as an upper bound");
        assert_eq!(s.loop_count, 3);
        assert_eq!(s.loop_max_us, 150);
        assert_eq!(s.slab_capacity, 300);
        // Per-shard view stays addressable.
        assert_eq!(m.shard_snapshot(2).sent, 3);
        assert_eq!(m.shard_snapshot(0).in_flight, 10);
    }

    #[test]
    fn merged_snapshot_equals_single_block_totals() {
        // The same workload recorded into 1 block vs spread over 4
        // blocks must merge to identical totals (gauge peaks aside —
        // here each shard peaks once, so the sums agree too).
        let single = EngineMetrics::new();
        let sharded = EngineMetrics::with_shards(4);
        for i in 0..40u64 {
            let rtt = Duration::from_micros(100 + i * 13);
            single.record_sent();
            single.record_received(rtt);
            if i % 5 == 0 {
                single.record_retry();
            }
            let block = sharded.shard((i % 4) as usize);
            block.record_sent();
            block.record_received(rtt);
            if i % 5 == 0 {
                block.record_retry();
            }
        }
        let a = single.snapshot();
        let b = sharded.snapshot();
        assert_eq!(a.sent, b.sent);
        assert_eq!(a.received, b.received);
        assert_eq!(a.retries, b.retries);
        assert_eq!(a.latency_sum_us, b.latency_sum_us);
        assert_eq!(a.latency_buckets, b.latency_buckets);
    }

    #[test]
    fn collector_labels_shards_when_sharded() {
        let m = EngineMetrics::with_shards(2);
        m.shard(0).record_sent();
        m.shard(1).record_sent();
        m.shard(1).record_sent();
        let mut metrics = Vec::new();
        m.collect(&mut metrics);
        let sent: Vec<_> = metrics
            .iter()
            .filter(|x| x.name == "cde_engine_sent_total")
            .collect();
        assert_eq!(sent.len(), 2);
        for metric in &sent {
            assert!(metric.labels.iter().any(|(k, _)| *k == "shard"));
        }
        let shard1 = sent
            .iter()
            .find(|x| x.labels.contains(&("shard", "1".to_string())))
            .unwrap();
        assert!(matches!(
            shard1.value,
            cde_telemetry::MetricValue::Counter(2)
        ));
        // Labelled families keep their secondary labels too.
        assert!(metrics.iter().any(|x| {
            x.name == "cde_engine_dropped_replies_total"
                && x.labels.contains(&("reason", "stray".to_string()))
                && x.labels.iter().any(|(k, _)| *k == "shard")
        }));
        // Single-block engines stay label-free (golden stability).
        let mut unsharded = Vec::new();
        EngineMetrics::new().collect(&mut unsharded);
        assert!(unsharded
            .iter()
            .filter(|x| x.name == "cde_engine_sent_total")
            .all(|x| x.labels.is_empty()));
    }
}
