//! The campaign scheduler: bounded-concurrency probe fan-out.
//!
//! A measurement campaign is thousands of near-identical probes. The
//! scheduler runs them on a pool of worker threads over a bounded job
//! channel — the bound *is* the in-flight probe cap — with an optional
//! shared [`RateLimiter`] pacing the aggregate send rate. Each worker
//! owns its transport (created in-thread via the factory, so transports
//! need not be `Send`), and the final [`CampaignReport`] aggregates every
//! worker's metrics and feeds the observed loss straight back into
//! `cde-core`'s [`ProbePlan`] — the paper's loss-aware budget planning,
//! closed over live measurements.

use crate::clock::EngineClock;
use crate::metrics::MetricsSnapshot;
use crate::ratelimit::RateLimiter;
use crate::reactor::{ProbeCompletion, Reactor, ReactorHandle};
use crate::transport::{Transport, TransportReply};
use cde_core::ProbePlan;
use cde_dns::{Name, RecordType};
use cde_telemetry::{CampaignSpan, EventKind as TelemetryEvent, ProgressReporter};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use crossbeam::thread;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Duration;

/// Hardware-derived worker-pool default: blocking probe workers spend
/// almost all their life parked in `recv`, so oversubscribe the cores;
/// the floor of 4 keeps even a single-core box pipelined.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(2)
        .saturating_mul(2)
        .clamp(4, 32)
}

/// One probe to schedule.
#[derive(Debug, Clone)]
pub struct Probe {
    /// Platform ingress to aim at.
    pub ingress: Ipv4Addr,
    /// Name to query.
    pub qname: Name,
    /// Query type.
    pub qtype: RecordType,
}

impl Probe {
    /// An A-record probe for `qname` via `ingress`.
    pub fn a(ingress: Ipv4Addr, qname: Name) -> Probe {
        Probe {
            ingress,
            qname,
            qtype: RecordType::A,
        }
    }
}

/// Concurrency and pacing knobs for one campaign.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Worker threads (each owns one transport).
    pub workers: usize,
    /// Maximum probes in flight (bounded job-channel capacity).
    pub max_in_flight: usize,
    /// Shared pacing across all workers, when set.
    pub limiter: Option<Arc<RateLimiter>>,
}

impl Default for CampaignOptions {
    fn default() -> CampaignOptions {
        // Sized from the machine, not hard-coded: `default_workers()`
        // scales with `available_parallelism`, and the in-flight cap
        // keeps every worker's job queue a few probes deep.
        let workers = default_workers();
        CampaignOptions {
            workers,
            max_in_flight: workers * 4,
            limiter: None,
        }
    }
}

/// One scheduled probe's result.
#[derive(Debug, Clone)]
pub struct ProbeOutcome {
    /// The probe as submitted.
    pub probe: Probe,
    /// What the transport saw.
    pub reply: TransportReply,
}

/// Aggregated result of a campaign run.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Per-probe outcomes, in submission order.
    pub outcomes: Vec<ProbeOutcome>,
    /// Datagrams sent across all workers (retransmissions included).
    pub sent: u64,
    /// Responses received across all workers.
    pub received: u64,
    /// Probes that failed every attempt.
    pub timeouts: u64,
    /// Retransmissions across all workers.
    pub retries: u64,
    /// Probes that had to wait for rate-limit tokens.
    pub rate_limit_stalls: u64,
}

impl CampaignReport {
    /// Probes that got an answer.
    pub fn answered(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.reply.is_answered())
            .count()
    }

    /// Per-attempt wire loss observed by this campaign.
    pub fn wire_loss(&self) -> f64 {
        if self.sent == 0 {
            return 0.0;
        }
        1.0 - self.received as f64 / self.sent as f64
    }

    /// Probes that exhausted every attempt unanswered.
    pub fn timed_out(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| !o.reply.is_answered())
            .count()
    }

    /// Every submitted probe produced exactly one outcome — answered or
    /// timed out, nothing lost in the correlation slab. The invariant
    /// the chaos suite asserts after every run.
    pub fn fully_accounted(&self, submitted: usize) -> bool {
        self.outcomes.len() == submitted && self.answered() + self.timed_out() == submitted
    }

    /// Plans the next campaign against the same target: the observed loss
    /// feeds `cde-core`'s coupon-collector budgets (paper §IV-C).
    pub fn plan_for(&self, n_max: u64) -> ProbePlan {
        // `for_target` requires loss in [0, 1); a fully-dark target still
        // deserves a (maximally redundant) plan.
        ProbePlan::for_target(n_max, self.wire_loss().clamp(0.0, 0.99))
    }
}

/// Runs `probes` through worker-owned transports with bounded in-flight
/// concurrency; blocks until the campaign completes.
///
/// `factory(worker_index)` is called once inside each worker thread.
pub fn run_campaign<T, F>(factory: F, probes: Vec<Probe>, opts: &CampaignOptions) -> CampaignReport
where
    T: Transport,
    F: Fn(usize) -> T + Sync,
{
    let workers = opts.workers.max(1);
    let clock = EngineClock::start();
    let span = cde_telemetry::global().begin_campaign("worker_campaign", probes.len() as u64);
    let (job_tx, job_rx) = bounded::<(usize, Probe)>(opts.max_in_flight.max(1));
    let (res_tx, res_rx) = unbounded();
    let (met_tx, met_rx) = unbounded();

    let (mut indexed, snapshots) = thread::scope(|s| {
        for worker in 0..workers {
            let job_rx = job_rx.clone();
            let res_tx = res_tx.clone();
            let met_tx = met_tx.clone();
            let limiter = opts.limiter.clone();
            let factory = &factory;
            s.spawn(move |_| {
                let mut transport = factory(worker);
                for (index, probe) in job_rx.iter() {
                    if let Some(limiter) = &limiter {
                        let waited = limiter.acquire(probe.ingress);
                        if !waited.is_zero() {
                            transport.metrics().record_rate_limit_stall(waited);
                        }
                    }
                    let reply =
                        transport.query(probe.ingress, &probe.qname, probe.qtype, clock.now());
                    let _ = res_tx.send((index, ProbeOutcome { probe, reply }));
                }
                let _ = met_tx.send(transport.metrics().snapshot());
            });
        }
        // The scope's own clones must go, or the iterators below never end.
        drop(job_rx);
        drop(res_tx);
        drop(met_tx);
        for job in probes.into_iter().enumerate() {
            // Blocks while the channel is full: this is the in-flight cap.
            if job_tx.send(job).is_err() {
                break;
            }
        }
        drop(job_tx);
        let indexed: Vec<(usize, ProbeOutcome)> = res_rx.iter().collect();
        let snapshots: Vec<_> = met_rx.iter().collect();
        (indexed, snapshots)
    })
    .expect("campaign worker panicked");

    indexed.sort_by_key(|(index, _)| *index);
    let mut report = CampaignReport {
        outcomes: indexed.into_iter().map(|(_, outcome)| outcome).collect(),
        sent: 0,
        received: 0,
        timeouts: 0,
        retries: 0,
        rate_limit_stalls: 0,
    };
    for snap in snapshots {
        report.sent += snap.sent;
        report.received += snap.received;
        report.timeouts += snap.timeouts;
        report.retries += snap.retries;
        report.rate_limit_stalls += snap.rate_limit_stalls;
    }
    let completed = report.outcomes.len() as u64;
    let answered = report.answered() as u64;
    span.end(completed, answered, completed - answered);
    report
}

/// Pipelined campaign execution over a [`Reactor`]: submit probes as they
/// become known, collect completions as they arrive, no worker threads.
///
/// Where [`run_campaign`] parks one thread per in-flight probe, a
/// `PipelinedCampaign` keeps up to `window` probes outstanding inside the
/// reactor's correlation table and the submitting thread never blocks on
/// the wire (only on a full window). Typical shape:
///
/// ```no_run
/// # use cde_engine::reactor::{Reactor, ReactorConfig};
/// # use cde_engine::scheduler::{PipelinedCampaign, Probe};
/// # let reactor = Reactor::launch(Default::default(), ReactorConfig::default()).unwrap();
/// # let probes: Vec<Probe> = Vec::new();
/// let mut campaign = PipelinedCampaign::new(&reactor, 1024);
/// for probe in probes {
///     campaign.submit(probe); // blocks only when 1024 are in flight
/// }
/// let report = campaign.finish(); // drains the tail
/// ```
#[derive(Debug)]
pub struct PipelinedCampaign {
    handle: ReactorHandle,
    /// Upper bound on one completion wait; the reactor enforces the real
    /// per-probe deadlines, this only guards against a dead loop.
    grace: Duration,
    done_tx: Sender<ProbeCompletion>,
    done_rx: Receiver<ProbeCompletion>,
    pending: HashMap<u64, Probe>,
    outcomes: Vec<(u64, ProbeOutcome)>,
    next_token: u64,
    window: usize,
    baseline: MetricsSnapshot,
    metrics: Arc<crate::metrics::EngineMetrics>,
    span: CampaignSpan,
    answered: u64,
    /// Completions between `campaign_progress` emissions.
    progress_stride: usize,
    since_progress: usize,
    /// Loss-aware effective window: recomputed every stride from the
    /// campaign's delivered ratio, clamped to `[window / 4, window]`.
    /// A clean wire keeps the full window; a lossy one sheds in-flight
    /// pressure instead of stacking retransmits behind fresh probes.
    paced_window: usize,
}

impl PipelinedCampaign {
    /// Starts a campaign keeping at most `window` probes in flight on
    /// `reactor` (alongside whatever other clients submit).
    pub fn new(reactor: &Reactor, window: usize) -> PipelinedCampaign {
        PipelinedCampaign::named(reactor, window, "pipelined_campaign", 0)
    }

    /// Like [`PipelinedCampaign::new`], with an explicit campaign-span
    /// name and planned probe count for the telemetry stream.
    pub fn named(
        reactor: &Reactor,
        window: usize,
        name: &'static str,
        planned: u64,
    ) -> PipelinedCampaign {
        let (done_tx, done_rx) = unbounded();
        let metrics = reactor.metrics();
        let window = window.max(1);
        PipelinedCampaign {
            handle: reactor.handle(),
            grace: reactor.policy().worst_case() + Duration::from_secs(2),
            done_tx,
            done_rx,
            pending: HashMap::new(),
            outcomes: Vec::new(),
            next_token: 0,
            window,
            baseline: metrics.snapshot(),
            metrics,
            span: reactor.telemetry().begin_campaign(name, planned),
            answered: 0,
            // Roughly two progress events per full window turnover.
            progress_stride: (window / 2).max(1),
            since_progress: 0,
            paced_window: window,
        }
    }

    /// The campaign's telemetry span (e.g. to attach `note` annotations).
    pub fn span(&self) -> &CampaignSpan {
        &self.span
    }

    /// The loss-aware window currently applied: `window` on a clean
    /// wire, shrinking toward `window / 4` as the delivered ratio drops.
    pub fn paced_window(&self) -> usize {
        self.paced_window
    }

    /// Submits one probe, blocking only while the (paced) window is
    /// full.
    pub fn submit(&mut self, probe: Probe) {
        while self.pending.len() >= self.paced_window {
            if !self.complete_one() {
                break;
            }
        }
        let token = self.next_token;
        self.next_token += 1;
        self.span.event(TelemetryEvent::ProbePlanned { token });
        if self.handle.submit(
            token,
            probe.ingress,
            probe.qname.clone(),
            probe.qtype,
            &self.done_tx,
        ) {
            self.pending.insert(token, probe);
        } else {
            // The reactor is gone; fail fast instead of wedging.
            self.outcomes.push((
                token,
                ProbeOutcome {
                    probe,
                    reply: TransportReply::TimedOut,
                },
            ));
        }
    }

    /// Collects any completions already available, without blocking.
    /// Returns how many arrived.
    pub fn try_complete(&mut self) -> usize {
        let mut drained = 0;
        while let Ok(completion) = self.done_rx.try_recv() {
            self.record(completion);
            drained += 1;
        }
        drained
    }

    /// Probes currently in flight.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Waits for every outstanding probe, then reports. Outcomes are in
    /// submission order; the wire counters are this campaign's share of
    /// the reactor's metrics (delta since [`PipelinedCampaign::new`]).
    pub fn finish(mut self) -> CampaignReport {
        while !self.pending.is_empty() {
            if !self.complete_one() {
                break;
            }
        }
        self.outcomes.sort_by_key(|(token, _)| *token);
        let completed = self.outcomes.len() as u64;
        let answered = self
            .outcomes
            .iter()
            .filter(|(_, o)| o.reply.is_answered())
            .count() as u64;
        std::mem::replace(&mut self.span, CampaignSpan::detached()).end(
            completed,
            answered,
            completed - answered,
        );
        let snap = self.metrics.snapshot();
        CampaignReport {
            outcomes: self.outcomes.into_iter().map(|(_, o)| o).collect(),
            sent: snap.sent.saturating_sub(self.baseline.sent),
            received: snap.received.saturating_sub(self.baseline.received),
            timeouts: snap.timeouts.saturating_sub(self.baseline.timeouts),
            retries: snap.retries.saturating_sub(self.baseline.retries),
            rate_limit_stalls: snap
                .rate_limit_stalls
                .saturating_sub(self.baseline.rate_limit_stalls),
        }
    }

    /// Blocks for one completion. `false` means the reactor died — all
    /// remaining pending probes are failed as timed out.
    fn complete_one(&mut self) -> bool {
        match self.done_rx.recv_timeout(self.grace) {
            Ok(completion) => {
                self.record(completion);
                true
            }
            Err(_) => {
                for (token, probe) in std::mem::take(&mut self.pending) {
                    self.outcomes.push((
                        token,
                        ProbeOutcome {
                            probe,
                            reply: TransportReply::TimedOut,
                        },
                    ));
                }
                false
            }
        }
    }

    fn record(&mut self, completion: ProbeCompletion) {
        if let Some(probe) = self.pending.remove(&completion.token) {
            if completion.reply.is_answered() {
                self.answered += 1;
            }
            self.outcomes.push((
                completion.token,
                ProbeOutcome {
                    probe,
                    reply: completion.reply,
                },
            ));
            self.since_progress += 1;
            if self.since_progress >= self.progress_stride {
                self.since_progress = 0;
                self.repace();
                self.span.progress(
                    self.next_token,
                    self.outcomes.len() as u64,
                    self.answered,
                    self.pending.len() as u64,
                );
            }
        }
    }

    /// Recomputes the loss-aware window from the campaign's share of the
    /// reactor's counters: `received / (sent − in_flight)` approximates
    /// the per-attempt delivered ratio over *resolved* attempts (what's
    /// still in flight hasn't voted yet). The effective window is the
    /// configured window scaled by that ratio, floored at a quarter so a
    /// blackout never serializes the campaign entirely.
    fn repace(&mut self) {
        let snap = self.metrics.snapshot();
        let sent = snap.sent.saturating_sub(self.baseline.sent);
        let received = snap.received.saturating_sub(self.baseline.received);
        let resolved = sent.saturating_sub(snap.in_flight).max(1);
        let delivered = (received as f64 / resolved as f64).clamp(0.0, 1.0);
        let floor = (self.window / 4).max(1);
        let scaled = (self.window as f64 * delivered).round() as usize;
        self.paced_window = scaled.clamp(floor, self.window);
        self.metrics.set_paced_window(self.paced_window as u64);
    }
}

/// Runs `probes` through `reactor` with up to `window` in flight;
/// blocks until all complete. The pipelined counterpart of
/// [`run_campaign`].
pub fn run_campaign_pipelined(
    reactor: &Reactor,
    probes: Vec<Probe>,
    window: usize,
) -> CampaignReport {
    run_campaign_pipelined_reported(reactor, probes, window, "pipelined_campaign", None)
}

/// [`run_campaign_pipelined`] with an explicit campaign-span name and an
/// optional [`ProgressReporter`] ticked through the submission loop and
/// flushed when the campaign completes — the JSONL stream (and TTY line)
/// track the campaign live instead of appearing when it ends.
pub fn run_campaign_pipelined_reported(
    reactor: &Reactor,
    probes: Vec<Probe>,
    window: usize,
    name: &'static str,
    mut reporter: Option<&mut ProgressReporter>,
) -> CampaignReport {
    let mut campaign = PipelinedCampaign::named(reactor, window, name, probes.len() as u64);
    for probe in probes {
        campaign.submit(probe);
        if let Some(r) = reporter.as_deref_mut() {
            let _ = r.tick();
        }
    }
    let report = campaign.finish();
    if let Some(r) = reporter {
        let _ = r.flush();
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratelimit::RateConfig;
    use crate::sim::SimTransport;
    use cde_core::CdeInfra;
    use cde_netsim::Link;
    use cde_platform::{NameserverNet, PlatformBuilder, SelectorKind};
    use cde_probers::DirectProber;

    fn sim_factory(worker: usize) -> SimTransport {
        let mut net = NameserverNet::new();
        let mut infra = CdeInfra::install(&mut net);
        // One standing session so probes resolve to real records.
        infra.new_session(&mut net, 0);
        let ingress = Ipv4Addr::new(192, 0, 2, 1);
        let platform = PlatformBuilder::new(worker as u64 + 1)
            .ingress(vec![ingress])
            .egress(vec![Ipv4Addr::new(192, 0, 3, 1)])
            .cluster(3, SelectorKind::Random)
            .build();
        let prober = DirectProber::new(
            Ipv4Addr::new(203, 0, 113, 1),
            Link::ideal(),
            worker as u64 + 1,
        );
        SimTransport::new(platform, net, prober)
    }

    fn probes(count: usize) -> Vec<Probe> {
        // `name-1.cache.example` is the honey record of the factory's
        // standing session.
        (0..count)
            .map(|_| {
                Probe::a(
                    Ipv4Addr::new(192, 0, 2, 1),
                    "name-1.cache.example".parse().expect("static name"),
                )
            })
            .collect()
    }

    #[test]
    fn campaign_preserves_submission_order_and_counts() {
        let report = run_campaign(sim_factory, probes(20), &CampaignOptions::default());
        assert_eq!(report.outcomes.len(), 20);
        assert_eq!(report.answered(), 20);
        assert_eq!(report.sent, 20);
        assert_eq!(report.wire_loss(), 0.0);
    }

    #[test]
    fn shared_limiter_paces_all_workers() {
        let limiter = Arc::new(RateLimiter::new(
            RateConfig {
                per_second: 2000.0,
                burst: 1.0,
            },
            None,
        ));
        let opts = CampaignOptions {
            workers: 4,
            max_in_flight: 4,
            limiter: Some(limiter),
        };
        let report = run_campaign(sim_factory, probes(12), &opts);
        assert_eq!(report.answered(), 12);
        assert!(report.rate_limit_stalls > 0, "limiter never engaged");
    }

    #[test]
    fn pacing_shrinks_the_window_under_total_loss() {
        use crate::reactor::ReactorConfig;
        use crate::retry::RetryPolicy;
        // No routes at all: every probe resolves as an unanswered
        // timeout, so the delivered ratio is 0 and pacing must floor
        // the window at a quarter of the configured one.
        let reactor = Reactor::launch(
            HashMap::new(),
            ReactorConfig::with_policy(
                RetryPolicy {
                    attempts: 1,
                    timeout: Duration::from_millis(20),
                    backoff: 1.0,
                    base_delay: Duration::from_millis(1),
                    jitter: 0.0,
                },
                5,
            ),
        )
        .unwrap();
        let mut campaign = PipelinedCampaign::new(&reactor, 8);
        assert_eq!(campaign.paced_window(), 8, "starts at the full window");
        let qname: Name = "dark.example".parse().unwrap();
        for _ in 0..16 {
            campaign.submit(Probe::a(Ipv4Addr::new(192, 0, 2, 77), qname.clone()));
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while campaign.in_flight() > 0 && std::time::Instant::now() < deadline {
            campaign.try_complete();
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(campaign.paced_window(), 2, "floored at window / 4");
        let report = campaign.finish();
        assert!(report.fully_accounted(16));
    }

    #[test]
    fn report_feeds_planner() {
        let report = run_campaign(sim_factory, probes(4), &CampaignOptions::default());
        let plan = report.plan_for(8);
        assert_eq!(plan.loss, 0.0);
        assert!(plan.probes > 0);
    }
}
