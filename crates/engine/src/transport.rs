//! The transport abstraction: one interface, simulated or live.
//!
//! A [`Transport`] issues single DNS probes toward a platform ingress and
//! owns the canonical [`NameserverNet`] — the observation point every CDE
//! technique reads. [`EngineAccess`] adapts any transport to `cde-core`'s
//! [`AccessChannel`], so `enumerate_*`, mapping, timing and survey code
//! runs unchanged whether probes cross real sockets or virtual links.

use crate::metrics::EngineMetrics;
use cde_core::{AccessChannel, TriggerOutcome};
use cde_dns::{Name, Rcode, RecordType};
use cde_netsim::{SimDuration, SimTime};
use cde_platform::NameserverNet;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// What one probe produced, as seen at the transport boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportReply {
    /// A response arrived.
    Answered {
        /// Measured round trip, when the transport can time probes.
        latency: Option<SimDuration>,
        /// Response code of the answer.
        rcode: Rcode,
    },
    /// No response within the transport's deadline (after any retries).
    TimedOut,
}

impl TransportReply {
    /// `true` when a response arrived.
    pub fn is_answered(&self) -> bool {
        matches!(self, TransportReply::Answered { .. })
    }
}

/// A probe channel toward a resolution platform plus the authoritative
/// observation point.
///
/// The transport owns the canonical net: implementations that serve zone
/// data remotely (the live UDP path) watch [`Transport::net_mut`] for
/// zone edits and push snapshots to the serving side, and fold remotely
/// observed queries back into the canonical logs after each probe.
pub trait Transport {
    /// Sends one query for `qname`/`qtype` to the platform ingress
    /// `ingress`, honouring the transport's timeout/retry policy.
    fn query(
        &mut self,
        ingress: Ipv4Addr,
        qname: &Name,
        qtype: RecordType,
        now: SimTime,
    ) -> TransportReply;

    /// The canonical authoritative net (the CDE observation point).
    fn net(&self) -> &NameserverNet;

    /// Mutable canonical net — for planting sessions and clearing logs.
    /// Live transports treat any call as a zone edit and re-sync lazily.
    fn net_mut(&mut self) -> &mut NameserverNet;

    /// `true` when probe latency is measured (both backends here do).
    fn measures_latency(&self) -> bool {
        true
    }

    /// Engine counters for this transport.
    fn metrics(&self) -> Arc<EngineMetrics>;
}

/// Adapter: one [`Transport`] aimed at one ingress, as an
/// [`AccessChannel`].
///
/// This is the seam between the wire engine and the paper's measurement
/// algorithms: `enumerate_adaptive(&mut EngineAccess::new(...), ...)`
/// enumerates over real sockets with the same code path the simulator
/// uses.
#[derive(Debug)]
pub struct EngineAccess<'a, T: Transport> {
    transport: &'a mut T,
    ingress: Ipv4Addr,
    qtype: RecordType,
}

impl<'a, T: Transport> EngineAccess<'a, T> {
    /// Aims `transport` at `ingress`, probing with A queries.
    pub fn new(transport: &'a mut T, ingress: Ipv4Addr) -> EngineAccess<'a, T> {
        EngineAccess {
            transport,
            ingress,
            qtype: RecordType::A,
        }
    }
}

impl<T: Transport> AccessChannel for EngineAccess<'_, T> {
    fn trigger(&mut self, qname: &Name, now: SimTime) -> TriggerOutcome {
        match self.transport.query(self.ingress, qname, self.qtype, now) {
            TransportReply::Answered { latency, .. } => TriggerOutcome::Delivered { latency },
            TransportReply::TimedOut => TriggerOutcome::TimedOut,
        }
    }

    fn net(&self) -> &NameserverNet {
        self.transport.net()
    }

    fn net_mut(&mut self) -> &mut NameserverNet {
        self.transport.net_mut()
    }

    fn measures_latency(&self) -> bool {
        self.transport.measures_latency()
    }
}
