//! Per-ingress adaptive retransmission timeouts: the engine's wrapper
//! around [`cde_insight::RttEstimator`].
//!
//! One [`RtoTable`] is shared by every shard of a reactor, holding one
//! atomic cell per target ingress. The sharded design makes the cells
//! effectively single-writer: an ingress is owned by exactly one shard
//! ([`crate::shard_for_target`]), so only that shard's loop ever mutates
//! the cell — load the packed state, run the pure estimator, store it
//! back, no CAS loop needed. Concurrent readers (the Prometheus
//! [`Collector`], cde-serve's checkpointer) see per-field torn snapshots
//! at worst, which telemetry and checkpoints tolerate by construction
//! (a checkpoint is taken at a quiesce point anyway).
//!
//! The table answers one question on the hot path —
//! [`deadline_for`](RtoTable::deadline_for): how long should *this*
//! attempt toward *this* ingress wait before retransmitting? The answer
//! is the learned RTO, doubled per retransmission attempt (RFC 6298
//! §5.5 applies backoff per attempt, not only per expiry), with a
//! deterministic 1-in-[`explore_every`](AdaptiveRtoConfig::explore_every)
//! send using the tighter exploration band once backoff has inflated the
//! RTO past `srtt + band` — so a healed path is rediscovered without
//! waiting out the penalty.

pub use cde_insight::EstimatorSnapshot;

use cde_insight::{RttConfig, RttEstimator};
use cde_telemetry::{Collector, Metric};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Tuning for a reactor's adaptive-RTO tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveRtoConfig {
    /// Estimator bounds and constants (see [`RttConfig`]).
    pub rtt: RttConfig,
    /// Deterministic exploration cadence: every N-th send toward an
    /// ingress whose RTO is backed off past the band uses the tighter
    /// `srtt + band` deadline instead. 0 disables exploration.
    pub explore_every: u32,
}

impl Default for AdaptiveRtoConfig {
    fn default() -> AdaptiveRtoConfig {
        AdaptiveRtoConfig {
            rtt: RttConfig::default(),
            explore_every: 16,
        }
    }
}

/// One ingress's estimator state, packed into atomics. Field order and
/// meaning mirror [`EstimatorSnapshot`]; `sends` is the exploration
/// cadence counter (engine-side state, not checkpointed).
#[derive(Debug, Default)]
struct Cell {
    srtt_us: AtomicU64,
    rttvar_us: AtomicU64,
    rto_us: AtomicU64,
    timeout_count: AtomicU64,
    samples: AtomicU64,
    timeouts: AtomicU64,
    sends: AtomicU64,
}

impl Cell {
    fn load(&self) -> EstimatorSnapshot {
        EstimatorSnapshot {
            srtt_us: self.srtt_us.load(Ordering::Relaxed),
            rttvar_us: self.rttvar_us.load(Ordering::Relaxed),
            rto_us: self.rto_us.load(Ordering::Relaxed),
            timeout_count: self
                .timeout_count
                .load(Ordering::Relaxed)
                .min(u64::from(u32::MAX)) as u32,
            samples: self.samples.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
        }
    }

    fn store(&self, snap: &EstimatorSnapshot) {
        self.srtt_us.store(snap.srtt_us, Ordering::Relaxed);
        self.rttvar_us.store(snap.rttvar_us, Ordering::Relaxed);
        self.rto_us.store(snap.rto_us, Ordering::Relaxed);
        self.timeout_count
            .store(u64::from(snap.timeout_count), Ordering::Relaxed);
        self.samples.store(snap.samples, Ordering::Relaxed);
        self.timeouts.store(snap.timeouts, Ordering::Relaxed);
    }

    fn estimator(&self, config: RttConfig) -> RttEstimator {
        let snap = self.load();
        if snap.rto_us == 0 {
            // Untouched cell: the zeroed snapshot is not a valid state.
            RttEstimator::new(config)
        } else {
            RttEstimator::from_snapshot(&snap, config)
        }
    }
}

/// Per-ingress adaptive RTO state for one reactor. See the module docs
/// for the ownership story; construction fixes the key set, so lookups
/// after launch never allocate or lock.
#[derive(Debug)]
pub struct RtoTable {
    config: AdaptiveRtoConfig,
    cells: HashMap<Ipv4Addr, Cell>,
}

impl RtoTable {
    /// A table with one fresh cell per target ingress.
    pub fn for_targets(
        targets: impl IntoIterator<Item = Ipv4Addr>,
        config: AdaptiveRtoConfig,
    ) -> RtoTable {
        RtoTable {
            config,
            cells: targets
                .into_iter()
                .map(|ip| (ip, Cell::default()))
                .collect(),
        }
    }

    /// The table's tuning.
    pub fn config(&self) -> AdaptiveRtoConfig {
        self.config
    }

    /// The deadline the owning shard should arm for this send: the
    /// learned RTO doubled per retransmission attempt (clamped to the
    /// config bounds), with the deterministic exploration cadence
    /// substituting the tighter band deadline on first attempts.
    pub fn deadline_for(&self, ingress: Ipv4Addr, attempt: u32) -> Duration {
        let Some(cell) = self.cells.get(&ingress) else {
            return self.config.rtt.initial_rto;
        };
        let est = cell.estimator(self.config.rtt);
        let sends = cell.sends.fetch_add(1, Ordering::Relaxed);
        let mut rto_us = est.rto_us();
        if attempt == 0 && self.config.explore_every > 0 {
            if let Some(banded) = est.explore_rto_us() {
                if sends % u64::from(self.config.explore_every) == 0 {
                    rto_us = banded;
                }
            }
        }
        let scaled = rto_us.saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX));
        Duration::from_micros(self.config.rtt.clamp_us(scaled))
    }

    /// Feeds one unambiguous first-attempt RTT sample (Karn's rule is
    /// the caller's responsibility — the shard only calls this for
    /// attempt-0 replies).
    pub fn observe_rtt(&self, ingress: Ipv4Addr, rtt_us: u64) {
        self.update(ingress, |est| est.observe_rtt(rtt_us));
    }

    /// Registers a retransmission deadline expiry toward `ingress`.
    pub fn observe_timeout(&self, ingress: Ipv4Addr) {
        self.update(ingress, RttEstimator::observe_timeout);
    }

    /// Registers a delivery whose RTT is retransmit-ambiguous: clears
    /// the backoff without absorbing a sample.
    pub fn observe_delivery_ambiguous(&self, ingress: Ipv4Addr) {
        self.update(ingress, RttEstimator::observe_delivery_ambiguous);
    }

    fn update(&self, ingress: Ipv4Addr, f: impl FnOnce(&mut RttEstimator)) {
        if let Some(cell) = self.cells.get(&ingress) {
            let mut est = cell.estimator(self.config.rtt);
            f(&mut est);
            cell.store(&est.snapshot());
        }
    }

    /// The learned state for one ingress — `None` for an ingress the
    /// table was not built with.
    pub fn snapshot(&self, ingress: Ipv4Addr) -> Option<EstimatorSnapshot> {
        self.cells
            .get(&ingress)
            .map(|cell| cell.estimator(self.config.rtt).snapshot())
    }

    /// Every ingress's learned state, sorted by address (stable output
    /// for checkpoints and reports).
    pub fn snapshots(&self) -> Vec<(Ipv4Addr, EstimatorSnapshot)> {
        let mut out: Vec<(Ipv4Addr, EstimatorSnapshot)> = self
            .cells
            .iter()
            .map(|(ip, cell)| (*ip, cell.estimator(self.config.rtt).snapshot()))
            .collect();
        out.sort_by_key(|(ip, _)| *ip);
        out
    }

    /// Rehydrates one ingress's state from a checkpoint. Ingresses the
    /// table was not built with are ignored (the campaign's target set
    /// is authoritative).
    pub fn restore(&self, ingress: Ipv4Addr, snap: &EstimatorSnapshot) {
        if let Some(cell) = self.cells.get(&ingress) {
            cell.store(&RttEstimator::from_snapshot(snap, self.config.rtt).snapshot());
        }
    }
}

impl Collector for RtoTable {
    fn collect(&self, out: &mut Vec<Metric>) {
        for (ip, snap) in self.snapshots() {
            let ingress = ip.to_string();
            out.push(
                Metric::gauge(
                    "cde_engine_rto_seconds",
                    "Learned per-ingress retransmission timeout",
                    snap.rto_us as f64 / 1e6,
                )
                .with_label("ingress", ingress.clone()),
            );
            out.push(
                Metric::gauge(
                    "cde_engine_srtt_seconds",
                    "Smoothed per-ingress round-trip time (RFC 6298)",
                    snap.srtt_us as f64 / 1e6,
                )
                .with_label("ingress", ingress.clone()),
            );
            out.push(
                Metric::gauge(
                    "cde_engine_rttvar_seconds",
                    "Smoothed per-ingress RTT mean deviation",
                    snap.rttvar_us as f64 / 1e6,
                )
                .with_label("ingress", ingress.clone()),
            );
            out.push(
                Metric::counter(
                    "cde_engine_rto_timeouts_total",
                    "Deadline expiries absorbed by the per-ingress estimator",
                    snap.timeouts,
                )
                .with_label("ingress", ingress),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(ips: &[Ipv4Addr]) -> RtoTable {
        RtoTable::for_targets(ips.iter().copied(), AdaptiveRtoConfig::default())
    }

    #[test]
    fn fresh_table_serves_the_initial_rto() {
        let ip = Ipv4Addr::new(192, 0, 2, 1);
        let t = table(&[ip]);
        assert_eq!(t.deadline_for(ip, 0), Duration::from_millis(376));
        // Unknown ingresses fall back to the initial RTO too.
        assert_eq!(
            t.deadline_for(Ipv4Addr::new(203, 0, 113, 9), 0),
            Duration::from_millis(376)
        );
    }

    #[test]
    fn samples_tighten_and_timeouts_back_off() {
        let ip = Ipv4Addr::new(192, 0, 2, 2);
        let t = table(&[ip]);
        for _ in 0..16 {
            t.observe_rtt(ip, 2_000);
        }
        let tightened = t.deadline_for(ip, 0);
        assert_eq!(tightened, Duration::from_millis(50), "clamped at floor");
        t.observe_timeout(ip);
        t.observe_timeout(ip);
        assert!(t.deadline_for(ip, 0) > tightened);
        // A later unambiguous delivery recovers the tight deadline.
        t.observe_rtt(ip, 2_000);
        assert_eq!(t.deadline_for(ip, 0), tightened);
    }

    #[test]
    fn retransmit_attempts_scale_the_deadline() {
        let ip = Ipv4Addr::new(192, 0, 2, 3);
        let t = table(&[ip]);
        for _ in 0..16 {
            t.observe_rtt(ip, 10_000);
        }
        let base = t.deadline_for(ip, 0);
        let once = t.deadline_for(ip, 1);
        let twice = t.deadline_for(ip, 2);
        assert_eq!(once, base * 2);
        assert_eq!(twice, base * 4);
        // Scaling clamps at the ceiling rather than overflowing.
        assert_eq!(
            t.deadline_for(ip, 63),
            AdaptiveRtoConfig::default().rtt.max_rto
        );
    }

    #[test]
    fn exploration_band_fires_on_the_cadence() {
        let ip = Ipv4Addr::new(192, 0, 2, 4);
        let config = AdaptiveRtoConfig {
            explore_every: 4,
            ..AdaptiveRtoConfig::default()
        };
        let t = RtoTable::for_targets([ip], config);
        t.observe_rtt(ip, 30_000);
        for _ in 0..6 {
            t.observe_timeout(ip);
        }
        let banded = Duration::from_micros(30_000 + 400_000);
        let backed_off = t.snapshot(ip).unwrap().rto_us;
        assert!(backed_off > banded.as_micros() as u64);
        let deadlines: Vec<Duration> = (0..8).map(|_| t.deadline_for(ip, 0)).collect();
        let explored = deadlines.iter().filter(|d| **d == banded).count();
        assert_eq!(explored, 2, "1-in-4 cadence over 8 sends: {deadlines:?}");
        // Retransmit attempts never explore (the attempt is already
        // suspect — give it the honest backed-off deadline).
        assert!(t.deadline_for(ip, 1) > banded);
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let ip = Ipv4Addr::new(192, 0, 2, 5);
        let t = table(&[ip]);
        t.observe_rtt(ip, 5_000);
        t.observe_timeout(ip);
        let snap = t.snapshot(ip).unwrap();
        let fresh = table(&[ip]);
        fresh.restore(ip, &snap);
        assert_eq!(fresh.snapshot(ip), Some(snap));
        // Restoring an unknown ingress is a no-op, not a panic.
        fresh.restore(Ipv4Addr::new(203, 0, 113, 1), &snap);
        assert_eq!(fresh.snapshots().len(), 1);
    }

    #[test]
    fn snapshots_sort_by_ingress() {
        let ips = [
            Ipv4Addr::new(192, 0, 2, 9),
            Ipv4Addr::new(192, 0, 2, 1),
            Ipv4Addr::new(10, 0, 0, 7),
        ];
        let t = table(&ips);
        let order: Vec<Ipv4Addr> = t.snapshots().into_iter().map(|(ip, _)| ip).collect();
        let mut sorted = ips.to_vec();
        sorted.sort();
        assert_eq!(order, sorted);
    }

    #[test]
    fn collector_exports_per_ingress_series() {
        let ip = Ipv4Addr::new(192, 0, 2, 8);
        let t = table(&[ip]);
        t.observe_rtt(ip, 42_000);
        t.observe_timeout(ip);
        let mut metrics = Vec::new();
        t.collect(&mut metrics);
        let rto = metrics
            .iter()
            .find(|m| m.name == "cde_engine_rto_seconds")
            .expect("rto gauge exported");
        assert!(rto.labels.contains(&("ingress", ip.to_string())));
        let srtt = metrics
            .iter()
            .find(|m| m.name == "cde_engine_srtt_seconds")
            .unwrap();
        assert!(
            matches!(srtt.value, cde_telemetry::MetricValue::Gauge(v) if (v - 0.042).abs() < 1e-9)
        );
        assert!(metrics
            .iter()
            .any(|m| m.name == "cde_engine_rto_timeouts_total"));
    }
}
