//! The live transport: CDE probes over real UDP sockets.
//!
//! [`UdpTransport`] is the engine's wire backend. Each probe is a real DNS
//! datagram sent from a pooled socket (ephemeral port, fresh random query
//! id per attempt — the classic anti-spoofing hygiene) toward whatever
//! serves the target ingress, with a read deadline, bounded retransmission
//! and jittered backoff from [`RetryPolicy`], and optional token-bucket
//! pacing from [`RateLimiter`].
//!
//! The transport owns the canonical [`NameserverNet`]. Zone edits made
//! through [`Transport::net_mut`] are pushed to the serving side (resolver
//! and authority) before the next probe; queries observed at the serving
//! side flow back and are folded into the canonical logs after each probe,
//! so `cde-core`'s honey counting reads exactly what it reads in the
//! simulator.

use crate::authority::{AuthoritySync, Observation, WireAuthority};
use crate::metrics::EngineMetrics;
use crate::ratelimit::RateLimiter;
use crate::resolver::{LoopbackResolver, ResolverSync};
use crate::retry::RetryPolicy;
use crate::transport::{Transport, TransportReply};
use cde_core::AccessProvider;
use cde_dns::{Message, Name, Question, RecordType};
use cde_faults::{Direction, FaultInjector, FaultPlan, FaultStats, Verdict};
use cde_netsim::{DetRng, SimDuration, SimTime};
use cde_platform::NameserverNet;
use crossbeam::channel::Receiver;
use rand::Rng;
use std::collections::HashMap;
use std::io;
use std::net::{Ipv4Addr, SocketAddr, UdpSocket};
use std::sync::Arc;
use std::time::{Duration, Instant};

const MAX_DATAGRAM: usize = 4096;

/// Sockets in the source pool; ports rotate across attempts. Derived
/// from the machine rather than hard-coded: one socket per available
/// core (floor 4 so small machines keep port diversity, cap 16 because a
/// one-probe-at-a-time transport gains nothing beyond that).
pub(crate) fn default_pool() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .clamp(4, 16)
}

/// Back-channel to the serving side of a live deployment. Shared by the
/// blocking transport and the reactor transport.
pub(crate) struct SyncLink {
    pub(crate) resolver: ResolverSync,
    pub(crate) authority: Option<AuthoritySync>,
    pub(crate) observations: Receiver<Observation>,
}

impl SyncLink {
    /// Wires a back-channel to a launched resolver (and optionally the
    /// authority behind it).
    pub(crate) fn connect(
        resolver: &LoopbackResolver,
        authority: Option<&WireAuthority>,
    ) -> SyncLink {
        SyncLink {
            resolver: resolver.syncer(),
            authority: authority.map(WireAuthority::syncer),
            observations: resolver.observations(),
        }
    }

    /// Pushes zone snapshots to the serving side.
    pub(crate) fn push(&self, net: &NameserverNet) {
        self.resolver.sync(net);
        if let Some(authority) = &self.authority {
            authority.sync(net);
        }
    }

    /// Folds queries observed at the serving side into the canonical net.
    pub(crate) fn drain_into(&self, net: &mut NameserverNet) {
        for (vaddr, entry) in self.observations.try_iter() {
            if let Some(server) = net.server_mut(vaddr) {
                server.record_query(entry);
            }
        }
    }
}

/// [`Transport`] over real UDP sockets.
pub struct UdpTransport {
    net: NameserverNet,
    targets: HashMap<Ipv4Addr, SocketAddr>,
    sockets: Vec<UdpSocket>,
    next_socket: usize,
    rng: DetRng,
    policy: RetryPolicy,
    limiter: Option<Arc<RateLimiter>>,
    link: Option<SyncLink>,
    metrics: Arc<EngineMetrics>,
    dirty: bool,
    /// Chaos shim at the send/recv seam; the [`Instant`] is the epoch
    /// feeding the injector's deterministic rate-limit clock.
    faults: Option<(FaultInjector, Instant)>,
}

impl UdpTransport {
    /// Wires a transport to a launched [`LoopbackResolver`] (and, when the
    /// resolver replays upstream traffic, its [`WireAuthority`]).
    ///
    /// `net` is the canonical authoritative world — normally the same net
    /// the resolver/authority were launched from.
    pub fn connect(
        resolver: &LoopbackResolver,
        authority: Option<&WireAuthority>,
        net: NameserverNet,
        policy: RetryPolicy,
        seed: u64,
    ) -> io::Result<UdpTransport> {
        let mut transport =
            UdpTransport::direct(resolver.ingress_addrs().clone(), net, policy, seed)?;
        transport.link = Some(SyncLink::connect(resolver, authority));
        Ok(transport)
    }

    /// A transport aimed at arbitrary `targets` with no serving-side
    /// back-channel — probes go out, observations do not come back.
    /// (Useful against external servers, or in tests of the send path.)
    pub fn direct(
        targets: HashMap<Ipv4Addr, SocketAddr>,
        net: NameserverNet,
        policy: RetryPolicy,
        seed: u64,
    ) -> io::Result<UdpTransport> {
        let pool = default_pool();
        let mut sockets = Vec::with_capacity(pool);
        for _ in 0..pool {
            // 127.0.0.1:0 — the OS picks an unpredictable ephemeral port,
            // which is the source-port randomisation the probe needs.
            let socket = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0))?;
            sockets.push(socket);
        }
        Ok(UdpTransport {
            net,
            targets,
            sockets,
            next_socket: 0,
            rng: DetRng::seed(seed).fork("udp-transport"),
            policy,
            limiter: None,
            link: None,
            metrics: Arc::new(EngineMetrics::new()),
            dirty: true,
            faults: None,
        })
    }

    /// Attaches a shared rate limiter; every probe then pays its buckets.
    pub fn with_rate_limiter(mut self, limiter: Arc<RateLimiter>) -> UdpTransport {
        self.limiter = Some(limiter);
        self
    }

    /// Wears a deterministic fault plan at the socket seam: queries can
    /// be dropped (the attempt still burns its deadline, so retries and
    /// observed loss behave), REFUSED or truncated; replies can be lost
    /// or truncated on the way back in.
    ///
    /// Reduced fidelity versus the reactor's fault layer: this blocking
    /// transport ignores injected *delays* (it has no event loop to park
    /// datagrams in) and extra duplicate copies are sent back-to-back.
    pub fn with_faults(mut self, plan: &FaultPlan) -> UdpTransport {
        self.faults = Some((FaultInjector::new(plan), Instant::now()));
        self
    }

    /// Counters of what the chaos layer injected — `None` unless
    /// [`with_faults`](UdpTransport::with_faults) was applied.
    pub fn fault_stats(&self) -> Option<Arc<FaultStats>> {
        self.faults.as_ref().map(|(injector, _)| injector.stats())
    }

    /// The transport's retry policy.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Per-attempt wire loss observed so far (`1 − received/sent`); the
    /// number the campaign feeds back into `cde-core`'s planner.
    pub fn observed_loss_rate(&self) -> f64 {
        self.metrics.snapshot().loss_rate()
    }

    /// Pushes zone snapshots to the serving side if the canonical net has
    /// been edited since the last sync.
    fn sync_if_dirty(&mut self) {
        if !self.dirty {
            return;
        }
        if let Some(link) = &self.link {
            link.push(&self.net);
        }
        self.dirty = false;
    }

    /// Folds queries observed at the serving side into the canonical net.
    fn drain_observations(&mut self) {
        if let Some(link) = &self.link {
            link.drain_into(&mut self.net);
        }
    }

    /// One attempt: send the query, wait out the deadline for a matching
    /// response, tolerating (and counting) strays and garbage.
    fn attempt(
        &mut self,
        target: SocketAddr,
        qname: &Name,
        qtype: RecordType,
        deadline: Duration,
    ) -> Option<(Duration, cde_dns::Rcode)> {
        let id: u16 = self.rng.gen();
        let query = Message::query(id, Question::new(qname.clone(), qtype));
        let bytes = query.encode().ok()?;
        let socket = &self.sockets[self.next_socket];
        self.next_socket = (self.next_socket + 1) % self.sockets.len();
        let mut send_plain = true;
        if let Some((injector, epoch)) = &mut self.faults {
            match injector.decide(Direction::ClientToServer, epoch.elapsed(), bytes.len()) {
                Verdict::Refuse => {
                    // The "resolver" sheds the query with REFUSED: an
                    // instant answer, nothing resolved.
                    self.metrics.record_sent();
                    return Some((Duration::from_micros(1), cde_dns::Rcode::Refused));
                }
                // Nothing reaches the wire, but the attempt still burns
                // its deadline below — exactly what real loss costs.
                Verdict::Drop(_) => send_plain = false,
                Verdict::Deliver(copies) => {
                    for copy in copies {
                        let len = copy.truncate_to.unwrap_or(bytes.len()).min(bytes.len());
                        socket.send_to(&bytes[..len], target).ok()?;
                    }
                    send_plain = false;
                }
            }
        }
        if send_plain {
            socket.send_to(&bytes, target).ok()?;
        }
        self.metrics.record_sent();
        let start = Instant::now();
        let mut buf = [0u8; MAX_DATAGRAM];
        loop {
            let elapsed = start.elapsed();
            if elapsed >= deadline {
                return None;
            }
            // Never pass a zero timeout: set_read_timeout rejects it.
            socket.set_read_timeout(Some(deadline - elapsed)).ok()?;
            let (len, _) = match socket.recv_from(&mut buf) {
                Ok(ok) => ok,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return None;
                }
                Err(_) => return None,
            };
            let mut len = len;
            if let Some((injector, epoch)) = &mut self.faults {
                match injector.decide(Direction::ServerToClient, epoch.elapsed(), len) {
                    // The reply dies on the way back; keep waiting.
                    Verdict::Drop(_) | Verdict::Refuse => continue,
                    Verdict::Deliver(copies) => {
                        if let Some(cut) = copies.first().and_then(|c| c.truncate_to) {
                            // Truncated mid-message: decoding below fails
                            // and is counted as a decode error.
                            len = cut.min(len);
                        }
                    }
                }
            }
            let msg = match Message::decode(&buf[..len]) {
                Ok(msg) => msg,
                Err(_) => {
                    // Garbage on our port: count it, keep waiting.
                    self.metrics.record_decode_error();
                    continue;
                }
            };
            if !msg.is_response() || msg.id != id {
                // A stray or stale datagram, not our answer.
                continue;
            }
            return Some((start.elapsed(), msg.flags.rcode));
        }
    }
}

impl std::fmt::Debug for UdpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdpTransport")
            .field("targets", &self.targets)
            .field("pool", &self.sockets.len())
            .field("policy", &self.policy)
            .finish()
    }
}

impl Transport for UdpTransport {
    fn query(
        &mut self,
        ingress: Ipv4Addr,
        qname: &Name,
        qtype: RecordType,
        _now: SimTime,
    ) -> TransportReply {
        self.sync_if_dirty();
        let Some(&target) = self.targets.get(&ingress) else {
            // No route to this ingress — indistinguishable from loss.
            self.metrics.record_timeout();
            return TransportReply::TimedOut;
        };
        if let Some(limiter) = &self.limiter {
            let waited = limiter.acquire(ingress);
            if !waited.is_zero() {
                self.metrics.record_rate_limit_stall(waited);
            }
        }
        for attempt in 0..self.policy.attempts.max(1) {
            if attempt > 0 {
                self.metrics.record_retry();
                let pause = self.policy.delay_before(attempt, &mut self.rng);
                if !pause.is_zero() {
                    std::thread::sleep(pause);
                }
            }
            let deadline = self.policy.timeout_for(attempt);
            if let Some((rtt, rcode)) = self.attempt(target, qname, qtype, deadline) {
                self.metrics.record_received(rtt);
                self.drain_observations();
                return TransportReply::Answered {
                    latency: Some(SimDuration::from_micros(rtt.as_micros() as u64)),
                    rcode,
                };
            }
        }
        self.metrics.record_timeout();
        // The query may have reached the platform even though no response
        // made it back — collect whatever the serving side saw.
        self.drain_observations();
        TransportReply::TimedOut
    }

    fn net(&self) -> &NameserverNet {
        &self.net
    }

    fn net_mut(&mut self) -> &mut NameserverNet {
        self.dirty = true;
        &mut self.net
    }

    fn metrics(&self) -> Arc<EngineMetrics> {
        Arc::clone(&self.metrics)
    }
}

impl AccessProvider for UdpTransport {
    type Channel<'a>
        = crate::transport::EngineAccess<'a, UdpTransport>
    where
        Self: 'a;

    fn channel(&mut self, ingress: Ipv4Addr) -> Self::Channel<'_> {
        crate::transport::EngineAccess::new(self, ingress)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unroutable_ingress_times_out_and_counts() {
        let mut transport = UdpTransport::direct(
            HashMap::new(),
            NameserverNet::new(),
            RetryPolicy::single(Duration::from_millis(10)),
            5,
        )
        .unwrap();
        let qname: Name = "x.example".parse().unwrap();
        let reply = transport.query(
            Ipv4Addr::new(192, 0, 2, 1),
            &qname,
            RecordType::A,
            SimTime::ZERO,
        );
        assert_eq!(reply, TransportReply::TimedOut);
        assert_eq!(transport.metrics().snapshot().timeouts, 1);
    }

    #[test]
    fn silent_target_exhausts_retries() {
        // A bound socket nobody serves: every attempt must time out.
        let sink = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        let mut targets = HashMap::new();
        let ingress = Ipv4Addr::new(192, 0, 2, 1);
        targets.insert(ingress, sink.local_addr().unwrap());
        let policy = RetryPolicy {
            attempts: 3,
            timeout: Duration::from_millis(5),
            backoff: 1.0,
            base_delay: Duration::from_millis(1),
            jitter: 0.5,
        };
        let mut transport = UdpTransport::direct(targets, NameserverNet::new(), policy, 6).unwrap();
        let qname: Name = "y.example".parse().unwrap();
        let reply = transport.query(ingress, &qname, RecordType::A, SimTime::ZERO);
        assert_eq!(reply, TransportReply::TimedOut);
        let snap = transport.metrics().snapshot();
        assert_eq!(snap.sent, 3);
        assert_eq!(snap.retries, 2);
        assert_eq!(snap.timeouts, 1);
        assert_eq!(snap.received, 0);
        assert!(snap.loss_rate() > 0.99);
    }

    #[test]
    fn injected_faults_refuse_and_drop_without_a_server() {
        // A bound socket nobody serves: only injected faults answer.
        let sink = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        let mut targets = HashMap::new();
        let ingress = Ipv4Addr::new(192, 0, 2, 2);
        targets.insert(ingress, sink.local_addr().unwrap());
        let plan = FaultPlan {
            query_loss: cde_faults::LossFault::Uniform { rate: 0.9999 },
            rate_limit: Some(cde_faults::RateLimitFault {
                qps: 1e-6,
                burst: 1.0,
                action: cde_faults::RateLimitAction::Refuse,
            }),
            ..FaultPlan::clean(21)
        };
        let mut transport = UdpTransport::direct(
            targets,
            NameserverNet::new(),
            RetryPolicy::single(Duration::from_millis(10)),
            8,
        )
        .unwrap()
        .with_faults(&plan);
        let qname: Name = "w.example".parse().unwrap();
        // The single bucket token admits the first query, which the loss
        // model then eats: a timeout that still consumed the attempt.
        let first = transport.query(ingress, &qname, RecordType::A, SimTime::ZERO);
        assert_eq!(first, TransportReply::TimedOut);
        // The bucket is now empty: instant REFUSED, no wire involved.
        match transport.query(ingress, &qname, RecordType::A, SimTime::ZERO) {
            TransportReply::Answered { rcode, .. } => {
                assert_eq!(rcode, cde_dns::Rcode::Refused);
            }
            other => panic!("expected REFUSED, got {other:?}"),
        }
        let stats = transport.fault_stats().expect("faults attached");
        assert_eq!(stats.refused(), 1);
        assert_eq!(stats.query_drops(), 1);
        let snap = transport.metrics().snapshot();
        assert_eq!((snap.sent, snap.timeouts, snap.received), (2, 1, 1));
    }

    #[test]
    fn garbage_then_answer_is_tolerated() {
        // An echo-ish server: first sends garbage, then a real answer.
        let server = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        server
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let server_addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let mut buf = [0u8; MAX_DATAGRAM];
            let (len, peer) = server.recv_from(&mut buf).unwrap();
            let query = Message::decode(&buf[..len]).unwrap();
            server.send_to(&[0xde, 0xad], peer).unwrap();
            let resp = Message::response_to(&query);
            server.send_to(&resp.encode().unwrap(), peer).unwrap();
        });
        let mut targets = HashMap::new();
        let ingress = Ipv4Addr::new(192, 0, 2, 9);
        targets.insert(ingress, server_addr);
        let mut transport = UdpTransport::direct(
            targets,
            NameserverNet::new(),
            RetryPolicy::single(Duration::from_secs(2)),
            7,
        )
        .unwrap();
        let qname: Name = "z.example".parse().unwrap();
        let reply = transport.query(ingress, &qname, RecordType::A, SimTime::ZERO);
        assert!(reply.is_answered());
        let snap = transport.metrics().snapshot();
        assert_eq!(snap.decode_errors, 1);
        assert_eq!(snap.received, 1);
        handle.join().unwrap();
    }
}
