//! The probe reactor: thousands of probes in flight over a few sockets.
//!
//! [`UdpTransport`](crate::udp::UdpTransport) is lockstep-blocking — each
//! worker parks in `recv` until reply-or-deadline, so aggregate throughput
//! is `workers / RTT` no matter what the network could absorb. The
//! [`Reactor`] replaces that with a single readiness-driven event loop
//! over non-blocking sockets:
//!
//! * a **correlation table** keyed on `(socket, query id)` matches replies
//!   to outstanding probes, verifying the echoed question (id collisions)
//!   and the source address (spoofed answers) before accepting;
//! * a **[hierarchical timer wheel](crate::timer::TimerWheel)** drives
//!   per-probe deadlines and [`RetryPolicy`] retransmits without a thread
//!   per probe;
//! * **batched syscalls** (`cde-sysio`'s `sendmmsg`/`recvmmsg`) move whole
//!   bursts per kernel crossing;
//! * a **buffer pool + reusable [`WireWriter`]** keep the hot path free of
//!   heap allocation — retransmits patch a fresh query id into the cached
//!   encoding instead of re-encoding.
//!
//! Probes are submitted over a channel and complete over a caller-supplied
//! channel, so any number of clients can pipeline against one reactor.
//! [`ReactorTransport`] wraps it back into the blocking one-probe
//! [`Transport`] seam for `cde-core`'s algorithms.

use crate::authority::WireAuthority;
use crate::bufpool::BufferPool;
use crate::metrics::EngineMetrics;
use crate::ratelimit::RateLimiter;
use crate::resolver::LoopbackResolver;
use crate::retry::RetryPolicy;
use crate::timer::TimerWheel;
use crate::transport::{Transport, TransportReply};
use crate::udp::SyncLink;
use cde_core::AccessProvider;
use cde_dns::wire::WireWriter;
use cde_dns::{Message, MessagePeek, Name, RecordType};
use cde_faults::{refused_reply, Direction, FaultInjector, FaultPlan, FaultStats, Verdict};
use cde_insight::{Phase, PhaseProfiler, RttDigestSet};
use cde_netsim::{DetRng, SimDuration, SimTime};
use cde_platform::NameserverNet;
use cde_sysio::{RecvSlot, SendItem, MAX_BATCH};
use cde_telemetry::{DropReason, EventKind as TelemetryEvent, MetricsRegistry, TelemetryHub};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use rand::Rng;
use std::cmp::Ordering as CmpOrdering;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::io;
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Timer-wheel granularity. Deadlines and backoffs are millisecond-scale,
/// so a 1 ms tick wastes no precision the wire could deliver.
const TICK: Duration = Duration::from_millis(1);
/// Idle sleep while probes are in flight (lets the loopback serving
/// threads run on small machines; bounds added reply latency).
const BUSY_IDLE: Duration = Duration::from_micros(500);
/// Idle sleep with nothing in flight; bounds shutdown latency.
const DRAINED_IDLE: Duration = Duration::from_millis(20);

/// Hardware-derived in-flight default: enough depth to hide RTT on any
/// machine, scaled up with cores.
fn default_max_in_flight() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .saturating_mul(1024)
        .clamp(1024, 16 * 1024)
}

/// Sizing and policy knobs for one [`Reactor`].
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Sockets in the pool. Replies correlate per socket, so the pool
    /// bounds id-space pressure; sends rotate across it for source-port
    /// diversity.
    pub sockets: usize,
    /// Correlation-table capacity: probes held in flight at once.
    pub max_in_flight: usize,
    /// Per-probe deadline/retransmit schedule.
    pub policy: RetryPolicy,
    /// Optional shared pacing (batch-aware token take).
    pub limiter: Option<Arc<RateLimiter>>,
    /// Seed for query-id generation and retransmit jitter.
    pub seed: u64,
    /// Event hub for probe lifecycle events. `None` uses the process
    /// [`global`](cde_telemetry::global) hub (a no-op unless a binary
    /// installed one), so instrumentation costs one branch by default.
    pub telemetry: Option<Arc<TelemetryHub>>,
    /// Registry to register the engine's collectors into at launch:
    /// [`EngineMetrics`], the buffer-pool stats, the rate limiter (if
    /// any) and the event hub itself.
    pub registry: Option<Arc<MetricsRegistry>>,
    /// Chaos: a deterministic fault plan worn at the send/recv seam.
    /// Outbound datagrams can be dropped, REFUSED, delayed, duplicated
    /// or truncated before they reach the wire; inbound replies run the
    /// same gauntlet before correlation — so retries, timeouts and the
    /// stray/decode-error taxonomy react to injected faults exactly as
    /// they would to real ones. The injector's [`FaultStats`] register
    /// into `registry` when both are set.
    pub faults: Option<FaultPlan>,
    /// Latency capture: per-target RTT digests recorded at match time
    /// plus sampled hot-path phase timers (see [`ReactorInsight`]).
    /// Both register into `registry` when both are set.
    pub insight: Option<InsightOptions>,
}

/// Knobs for the reactor's latency-capture tier.
#[derive(Debug, Clone)]
pub struct InsightOptions {
    /// Wall-clock-time one in this many entries per hot-path phase.
    /// Digest recording is not sampled (it is a few relaxed atomic adds
    /// per *matched* reply, off the per-datagram fast path); this rate
    /// only throttles the `Instant::now()` pairs around encode /
    /// send-batch / recv-batch / decode / correlate.
    pub phase_sample_every: u32,
}

impl Default for InsightOptions {
    fn default() -> InsightOptions {
        InsightOptions {
            phase_sample_every: 64,
        }
    }
}

/// The reactor's capture tier, shared between the event loop and the
/// caller: lock-free per-target RTT digests (fed at reply-match time)
/// and the sampled phase profiler. Obtained from
/// [`Reactor::insight`]; both pieces also register into
/// [`ReactorConfig::registry`] for Prometheus/JSON export.
#[derive(Debug)]
pub struct ReactorInsight {
    digests: Arc<RttDigestSet>,
    phases: Arc<PhaseProfiler>,
}

impl ReactorInsight {
    /// Per-target-ingress RTT digests.
    pub fn digests(&self) -> &Arc<RttDigestSet> {
        &self.digests
    }

    /// The sampled hot-path phase timers.
    pub fn phases(&self) -> &Arc<PhaseProfiler> {
        &self.phases
    }
}

impl Default for ReactorConfig {
    fn default() -> ReactorConfig {
        let max_in_flight = default_max_in_flight();
        ReactorConfig {
            // Pool sized to the in-flight target: one socket per ~256
            // outstanding probes keeps the id space per socket sparse.
            sockets: (max_in_flight / 256).clamp(4, 16),
            max_in_flight,
            policy: RetryPolicy::default(),
            limiter: None,
            seed: 0,
            telemetry: None,
            registry: None,
            faults: None,
            insight: None,
        }
    }
}

impl ReactorConfig {
    /// The default sizing with a specific retry policy and seed.
    pub fn with_policy(policy: RetryPolicy, seed: u64) -> ReactorConfig {
        ReactorConfig {
            policy,
            seed,
            ..ReactorConfig::default()
        }
    }
}

/// One finished probe, delivered on the submitter's completion channel.
#[derive(Debug, Clone)]
pub struct ProbeCompletion {
    /// The caller's correlation token, echoed back.
    pub token: u64,
    /// What the wire produced.
    pub reply: TransportReply,
}

/// A probe handed to the reactor.
struct Submission {
    token: u64,
    ingress: Ipv4Addr,
    qname: Name,
    qtype: RecordType,
    done: Sender<ProbeCompletion>,
}

/// Clone-able submission handle to a running [`Reactor`].
#[derive(Debug, Clone)]
pub struct ReactorHandle {
    submit: Sender<Submission>,
    metrics: Arc<EngineMetrics>,
    telemetry: Arc<TelemetryHub>,
}

impl ReactorHandle {
    /// Submits one probe; its [`ProbeCompletion`] (tagged `token`) will
    /// arrive on `done`. Returns `false` if the reactor has shut down.
    pub fn submit(
        &self,
        token: u64,
        ingress: Ipv4Addr,
        qname: Name,
        qtype: RecordType,
        done: &Sender<ProbeCompletion>,
    ) -> bool {
        self.submit
            .send(Submission {
                token,
                ingress,
                qname,
                qtype,
                done: done.clone(),
            })
            .is_ok()
    }

    /// The reactor's shared metrics.
    pub fn metrics(&self) -> Arc<EngineMetrics> {
        Arc::clone(&self.metrics)
    }

    /// The event hub the reactor emits probe lifecycle events into.
    pub fn telemetry(&self) -> Arc<TelemetryHub> {
        Arc::clone(&self.telemetry)
    }
}

/// A datagram held back by the fault layer, ordered by due tick (ties
/// broken by injection order so replay is exact).
struct DelayedDatagram {
    due: u64,
    seq: u64,
    socket: usize,
    bytes: Vec<u8>,
    addr: SocketAddrV4,
}

impl PartialEq for DelayedDatagram {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for DelayedDatagram {}
impl PartialOrd for DelayedDatagram {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for DelayedDatagram {
    // Reversed: BinaryHeap is a max-heap, we want earliest-due first.
    fn cmp(&self, other: &Self) -> CmpOrdering {
        (other.due, other.seq).cmp(&(self.due, self.seq))
    }
}

/// The reactor's chaos shim: a [`FaultInjector`] at the socket seam plus
/// the holding pens for delayed copies in both directions.
struct FaultLayer {
    injector: FaultInjector,
    /// Outbound copies waiting for their injected delay.
    delayed_out: BinaryHeap<DelayedDatagram>,
    /// Inbound datagrams (delayed replies, synthesized REFUSED answers)
    /// waiting to re-enter correlation.
    delayed_in: BinaryHeap<DelayedDatagram>,
    seq: u64,
}

impl FaultLayer {
    fn new(plan: &FaultPlan) -> FaultLayer {
        FaultLayer {
            injector: FaultInjector::new(plan),
            delayed_out: BinaryHeap::new(),
            delayed_in: BinaryHeap::new(),
            seq: 0,
        }
    }

    fn push_out(&mut self, due: u64, socket: usize, bytes: Vec<u8>, addr: SocketAddrV4) {
        self.seq += 1;
        let seq = self.seq;
        self.delayed_out.push(DelayedDatagram {
            due,
            seq,
            socket,
            bytes,
            addr,
        });
    }

    fn push_in(&mut self, due: u64, socket: usize, bytes: Vec<u8>, addr: SocketAddrV4) {
        self.seq += 1;
        let seq = self.seq;
        self.delayed_in.push(DelayedDatagram {
            due,
            seq,
            socket,
            bytes,
            addr,
        });
    }
}

/// The event-driven probe engine. See the module docs.
pub struct Reactor {
    handle: ReactorHandle,
    policy: RetryPolicy,
    fault_stats: Option<Arc<FaultStats>>,
    insight: Option<Arc<ReactorInsight>>,
    shutdown: Arc<AtomicBool>,
    drain: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl Reactor {
    /// Binds the socket pool and starts the event loop.
    ///
    /// `targets` maps platform ingress addresses to the real sockets
    /// serving them (e.g. [`LoopbackResolver::ingress_addrs`]).
    pub fn launch(
        targets: HashMap<Ipv4Addr, SocketAddr>,
        config: ReactorConfig,
    ) -> io::Result<Reactor> {
        let mut sockets = Vec::with_capacity(config.sockets.max(1));
        for _ in 0..config.sockets.max(1) {
            let socket = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0))?;
            socket.set_nonblocking(true)?;
            sockets.push(socket);
        }
        let (submit_tx, submit_rx) = unbounded();
        let metrics = Arc::new(EngineMetrics::new());
        let shutdown = Arc::new(AtomicBool::new(false));
        let drain = Arc::new(AtomicBool::new(false));
        let max_in_flight = config.max_in_flight.max(1);
        metrics.set_slab_capacity(max_in_flight as u64);
        let telemetry = config
            .telemetry
            .clone()
            .unwrap_or_else(cde_telemetry::global);
        let pool = BufferPool::new(128, max_in_flight);
        let faults = config.faults.as_ref().map(FaultLayer::new);
        let fault_stats = faults.as_ref().map(|layer| layer.injector.stats());
        let insight = config.insight.as_ref().map(|opts| {
            Arc::new(ReactorInsight {
                digests: Arc::new(RttDigestSet::for_targets(targets.keys().copied())),
                phases: Arc::new(PhaseProfiler::new(opts.phase_sample_every)),
            })
        });
        if let Some(registry) = &config.registry {
            registry.register(Arc::clone(&metrics) as Arc<dyn cde_telemetry::Collector>);
            registry.register(pool.stats());
            registry.register(Arc::clone(&telemetry) as Arc<dyn cde_telemetry::Collector>);
            if let Some(limiter) = &config.limiter {
                registry.register(Arc::clone(limiter) as Arc<dyn cde_telemetry::Collector>);
            }
            if let Some(stats) = &fault_stats {
                registry.register(Arc::clone(stats) as Arc<dyn cde_telemetry::Collector>);
            }
            if let Some(insight) = &insight {
                registry
                    .register(Arc::clone(&insight.digests) as Arc<dyn cde_telemetry::Collector>);
                registry.register(Arc::clone(&insight.phases) as Arc<dyn cde_telemetry::Collector>);
            }
        }
        let event_loop = EventLoop {
            targets,
            sockets,
            next_socket: 0,
            submit_rx,
            stash: None,
            disconnected: false,
            slots: (0..max_in_flight).map(|_| None).collect(),
            free_slots: (0..max_in_flight).rev().collect(),
            occupied: 0,
            correlation: HashMap::with_capacity(max_in_flight),
            timers: TimerWheel::new(0),
            expired: Vec::new(),
            ready: VecDeque::with_capacity(max_in_flight),
            admitted: Vec::new(),
            pool,
            writer: WireWriter::new(),
            recv_slots: (0..MAX_BATCH).map(|_| RecvSlot::new()).collect(),
            policy: config.policy,
            limiter: config.limiter,
            rng: DetRng::seed(config.seed).fork("reactor"),
            generation: 0,
            start: Instant::now(),
            metrics: Arc::clone(&metrics),
            telemetry: Arc::clone(&telemetry),
            shutdown: Arc::clone(&shutdown),
            drain: Arc::clone(&drain),
            faults,
            insight: insight.as_ref().map(Arc::clone),
        };
        let thread = std::thread::Builder::new()
            .name("cde-reactor".into())
            .spawn(move || event_loop.run())?;
        Ok(Reactor {
            handle: ReactorHandle {
                submit: submit_tx,
                metrics,
                telemetry,
            },
            policy: config.policy,
            fault_stats,
            insight,
            shutdown,
            drain,
            thread: Some(thread),
        })
    }

    /// A clone-able submission handle.
    pub fn handle(&self) -> ReactorHandle {
        self.handle.clone()
    }

    /// The reactor's shared metrics.
    pub fn metrics(&self) -> Arc<EngineMetrics> {
        Arc::clone(&self.handle.metrics)
    }

    /// The event hub this reactor emits into (the configured one, or the
    /// process global at launch time).
    pub fn telemetry(&self) -> Arc<TelemetryHub> {
        self.handle.telemetry()
    }

    /// The per-probe retry policy the loop applies.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Counters of what the chaos layer injected — `None` unless the
    /// reactor was launched with [`ReactorConfig::faults`].
    pub fn fault_stats(&self) -> Option<Arc<FaultStats>> {
        self.fault_stats.as_ref().map(Arc::clone)
    }

    /// The latency-capture tier (RTT digests + phase timers) — `None`
    /// unless the reactor was launched with [`ReactorConfig::insight`].
    pub fn insight(&self) -> Option<Arc<ReactorInsight>> {
        self.insight.as_ref().map(Arc::clone)
    }

    /// Asks the event loop to drain and exit: it keeps admitting
    /// already-queued submissions and lets every in-flight probe answer
    /// or time out, then stops on its own. Returns immediately; pair
    /// with [`Reactor::shutdown_graceful`] to wait for completion.
    pub fn begin_drain(&self) {
        self.drain.store(true, Ordering::SeqCst);
    }

    /// Graceful shutdown: drains in-flight probes (see
    /// [`Reactor::begin_drain`]) and waits up to `timeout` for the loop
    /// to exit on its own, falling back to the abrupt stop otherwise.
    ///
    /// Returns `true` when the loop drained cleanly within the budget.
    /// Either way the loop thread is joined before returning, so every
    /// completion has been delivered and the telemetry hub holds every
    /// event the reactor will ever emit — callers should flush their
    /// drains (JSONL, insight digests) *after* this returns.
    pub fn shutdown_graceful(&mut self, timeout: Duration) -> bool {
        self.drain.store(true, Ordering::SeqCst);
        let deadline = Instant::now() + timeout;
        let drained = loop {
            match &self.thread {
                Some(thread) if !thread.is_finished() => {
                    if Instant::now() >= deadline {
                        break false;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                _ => break true,
            }
        };
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
        drained
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl std::fmt::Debug for Reactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reactor")
            .field("policy", &self.policy)
            .finish()
    }
}

/// Where one in-flight probe stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PendingState {
    /// Waiting to be (re)sent — rate-limit delay or retransmit backoff.
    Scheduled,
    /// On the wire, awaiting a reply until the deadline timer fires.
    Waiting,
}

/// One correlation-table entry.
struct Pending {
    generation: u64,
    token: u64,
    ingress: Ipv4Addr,
    qname: Name,
    qtype: RecordType,
    target: SocketAddrV4,
    /// Cached wire encoding; retransmits patch bytes 0–1 (the id).
    bytes: Vec<u8>,
    socket: usize,
    id: u16,
    attempt: u32,
    sent_at: Instant,
    state: PendingState,
    done: Sender<ProbeCompletion>,
}

/// What a timer firing means. Events are validated against the slot's
/// generation and attempt, so cancellation is free (stale events no-op).
#[derive(Debug, Clone, Copy)]
struct TimerEvent {
    slot: usize,
    generation: u64,
    attempt: u32,
    kind: EventKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    /// The attempt's read deadline passed: retransmit or give up.
    Deadline,
    /// A scheduled (delayed) send is now due.
    Send,
}

struct EventLoop {
    targets: HashMap<Ipv4Addr, SocketAddr>,
    sockets: Vec<UdpSocket>,
    next_socket: usize,
    submit_rx: Receiver<Submission>,
    /// A submission picked up while idling, admitted next iteration.
    stash: Option<Submission>,
    disconnected: bool,
    slots: Vec<Option<Pending>>,
    free_slots: Vec<usize>,
    occupied: usize,
    correlation: HashMap<(usize, u16), usize>,
    timers: TimerWheel<TimerEvent>,
    expired: Vec<TimerEvent>,
    ready: VecDeque<usize>,
    admitted: Vec<usize>,
    pool: BufferPool,
    writer: WireWriter,
    recv_slots: Vec<RecvSlot>,
    policy: RetryPolicy,
    limiter: Option<Arc<RateLimiter>>,
    rng: DetRng,
    generation: u64,
    start: Instant,
    metrics: Arc<EngineMetrics>,
    telemetry: Arc<TelemetryHub>,
    shutdown: Arc<AtomicBool>,
    drain: Arc<AtomicBool>,
    faults: Option<FaultLayer>,
    insight: Option<Arc<ReactorInsight>>,
}

impl EventLoop {
    /// Starts a sampled phase timer; `None` when capture is off or this
    /// entry is not sampled. Zero-cost (no clock read) in both cases.
    #[inline]
    fn phase_begin(&self, phase: Phase) -> Option<Instant> {
        self.insight.as_ref().and_then(|i| i.phases.begin(phase))
    }

    /// Closes a sampled phase timer opened by [`Self::phase_begin`].
    #[inline]
    fn phase_end(&self, phase: Phase, started: Option<Instant>) {
        if let (Some(insight), Some(_)) = (&self.insight, started) {
            insight.phases.end(phase, started);
        }
    }
    fn run(mut self) {
        while !self.shutdown.load(Ordering::SeqCst) {
            let iter_start = Instant::now();
            let mut progress = self.admit();
            progress |= self.fire_timers();
            progress |= self.send_ready();
            progress |= self.receive();
            progress |= self.release_delayed();
            self.metrics.set_wheel_pending(self.timers.len() as u64);
            self.metrics.record_loop_iteration(iter_start.elapsed());
            if self.disconnected && self.occupied == 0 && self.stash.is_none() {
                break;
            }
            // Graceful drain: once asked, exit as soon as the queued
            // backlog is admitted and every in-flight probe has answered
            // or timed out — all completions delivered, nothing dropped.
            if self.drain.load(Ordering::SeqCst)
                && self.occupied == 0
                && self.stash.is_none()
                && self.submit_rx.is_empty()
            {
                break;
            }
            if progress {
                // Busy: stay hot, but let serving threads run on small
                // machines.
                std::thread::yield_now();
            } else {
                self.idle_wait();
            }
        }
        // Final gauge flush so a post-shutdown scrape reflects the
        // drained state instead of the last mid-flight sample.
        self.metrics.set_in_flight(self.occupied as u64);
        self.metrics.set_wheel_pending(self.timers.len() as u64);
    }

    fn now_tick(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    fn ticks(d: Duration) -> u64 {
        if d.is_zero() {
            0
        } else {
            (d.as_millis() as u64).max(1)
        }
    }

    /// Pulls submissions into free correlation slots; batch-debits the
    /// rate limiter for everything admitted this round.
    fn admit(&mut self) -> bool {
        debug_assert!(self.admitted.is_empty());
        while !self.free_slots.is_empty() {
            let sub = if let Some(stashed) = self.stash.take() {
                stashed
            } else {
                match self.submit_rx.try_recv() {
                    Ok(sub) => sub,
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        self.disconnected = true;
                        break;
                    }
                }
            };
            self.admit_one(sub);
        }
        if self.admitted.is_empty() {
            return false;
        }
        self.metrics.set_in_flight(self.occupied as u64);
        let admitted = std::mem::take(&mut self.admitted);
        if let Some(limiter) = self.limiter.clone() {
            // Batch-aware token take: one bucket update per distinct
            // ingress in the admitted burst, not one per probe.
            let mut groups: Vec<(Ipv4Addr, u32)> = Vec::new();
            for &slot in &admitted {
                let ingress = self.slots[slot].as_ref().expect("admitted slot").ingress;
                match groups.iter_mut().find(|(ip, _)| *ip == ingress) {
                    Some((_, n)) => *n += 1,
                    None => groups.push((ingress, 1)),
                }
            }
            let mut waits: Vec<(Ipv4Addr, Duration)> = Vec::with_capacity(groups.len());
            for (ingress, n) in groups {
                waits.push((ingress, limiter.debit_n(ingress, n)));
            }
            let now_tick = self.now_tick();
            for &slot in &admitted {
                let ingress = self.slots[slot].as_ref().expect("admitted slot").ingress;
                let wait = waits
                    .iter()
                    .find(|(ip, _)| *ip == ingress)
                    .map(|(_, w)| *w)
                    .unwrap_or_default();
                if wait.is_zero() {
                    self.ready.push_back(slot);
                } else {
                    // Pay the limiter by scheduling, not sleeping.
                    self.metrics.record_rate_limit_stall(wait);
                    let p = self.slots[slot].as_ref().expect("admitted slot");
                    self.timers.schedule(
                        now_tick + Self::ticks(wait),
                        TimerEvent {
                            slot,
                            generation: p.generation,
                            attempt: 0,
                            kind: EventKind::Send,
                        },
                    );
                }
            }
        } else {
            self.ready.extend(admitted.iter().copied());
        }
        self.admitted = admitted;
        self.admitted.clear();
        true
    }

    fn admit_one(&mut self, sub: Submission) {
        let target = match self.targets.get(&sub.ingress) {
            Some(SocketAddr::V4(v4)) => *v4,
            // No route to this ingress — indistinguishable from loss.
            _ => {
                self.metrics.record_timeout();
                self.telemetry.emit(
                    0,
                    TelemetryEvent::ProbeTimedOut {
                        token: sub.token,
                        attempts: 0,
                    },
                );
                let _ = sub.done.send(ProbeCompletion {
                    token: sub.token,
                    reply: TransportReply::TimedOut,
                });
                return;
            }
        };
        let slot = self.free_slots.pop().expect("admit checked free_slots");
        self.generation += 1;
        self.slots[slot] = Some(Pending {
            generation: self.generation,
            token: sub.token,
            ingress: sub.ingress,
            qname: sub.qname,
            qtype: sub.qtype,
            target,
            bytes: self.pool.take(),
            socket: usize::MAX,
            id: 0,
            attempt: 0,
            sent_at: Instant::now(),
            state: PendingState::Scheduled,
            done: sub.done,
        });
        self.occupied += 1;
        self.admitted.push(slot);
    }

    /// Advances the wheel and acts on expired, still-valid events.
    fn fire_timers(&mut self) -> bool {
        let now_tick = self.now_tick();
        let mut expired = std::mem::take(&mut self.expired);
        expired.clear();
        self.timers.advance(now_tick, &mut expired);
        let mut progress = false;
        for ev in expired.drain(..) {
            let Some(p) = self.slots[ev.slot].as_ref() else {
                continue;
            };
            if p.generation != ev.generation || p.attempt != ev.attempt {
                continue; // lazily cancelled
            }
            match ev.kind {
                EventKind::Send => {
                    if p.state == PendingState::Scheduled {
                        self.ready.push_back(ev.slot);
                        progress = true;
                    }
                }
                EventKind::Deadline => {
                    if p.state != PendingState::Waiting {
                        continue;
                    }
                    progress = true;
                    // The attempt is dead: late replies to its id must
                    // land as strays, never match.
                    self.correlation.remove(&(p.socket, p.id));
                    if ev.attempt + 1 >= self.policy.attempts.max(1) {
                        self.metrics.record_timeout();
                        self.telemetry.emit(
                            0,
                            TelemetryEvent::ProbeTimedOut {
                                token: p.token,
                                attempts: ev.attempt + 1,
                            },
                        );
                        self.complete(ev.slot, TransportReply::TimedOut);
                    } else {
                        let delay = self.policy.delay_before(ev.attempt + 1, &mut self.rng);
                        let p = self.slots[ev.slot].as_mut().expect("checked above");
                        p.attempt += 1;
                        p.state = PendingState::Scheduled;
                        let token = p.token;
                        self.metrics.record_retry();
                        self.telemetry.emit(
                            0,
                            TelemetryEvent::ProbeRetried {
                                token,
                                attempt: ev.attempt + 1,
                            },
                        );
                        self.timers.schedule(
                            now_tick + Self::ticks(delay),
                            TimerEvent {
                                slot: ev.slot,
                                generation: ev.generation,
                                attempt: ev.attempt + 1,
                                kind: EventKind::Send,
                            },
                        );
                    }
                }
            }
        }
        self.expired = expired;
        progress
    }

    /// Drains the ready queue in batches: one `sendmmsg` per socket per
    /// round, rotating sockets for source-port diversity.
    fn send_ready(&mut self) -> bool {
        if self.ready.is_empty() {
            return false;
        }
        let mut progress = false;
        for _ in 0..self.sockets.len() {
            if self.ready.is_empty() {
                break;
            }
            let socket_idx = self.next_socket;
            self.next_socket = (self.next_socket + 1) % self.sockets.len();
            let count = self.ready.len().min(MAX_BATCH);
            let mut batch = [0usize; MAX_BATCH];
            for b in batch.iter_mut().take(count) {
                *b = self.ready.pop_front().expect("counted");
            }
            let batch = &batch[..count];
            // Arm each probe: fresh id patched into the cached encoding
            // (first send encodes via the reusable writer — no per-probe
            // allocation either way).
            let t_encode = self.phase_begin(Phase::Encode);
            for &slot in batch {
                let id = fresh_id(&mut self.rng, &self.correlation, socket_idx);
                let p = self.slots[slot].as_mut().expect("ready slot occupied");
                p.socket = socket_idx;
                p.id = id;
                if p.bytes.is_empty() {
                    Message::encode_query_into(&mut self.writer, id, &p.qname, p.qtype);
                    p.bytes.extend_from_slice(self.writer.as_slice());
                } else {
                    p.bytes[0..2].copy_from_slice(&id.to_be_bytes());
                }
                self.correlation.insert((socket_idx, id), slot);
            }
            self.phase_end(Phase::Encode, t_encode);
            let outcome = if self.faults.is_some() {
                // Chaos path: every armed probe is "sent" from the
                // engine's point of view (deadlines, retries and loss
                // feedback behave), but each datagram runs the fault
                // gauntlet on its way to the wire.
                let mut layer = self.faults.take().expect("checked is_some");
                for &slot in batch {
                    self.emit_faulty(&mut layer, socket_idx, slot);
                }
                self.faults = Some(layer);
                Ok(count)
            } else {
                let empty: &[u8] = &[];
                let mut items = [SendItem {
                    payload: empty,
                    dest: SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0),
                }; MAX_BATCH];
                for (item, &slot) in items.iter_mut().zip(batch) {
                    let p = self.slots[slot].as_ref().expect("ready slot occupied");
                    *item = SendItem {
                        payload: &p.bytes,
                        dest: p.target,
                    };
                }
                let t_send = self.phase_begin(Phase::SendBatch);
                let sent = cde_sysio::send_batch(&self.sockets[socket_idx], &items[..count]);
                self.phase_end(Phase::SendBatch, t_send);
                sent
            };
            let now_tick = self.now_tick();
            match outcome {
                Ok(sent) => {
                    if sent > 0 {
                        progress = true;
                        self.metrics.record_send_batch(sent);
                    }
                    for (i, &slot) in batch.iter().enumerate().rev() {
                        if i < sent {
                            let p = self.slots[slot].as_mut().expect("ready slot occupied");
                            p.state = PendingState::Waiting;
                            p.sent_at = Instant::now();
                            self.metrics.record_sent();
                            self.telemetry.emit(
                                0,
                                TelemetryEvent::ProbeSent {
                                    token: p.token,
                                    attempt: p.attempt,
                                },
                            );
                            let deadline =
                                now_tick + Self::ticks(self.policy.timeout_for(p.attempt)).max(1);
                            self.timers.schedule(
                                deadline,
                                TimerEvent {
                                    slot,
                                    generation: p.generation,
                                    attempt: p.attempt,
                                    kind: EventKind::Deadline,
                                },
                            );
                        } else {
                            // Kernel backpressure: retract and retry next
                            // round (reverse order keeps FIFO).
                            let p = self.slots[slot].as_ref().expect("ready slot occupied");
                            self.correlation.remove(&(socket_idx, p.id));
                            self.ready.push_front(slot);
                        }
                    }
                }
                Err(_) => {
                    // A hard socket error: fail the whole batch rather
                    // than spin on it.
                    for &slot in batch {
                        let p = self.slots[slot].as_ref().expect("ready slot occupied");
                        self.correlation.remove(&(socket_idx, p.id));
                        self.metrics.record_timeout();
                        self.complete(slot, TransportReply::TimedOut);
                    }
                }
            }
        }
        progress
    }

    /// Drains every socket's receive queue in batches and correlates.
    fn receive(&mut self) -> bool {
        let mut progress = false;
        let mut recv_slots = std::mem::take(&mut self.recv_slots);
        for socket_idx in 0..self.sockets.len() {
            loop {
                let t_recv = self.phase_begin(Phase::RecvBatch);
                let got =
                    cde_sysio::recv_batch(&self.sockets[socket_idx], &mut recv_slots).unwrap_or(0);
                self.phase_end(Phase::RecvBatch, t_recv);
                if got == 0 {
                    break;
                }
                progress = true;
                for rs in recv_slots.iter().take(got) {
                    let Some(from) = rs.from() else { continue };
                    if self.faults.is_some() {
                        self.receive_faulty(socket_idx, rs.bytes(), from);
                    } else {
                        self.process_datagram(socket_idx, rs.bytes(), from);
                    }
                }
                if got < recv_slots.len() {
                    break;
                }
            }
        }
        self.recv_slots = recv_slots;
        progress
    }

    /// Sends one armed probe through the fault layer: dropped, REFUSED
    /// (a synthesized answer queued inbound), or delivered — possibly
    /// delayed, duplicated or truncated.
    fn emit_faulty(&mut self, layer: &mut FaultLayer, socket_idx: usize, slot: usize) {
        let now = self.start.elapsed();
        let now_tick = self.now_tick();
        let p = self.slots[slot].as_ref().expect("ready slot occupied");
        match layer
            .injector
            .decide(Direction::ClientToServer, now, p.bytes.len())
        {
            Verdict::Refuse => {
                // The "resolver" answers REFUSED without resolving: the
                // synthesized reply re-enters through correlation (from
                // the probed target, so the anti-spoofing checks pass).
                if let Some(reply) = refused_reply(&p.bytes) {
                    layer.push_in(now_tick, socket_idx, reply, p.target);
                }
            }
            // Nothing reaches the wire; the deadline timer will fire.
            Verdict::Drop(_) => {}
            Verdict::Deliver(copies) => {
                for copy in copies {
                    let len = copy.truncate_to.unwrap_or(p.bytes.len()).min(p.bytes.len());
                    if copy.delay.is_zero() && len == p.bytes.len() {
                        let _ = self.sockets[socket_idx].send_to(&p.bytes, p.target);
                    } else {
                        layer.push_out(
                            now_tick + Self::ticks(copy.delay),
                            socket_idx,
                            p.bytes[..len].to_vec(),
                            p.target,
                        );
                    }
                }
            }
        }
    }

    /// Runs one received datagram through the reply-direction gauntlet
    /// before correlation: lost replies vanish, delayed/duplicated
    /// copies queue up (late duplicates then land as strays — exactly
    /// the taxonomy a chaotic wire produces).
    fn receive_faulty(&mut self, socket_idx: usize, bytes: &[u8], from: SocketAddrV4) {
        let now = self.start.elapsed();
        let now_tick = self.now_tick();
        let mut immediate = 0u32;
        {
            let layer = self.faults.as_mut().expect("faults enabled");
            match layer
                .injector
                .decide(Direction::ServerToClient, now, bytes.len())
            {
                Verdict::Drop(_) | Verdict::Refuse => {}
                Verdict::Deliver(copies) => {
                    for copy in copies {
                        let len = copy.truncate_to.unwrap_or(bytes.len()).min(bytes.len());
                        if copy.delay.is_zero() && len == bytes.len() {
                            immediate += 1;
                        } else {
                            layer.push_in(
                                now_tick + Self::ticks(copy.delay),
                                socket_idx,
                                bytes[..len].to_vec(),
                                from,
                            );
                        }
                    }
                }
            }
        }
        for _ in 0..immediate {
            self.process_datagram(socket_idx, bytes, from);
        }
    }

    /// Flushes fault-layer datagrams whose injected delay has elapsed:
    /// outbound copies hit the wire, inbound ones re-enter correlation.
    fn release_delayed(&mut self) -> bool {
        if self.faults.is_none() {
            return false;
        }
        let mut layer = self.faults.take().expect("checked is_none");
        let now_tick = self.now_tick();
        let mut progress = false;
        while layer.delayed_out.peek().is_some_and(|d| d.due <= now_tick) {
            let d = layer.delayed_out.pop().expect("peeked");
            let _ = self.sockets[d.socket].send_to(&d.bytes, d.addr);
            progress = true;
        }
        while layer.delayed_in.peek().is_some_and(|d| d.due <= now_tick) {
            let d = layer.delayed_in.pop().expect("peeked");
            self.process_datagram(d.socket, &d.bytes, d.addr);
            progress = true;
        }
        self.faults = Some(layer);
        progress
    }

    /// Correlates one inbound datagram, enforcing the anti-spoofing
    /// checks: id match, source address match, echoed-question match.
    fn process_datagram(&mut self, socket_idx: usize, bytes: &[u8], from: SocketAddrV4) {
        let t_decode = self.phase_begin(Phase::Decode);
        let parsed = MessagePeek::parse(bytes);
        self.phase_end(Phase::Decode, t_decode);
        let Ok(peek) = parsed else {
            self.metrics.record_decode_error();
            return;
        };
        if !peek.is_response() {
            return;
        }
        let t_correlate = self.phase_begin(Phase::Correlate);
        let Some(&slot) = self.correlation.get(&(socket_idx, peek.id())) else {
            // Wrong id, or a duplicate/late reply after the deadline
            // already retired the attempt.
            self.metrics.record_stray_reply();
            self.telemetry.emit(
                0,
                TelemetryEvent::ReplyDropped {
                    reason: DropReason::Stray,
                },
            );
            self.phase_end(Phase::Correlate, t_correlate);
            return;
        };
        let p = self.slots[slot].as_ref().expect("correlated slot occupied");
        if from != p.target {
            // Right id, wrong source: off-path spoofing. Keep waiting for
            // the genuine answer.
            self.metrics.record_spoofed_reply();
            self.telemetry.emit(
                0,
                TelemetryEvent::ReplyDropped {
                    reason: DropReason::Spoofed,
                },
            );
            self.phase_end(Phase::Correlate, t_correlate);
            return;
        }
        match peek.question_matches(&p.qname, p.qtype) {
            Ok(true) => {}
            Ok(false) => {
                // Id collision: someone else's answer hashed onto our id.
                self.metrics.record_qname_mismatch();
                self.telemetry.emit(
                    0,
                    TelemetryEvent::ReplyDropped {
                        reason: DropReason::Duplicate,
                    },
                );
                self.phase_end(Phase::Correlate, t_correlate);
                return;
            }
            Err(_) => {
                self.metrics.record_decode_error();
                self.phase_end(Phase::Correlate, t_correlate);
                return;
            }
        }
        self.phase_end(Phase::Correlate, t_correlate);
        let rtt = p.sent_at.elapsed();
        let rtt_us = rtt.as_micros().min(u128::from(u64::MAX)) as u64;
        // A reply arriving after a retransmit can belong to *either*
        // attempt; its last-send RTT is untrustworthy for timing
        // analysis, so both the digest and the event carry the flag.
        let retransmit_ambiguous = p.attempt > 0;
        self.metrics.record_received(rtt);
        if let Some(insight) = &self.insight {
            insight
                .digests
                .record(p.ingress, rtt_us, retransmit_ambiguous);
        }
        self.telemetry.emit(
            0,
            TelemetryEvent::ProbeMatched {
                token: p.token,
                attempt: p.attempt,
                rtt_us,
                retransmit_ambiguous,
            },
        );
        self.complete(
            slot,
            TransportReply::Answered {
                latency: Some(SimDuration::from_micros(rtt.as_micros() as u64)),
                rcode: peek.flags().rcode,
            },
        );
    }

    /// Retires a slot: frees the correlation entry, recycles the buffer,
    /// delivers the completion. Timers die by lazy cancellation.
    fn complete(&mut self, slot: usize, reply: TransportReply) {
        let p = self.slots[slot].take().expect("completing occupied slot");
        self.correlation.remove(&(p.socket, p.id));
        self.pool.give(p.bytes);
        self.occupied -= 1;
        self.free_slots.push(slot);
        self.metrics.set_in_flight(self.occupied as u64);
        let _ = p.done.send(ProbeCompletion {
            token: p.token,
            reply,
        });
    }

    /// Nothing to do right now: sleep until the next timer or a new
    /// submission, whichever comes first.
    fn idle_wait(&mut self) {
        let wait = if self.occupied == 0 && self.ready.is_empty() {
            DRAINED_IDLE
        } else if self.occupied > 0 {
            // A reply can land any microsecond and nothing wakes this
            // sleep for it, so its length is pure added RTT. Keep it at
            // BUSY_IDLE — the 4 ms timer-distance nap here used to
            // quantize every measured RTT to ~4 ms, drowning the
            // hit/miss contrast the timing side channel reads.
            BUSY_IDLE
        } else {
            // Only scheduled (unsent) probes: sleep toward their send
            // timers, nothing inbound can arrive yet.
            let now = self.now_tick();
            let ticks_away = self.timers.next_due().map_or(1, |t| t.saturating_sub(now));
            (TICK * ticks_away.clamp(1, 4) as u32)
                .min(Duration::from_millis(4))
                .max(BUSY_IDLE)
        };
        if self.disconnected {
            // recv_timeout would return instantly on a dead channel.
            std::thread::sleep(wait);
            return;
        }
        match self.submit_rx.recv_timeout(wait) {
            Ok(sub) => self.stash = Some(sub),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => self.disconnected = true,
        }
    }
}

/// Picks a query id unused on `socket`, preferring a random draw and
/// linearly probing on collision.
fn fresh_id(rng: &mut DetRng, correlation: &HashMap<(usize, u16), usize>, socket: usize) -> u16 {
    let mut id: u16 = rng.gen();
    for _ in 0..=u16::MAX {
        if !correlation.contains_key(&(socket, id)) {
            return id;
        }
        id = id.wrapping_add(1);
    }
    id // unreachable: the table can never hold 65 536 entries per socket
}

/// The one-shot blocking seam over a [`Reactor`]: a [`Transport`], so
/// `cde-core`'s algorithms (and [`EngineAccess`](crate::EngineAccess))
/// run on the reactor unchanged.
pub struct ReactorTransport {
    reactor: Reactor,
    net: NameserverNet,
    link: Option<SyncLink>,
    done_tx: Sender<ProbeCompletion>,
    done_rx: Receiver<ProbeCompletion>,
    next_token: u64,
    dirty: bool,
}

impl ReactorTransport {
    /// Wires a reactor-backed transport to a launched resolver (and
    /// optionally the authority behind it), mirroring
    /// [`UdpTransport::connect`](crate::udp::UdpTransport::connect).
    pub fn connect(
        resolver: &LoopbackResolver,
        authority: Option<&WireAuthority>,
        net: NameserverNet,
        config: ReactorConfig,
    ) -> io::Result<ReactorTransport> {
        let mut transport =
            ReactorTransport::direct(resolver.ingress_addrs().clone(), net, config)?;
        transport.link = Some(SyncLink::connect(resolver, authority));
        Ok(transport)
    }

    /// A reactor-backed transport aimed at arbitrary `targets` with no
    /// serving-side back-channel.
    pub fn direct(
        targets: HashMap<Ipv4Addr, SocketAddr>,
        net: NameserverNet,
        config: ReactorConfig,
    ) -> io::Result<ReactorTransport> {
        let reactor = Reactor::launch(targets, config)?;
        let (done_tx, done_rx) = unbounded();
        Ok(ReactorTransport {
            reactor,
            net,
            link: None,
            done_tx,
            done_rx,
            next_token: 0,
            dirty: true,
        })
    }

    /// The reactor behind this transport (for pipelined submission).
    pub fn reactor(&self) -> &Reactor {
        &self.reactor
    }

    /// Pushes pending zone edits (anything done through `net_mut`) to
    /// the serving side now, without waiting for the next `query`.
    /// Long-lived daemons call this after installing new sessions so
    /// probes submitted via the [`ReactorHandle`] resolve against the
    /// updated zones.
    pub fn sync_serving_side(&mut self) {
        self.sync_if_dirty();
    }

    /// Folds queued serving-side observations into the canonical net
    /// now, without waiting for the next `query`. Daemons that drive
    /// probes through the raw [`ReactorHandle`] use this to pull
    /// nameserver-log evidence at checkpoint time; between calls the
    /// observations stay queued on the resolver's bounded channel.
    pub fn drain_serving_observations(&mut self) {
        self.drain_observations();
    }

    /// Gracefully shuts the backing reactor down: drains in-flight
    /// probes and joins the loop thread. See
    /// [`Reactor::shutdown_graceful`].
    pub fn shutdown_graceful(&mut self, timeout: Duration) -> bool {
        self.reactor.shutdown_graceful(timeout)
    }

    /// Per-attempt wire loss observed so far.
    pub fn observed_loss_rate(&self) -> f64 {
        self.reactor.metrics().snapshot().loss_rate()
    }

    fn sync_if_dirty(&mut self) {
        if !self.dirty {
            return;
        }
        if let Some(link) = &self.link {
            link.push(&self.net);
        }
        self.dirty = false;
    }

    fn drain_observations(&mut self) {
        if let Some(link) = &self.link {
            link.drain_into(&mut self.net);
        }
    }
}

impl std::fmt::Debug for ReactorTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactorTransport")
            .field("reactor", &self.reactor)
            .finish()
    }
}

impl Transport for ReactorTransport {
    fn query(
        &mut self,
        ingress: Ipv4Addr,
        qname: &Name,
        qtype: RecordType,
        _now: SimTime,
    ) -> TransportReply {
        self.sync_if_dirty();
        let token = self.next_token;
        self.next_token += 1;
        if !self
            .reactor
            .handle
            .submit(token, ingress, qname.clone(), qtype, &self.done_tx)
        {
            return TransportReply::TimedOut;
        }
        // Generous upper bound: the reactor itself enforces the real
        // deadlines; this only guards against a dead loop.
        let grace = self.reactor.policy().worst_case() + Duration::from_secs(2);
        loop {
            match self.done_rx.recv_timeout(grace) {
                Ok(c) if c.token == token => {
                    self.drain_observations();
                    return c.reply;
                }
                // A stale completion from an abandoned earlier query.
                Ok(_) => continue,
                Err(_) => {
                    self.drain_observations();
                    return TransportReply::TimedOut;
                }
            }
        }
    }

    fn net(&self) -> &NameserverNet {
        &self.net
    }

    fn net_mut(&mut self) -> &mut NameserverNet {
        self.dirty = true;
        &mut self.net
    }

    fn metrics(&self) -> Arc<EngineMetrics> {
        self.reactor.metrics()
    }
}

impl AccessProvider for ReactorTransport {
    type Channel<'a>
        = crate::transport::EngineAccess<'a, ReactorTransport>
    where
        Self: 'a;

    fn channel(&mut self, ingress: Ipv4Addr) -> Self::Channel<'_> {
        crate::transport::EngineAccess::new(self, ingress)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy_ms(attempts: u32, timeout_ms: u64) -> RetryPolicy {
        RetryPolicy {
            attempts,
            timeout: Duration::from_millis(timeout_ms),
            backoff: 1.0,
            base_delay: Duration::from_millis(1),
            jitter: 0.0,
        }
    }

    #[test]
    fn unroutable_ingress_completes_as_timeout() {
        let reactor = Reactor::launch(
            HashMap::new(),
            ReactorConfig::with_policy(policy_ms(1, 20), 3),
        )
        .unwrap();
        let (done_tx, done_rx) = unbounded();
        let qname: Name = "x.example".parse().unwrap();
        assert!(reactor.handle().submit(
            7,
            Ipv4Addr::new(192, 0, 2, 1),
            qname,
            RecordType::A,
            &done_tx
        ));
        let c = done_rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(c.token, 7);
        assert_eq!(c.reply, TransportReply::TimedOut);
        assert_eq!(reactor.metrics().snapshot().timeouts, 1);
    }

    #[test]
    fn silent_target_retries_then_times_out() {
        let sink = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        let ingress = Ipv4Addr::new(192, 0, 2, 1);
        let mut targets = HashMap::new();
        targets.insert(ingress, sink.local_addr().unwrap());
        let reactor =
            Reactor::launch(targets, ReactorConfig::with_policy(policy_ms(3, 15), 9)).unwrap();
        let (done_tx, done_rx) = unbounded();
        let qname: Name = "y.example".parse().unwrap();
        reactor
            .handle()
            .submit(1, ingress, qname, RecordType::A, &done_tx);
        let c = done_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(c.reply, TransportReply::TimedOut);
        let snap = reactor.metrics().snapshot();
        assert_eq!(snap.sent, 3);
        assert_eq!(snap.retries, 2);
        assert_eq!(snap.timeouts, 1);
        assert_eq!(snap.in_flight, 0);
        assert_eq!(snap.in_flight_peak, 1);
    }

    #[test]
    fn many_probes_pipeline_through_one_echo_server() {
        // An echo server answering every query: N probes must all
        // complete while overlapping in flight.
        let server = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        server
            .set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        let server_addr = server.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let server_thread = std::thread::spawn({
            let stop = Arc::clone(&stop);
            move || {
                let mut buf = [0u8; 2048];
                while !stop.load(Ordering::SeqCst) {
                    let Ok((len, peer)) = server.recv_from(&mut buf) else {
                        continue;
                    };
                    if let Ok(q) = Message::decode(&buf[..len]) {
                        let resp = Message::response_to(&q);
                        let _ = server.send_to(&resp.encode().unwrap(), peer);
                    }
                }
            }
        });

        let ingress = Ipv4Addr::new(192, 0, 2, 5);
        let mut targets = HashMap::new();
        targets.insert(ingress, server_addr);
        let reactor =
            Reactor::launch(targets, ReactorConfig::with_policy(policy_ms(3, 500), 11)).unwrap();
        let (done_tx, done_rx) = unbounded();
        let total = 300u64;
        let handle = reactor.handle();
        for token in 0..total {
            let qname: Name = format!("p-{token}.cache.example").parse().unwrap();
            assert!(handle.submit(token, ingress, qname, RecordType::A, &done_tx));
        }
        let mut answered = 0;
        for _ in 0..total {
            let c = done_rx.recv_timeout(Duration::from_secs(10)).unwrap();
            if c.reply.is_answered() {
                answered += 1;
            }
        }
        stop.store(true, Ordering::SeqCst);
        server_thread.join().unwrap();
        assert_eq!(answered, total, "every echoed probe must complete");
        let snap = reactor.metrics().snapshot();
        assert_eq!(snap.received, total);
        assert!(
            snap.in_flight_peak > 1,
            "probes never overlapped (peak {})",
            snap.in_flight_peak
        );
        assert!(snap.batches_sent() > 0);
        assert!(snap.loop_count > 0);
    }

    #[test]
    fn graceful_shutdown_drains_in_flight_probes() {
        let server = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        server
            .set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        let server_addr = server.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let server_thread = std::thread::spawn({
            let stop = Arc::clone(&stop);
            move || {
                let mut buf = [0u8; 2048];
                while !stop.load(Ordering::SeqCst) {
                    let Ok((len, peer)) = server.recv_from(&mut buf) else {
                        continue;
                    };
                    if let Ok(q) = Message::decode(&buf[..len]) {
                        let resp = Message::response_to(&q);
                        let _ = server.send_to(&resp.encode().unwrap(), peer);
                    }
                }
            }
        });

        let ingress = Ipv4Addr::new(192, 0, 2, 6);
        let mut targets = HashMap::new();
        targets.insert(ingress, server_addr);
        let mut reactor =
            Reactor::launch(targets, ReactorConfig::with_policy(policy_ms(3, 500), 8)).unwrap();
        let (done_tx, done_rx) = unbounded();
        let total = 120u64;
        let handle = reactor.handle();
        for token in 0..total {
            let qname: Name = format!("g-{token}.cache.example").parse().unwrap();
            assert!(handle.submit(token, ingress, qname, RecordType::A, &done_tx));
        }
        // Ask for a drain while most of the burst is still queued or in
        // flight: every submitted probe must still be resolved before
        // the loop exits.
        let drained = reactor.shutdown_graceful(Duration::from_secs(10));
        assert!(drained, "loop should exit within the drain budget");
        stop.store(true, Ordering::SeqCst);
        server_thread.join().unwrap();
        let mut completions = 0;
        while done_rx.try_recv().is_ok() {
            completions += 1;
        }
        assert_eq!(completions, total, "drain must deliver every completion");
        let snap = reactor.metrics().snapshot();
        assert_eq!(snap.in_flight, 0, "nothing left in flight after drain");
    }
}
