//! The probe reactor: thousands of probes in flight, one shard per core.
//!
//! [`UdpTransport`](crate::udp::UdpTransport) is lockstep-blocking — each
//! worker parks in `recv` until reply-or-deadline, so aggregate throughput
//! is `workers / RTT` no matter what the network could absorb. The
//! [`Reactor`] replaces that with readiness-driven event loops over
//! non-blocking sockets; since one loop saturates around a single core's
//! syscall and correlation budget, the reactor runs **N independent
//! shards** (default: one per core) and partitions probes across them:
//!
//! * each shard (see [`crate::shard`]) owns its own socket pool,
//!   **correlation table** keyed on `(socket, query id)`, [hierarchical
//!   timer wheel](crate::timer::TimerWheel) and buffer pool — nothing on
//!   the hot path is shared, so shards scale without lock contention;
//! * probes are partitioned by a **stable hash of the target ingress**
//!   ([`shard_for_target`]), so a target's replies always arrive on the
//!   shard (and socket) that probed it and correlation stays local;
//! * submissions travel over **per-shard lock-free rings**
//!   ([`cde_sysio::MpscRing`]) with a park/unpark waker — no mutex
//!   between submitters and any shard loop;
//! * observability merges instead of sharing: each shard writes its own
//!   [`MetricsBlock`](crate::metrics::MetricsBlock) (snapshots sum;
//!   exported series grow a `shard` label when sharded), RTT digests and
//!   phase timers are lock-free atomics, and the telemetry hub is
//!   multi-producer by construction.
//!
//! Probes are submitted through a [`ReactorHandle`] and complete over a
//! caller-supplied channel, so any number of clients can pipeline against
//! one reactor. [`ReactorTransport`] wraps it back into the blocking
//! one-probe [`Transport`] seam for `cde-core`'s algorithms.
//!
//! One deliberate exception: a reactor launched with
//! [`ReactorConfig::faults`] clamps to a single shard, because the fault
//! injector's decision stream is stateful and must observe datagrams in
//! one deterministic transmission order for replays to be exact.

use crate::authority::WireAuthority;
use crate::bufpool::BufferPool;
use crate::flight::{FlightOptions, FlightRecorder};
use crate::metrics::EngineMetrics;
use crate::ratelimit::RateLimiter;
use crate::resolver::LoopbackResolver;
use crate::retry::RetryPolicy;
use crate::rto::RtoTable;
pub use crate::shard::shard_for_target;
use crate::shard::{empty_slots, FaultLayer, ShardLoop, ShardWaker, Submission};
use crate::timer::TimerWheel;
use crate::transport::{Transport, TransportReply};
use crate::udp::SyncLink;
use cde_core::AccessProvider;
use cde_dns::wire::WireWriter;
use cde_dns::{Name, RecordType};
use cde_faults::{FaultPlan, FaultStats};
use cde_insight::{PhaseProfiler, RttDigestSet};
use cde_netsim::{DetRng, SimTime};
use cde_platform::NameserverNet;
use cde_pulse::ExemplarReservoir;
use cde_sysio::{MpscRing, RecvSlot, MAX_BATCH};
use cde_telemetry::{MetricsRegistry, TelemetryHub};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{Ipv4Addr, SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Hardware-derived in-flight default: enough depth to hide RTT on any
/// machine, scaled up with cores.
fn default_max_in_flight() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .saturating_mul(1024)
        .clamp(1024, 16 * 1024)
}

/// Default shard count: one event loop per core.
fn default_shards() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Sizing and policy knobs for one [`Reactor`].
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Sockets in the pool, divided across shards. Replies correlate per
    /// socket, so the pool bounds id-space pressure; each shard rotates
    /// sends across its share for source-port diversity.
    pub sockets: usize,
    /// Correlation-table capacity: probes held in flight at once, summed
    /// across shards (each shard gets an equal slice).
    pub max_in_flight: usize,
    /// Event-loop shards. Defaults to `available_parallelism`; clamped
    /// to 1 when [`faults`](Self::faults) are configured (the injector's
    /// decision stream needs one deterministic transmission order).
    pub shards: usize,
    /// Per-probe deadline/retransmit schedule.
    pub policy: RetryPolicy,
    /// Optional shared pacing (batch-aware token take). Shared across
    /// shards; each ingress's bucket is only ever touched by the one
    /// shard that owns the ingress.
    pub limiter: Option<Arc<RateLimiter>>,
    /// Seed for query-id generation and retransmit jitter (each shard
    /// forks its own indexed substream).
    pub seed: u64,
    /// Event hub for probe lifecycle events. `None` uses the process
    /// [`global`](cde_telemetry::global) hub (a no-op unless a binary
    /// installed one), so instrumentation costs one branch by default.
    pub telemetry: Option<Arc<TelemetryHub>>,
    /// Registry to register the engine's collectors into at launch:
    /// [`EngineMetrics`], the per-shard buffer-pool stats, the rate
    /// limiter (if any) and the event hub itself.
    pub registry: Option<Arc<MetricsRegistry>>,
    /// Chaos: a deterministic fault plan worn at the send/recv seam.
    /// Outbound datagrams can be dropped, REFUSED, delayed, duplicated
    /// or truncated before they reach the wire; inbound replies run the
    /// same gauntlet before correlation — so retries, timeouts and the
    /// stray/decode-error taxonomy react to injected faults exactly as
    /// they would to real ones. The injector's [`FaultStats`] register
    /// into `registry` when both are set. Forces a single shard.
    pub faults: Option<FaultPlan>,
    /// Latency capture: per-target RTT digests recorded at match time
    /// plus sampled hot-path phase timers (see [`ReactorInsight`]).
    /// Both register into `registry` when both are set.
    pub insight: Option<InsightOptions>,
    /// Health capture: a shared [`ExemplarReservoir`] every shard feeds
    /// its completed probe lifecycles into (slowest and most-retried
    /// top-K, see [`PulseOptions`]). Obtained from
    /// [`Reactor::exemplars`]; cde-serve attaches it to its
    /// [`Pulse`](cde_pulse::Pulse) so `/v1/health` carries exemplars.
    pub pulse: Option<PulseOptions>,
    /// Adaptive per-ingress retransmission timeouts: when set, the shard
    /// loops arm deadlines from a learned [`RtoTable`] (RFC 6298
    /// SRTT/RTTVAR/RTO per target ingress) instead of the static
    /// [`policy`](Self::policy) schedule — the policy's `timeout_for`
    /// stays the per-attempt upper bound, so every grace computed from
    /// [`RetryPolicy::worst_case`] remains valid. The table registers
    /// into [`registry`](Self::registry) and is obtained from
    /// [`Reactor::rto`].
    pub adaptive: Option<crate::rto::AdaptiveRtoConfig>,
    /// Always-on flight recorder: each shard loop writes a bounded ring
    /// of full-fidelity probe lifecycle records
    /// ([`FlightRecord`](crate::flight::FlightRecord)s — send / match /
    /// expiry timestamps, RTO used, disposition, wire size, query id),
    /// drop-oldest with exact shed accounting. Obtained from
    /// [`Reactor::flight`]; dump triggers (health transitions, operator
    /// requests, SIGUSR1) snapshot it to the versioned JSONL artifact
    /// `cde-analyze --forensics` consumes.
    pub flight: Option<FlightOptions>,
}

/// Knobs for the reactor's health-capture tier.
#[derive(Debug, Clone)]
pub struct PulseOptions {
    /// Exemplars kept per list (slowest / most-retried). The reservoir's
    /// admission floors make the non-candidate fast path two relaxed
    /// atomic loads, so small K keeps the hot path unmeasurable.
    pub exemplars: usize,
}

impl Default for PulseOptions {
    fn default() -> PulseOptions {
        PulseOptions { exemplars: 16 }
    }
}

/// Knobs for the reactor's latency-capture tier.
#[derive(Debug, Clone)]
pub struct InsightOptions {
    /// Wall-clock-time one in this many entries per hot-path phase.
    /// Digest recording is not sampled (it is a few relaxed atomic adds
    /// per *matched* reply, off the per-datagram fast path); this rate
    /// only throttles the `Instant::now()` pairs around timers / encode
    /// / send-batch / recv-batch / decode / correlate.
    pub phase_sample_every: u32,
}

impl Default for InsightOptions {
    fn default() -> InsightOptions {
        InsightOptions {
            phase_sample_every: 64,
        }
    }
}

/// The reactor's capture tier, shared between the shard loops and the
/// caller: lock-free per-target RTT digests (fed at reply-match time)
/// and the sampled phase profiler. Both structures are multi-producer
/// atomics, so every shard records into the same instances and a
/// snapshot is already the cross-shard merge. Obtained from
/// [`Reactor::insight`]; both pieces also register into
/// [`ReactorConfig::registry`] for Prometheus/JSON export.
#[derive(Debug)]
pub struct ReactorInsight {
    digests: Arc<RttDigestSet>,
    phases: Arc<PhaseProfiler>,
}

impl ReactorInsight {
    /// Per-target-ingress RTT digests.
    pub fn digests(&self) -> &Arc<RttDigestSet> {
        &self.digests
    }

    /// The sampled hot-path phase timers.
    pub fn phases(&self) -> &Arc<PhaseProfiler> {
        &self.phases
    }
}

impl Default for ReactorConfig {
    fn default() -> ReactorConfig {
        let max_in_flight = default_max_in_flight();
        ReactorConfig {
            // Pool sized to the in-flight target: one socket per ~256
            // outstanding probes keeps the id space per socket sparse.
            sockets: (max_in_flight / 256).clamp(4, 16),
            max_in_flight,
            shards: default_shards(),
            policy: RetryPolicy::default(),
            limiter: None,
            seed: 0,
            telemetry: None,
            registry: None,
            faults: None,
            insight: None,
            pulse: None,
            adaptive: None,
            flight: None,
        }
    }
}

impl ReactorConfig {
    /// The default sizing with a specific retry policy and seed.
    pub fn with_policy(policy: RetryPolicy, seed: u64) -> ReactorConfig {
        ReactorConfig {
            policy,
            seed,
            ..ReactorConfig::default()
        }
    }
}

/// One finished probe, delivered on the submitter's completion channel.
#[derive(Debug, Clone)]
pub struct ProbeCompletion {
    /// The caller's correlation token, echoed back.
    pub token: u64,
    /// What the wire produced.
    pub reply: TransportReply,
}

/// Everything a submission handle needs, shared by all clones.
struct HandleShared {
    rings: Vec<Arc<MpscRing<Submission>>>,
    wakers: Vec<Arc<ShardWaker>>,
    exited: Vec<Arc<AtomicBool>>,
    shutdown: Arc<AtomicBool>,
    metrics: Arc<EngineMetrics>,
    telemetry: Arc<TelemetryHub>,
    exemplars: Option<Arc<ExemplarReservoir>>,
    flight: Option<Arc<FlightRecorder>>,
}

/// Clone-able submission handle to a running [`Reactor`].
///
/// Routing is in the handle: [`submit`](Self::submit) hashes the target
/// ingress ([`shard_for_target`]) to pick the owning shard and pushes
/// onto that shard's lock-free ring — no lock is taken on this path, on
/// any number of concurrent submitters.
#[derive(Clone)]
pub struct ReactorHandle {
    shared: Arc<HandleShared>,
}

impl ReactorHandle {
    /// Submits one probe; its [`ProbeCompletion`] (tagged `token`) will
    /// arrive on `done`. Returns `false` if the reactor has shut down.
    ///
    /// A full ring is backpressure, not failure: the submitter spins
    /// (waking the shard each try) until the loop drains a slot — the
    /// ring is sized at twice the shard's in-flight window, so a steady
    /// submitter only ever hits this when genuinely outrunning the wire.
    pub fn submit(
        &self,
        token: u64,
        ingress: Ipv4Addr,
        qname: Name,
        qtype: RecordType,
        done: &Sender<ProbeCompletion>,
    ) -> bool {
        let shard = shard_for_target(ingress, self.shared.rings.len());
        let mut sub = Submission {
            token,
            ingress,
            qname,
            qtype,
            done: done.clone(),
        };
        loop {
            if self.shared.shutdown.load(Ordering::SeqCst)
                || self.shared.exited[shard].load(Ordering::SeqCst)
            {
                return false;
            }
            match self.shared.rings[shard].push(sub) {
                Ok(()) => {
                    self.shared.wakers[shard].wake();
                    return true;
                }
                Err(back) => {
                    sub = back;
                    self.shared.wakers[shard].wake();
                    std::thread::yield_now();
                }
            }
        }
    }

    /// The reactor's shared metrics (merged across shards on snapshot).
    pub fn metrics(&self) -> Arc<EngineMetrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// The event hub the reactor emits probe lifecycle events into.
    pub fn telemetry(&self) -> Arc<TelemetryHub> {
        Arc::clone(&self.shared.telemetry)
    }

    /// The slow-probe exemplar reservoir — `None` unless the reactor was
    /// launched with [`ReactorConfig::pulse`].
    pub fn exemplars(&self) -> Option<Arc<ExemplarReservoir>> {
        self.shared.exemplars.as_ref().map(Arc::clone)
    }

    /// The flight recorder — `None` unless the reactor was launched with
    /// [`ReactorConfig::flight`]. Dump paths snapshot through this
    /// without touching the shard loops.
    pub fn flight(&self) -> Option<Arc<FlightRecorder>> {
        self.shared.flight.as_ref().map(Arc::clone)
    }
}

impl std::fmt::Debug for ReactorHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactorHandle")
            .field("shards", &self.shared.rings.len())
            .finish()
    }
}

/// The sharded event-driven probe engine. See the module docs.
pub struct ShardedReactor {
    handle: ReactorHandle,
    policy: RetryPolicy,
    fault_stats: Option<Arc<FaultStats>>,
    insight: Option<Arc<ReactorInsight>>,
    rto: Option<Arc<RtoTable>>,
    flight: Option<Arc<FlightRecorder>>,
    shutdown: Arc<AtomicBool>,
    drain: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    /// Local addresses of each shard's sockets, in shard order (tests
    /// aim crafted datagrams at specific shards through these).
    socket_addrs: Vec<Vec<SocketAddr>>,
}

/// The historical name: the reactor has been sharded since the
/// shard-per-core refactor, and every seam kept working.
pub type Reactor = ShardedReactor;

impl ShardedReactor {
    /// Binds the per-shard socket pools and starts one event loop per
    /// shard.
    ///
    /// `targets` maps platform ingress addresses to the real sockets
    /// serving them (e.g. [`LoopbackResolver::ingress_addrs`]).
    pub fn launch(
        targets: HashMap<Ipv4Addr, SocketAddr>,
        config: ReactorConfig,
    ) -> io::Result<Reactor> {
        // Fault injection consumes one stateful decision stream in
        // transmission order; more than one shard would interleave it
        // nondeterministically, so chaos runs single-shard.
        let shards = if config.faults.is_some() {
            1
        } else {
            config.shards.max(1)
        };
        let max_in_flight = config.max_in_flight.max(1);
        let per_shard_in_flight = max_in_flight.div_ceil(shards).max(1);
        let per_shard_sockets = config.sockets.max(1).div_ceil(shards).max(1);
        let metrics = Arc::new(EngineMetrics::with_shards(shards));
        let shutdown = Arc::new(AtomicBool::new(false));
        let drain = Arc::new(AtomicBool::new(false));
        let telemetry = config
            .telemetry
            .clone()
            .unwrap_or_else(cde_telemetry::global);
        let mut faults = config.faults.as_ref().map(FaultLayer::new);
        let fault_stats = faults.as_ref().map(FaultLayer::stats);
        let insight = config.insight.as_ref().map(|opts| {
            Arc::new(ReactorInsight {
                digests: Arc::new(RttDigestSet::for_targets(targets.keys().copied())),
                phases: Arc::new(PhaseProfiler::new(opts.phase_sample_every)),
            })
        });
        let exemplars = config
            .pulse
            .as_ref()
            .map(|opts| Arc::new(ExemplarReservoir::with_capacity(opts.exemplars)));
        let rto = config
            .adaptive
            .as_ref()
            .map(|cfg| Arc::new(RtoTable::for_targets(targets.keys().copied(), *cfg)));
        let flight = config
            .flight
            .as_ref()
            .map(|opts| Arc::new(FlightRecorder::new(shards, opts.per_shard)));
        if let Some(registry) = &config.registry {
            registry.register(Arc::clone(&metrics) as Arc<dyn cde_telemetry::Collector>);
            registry.register(Arc::clone(&telemetry) as Arc<dyn cde_telemetry::Collector>);
            if let Some(limiter) = &config.limiter {
                registry.register(Arc::clone(limiter) as Arc<dyn cde_telemetry::Collector>);
            }
            if let Some(stats) = &fault_stats {
                registry.register(Arc::clone(stats) as Arc<dyn cde_telemetry::Collector>);
            }
            if let Some(insight) = &insight {
                registry
                    .register(Arc::clone(&insight.digests) as Arc<dyn cde_telemetry::Collector>);
                registry.register(Arc::clone(&insight.phases) as Arc<dyn cde_telemetry::Collector>);
            }
            if let Some(rto) = &rto {
                registry.register(Arc::clone(rto) as Arc<dyn cde_telemetry::Collector>);
            }
        }
        let mut rings = Vec::with_capacity(shards);
        let mut wakers = Vec::with_capacity(shards);
        let mut exited = Vec::with_capacity(shards);
        let mut threads = Vec::with_capacity(shards);
        let mut socket_addrs = Vec::with_capacity(shards);
        for i in 0..shards {
            let mut sockets = Vec::with_capacity(per_shard_sockets);
            let mut addrs = Vec::with_capacity(per_shard_sockets);
            for _ in 0..per_shard_sockets {
                let socket = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0))?;
                socket.set_nonblocking(true)?;
                addrs.push(socket.local_addr()?);
                sockets.push(socket);
            }
            socket_addrs.push(addrs);
            let pool = if shards > 1 {
                BufferPool::new_labeled(128, per_shard_in_flight, i as u64)
            } else {
                BufferPool::new(128, per_shard_in_flight)
            };
            if let Some(registry) = &config.registry {
                registry.register(pool.stats());
            }
            let block = metrics.shard(i);
            block.set_slab_capacity(per_shard_in_flight as u64);
            // Twice the in-flight window: a submitter can stage a full
            // refill while the current window drains, without the ring
            // ever being the bottleneck.
            let ring = Arc::new(MpscRing::with_capacity((per_shard_in_flight * 2).max(1024)));
            let waker = Arc::new(ShardWaker::default());
            let shard_exited = Arc::new(AtomicBool::new(false));
            let shard_loop = ShardLoop {
                targets: targets.clone(),
                sockets,
                next_socket: 0,
                ring: Arc::clone(&ring),
                waker: Arc::clone(&waker),
                exited: Arc::clone(&shard_exited),
                slots: empty_slots(per_shard_in_flight),
                free_slots: (0..per_shard_in_flight).rev().collect(),
                occupied: 0,
                correlation: HashMap::with_capacity(per_shard_in_flight),
                timers: TimerWheel::new(0),
                expired: Vec::new(),
                ready: VecDeque::with_capacity(per_shard_in_flight),
                admitted: Vec::new(),
                pool,
                writer: WireWriter::new(),
                recv_slots: (0..MAX_BATCH).map(|_| RecvSlot::new()).collect(),
                policy: config.policy,
                limiter: config.limiter.clone(),
                rng: DetRng::seed(config.seed).fork_indexed("reactor", i as u64),
                generation: 0,
                start: Instant::now(),
                block,
                telemetry: Arc::clone(&telemetry),
                shutdown: Arc::clone(&shutdown),
                drain: Arc::clone(&drain),
                faults: faults.take(),
                insight: insight.as_ref().map(Arc::clone),
                shard_id: i as u32,
                exemplars: exemplars.as_ref().map(Arc::clone),
                rto: rto.as_ref().map(Arc::clone),
                flight: flight.as_ref().map(|f| f.ring(i)),
            };
            let thread = std::thread::Builder::new()
                .name(format!("cde-reactor-{i}"))
                .spawn(move || shard_loop.run())?;
            rings.push(ring);
            wakers.push(waker);
            exited.push(shard_exited);
            threads.push(thread);
        }
        Ok(ShardedReactor {
            handle: ReactorHandle {
                shared: Arc::new(HandleShared {
                    rings,
                    wakers,
                    exited,
                    shutdown: Arc::clone(&shutdown),
                    metrics,
                    telemetry,
                    exemplars,
                    flight: flight.as_ref().map(Arc::clone),
                }),
            },
            policy: config.policy,
            fault_stats,
            insight,
            rto,
            flight,
            shutdown,
            drain,
            threads,
            socket_addrs,
        })
    }

    /// A clone-able submission handle.
    pub fn handle(&self) -> ReactorHandle {
        self.handle.clone()
    }

    /// The reactor's shared metrics (merged across shards on snapshot).
    pub fn metrics(&self) -> Arc<EngineMetrics> {
        self.handle.metrics()
    }

    /// The event hub this reactor emits into (the configured one, or the
    /// process global at launch time).
    pub fn telemetry(&self) -> Arc<TelemetryHub> {
        self.handle.telemetry()
    }

    /// The per-probe retry policy the loops apply.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// How many shard loops this reactor is running.
    pub fn shards(&self) -> usize {
        self.threads.len().max(self.socket_addrs.len())
    }

    /// Local addresses of every shard's sockets, indexed by shard. Tests
    /// use these to aim crafted datagrams at a *specific* shard (e.g. to
    /// prove a reply landing on the wrong shard's socket counts as a
    /// stray rather than matching).
    pub fn shard_socket_addrs(&self) -> &[Vec<SocketAddr>] {
        &self.socket_addrs
    }

    /// Counters of what the chaos layer injected — `None` unless the
    /// reactor was launched with [`ReactorConfig::faults`].
    pub fn fault_stats(&self) -> Option<Arc<FaultStats>> {
        self.fault_stats.as_ref().map(Arc::clone)
    }

    /// The latency-capture tier (RTT digests + phase timers) — `None`
    /// unless the reactor was launched with [`ReactorConfig::insight`].
    pub fn insight(&self) -> Option<Arc<ReactorInsight>> {
        self.insight.as_ref().map(Arc::clone)
    }

    /// The per-ingress adaptive RTO table — `None` unless the reactor
    /// was launched with [`ReactorConfig::adaptive`]. cde-serve snapshots
    /// and restores the learned state through this at checkpoint time.
    pub fn rto(&self) -> Option<Arc<RtoTable>> {
        self.rto.as_ref().map(Arc::clone)
    }

    /// The slow-probe exemplar reservoir — `None` unless the reactor was
    /// launched with [`ReactorConfig::pulse`].
    pub fn exemplars(&self) -> Option<Arc<ExemplarReservoir>> {
        self.handle.exemplars()
    }

    /// The always-on flight recorder — `None` unless the reactor was
    /// launched with [`ReactorConfig::flight`]. Snapshot/render it at
    /// any time; readers never block the shard loops.
    pub fn flight(&self) -> Option<Arc<FlightRecorder>> {
        self.flight.as_ref().map(Arc::clone)
    }

    fn wake_all(&self) {
        for waker in &self.handle.shared.wakers {
            waker.force_wake();
        }
    }

    /// Asks every shard loop to drain and exit: each keeps admitting
    /// already-queued submissions and lets every in-flight probe answer
    /// or time out, then stops on its own. Returns immediately; pair
    /// with [`Reactor::shutdown_graceful`] to wait for completion.
    pub fn begin_drain(&self) {
        self.drain.store(true, Ordering::SeqCst);
        self.wake_all();
    }

    /// Graceful shutdown: drains in-flight probes (see
    /// [`Reactor::begin_drain`]) and waits up to `timeout` for every
    /// shard loop to exit on its own, falling back to the abrupt stop
    /// otherwise.
    ///
    /// Returns `true` when all shards drained cleanly within the budget.
    /// Either way every loop thread is joined before returning, so every
    /// completion has been delivered and the telemetry hub holds every
    /// event the reactor will ever emit — callers should flush their
    /// drains (JSONL, insight digests) *after* this returns.
    pub fn shutdown_graceful(&mut self, timeout: Duration) -> bool {
        self.drain.store(true, Ordering::SeqCst);
        self.wake_all();
        let deadline = Instant::now() + timeout;
        let drained = loop {
            if self.threads.iter().all(JoinHandle::is_finished) {
                break true;
            }
            if Instant::now() >= deadline {
                break false;
            }
            std::thread::sleep(Duration::from_millis(2));
        };
        self.shutdown.store(true, Ordering::SeqCst);
        self.wake_all();
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
        drained
    }
}

impl Drop for ShardedReactor {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.wake_all();
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

impl std::fmt::Debug for ShardedReactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedReactor")
            .field("policy", &self.policy)
            .field("shards", &self.shards())
            .finish()
    }
}

/// The one-shot blocking seam over a [`Reactor`]: a [`Transport`], so
/// `cde-core`'s algorithms (and [`EngineAccess`](crate::EngineAccess))
/// run on the reactor unchanged.
pub struct ReactorTransport {
    reactor: Reactor,
    net: NameserverNet,
    link: Option<SyncLink>,
    done_tx: Sender<ProbeCompletion>,
    done_rx: Receiver<ProbeCompletion>,
    next_token: u64,
    dirty: bool,
}

impl ReactorTransport {
    /// Wires a reactor-backed transport to a launched resolver (and
    /// optionally the authority behind it), mirroring
    /// [`UdpTransport::connect`](crate::udp::UdpTransport::connect).
    pub fn connect(
        resolver: &LoopbackResolver,
        authority: Option<&WireAuthority>,
        net: NameserverNet,
        config: ReactorConfig,
    ) -> io::Result<ReactorTransport> {
        let mut transport =
            ReactorTransport::direct(resolver.ingress_addrs().clone(), net, config)?;
        transport.link = Some(SyncLink::connect(resolver, authority));
        Ok(transport)
    }

    /// A reactor-backed transport aimed at arbitrary `targets` with no
    /// serving-side back-channel.
    pub fn direct(
        targets: HashMap<Ipv4Addr, SocketAddr>,
        net: NameserverNet,
        config: ReactorConfig,
    ) -> io::Result<ReactorTransport> {
        let reactor = Reactor::launch(targets, config)?;
        let (done_tx, done_rx) = unbounded();
        Ok(ReactorTransport {
            reactor,
            net,
            link: None,
            done_tx,
            done_rx,
            next_token: 0,
            dirty: true,
        })
    }

    /// The reactor behind this transport (for pipelined submission).
    pub fn reactor(&self) -> &Reactor {
        &self.reactor
    }

    /// Pushes pending zone edits (anything done through `net_mut`) to
    /// the serving side now, without waiting for the next `query`.
    /// Long-lived daemons call this after installing new sessions so
    /// probes submitted via the [`ReactorHandle`] resolve against the
    /// updated zones.
    pub fn sync_serving_side(&mut self) {
        self.sync_if_dirty();
    }

    /// Folds queued serving-side observations into the canonical net
    /// now, without waiting for the next `query`. Daemons that drive
    /// probes through the raw [`ReactorHandle`] use this to pull
    /// nameserver-log evidence at checkpoint time; between calls the
    /// observations stay queued on the resolver's bounded channel.
    pub fn drain_serving_observations(&mut self) {
        self.drain_observations();
    }

    /// Gracefully shuts the backing reactor down: drains in-flight
    /// probes and joins the loop threads. See
    /// [`Reactor::shutdown_graceful`].
    pub fn shutdown_graceful(&mut self, timeout: Duration) -> bool {
        self.reactor.shutdown_graceful(timeout)
    }

    /// Per-attempt wire loss observed so far.
    pub fn observed_loss_rate(&self) -> f64 {
        self.reactor.metrics().snapshot().loss_rate()
    }

    fn sync_if_dirty(&mut self) {
        if !self.dirty {
            return;
        }
        if let Some(link) = &self.link {
            link.push(&self.net);
        }
        self.dirty = false;
    }

    fn drain_observations(&mut self) {
        if let Some(link) = &self.link {
            link.drain_into(&mut self.net);
        }
    }
}

impl std::fmt::Debug for ReactorTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactorTransport")
            .field("reactor", &self.reactor)
            .finish()
    }
}

impl Transport for ReactorTransport {
    fn query(
        &mut self,
        ingress: Ipv4Addr,
        qname: &Name,
        qtype: RecordType,
        _now: SimTime,
    ) -> TransportReply {
        self.sync_if_dirty();
        let token = self.next_token;
        self.next_token += 1;
        if !self
            .reactor
            .handle
            .submit(token, ingress, qname.clone(), qtype, &self.done_tx)
        {
            return TransportReply::TimedOut;
        }
        // Generous upper bound: the reactor itself enforces the real
        // deadlines; this only guards against a dead loop.
        let grace = self.reactor.policy().worst_case() + Duration::from_secs(2);
        loop {
            match self.done_rx.recv_timeout(grace) {
                Ok(c) if c.token == token => {
                    self.drain_observations();
                    return c.reply;
                }
                // A stale completion from an abandoned earlier query.
                Ok(_) => continue,
                Err(_) => {
                    self.drain_observations();
                    return TransportReply::TimedOut;
                }
            }
        }
    }

    fn net(&self) -> &NameserverNet {
        &self.net
    }

    fn net_mut(&mut self) -> &mut NameserverNet {
        self.dirty = true;
        &mut self.net
    }

    fn metrics(&self) -> Arc<EngineMetrics> {
        self.reactor.metrics()
    }
}

impl AccessProvider for ReactorTransport {
    type Channel<'a>
        = crate::transport::EngineAccess<'a, ReactorTransport>
    where
        Self: 'a;

    fn channel(&mut self, ingress: Ipv4Addr) -> Self::Channel<'_> {
        crate::transport::EngineAccess::new(self, ingress)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cde_dns::Message;

    fn policy_ms(attempts: u32, timeout_ms: u64) -> RetryPolicy {
        RetryPolicy {
            attempts,
            timeout: Duration::from_millis(timeout_ms),
            backoff: 1.0,
            base_delay: Duration::from_millis(1),
            jitter: 0.0,
        }
    }

    #[test]
    fn unroutable_ingress_completes_as_timeout() {
        let reactor = Reactor::launch(
            HashMap::new(),
            ReactorConfig::with_policy(policy_ms(1, 20), 3),
        )
        .unwrap();
        let (done_tx, done_rx) = unbounded();
        let qname: Name = "x.example".parse().unwrap();
        assert!(reactor.handle().submit(
            7,
            Ipv4Addr::new(192, 0, 2, 1),
            qname,
            RecordType::A,
            &done_tx
        ));
        let c = done_rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(c.token, 7);
        assert_eq!(c.reply, TransportReply::TimedOut);
        assert_eq!(reactor.metrics().snapshot().timeouts, 1);
    }

    #[test]
    fn silent_target_retries_then_times_out() {
        let sink = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        let ingress = Ipv4Addr::new(192, 0, 2, 1);
        let mut targets = HashMap::new();
        targets.insert(ingress, sink.local_addr().unwrap());
        let reactor =
            Reactor::launch(targets, ReactorConfig::with_policy(policy_ms(3, 15), 9)).unwrap();
        let (done_tx, done_rx) = unbounded();
        let qname: Name = "y.example".parse().unwrap();
        reactor
            .handle()
            .submit(1, ingress, qname, RecordType::A, &done_tx);
        let c = done_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(c.reply, TransportReply::TimedOut);
        let snap = reactor.metrics().snapshot();
        assert_eq!(snap.sent, 3);
        assert_eq!(snap.retries, 2);
        assert_eq!(snap.timeouts, 1);
        assert_eq!(snap.in_flight, 0);
        assert_eq!(snap.in_flight_peak, 1);
    }

    #[test]
    fn many_probes_pipeline_through_one_echo_server() {
        // An echo server answering every query: N probes must all
        // complete while overlapping in flight.
        let server = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        server
            .set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        let server_addr = server.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let server_thread = std::thread::spawn({
            let stop = Arc::clone(&stop);
            move || {
                let mut buf = [0u8; 2048];
                while !stop.load(Ordering::SeqCst) {
                    let Ok((len, peer)) = server.recv_from(&mut buf) else {
                        continue;
                    };
                    if let Ok(q) = Message::decode(&buf[..len]) {
                        let resp = Message::response_to(&q);
                        let _ = server.send_to(&resp.encode().unwrap(), peer);
                    }
                }
            }
        });

        let ingress = Ipv4Addr::new(192, 0, 2, 5);
        let mut targets = HashMap::new();
        targets.insert(ingress, server_addr);
        let reactor =
            Reactor::launch(targets, ReactorConfig::with_policy(policy_ms(3, 500), 11)).unwrap();
        let (done_tx, done_rx) = unbounded();
        let total = 300u64;
        let handle = reactor.handle();
        for token in 0..total {
            let qname: Name = format!("p-{token}.cache.example").parse().unwrap();
            assert!(handle.submit(token, ingress, qname, RecordType::A, &done_tx));
        }
        let mut answered = 0;
        for _ in 0..total {
            let c = done_rx.recv_timeout(Duration::from_secs(10)).unwrap();
            if c.reply.is_answered() {
                answered += 1;
            }
        }
        stop.store(true, Ordering::SeqCst);
        server_thread.join().unwrap();
        assert_eq!(answered, total, "every echoed probe must complete");
        let snap = reactor.metrics().snapshot();
        assert_eq!(snap.received, total);
        assert!(
            snap.in_flight_peak > 1,
            "probes never overlapped (peak {})",
            snap.in_flight_peak
        );
        assert!(snap.batches_sent() > 0);
        assert!(snap.loop_count > 0);
    }

    #[test]
    fn pulse_reservoir_captures_probe_lifecycles() {
        let server = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        server
            .set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        let server_addr = server.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let server_thread = std::thread::spawn({
            let stop = Arc::clone(&stop);
            move || {
                let mut buf = [0u8; 2048];
                while !stop.load(Ordering::SeqCst) {
                    let Ok((len, peer)) = server.recv_from(&mut buf) else {
                        continue;
                    };
                    if let Ok(q) = Message::decode(&buf[..len]) {
                        let resp = Message::response_to(&q);
                        let _ = server.send_to(&resp.encode().unwrap(), peer);
                    }
                }
            }
        });

        let ingress = Ipv4Addr::new(192, 0, 2, 9);
        let mut targets = HashMap::new();
        targets.insert(ingress, server_addr);
        let config = ReactorConfig {
            pulse: Some(crate::reactor::PulseOptions { exemplars: 4 }),
            ..ReactorConfig::with_policy(policy_ms(3, 500), 21)
        };
        let reactor = Reactor::launch(targets, config).unwrap();
        let reservoir = reactor.exemplars().expect("pulse configured");
        let (done_tx, done_rx) = unbounded();
        let total = 50u64;
        let handle = reactor.handle();
        assert!(handle.exemplars().is_some(), "handle exposes the reservoir");
        for token in 0..total {
            let qname: Name = format!("e-{token}.cache.example").parse().unwrap();
            assert!(handle.submit(token, ingress, qname, RecordType::A, &done_tx));
        }
        for _ in 0..total {
            done_rx.recv_timeout(Duration::from_secs(10)).unwrap();
        }
        stop.store(true, Ordering::SeqCst);
        server_thread.join().unwrap();
        assert_eq!(reservoir.observed(), total);
        let slowest = reservoir.slowest();
        assert!(!slowest.is_empty() && slowest.len() <= 4);
        let worst = &slowest[0];
        assert_eq!(worst.ingress, ingress);
        assert!(worst.answered);
        assert!(worst.attempts >= 1);
        assert!(worst.lifetime_us > 0);
        assert!(worst.lifetime_us >= worst.rtt_us);
        assert!(reservoir.worst_lifetime_us() >= worst.lifetime_us);
    }

    #[test]
    fn flight_ring_records_full_probe_lifecycles() {
        let server = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        server
            .set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        let server_addr = server.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let server_thread = std::thread::spawn({
            let stop = Arc::clone(&stop);
            move || {
                let mut buf = [0u8; 2048];
                while !stop.load(Ordering::SeqCst) {
                    let Ok((len, peer)) = server.recv_from(&mut buf) else {
                        continue;
                    };
                    if let Ok(q) = Message::decode(&buf[..len]) {
                        let resp = Message::response_to(&q);
                        let _ = server.send_to(&resp.encode().unwrap(), peer);
                    }
                }
            }
        });

        let ingress = Ipv4Addr::new(192, 0, 2, 11);
        let unroutable = Ipv4Addr::new(192, 0, 2, 12);
        let mut targets = HashMap::new();
        targets.insert(ingress, server_addr);
        let config = ReactorConfig {
            flight: Some(FlightOptions { per_shard: 256 }),
            ..ReactorConfig::with_policy(policy_ms(3, 500), 33)
        };
        let reactor = Reactor::launch(targets, config).unwrap();
        let recorder = reactor.flight().expect("flight configured");
        let (done_tx, done_rx) = unbounded();
        let total = 40u64;
        let handle = reactor.handle();
        assert!(handle.flight().is_some(), "handle exposes the recorder");
        for token in 0..total {
            let qname: Name = format!("f-{token}.cache.example").parse().unwrap();
            assert!(handle.submit(token, ingress, qname, RecordType::A, &done_tx));
        }
        let qname: Name = "f-unroutable.cache.example".parse().unwrap();
        assert!(handle.submit(total, unroutable, qname, RecordType::A, &done_tx));
        for _ in 0..=total {
            done_rx.recv_timeout(Duration::from_secs(10)).unwrap();
        }
        stop.store(true, Ordering::SeqCst);
        server_thread.join().unwrap();

        assert_eq!(recorder.written(), total + 1);
        assert_eq!(recorder.shed(), 0);
        let records = recorder.snapshot();
        assert_eq!(records.len() as u64, total + 1);
        let answered: Vec<_> = records
            .iter()
            .filter(|r| r.disposition == crate::flight::FlightDisposition::Answered)
            .collect();
        assert_eq!(answered.len() as u64, total);
        for r in &answered {
            assert_eq!(r.ingress, ingress);
            assert!(r.attempts >= 1);
            assert!(r.sent_at_us > 0, "answered probes were sent");
            assert!(r.matched_at_us >= r.sent_at_us, "match follows send");
            assert_eq!(r.expired_at_us, 0, "answered probes never expired");
            assert!(r.rto_us > 0, "the armed deadline is recorded");
            assert!(r.wire_size > 0, "encoded size is recorded");
            assert!(r.recorded_at_us >= r.matched_at_us);
        }
        let dead: Vec<_> = records
            .iter()
            .filter(|r| r.disposition == crate::flight::FlightDisposition::Unroutable)
            .collect();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].token, total);
        assert_eq!(dead[0].ingress, unroutable);
        assert_eq!(
            dead[0].sent_at_us, 0,
            "unroutable probes never hit the wire"
        );
        let snap = reactor.metrics().snapshot();
        assert_eq!(snap.flight_records, total + 1);
        assert_eq!(snap.flight_shed, 0);
        // The dump artifact renders with the versioned header.
        let dump = recorder.render_jsonl();
        assert!(dump.starts_with("{\"kind\": \"flight_header\", \"flight_version\": 1"));
    }

    #[test]
    fn flight_ring_records_expiries_with_final_deadline() {
        let sink = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        let ingress = Ipv4Addr::new(192, 0, 2, 13);
        let mut targets = HashMap::new();
        targets.insert(ingress, sink.local_addr().unwrap());
        let config = ReactorConfig {
            flight: Some(FlightOptions::default()),
            ..ReactorConfig::with_policy(policy_ms(2, 15), 17)
        };
        let reactor = Reactor::launch(targets, config).unwrap();
        let (done_tx, done_rx) = unbounded();
        let qname: Name = "t.cache.example".parse().unwrap();
        assert!(reactor
            .handle()
            .submit(5, ingress, qname, RecordType::A, &done_tx));
        let c = done_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(c.reply, TransportReply::TimedOut);
        let records = reactor.flight().unwrap().snapshot();
        assert_eq!(records.len(), 1);
        let r = &records[0];
        assert_eq!(r.disposition, crate::flight::FlightDisposition::TimedOut);
        assert_eq!(r.token, 5);
        assert_eq!(r.attempts, 2, "both attempts were made before giving up");
        assert!(r.sent_at_us > 0);
        assert_eq!(r.matched_at_us, 0, "no reply ever matched");
        assert!(
            r.expired_at_us >= r.sent_at_us,
            "expiry follows the last send"
        );
    }

    #[test]
    fn graceful_shutdown_drains_in_flight_probes() {
        let server = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        server
            .set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        let server_addr = server.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let server_thread = std::thread::spawn({
            let stop = Arc::clone(&stop);
            move || {
                let mut buf = [0u8; 2048];
                while !stop.load(Ordering::SeqCst) {
                    let Ok((len, peer)) = server.recv_from(&mut buf) else {
                        continue;
                    };
                    if let Ok(q) = Message::decode(&buf[..len]) {
                        let resp = Message::response_to(&q);
                        let _ = server.send_to(&resp.encode().unwrap(), peer);
                    }
                }
            }
        });

        let ingress = Ipv4Addr::new(192, 0, 2, 6);
        let mut targets = HashMap::new();
        targets.insert(ingress, server_addr);
        let mut reactor =
            Reactor::launch(targets, ReactorConfig::with_policy(policy_ms(3, 500), 8)).unwrap();
        let (done_tx, done_rx) = unbounded();
        let total = 120u64;
        let handle = reactor.handle();
        for token in 0..total {
            let qname: Name = format!("g-{token}.cache.example").parse().unwrap();
            assert!(handle.submit(token, ingress, qname, RecordType::A, &done_tx));
        }
        // Ask for a drain while most of the burst is still queued or in
        // flight: every submitted probe must still be resolved before
        // the loop exits.
        let drained = reactor.shutdown_graceful(Duration::from_secs(10));
        assert!(drained, "loop should exit within the drain budget");
        stop.store(true, Ordering::SeqCst);
        server_thread.join().unwrap();
        let mut completions = 0;
        while done_rx.try_recv().is_ok() {
            completions += 1;
        }
        assert_eq!(completions, total, "drain must deliver every completion");
        let snap = reactor.metrics().snapshot();
        assert_eq!(snap.in_flight, 0, "nothing left in flight after drain");
    }
}
