//! A free-list buffer pool for probe encodings.
//!
//! Every in-flight probe holds its encoded datagram so retransmits can
//! resend the cached bytes (with a patched query id) instead of
//! re-encoding. Allocating a fresh `Vec` per probe would put the hot path
//! back on the allocator; the pool recycles buffers so a steady-state
//! campaign reuses the same handful of allocations forever.

/// Recycles `Vec<u8>` buffers between probes.
///
/// Not thread-safe by design: the reactor loop is single-threaded and the
/// pool lives inside it.
#[derive(Debug)]
pub struct BufferPool {
    free: Vec<Vec<u8>>,
    /// Initial capacity of newly minted buffers.
    buf_capacity: usize,
    /// Retained free buffers; beyond this, returned buffers are dropped.
    max_free: usize,
}

impl BufferPool {
    /// A pool minting `buf_capacity`-byte buffers and retaining at most
    /// `max_free` of them between uses.
    pub fn new(buf_capacity: usize, max_free: usize) -> BufferPool {
        BufferPool {
            free: Vec::with_capacity(max_free.min(1024)),
            buf_capacity,
            max_free,
        }
    }

    /// Takes an empty buffer (recycled if available, fresh otherwise).
    pub fn take(&mut self) -> Vec<u8> {
        match self.free.pop() {
            Some(mut buf) => {
                buf.clear();
                buf
            }
            None => Vec::with_capacity(self.buf_capacity),
        }
    }

    /// Returns a buffer to the pool for reuse.
    pub fn give(&mut self, buf: Vec<u8>) {
        if self.free.len() < self.max_free {
            self.free.push(buf);
        }
    }

    /// Buffers currently sitting in the free list.
    pub fn idle(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycles_capacity() {
        let mut pool = BufferPool::new(64, 8);
        let mut a = pool.take();
        a.extend_from_slice(&[1; 100]); // grow beyond the mint size
        let cap = a.capacity();
        let ptr = a.as_ptr();
        pool.give(a);
        let b = pool.take();
        assert!(b.is_empty());
        assert_eq!(b.capacity(), cap);
        assert_eq!(b.as_ptr(), ptr, "the same allocation must come back");
    }

    #[test]
    fn bounded_retention() {
        let mut pool = BufferPool::new(16, 2);
        let bufs: Vec<_> = (0..4).map(|_| pool.take()).collect();
        for buf in bufs {
            pool.give(buf);
        }
        assert_eq!(pool.idle(), 2);
    }

    #[test]
    fn mints_when_empty() {
        let mut pool = BufferPool::new(32, 4);
        assert_eq!(pool.idle(), 0);
        let buf = pool.take();
        assert!(buf.capacity() >= 32);
    }
}
