//! A free-list buffer pool for probe encodings.
//!
//! Every in-flight probe holds its encoded datagram so retransmits can
//! resend the cached bytes (with a patched query id) instead of
//! re-encoding. Allocating a fresh `Vec` per probe would put the hot path
//! back on the allocator; the pool recycles buffers so a steady-state
//! campaign reuses the same handful of allocations forever.

use cde_telemetry::{Collector, Metric};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Thread-safe view of a pool's recycling behaviour, shareable with a
/// [`MetricsRegistry`](cde_telemetry::MetricsRegistry) while the pool
/// itself stays single-threaded inside the reactor loop.
///
/// A healthy steady state mints once and recycles forever; a climbing
/// `minted` count after warm-up means buffers are leaking past the pool.
#[derive(Debug, Default)]
pub struct PoolStats {
    minted: AtomicU64,
    recycled: AtomicU64,
    discarded: AtomicU64,
    idle: AtomicU64,
    /// When set, every exported series carries a `shard` label so the
    /// per-shard pools of a sharded reactor stay distinguishable.
    shard: Option<u64>,
}

impl PoolStats {
    /// Buffers allocated fresh because the free list was empty.
    pub fn minted(&self) -> u64 {
        self.minted.load(Ordering::Relaxed)
    }

    /// Takes served from the free list.
    pub fn recycled(&self) -> u64 {
        self.recycled.load(Ordering::Relaxed)
    }

    /// Returned buffers dropped because the free list was full.
    pub fn discarded(&self) -> u64 {
        self.discarded.load(Ordering::Relaxed)
    }

    /// Buffers sitting in the free list right now.
    pub fn idle(&self) -> u64 {
        self.idle.load(Ordering::Relaxed)
    }
}

impl Collector for PoolStats {
    fn collect(&self, out: &mut Vec<Metric>) {
        let label = |m: Metric| match self.shard {
            Some(s) => m.with_label("shard", s.to_string()),
            None => m,
        };
        out.push(label(Metric::counter(
            "cde_bufpool_minted_total",
            "Buffers allocated because the free list was empty",
            self.minted(),
        )));
        out.push(label(Metric::counter(
            "cde_bufpool_recycled_total",
            "Buffer takes served from the free list",
            self.recycled(),
        )));
        out.push(label(Metric::counter(
            "cde_bufpool_discarded_total",
            "Returned buffers dropped by the retention cap",
            self.discarded(),
        )));
        out.push(label(Metric::gauge(
            "cde_bufpool_idle",
            "Buffers currently in the free list",
            self.idle() as f64,
        )));
    }
}

/// Recycles `Vec<u8>` buffers between probes.
///
/// Not thread-safe by design: the reactor loop is single-threaded and the
/// pool lives inside it. Only the [`PoolStats`] handle crosses threads.
#[derive(Debug)]
pub struct BufferPool {
    free: Vec<Vec<u8>>,
    /// Initial capacity of newly minted buffers.
    buf_capacity: usize,
    /// Retained free buffers; beyond this, returned buffers are dropped.
    max_free: usize,
    stats: Arc<PoolStats>,
}

impl BufferPool {
    /// A pool minting `buf_capacity`-byte buffers and retaining at most
    /// `max_free` of them between uses.
    pub fn new(buf_capacity: usize, max_free: usize) -> BufferPool {
        BufferPool {
            free: Vec::with_capacity(max_free.min(1024)),
            buf_capacity,
            max_free,
            stats: Arc::new(PoolStats::default()),
        }
    }

    /// Like [`BufferPool::new`], but the stats handle tags its exported
    /// series with `shard` so several pools can share one registry.
    pub fn new_labeled(buf_capacity: usize, max_free: usize, shard: u64) -> BufferPool {
        BufferPool {
            free: Vec::with_capacity(max_free.min(1024)),
            buf_capacity,
            max_free,
            stats: Arc::new(PoolStats {
                shard: Some(shard),
                ..PoolStats::default()
            }),
        }
    }

    /// Takes an empty buffer (recycled if available, fresh otherwise).
    pub fn take(&mut self) -> Vec<u8> {
        match self.free.pop() {
            Some(mut buf) => {
                buf.clear();
                self.stats.recycled.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .idle
                    .store(self.free.len() as u64, Ordering::Relaxed);
                buf
            }
            None => {
                self.stats.minted.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(self.buf_capacity)
            }
        }
    }

    /// Returns a buffer to the pool for reuse.
    pub fn give(&mut self, buf: Vec<u8>) {
        if self.free.len() < self.max_free {
            self.free.push(buf);
            self.stats
                .idle
                .store(self.free.len() as u64, Ordering::Relaxed);
        } else {
            self.stats.discarded.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Buffers currently sitting in the free list.
    pub fn idle(&self) -> usize {
        self.free.len()
    }

    /// The shareable stats handle (register it into a metrics registry).
    pub fn stats(&self) -> Arc<PoolStats> {
        Arc::clone(&self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycles_capacity() {
        let mut pool = BufferPool::new(64, 8);
        let mut a = pool.take();
        a.extend_from_slice(&[1; 100]); // grow beyond the mint size
        let cap = a.capacity();
        let ptr = a.as_ptr();
        pool.give(a);
        let b = pool.take();
        assert!(b.is_empty());
        assert_eq!(b.capacity(), cap);
        assert_eq!(b.as_ptr(), ptr, "the same allocation must come back");
    }

    #[test]
    fn bounded_retention() {
        let mut pool = BufferPool::new(16, 2);
        let bufs: Vec<_> = (0..4).map(|_| pool.take()).collect();
        for buf in bufs {
            pool.give(buf);
        }
        assert_eq!(pool.idle(), 2);
    }

    #[test]
    fn mints_when_empty() {
        let mut pool = BufferPool::new(32, 4);
        assert_eq!(pool.idle(), 0);
        let buf = pool.take();
        assert!(buf.capacity() >= 32);
    }

    #[test]
    fn stats_track_mint_recycle_discard() {
        let mut pool = BufferPool::new(16, 1);
        let stats = pool.stats();
        let a = pool.take();
        let b = pool.take();
        pool.give(a);
        pool.give(b); // beyond max_free → discarded
        let _c = pool.take(); // recycled
        assert_eq!(stats.minted(), 2);
        assert_eq!(stats.recycled(), 1);
        assert_eq!(stats.discarded(), 1);
        assert_eq!(stats.idle(), 0);
        let mut out = Vec::new();
        stats.collect(&mut out);
        assert!(out.iter().any(|m| m.name == "cde_bufpool_minted_total"));
    }

    #[test]
    fn labeled_pool_tags_every_series() {
        let pool = BufferPool::new_labeled(16, 2, 3);
        let mut out = Vec::new();
        pool.stats().collect(&mut out);
        assert_eq!(out.len(), 4);
        for metric in &out {
            assert!(
                metric.labels.iter().any(|(k, v)| *k == "shard" && v == "3"),
                "{} missing shard label",
                metric.name
            );
        }
        // The unlabeled constructor stays label-free (golden stability).
        let mut out = Vec::new();
        BufferPool::new(16, 2).stats().collect(&mut out);
        assert!(out.iter().all(|m| m.labels.is_empty()));
    }
}
