//! The wire authority: CDE nameservers on real loopback sockets.
//!
//! The paper's infrastructure is a set of authoritative nameservers whose
//! query logs *are* the measurement (§IV-A). [`WireAuthority`] lifts a
//! simulated [`NameserverNet`] onto real UDP sockets: every virtual server
//! address (`10.0.0.x`) gets its own `127.0.0.1:port` socket and serving
//! thread, answering with `cde-dns` wire encoding and recording the source
//! of every query it sees. Observed queries stream back over a channel so
//! the canonical net — the one the measurement algorithms read — stays the
//! single source of truth.
//!
//! Hermetic by construction: loopback only, ephemeral ports, no fixtures.

use crate::clock::EngineClock;
use cde_dns::{Edns, Message};
use cde_platform::{AuthServer, NameserverNet, QueryLogEntry};
use crossbeam::channel::{bounded, unbounded, Receiver, SendError, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::net::{Ipv4Addr, SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Largest datagram a server reads (standard EDNS buffer size).
const MAX_DATAGRAM: usize = 4096;
/// Poll granularity of the serving loops; bounds shutdown latency.
const POLL_TIMEOUT: Duration = Duration::from_millis(20);
/// Capacity of the observation back-channels. A pipelined campaign can
/// produce observations far faster than the measurement thread drains
/// them; the bound turns that into drop-oldest instead of unbounded
/// memory growth.
pub(crate) const OBS_QUEUE_CAP: usize = 1 << 16;

/// One observed query: which virtual server saw it, and the log entry.
pub type Observation = (Ipv4Addr, QueryLogEntry);

/// Producer half of a bounded observation queue with drop-oldest
/// overflow: when the consumer falls behind, the *stalest* observation is
/// evicted (and counted) rather than blocking a serving thread or growing
/// without bound.
#[derive(Clone)]
pub(crate) struct ObsSender {
    tx: Sender<Observation>,
    rx: Receiver<Observation>,
    dropped: Arc<AtomicU64>,
}

impl ObsSender {
    pub(crate) fn push(&self, obs: Observation) {
        match self.tx.try_send(obs) {
            Ok(()) => {}
            Err(SendError(obs)) => {
                // Full (or the consumer is gone): evict the oldest entry
                // and retry once. Whatever ends up lost is counted.
                let evicted = self.rx.try_recv().is_ok();
                let requeued = self.tx.try_send(obs).is_ok();
                let lost = u64::from(evicted) + u64::from(!requeued);
                if lost > 0 {
                    self.dropped.fetch_add(lost, Ordering::Relaxed);
                }
            }
        }
    }
}

/// Builds a bounded observation queue; returns the producer handle, the
/// consumer end and the dropped-observation counter.
pub(crate) fn obs_queue(cap: usize) -> (ObsSender, Receiver<Observation>, Arc<AtomicU64>) {
    let (tx, rx) = bounded(cap);
    let dropped = Arc::new(AtomicU64::new(0));
    (
        ObsSender {
            tx,
            rx: rx.clone(),
            dropped: Arc::clone(&dropped),
        },
        rx,
        dropped,
    )
}

enum Control {
    /// Replace the served zone snapshot.
    Sync(AuthServer),
}

/// Clone-able handle pushing zone snapshots to the serving threads.
#[derive(Clone)]
pub struct AuthoritySync {
    controls: Arc<HashMap<Ipv4Addr, Sender<Control>>>,
}

impl AuthoritySync {
    /// Ships a fresh snapshot of every matching server in `net` to its
    /// serving thread. Servers in `net` without a socket are ignored.
    pub fn sync(&self, net: &NameserverNet) {
        for server in net.servers() {
            if let Some(ctl) = self.controls.get(&server.addr()) {
                let mut snapshot = server.clone();
                snapshot.clear_log();
                let _ = ctl.send(Control::Sync(snapshot));
            }
        }
    }
}

/// Clone-able handle registering local source ports as virtual egresses.
#[derive(Clone)]
pub struct SourceRegistrar {
    map: Arc<Mutex<HashMap<u16, Ipv4Addr>>>,
}

impl SourceRegistrar {
    /// Marks queries from local `port` as coming from virtual `egress`.
    pub fn register(&self, port: u16, egress: Ipv4Addr) {
        self.map.lock().insert(port, egress);
    }
}

/// A farm of authoritative nameservers on loopback UDP sockets.
pub struct WireAuthority {
    addrs: HashMap<Ipv4Addr, SocketAddr>,
    sync: AuthoritySync,
    obs_rx: Receiver<Observation>,
    obs_dropped: Arc<AtomicU64>,
    source_map: Arc<Mutex<HashMap<u16, Ipv4Addr>>>,
    served: Arc<AtomicU64>,
    shutdown: Arc<AtomicBool>,
    handles: Vec<JoinHandle<()>>,
}

impl WireAuthority {
    /// Binds one loopback socket per server in `net` and starts serving
    /// snapshots of their zones.
    pub fn launch(net: &NameserverNet, clock: EngineClock) -> io::Result<WireAuthority> {
        WireAuthority::launch_with_delay(net, clock, Duration::ZERO)
    }

    /// Like [`WireAuthority::launch`], but every answer is held back by
    /// `delay` before it goes on the wire — a stand-in for upstream
    /// (authority-side) network distance. In the live chain only cache
    /// *misses* reach the authority, so a visible delay here is exactly
    /// what makes the §IV-B3 timing side channel measurable on loopback:
    /// hits answer in internal-hop time, misses pay `delay`.
    pub fn launch_with_delay(
        net: &NameserverNet,
        clock: EngineClock,
        delay: Duration,
    ) -> io::Result<WireAuthority> {
        let (obs_tx, obs_rx, obs_dropped) = obs_queue(OBS_QUEUE_CAP);
        let source_map: Arc<Mutex<HashMap<u16, Ipv4Addr>>> = Arc::new(Mutex::new(HashMap::new()));
        let served = Arc::new(AtomicU64::new(0));
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut addrs = HashMap::new();
        let mut controls = HashMap::new();
        let mut handles = Vec::new();

        for server in net.servers() {
            let vaddr = server.addr();
            let socket = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0))?;
            socket.set_read_timeout(Some(POLL_TIMEOUT))?;
            addrs.insert(vaddr, socket.local_addr()?);
            let (ctl_tx, ctl_rx) = unbounded();
            controls.insert(vaddr, ctl_tx);
            let mut snapshot = server.clone();
            snapshot.clear_log();
            handles.push(std::thread::spawn({
                let obs_tx = obs_tx.clone();
                let source_map = Arc::clone(&source_map);
                let served = Arc::clone(&served);
                let shutdown = Arc::clone(&shutdown);
                move || {
                    serve(
                        socket, vaddr, snapshot, ctl_rx, obs_tx, source_map, served, shutdown,
                        clock, delay,
                    )
                }
            }));
        }

        Ok(WireAuthority {
            addrs,
            sync: AuthoritySync {
                controls: Arc::new(controls),
            },
            obs_rx,
            obs_dropped,
            source_map,
            served,
            shutdown,
            handles,
        })
    }

    /// The real socket serving virtual server `vaddr`, if any.
    pub fn addr_of(&self, vaddr: Ipv4Addr) -> Option<SocketAddr> {
        self.addrs.get(&vaddr).copied()
    }

    /// Virtual-address → real-socket table for all served nameservers.
    pub fn addrs(&self) -> &HashMap<Ipv4Addr, SocketAddr> {
        &self.addrs
    }

    /// Zone-snapshot push handle (clone-able, thread-safe).
    pub fn syncer(&self) -> AuthoritySync {
        self.sync.clone()
    }

    /// Source-port registration handle (clone-able, thread-safe).
    pub fn registrar(&self) -> SourceRegistrar {
        SourceRegistrar {
            map: Arc::clone(&self.source_map),
        }
    }

    /// Registers the owner of a local source `port` as virtual address
    /// `egress`, so the servers attribute that client's queries to the
    /// platform egress it stands in for.
    pub fn register_source(&self, port: u16, egress: Ipv4Addr) {
        self.source_map.lock().insert(port, egress);
    }

    /// Total well-formed queries answered across all servers.
    pub fn queries_served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Observations evicted because the bounded back-channel overflowed
    /// (the consumer fell behind by more than the queue capacity).
    pub fn dropped_observations(&self) -> u64 {
        self.obs_dropped.load(Ordering::Relaxed)
    }

    /// Drains observed queries into the canonical `net`'s logs; returns
    /// how many entries were folded in.
    pub fn drain_observations(&self, net: &mut NameserverNet) -> usize {
        let mut n = 0;
        for (vaddr, entry) in self.obs_rx.try_iter() {
            if let Some(server) = net.server_mut(vaddr) {
                server.record_query(entry);
                n += 1;
            }
        }
        n
    }
}

impl Drop for WireAuthority {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for WireAuthority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireAuthority")
            .field("addrs", &self.addrs)
            .field("queries_served", &self.queries_served())
            .finish()
    }
}

/// One server's blocking serve loop.
#[allow(clippy::too_many_arguments)]
fn serve(
    socket: UdpSocket,
    vaddr: Ipv4Addr,
    mut server: AuthServer,
    ctl_rx: Receiver<Control>,
    obs_tx: ObsSender,
    source_map: Arc<Mutex<HashMap<u16, Ipv4Addr>>>,
    served: Arc<AtomicU64>,
    shutdown: Arc<AtomicBool>,
    clock: EngineClock,
    delay: Duration,
) {
    let mut buf = [0u8; MAX_DATAGRAM];
    while !shutdown.load(Ordering::SeqCst) {
        // Zone edits first, so a snapshot pushed before a probe is always
        // visible to that probe.
        while let Ok(Control::Sync(snapshot)) = ctl_rx.try_recv() {
            server = snapshot;
        }
        let (len, peer) = match socket.recv_from(&mut buf) {
            Ok(ok) => ok,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => continue,
        };
        // Untrusted bytes: decode errors are dropped, never panic (the
        // hardened `cde_dns::wire` path is load-bearing here).
        let Ok(query) = Message::decode(&buf[..len]) else {
            continue;
        };
        if query.is_response() {
            continue;
        }
        let Some(question) = query.question() else {
            continue;
        };
        let edns = query.additionals.iter().find_map(Edns::from_record);
        let from = attribute_source(peer, &source_map);
        let mut resp = server.handle_with_edns(from, question, edns, clock.now());
        resp.id = query.id;
        if let Some(entry) = server.log().last().cloned() {
            obs_tx.push((vaddr, entry));
        }
        // The thread-local log only buffers the entry until it is streamed;
        // the canonical log lives with the measurement code.
        server.clear_log();
        // Count before sending, so the counter is never behind a response
        // a client has already received.
        served.fetch_add(1, Ordering::Relaxed);
        if !delay.is_zero() {
            // Injected upstream distance: the whole answer path slows, as
            // if the authority were a real network away.
            std::thread::sleep(delay);
        }
        if let Ok(bytes) = resp.encode() {
            let _ = socket.send_to(&bytes, peer);
        }
    }
}

/// Maps a real peer to the virtual address it stands in for: registered
/// source ports resolve to their platform egress, everything else keeps
/// its real (loopback) address.
fn attribute_source(peer: SocketAddr, source_map: &Mutex<HashMap<u16, Ipv4Addr>>) -> Ipv4Addr {
    if let Some(&egress) = source_map.lock().get(&peer.port()) {
        return egress;
    }
    match peer {
        SocketAddr::V4(v4) => *v4.ip(),
        SocketAddr::V6(_) => Ipv4Addr::LOCALHOST,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cde_dns::{Name, Question, RData, Rcode, Record, RecordType, Ttl, Zone};

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn test_net() -> NameserverNet {
        let mut zone = Zone::with_soa(n("cache.example"), Ttl::from_secs(300));
        zone.add(Record::new(
            n("name.cache.example"),
            Ttl::from_secs(3600),
            RData::A(Ipv4Addr::new(198, 51, 100, 4)),
        ))
        .unwrap();
        let mut net = NameserverNet::new();
        net.add_server(AuthServer::new(Ipv4Addr::new(10, 0, 0, 20), vec![zone]));
        net
    }

    fn ask(addr: SocketAddr, id: u16, qname: &Name) -> Option<Message> {
        let sock = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        sock.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let query = Message::query(id, Question::new(qname.clone(), RecordType::A));
        sock.send_to(&query.encode().unwrap(), addr).unwrap();
        let mut buf = [0u8; MAX_DATAGRAM];
        let (len, _) = sock.recv_from(&mut buf).ok()?;
        Message::decode(&buf[..len]).ok()
    }

    #[test]
    fn serves_zone_data_over_real_udp() {
        let mut net = test_net();
        let authority = WireAuthority::launch(&net, EngineClock::start()).unwrap();
        let addr = authority.addr_of(Ipv4Addr::new(10, 0, 0, 20)).unwrap();
        let resp = ask(addr, 0x5a5a, &n("name.cache.example")).unwrap();
        assert_eq!(resp.id, 0x5a5a);
        assert!(resp.flags.qr && resp.flags.aa);
        assert_eq!(resp.answers.len(), 1);
        // The observation lands in the canonical net.
        assert_eq!(authority.drain_observations(&mut net), 1);
        let server = net.server(Ipv4Addr::new(10, 0, 0, 20)).unwrap();
        assert_eq!(server.count_queries_for(&n("name.cache.example")), 1);
        assert_eq!(authority.queries_served(), 1);
    }

    #[test]
    fn records_registered_virtual_sources() {
        let mut net = test_net();
        let authority = WireAuthority::launch(&net, EngineClock::start()).unwrap();
        let addr = authority.addr_of(Ipv4Addr::new(10, 0, 0, 20)).unwrap();
        let sock = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        sock.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let egress = Ipv4Addr::new(192, 0, 3, 7);
        authority.register_source(sock.local_addr().unwrap().port(), egress);
        let query = Message::query(1, Question::new(n("name.cache.example"), RecordType::A));
        sock.send_to(&query.encode().unwrap(), addr).unwrap();
        let mut buf = [0u8; MAX_DATAGRAM];
        sock.recv_from(&mut buf).unwrap();
        authority.drain_observations(&mut net);
        let server = net.server(Ipv4Addr::new(10, 0, 0, 20)).unwrap();
        assert_eq!(server.sources_for(&n("name.cache.example")), vec![egress]);
    }

    #[test]
    fn zone_sync_makes_new_records_visible() {
        let mut net = test_net();
        let authority = WireAuthority::launch(&net, EngineClock::start()).unwrap();
        let addr = authority.addr_of(Ipv4Addr::new(10, 0, 0, 20)).unwrap();
        let honey = n("honey-77.cache.example");
        // Before the sync: NXDOMAIN.
        let resp = ask(addr, 2, &honey).unwrap();
        assert_eq!(resp.flags.rcode, Rcode::NxDomain);
        // Plant the record in the canonical net, push a snapshot.
        net.server_mut(Ipv4Addr::new(10, 0, 0, 20))
            .unwrap()
            .zone_mut(&n("cache.example"))
            .unwrap()
            .add(Record::new(
                honey.clone(),
                Ttl::from_secs(60),
                RData::A(Ipv4Addr::new(198, 51, 100, 9)),
            ))
            .unwrap();
        authority.syncer().sync(&net);
        let resp = ask(addr, 3, &honey).unwrap();
        assert_eq!(resp.flags.rcode, Rcode::NoError);
        assert_eq!(resp.answers.len(), 1);
    }

    #[test]
    fn bounded_obs_queue_drops_oldest_and_counts() {
        let (tx, rx, dropped) = obs_queue(2);
        let entry = |tag: u8| {
            (
                Ipv4Addr::new(10, 0, 0, 20),
                QueryLogEntry {
                    at: cde_netsim::SimTime::ZERO,
                    from: Ipv4Addr::new(192, 0, 3, tag),
                    qname: n("name.cache.example"),
                    qtype: RecordType::A,
                    edns: None,
                },
            )
        };
        for tag in 1..=5 {
            tx.push(entry(tag));
        }
        // Capacity 2: the three oldest were evicted, the two newest kept.
        assert_eq!(dropped.load(Ordering::Relaxed), 3);
        let kept: Vec<u8> = rx.try_iter().map(|(_, e)| e.from.octets()[3]).collect();
        assert_eq!(kept, vec![4, 5]);
    }

    #[test]
    fn garbage_datagrams_are_ignored() {
        let net = test_net();
        let authority = WireAuthority::launch(&net, EngineClock::start()).unwrap();
        let addr = authority.addr_of(Ipv4Addr::new(10, 0, 0, 20)).unwrap();
        let sock = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        sock.send_to(&[0xC0, 0x00, 0xFF], addr).unwrap();
        sock.send_to(&[], addr).unwrap();
        // The server survives and still answers real queries.
        let resp = ask(addr, 4, &n("name.cache.example")).unwrap();
        assert_eq!(resp.answers.len(), 1);
        assert_eq!(authority.queries_served(), 1);
    }
}
