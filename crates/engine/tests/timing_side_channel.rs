//! The §IV-B3 timing side channel, end to end over live loopback UDP.
//!
//! The paper's indirect-egress channel counts caches from wall-clock
//! latency alone: a cache hit answers in internal-hop time, a miss pays
//! an upstream round trip. This test makes that physically true on
//! loopback — the wire authority holds every answer back ~120 ms, and
//! only cache misses reach it — then runs the *same* `calibrate` /
//! `enumerate_via_timing` code the simulator uses, over the reactor
//! backend, on real measured RTTs:
//!
//! ```text
//! enumerate_via_timing ─▶ ReactorTransport ─▶ LoopbackResolver(platform)
//!                                                 │ miss: replay +120 ms
//!                                                 ▼
//!                                          WireAuthority (delayed)
//! ```
//!
//! The same probe stream is captured three ways and all three must agree
//! on the cached/uncached split: the live classifier (exact cache
//! count), the reactor's streaming RTT digests (bimodal), and the
//! offline `cde-insight` trace analyzer fed the telemetry JSONL.
//!
//! One `#[test]` per file: it installs the process-global telemetry hub.

use cde_core::{calibrate, enumerate_via_timing, AccessChannel, AccessProvider, CdeInfra};
use cde_engine::{InsightOptions, LiveTestbed, ReactorConfig, ResolverConfig, RetryPolicy};
use cde_insight::{split_digest, PHASES};
use cde_netsim::SimTime;
use cde_platform::{NameserverNet, PlatformBuilder, SelectorKind};
use cde_telemetry::TelemetryHub;
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Duration;

const INGRESS: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);
const CACHES: usize = 3;
/// Injected authority-side distance. Far above loopback hit latency —
/// even a scheduler hiccup's worth of hit jitter stays octaves away in
/// log space — and far below the retry timeout, so misses are
/// unmistakable and never retried.
const UPSTREAM_DELAY: Duration = Duration::from_millis(120);
/// Enough probes that every cache is selected at least once with
/// overwhelming probability (random selector: 3·(2/3)^40 ≈ 1e-7).
const PROBES: u64 = 40;

#[test]
fn timing_side_channel_counts_caches_over_live_loopback() {
    // One hub for everything: the core algorithms' campaign spans (via
    // the process global) and the reactor's probe lifecycle events.
    let hub = TelemetryHub::new(64 * 1024);
    cde_telemetry::install_global(Arc::clone(&hub));

    let mut net = NameserverNet::new();
    let mut infra = CdeInfra::install(&mut net);
    let platform = PlatformBuilder::new(97)
        .ingress(vec![INGRESS])
        .egress(vec![Ipv4Addr::new(192, 0, 3, 1)])
        .cluster(CACHES, SelectorKind::Random)
        .build();
    let testbed = LiveTestbed::launch_with_upstream_delay(
        platform,
        net,
        ResolverConfig::default(),
        UPSTREAM_DELAY,
    )
    .unwrap();
    let policy = RetryPolicy {
        attempts: 4,
        timeout: Duration::from_millis(500),
        backoff: 1.5,
        base_delay: Duration::from_millis(2),
        jitter: 0.5,
    };
    let mut transport = testbed
        .reactor_transport(ReactorConfig {
            policy,
            seed: 97,
            telemetry: Some(Arc::clone(&hub)),
            insight: Some(InsightOptions::default()),
            ..ReactorConfig::default()
        })
        .unwrap();
    let insight = transport.reactor().insight().expect("insight enabled");

    // Live calibration + enumeration: real wall-clock RTTs end to end.
    let (cal, timing) = {
        let mut access = transport.channel(INGRESS);
        let cal = calibrate(&mut access, &mut infra, 12, SimTime::ZERO)
            .expect("hits and misses must separate over live loopback");
        let session = infra.new_session(access.net_mut(), 0);
        let t = enumerate_via_timing(&mut access, &session.honey, cal, PROBES, SimTime::ZERO);
        (cal, t)
    };

    // The calibration found the injected contrast: hits answer in
    // internal-hop time, misses pay the authority's 120 ms.
    assert!(cal.cached_median < cal.uncached_median);
    assert!(
        cal.uncached_median.as_micros() >= 90_000,
        "miss latency must carry the injected upstream delay, got {:?}",
        cal.uncached_median
    );
    assert!(
        cal.threshold.as_micros() > cal.cached_median.as_micros(),
        "threshold must clear the hit mode"
    );

    // The paper's claim, live: slow responses count the caches exactly.
    assert_eq!(
        timing.slow_responses, CACHES as u64,
        "timing enumeration must recover the planted cache count (got {timing:?})"
    );
    assert_eq!(timing.fast_responses, PROBES - CACHES as u64);
    assert_eq!(timing.unclassified, 0, "no probe may time out on loopback");

    // Capture tier: the streaming digest saw the same bimodal world.
    let snap = insight.digests().merged();
    assert!(
        snap.count() >= PROBES,
        "digest must have recorded every matched probe, got {}",
        snap.count()
    );
    assert_eq!(snap.ambiguous(), 0, "no retransmits expected on loopback");
    let digest_split = split_digest(&snap).expect("live RTTs must be bimodal");
    // With 3 misses against ~49 hits the w0·w1 weight factor caps Otsu
    // separation well below the "clearly" bar of 0.85, so assert a floor
    // that unimodal data (uniform tops out at 0.75 only on balanced
    // splits; real hit jitter scores ~0.5) cannot reach.
    assert!(
        digest_split.separation > 0.6,
        "separation {}",
        digest_split.separation
    );
    assert!(
        digest_split.upper.count >= CACHES as u64,
        "the slow mode must hold at least the enumeration misses"
    );
    assert!(
        digest_split.upper.mean_us >= 20_000.0,
        "slow mode must sit near the injected delay, got {} µs",
        digest_split.upper.mean_us
    );

    // Phase profiling ran on the hot path without disturbing any of the
    // above: every phase was entered and sampled at least once.
    for stats in insight.phases().snapshot() {
        assert!(stats.calls > 0, "phase {:?} never entered", stats.phase);
        assert!(stats.sampled > 0, "phase {:?} never sampled", stats.phase);
    }
    assert_eq!(insight.phases().snapshot().len(), PHASES.len());

    // Consumption tier: the offline analyzer reproduces the same split
    // from nothing but the JSONL trace.
    let mut sink = Vec::new();
    hub.drain_jsonl(&mut sink).unwrap();
    let jsonl = String::from_utf8(sink).unwrap();
    let analysis = cde_insight::analyze(&jsonl);
    assert!(analysis.check(), "trace must hold a completed campaign");
    let campaign = analysis
        .campaigns
        .iter()
        .find(|c| c.name == "enumerate_via_timing")
        .expect("enumeration span missing from trace");
    assert!(campaign.completed_ok());
    assert_eq!(campaign.rtt_us.len(), PROBES as usize);
    let offline = campaign.mode_split().expect("trace RTTs must be bimodal");
    assert_eq!(
        offline.upper.count, CACHES as u64,
        "offline analysis must recover the cache count from the trace alone"
    );
    assert_eq!(offline.lower.count, PROBES - CACHES as u64);
    // Same imbalance-capped floor as the live digest split above.
    assert!(
        offline.separation > 0.6,
        "separation {}",
        offline.separation
    );
    // Offline and live agree on the classification boundary's side.
    assert!(offline.threshold_us < cal.uncached_median.as_micros());
}
