//! Hermetic end-to-end tests of the live measurement chain.
//!
//! Everything here runs over *real* UDP datagrams on loopback:
//!
//! ```text
//! enumerate_adaptive ──▶ UdpTransport ──▶ LoopbackResolver(platform)
//!                                              │ upstream replay
//!                                              ▼
//!                                         WireAuthority
//! ```
//!
//! The assertions mirror the simulator's: the paper's enumeration recovers
//! the planted cache count, now across actual sockets — and keeps
//! recovering it when the wire deterministically drops queries.

use cde_core::{enumerate_adaptive, AccessProvider, CdeInfra, SurveyOptions};
use cde_engine::scheduler::{run_campaign, run_campaign_pipelined, CampaignOptions, Probe};
use cde_engine::{
    EngineAccess, LiveTestbed, RateConfig, RateLimiter, Reactor, ReactorConfig, ResolverConfig,
    RetryPolicy, SimTransport, Transport, UdpTransport,
};
use cde_netsim::{Link, SimTime};
use cde_platform::{NameserverNet, PlatformBuilder, ResolutionPlatform, SelectorKind};
use cde_probers::DirectProber;
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Duration;

const INGRESS: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

fn build_world(caches: usize, seed: u64) -> (ResolutionPlatform, NameserverNet, CdeInfra) {
    let mut net = NameserverNet::new();
    let infra = CdeInfra::install(&mut net);
    let platform = PlatformBuilder::new(seed)
        .ingress(vec![INGRESS])
        .egress((1..=3).map(|d| Ipv4Addr::new(192, 0, 3, d)).collect())
        .cluster(caches, SelectorKind::Random)
        .build();
    (platform, net, infra)
}

/// A retry policy tight enough for a fast test but still able to absorb
/// injected loss.
fn test_policy() -> RetryPolicy {
    RetryPolicy {
        attempts: 4,
        timeout: Duration::from_millis(400),
        backoff: 1.5,
        base_delay: Duration::from_millis(2),
        jitter: 0.5,
    }
}

#[test]
fn enumeration_over_real_udp_recovers_cache_count() {
    let caches = 5;
    let (platform, net, mut infra) = build_world(caches, 41);
    let testbed = LiveTestbed::launch(platform, net, ResolverConfig::default()).unwrap();
    let mut transport = testbed.transport(test_policy(), 41).unwrap();

    let e = {
        let mut access = EngineAccess::new(&mut transport, INGRESS);
        enumerate_adaptive(
            &mut access,
            &mut infra,
            &SurveyOptions::default(),
            SimTime::ZERO,
        )
    };
    assert_eq!(
        e.estimated, caches as u64,
        "live enumeration must recover the planted cache count (got {e:?})"
    );

    // Prove the probes actually crossed the wire twice: client → resolver
    // (every probe answered) and resolver → authority (upstream replay).
    let snap = transport.metrics().snapshot();
    assert!(snap.sent > 0, "no datagrams sent");
    assert_eq!(snap.sent, snap.received, "unexpected loss on loopback");
    assert_eq!(snap.retries, 0);
    assert!(
        testbed.authority().queries_served() > 0,
        "the wire authority never saw the platform's upstream traffic"
    );
}

#[test]
fn enumeration_survives_injected_loss_with_retries() {
    let caches = 4;
    let (platform, net, mut infra) = build_world(caches, 53);
    // Deterministic request-direction loss: dropped queries never reach
    // the platform, so retransmission is a clean replay.
    let testbed = LiveTestbed::launch(
        platform,
        net,
        ResolverConfig {
            query_loss: 0.25,
            seed: 7,
            ..ResolverConfig::default()
        },
    )
    .unwrap();
    // Tight deadlines: a dropped attempt costs 120 ms, not 400 ms. A slow
    // machine can trigger spurious retries here, which this test tolerates
    // (retries are exactly what it measures).
    let policy = RetryPolicy {
        attempts: 5,
        timeout: Duration::from_millis(120),
        backoff: 1.5,
        base_delay: Duration::from_millis(2),
        jitter: 0.5,
    };
    let mut transport = testbed.transport(policy, 53).unwrap();

    let opts = SurveyOptions {
        // Plan for the loss we are about to experience (paper §V).
        loss: 0.25,
        ..SurveyOptions::default()
    };
    let e = {
        let mut access = EngineAccess::new(&mut transport, INGRESS);
        enumerate_adaptive(&mut access, &mut infra, &opts, SimTime::ZERO)
    };
    assert_eq!(
        e.estimated, caches as u64,
        "enumeration under loss must still recover the cache count (got {e:?})"
    );

    let snap = transport.metrics().snapshot();
    assert!(snap.retries > 0, "injected loss must force retransmissions");
    assert!(snap.sent > snap.received, "loss must be visible in metrics");
    assert!(
        transport.observed_loss_rate() > 0.05,
        "observed loss rate should reflect the injected loss, got {}",
        transport.observed_loss_rate()
    );
}

#[test]
fn sim_and_live_backends_agree_on_the_same_platform() {
    let caches = 6;

    // Simulated backend.
    let (platform, net, mut infra) = build_world(caches, 67);
    let prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 67);
    let mut sim = SimTransport::new(platform, net, prober);
    let sim_estimate = {
        let mut access = sim.channel(INGRESS);
        enumerate_adaptive(
            &mut access,
            &mut infra,
            &SurveyOptions::default(),
            SimTime::ZERO,
        )
        .estimated
    };

    // Live backend over an identically-built platform.
    let (platform, net, mut infra) = build_world(caches, 67);
    let testbed = LiveTestbed::launch(platform, net, ResolverConfig::default()).unwrap();
    let mut transport = testbed.transport(test_policy(), 67).unwrap();
    let live_estimate = {
        let mut access = transport.channel(INGRESS);
        enumerate_adaptive(
            &mut access,
            &mut infra,
            &SurveyOptions::default(),
            SimTime::ZERO,
        )
        .estimated
    };

    // Reactor backend over the same platform again.
    let (platform, net, mut infra) = build_world(caches, 67);
    let testbed = LiveTestbed::launch(platform, net, ResolverConfig::default()).unwrap();
    let mut transport = testbed
        .reactor_transport(ReactorConfig::with_policy(test_policy(), 67))
        .unwrap();
    let reactor_estimate = {
        let mut access = transport.channel(INGRESS);
        enumerate_adaptive(
            &mut access,
            &mut infra,
            &SurveyOptions::default(),
            SimTime::ZERO,
        )
        .estimated
    };

    assert_eq!(sim_estimate, caches as u64);
    assert_eq!(
        sim_estimate, live_estimate,
        "both transports must expose the same platform to the same algorithm"
    );
    assert_eq!(
        sim_estimate, reactor_estimate,
        "the reactor backend must agree with the sim and blocking backends"
    );
}

#[test]
fn enumeration_over_reactor_backend_recovers_cache_count() {
    let caches = 5;
    let (platform, net, mut infra) = build_world(caches, 71);
    let testbed = LiveTestbed::launch(platform, net, ResolverConfig::default()).unwrap();
    let mut transport = testbed
        .reactor_transport(ReactorConfig::with_policy(test_policy(), 71))
        .unwrap();

    let e = {
        let mut access = transport.channel(INGRESS);
        enumerate_adaptive(
            &mut access,
            &mut infra,
            &SurveyOptions::default(),
            SimTime::ZERO,
        )
    };
    assert_eq!(
        e.estimated, caches as u64,
        "reactor-backed enumeration must recover the planted cache count (got {e:?})"
    );

    let snap = transport.metrics().snapshot();
    assert!(snap.sent > 0, "no datagrams sent");
    assert_eq!(snap.sent, snap.received, "unexpected loss on loopback");
    assert_eq!(snap.dropped_replies(), 0, "no strays expected on loopback");
    assert!(
        testbed.authority().queries_served() > 0,
        "the wire authority never saw the platform's upstream traffic"
    );
}

#[test]
fn enumeration_over_reactor_survives_injected_loss() {
    let caches = 4;
    let (platform, net, mut infra) = build_world(caches, 59);
    let testbed = LiveTestbed::launch(
        platform,
        net,
        ResolverConfig {
            query_loss: 0.25,
            seed: 7,
            ..ResolverConfig::default()
        },
    )
    .unwrap();
    let policy = RetryPolicy {
        attempts: 5,
        timeout: Duration::from_millis(120),
        backoff: 1.5,
        base_delay: Duration::from_millis(2),
        jitter: 0.5,
    };
    let mut transport = testbed
        .reactor_transport(ReactorConfig::with_policy(policy, 59))
        .unwrap();

    let opts = SurveyOptions {
        loss: 0.25,
        ..SurveyOptions::default()
    };
    let e = {
        let mut access = transport.channel(INGRESS);
        enumerate_adaptive(&mut access, &mut infra, &opts, SimTime::ZERO)
    };
    assert_eq!(
        e.estimated, caches as u64,
        "reactor enumeration under loss must still recover the cache count (got {e:?})"
    );

    let snap = transport.metrics().snapshot();
    assert!(snap.retries > 0, "injected loss must force retransmissions");
    assert!(snap.sent > snap.received, "loss must be visible in metrics");
    assert!(
        transport.observed_loss_rate() > 0.05,
        "observed loss rate should reflect the injected loss, got {}",
        transport.observed_loss_rate()
    );
}

#[test]
fn pipelined_campaign_over_reactor() {
    let caches = 2;
    let (platform, mut net, mut infra) = build_world(caches, 31);
    // Open the session before launch so the resolver's world already
    // contains the honey record (a bare reactor carries no sync link).
    let session = infra.new_session(&mut net, 0);
    let testbed = LiveTestbed::launch(platform, net, ResolverConfig::default()).unwrap();

    let limiter = Arc::new(RateLimiter::new(
        RateConfig {
            per_second: 4000.0,
            burst: 2.0,
        },
        None,
    ));
    let reactor = Reactor::launch(
        testbed.resolver().ingress_addrs().clone(),
        ReactorConfig {
            policy: test_policy(),
            limiter: Some(limiter),
            seed: 31,
            ..ReactorConfig::default()
        },
    )
    .unwrap();
    let probes: Vec<Probe> = (0..24)
        .map(|_| Probe::a(INGRESS, session.honey.clone()))
        .collect();
    let report = run_campaign_pipelined(&reactor, probes, 16);
    assert_eq!(report.answered(), 24, "every probe must be answered");
    assert_eq!(report.outcomes.len(), 24);
    assert!(
        report.rate_limit_stalls > 0,
        "the batch-aware limiter never engaged"
    );
    let snap = reactor.metrics().snapshot();
    assert!(snap.in_flight_peak > 1, "probes never overlapped");
    assert!(testbed.authority().queries_served() > 0);
}

#[test]
fn telemetry_streams_campaign_and_probe_lifecycle() {
    use cde_engine::scheduler::run_campaign_pipelined_reported;
    use cde_telemetry::{MetricsRegistry, ProgressReporter, TelemetryHub};

    let caches = 2;
    let (platform, mut net, mut infra) = build_world(caches, 37);
    let session = infra.new_session(&mut net, 0);
    let testbed = LiveTestbed::launch(platform, net, ResolverConfig::default()).unwrap();

    let hub = TelemetryHub::new(16 * 1024);
    let registry = MetricsRegistry::new();
    let limiter = Arc::new(RateLimiter::new(
        RateConfig {
            per_second: 4000.0,
            burst: 2.0,
        },
        None,
    ));
    let reactor = Reactor::launch(
        testbed.resolver().ingress_addrs().clone(),
        ReactorConfig {
            policy: test_policy(),
            limiter: Some(limiter),
            seed: 37,
            telemetry: Some(Arc::clone(&hub)),
            registry: Some(Arc::clone(&registry)),
            ..ReactorConfig::default()
        },
    )
    .unwrap();

    // JSONL sink shared with the reporter so we can inspect the stream.
    #[derive(Clone, Default)]
    struct SharedSink(Arc<parking_lot::Mutex<Vec<u8>>>);
    impl std::io::Write for SharedSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    let sink = SharedSink::default();
    let mut reporter = ProgressReporter::new(Arc::clone(&hub))
        .to_sink(sink.clone())
        .every(Duration::from_millis(1));

    let probes: Vec<Probe> = (0..24)
        .map(|_| Probe::a(INGRESS, session.honey.clone()))
        .collect();
    let report =
        run_campaign_pipelined_reported(&reactor, probes, 8, "telemetry_e2e", Some(&mut reporter));
    assert_eq!(report.answered(), 24, "every probe must be answered");

    // The JSONL stream must show the campaign span and the full probe
    // lifecycle observed on the wire.
    let jsonl = String::from_utf8(sink.0.lock().clone()).unwrap();
    for kind in [
        "campaign_begin",
        "probe_planned",
        "probe_sent",
        "probe_matched",
        "campaign_progress",
        "campaign_end",
    ] {
        assert!(
            jsonl.contains(&format!("\"kind\": \"{kind}\"")),
            "missing {kind} in JSONL stream:\n{jsonl}"
        );
    }
    assert!(jsonl.contains("\"name\": \"telemetry_e2e\""));
    assert!(jsonl.contains("\"planned\": 24"));
    assert_eq!(hub.dropped(), 0, "ring must not shed at this volume");

    // The registry saw every collector the reactor registered.
    let prom = registry.prometheus_text();
    for family in [
        "cde_engine_sent_total",
        "cde_engine_received_total",
        "cde_engine_probe_rtt_seconds_bucket",
        "cde_engine_loop_tick_seconds_bucket",
        "cde_engine_wheel_pending_peak",
        "cde_engine_slab_capacity",
        "cde_bufpool_recycled_total",
        "cde_ratelimit_tokens_total",
        "cde_telemetry_events_emitted_total",
    ] {
        assert!(prom.contains(family), "missing {family} in:\n{prom}");
    }

    // Reactor health gauges must have sampled real values in-loop.
    let snap = reactor.metrics().snapshot();
    assert!(snap.slab_capacity > 0);
    assert!(
        snap.wheel_pending_peak > 0,
        "deadline timers must have been pending at some point"
    );
    assert!(snap.loop_count > 0);
    assert!(snap.loop_latency_quantile(0.5).is_some());
    assert!(snap.batch_fill_ratio(cde_sysio::MAX_BATCH).is_some());
}

#[test]
fn rate_limited_campaign_over_real_udp() {
    let caches = 2;
    let (platform, mut net, mut infra) = build_world(caches, 29);
    // Open the session before launch so the resolver's world already
    // contains the honey record (direct transports carry no sync link).
    let session = infra.new_session(&mut net, 0);
    let testbed = LiveTestbed::launch(platform, net, ResolverConfig::default()).unwrap();

    let addrs = testbed.resolver().ingress_addrs().clone();
    let limiter = Arc::new(RateLimiter::new(
        RateConfig {
            per_second: 4000.0,
            burst: 2.0,
        },
        None,
    ));
    let probes: Vec<Probe> = (0..24)
        .map(|_| Probe::a(INGRESS, session.honey.clone()))
        .collect();
    let opts = CampaignOptions {
        workers: 3,
        max_in_flight: 6,
        limiter: Some(limiter),
    };
    let report = run_campaign(
        |_worker| {
            UdpTransport::direct(addrs.clone(), NameserverNet::new(), test_policy(), 29).unwrap()
        },
        probes,
        &opts,
    );
    assert_eq!(report.answered(), 24, "every probe must be answered");
    assert_eq!(report.outcomes.len(), 24);
    assert!(report.rate_limit_stalls > 0, "the limiter never engaged");
    // Observed (zero) loss feeds the next plan.
    let plan = report.plan_for(8);
    assert_eq!(plan.loss, 0.0);
    assert!(testbed.authority().queries_served() > 0);
}
