//! Pins the RTT-fidelity contract under retransmission: when an answer
//! only arrives after a retransmit, the measured RTT is taken from the
//! *last* send (the one that plausibly elicited it), and the sample is
//! flagged `retransmit_ambiguous` everywhere it surfaces — the reactor's
//! streaming digest and the telemetry JSONL trace — so downstream timing
//! analysis can exclude it.

use cde_dns::Message;
use cde_dns::RecordType;
use cde_engine::reactor::{Reactor, ReactorConfig};
use cde_engine::{InsightOptions, RetryPolicy};
use cde_telemetry::TelemetryHub;
use crossbeam::channel::unbounded;
use std::collections::HashMap;
use std::net::{Ipv4Addr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const INGRESS: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);
/// First-attempt deadline. The honest first-send RTT would exceed this
/// (the first datagram is dropped), so a from-last-send measurement must
/// land well under it.
const FIRST_TIMEOUT: Duration = Duration::from_millis(150);

#[test]
fn retransmitted_match_is_measured_from_last_send_and_flagged_ambiguous() {
    let hub = TelemetryHub::new(4096);

    // An authority that loses exactly the first datagram it sees and
    // answers every later one promptly.
    let socket = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
    socket
        .set_read_timeout(Some(Duration::from_millis(50)))
        .unwrap();
    let server_addr = socket.local_addr().unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let server = std::thread::spawn({
        let stop = Arc::clone(&stop);
        move || {
            let mut buf = [0u8; 2048];
            let mut seen = 0u32;
            while !stop.load(Ordering::SeqCst) {
                if let Ok((len, peer)) = socket.recv_from(&mut buf) {
                    seen += 1;
                    if seen == 1 {
                        continue;
                    }
                    if let Ok(query) = Message::decode(&buf[..len]) {
                        let resp = Message::response_to(&query);
                        let _ = socket.send_to(&resp.encode().unwrap(), peer);
                    }
                }
            }
        }
    });

    let mut targets = HashMap::new();
    targets.insert(INGRESS, server_addr);
    let reactor = Reactor::launch(
        targets,
        ReactorConfig {
            policy: RetryPolicy {
                attempts: 3,
                timeout: FIRST_TIMEOUT,
                backoff: 1.0,
                base_delay: Duration::from_millis(1),
                jitter: 0.0,
            },
            telemetry: Some(Arc::clone(&hub)),
            insight: Some(InsightOptions::default()),
            ..ReactorConfig::default()
        },
    )
    .unwrap();
    let insight = reactor.insight().expect("insight enabled");

    let (done_tx, done_rx) = unbounded();
    assert!(reactor.handle().submit(
        7,
        INGRESS,
        "retry.cache.example".parse().unwrap(),
        RecordType::A,
        &done_tx,
    ));
    let completion = done_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("probe never completed");
    assert!(
        completion.reply.is_answered(),
        "the retransmit must be answered, got {:?}",
        completion.reply
    );

    // Digest tier: one sample, ambiguous, and timed from the *last* send
    // — a from-first-send measurement could not come in under the first
    // attempt's deadline plus the retransmit delay.
    let snap = insight.digests().merged();
    assert_eq!(snap.count(), 1);
    assert_eq!(snap.ambiguous(), 1, "the sample must be flagged ambiguous");
    let rtt = snap.max_us().unwrap();
    assert!(
        rtt < FIRST_TIMEOUT.as_micros() as u64,
        "RTT must be measured from the retransmit, got {rtt} µs"
    );

    // Trace tier: the matched event carries attempt 1 and the flag.
    let mut sink = Vec::new();
    hub.drain_jsonl(&mut sink).unwrap();
    let jsonl = String::from_utf8(sink).unwrap();
    let matched = jsonl
        .lines()
        .find(|l| l.contains("\"probe_matched\""))
        .expect("no probe_matched event in trace");
    assert!(
        matched.contains("\"attempt\": 1"),
        "match must be on the second attempt: {matched}"
    );
    assert!(
        matched.contains("\"retransmit_ambiguous\": true"),
        "trace must flag the ambiguous RTT: {matched}"
    );

    // The offline analyzer quarantines it: the sample lands in
    // `ambiguous_us`, never in the clean `rtt_us` series.
    let analysis = cde_insight::analyze(&jsonl);
    assert_eq!(analysis.orphan.ambiguous_us.len(), 1);
    assert!(analysis.orphan.rtt_us.is_empty());

    drop(reactor);
    stop.store(true, Ordering::SeqCst);
    server.join().unwrap();
}
