//! Sharded-reactor invariants: the target partition is stable and
//! total, correlation is strictly shard-local (a reply landing on the
//! wrong shard's socket is a stray, never a match), the per-shard
//! metrics blocks and RTT digests merge to the same totals a
//! single-shard run produces, and a multi-shard drain delivers every
//! completion.
//!
//! Everything runs on loopback with an in-test echo server, so these
//! hold on a single-core host too — the shard count is forced through
//! [`ReactorConfig::shards`], not inferred from the machine.

use cde_dns::{Message, Name, RecordType};
use cde_engine::{
    run_campaign_pipelined, shard_for_target, InsightOptions, Probe, Reactor, ReactorConfig,
    RetryPolicy,
};
use crossbeam::channel::unbounded;
use proptest::prelude::*;
use std::collections::HashMap;
use std::net::{Ipv4Addr, SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn policy_ms(attempts: u32, timeout_ms: u64) -> RetryPolicy {
    RetryPolicy {
        attempts,
        timeout: Duration::from_millis(timeout_ms),
        backoff: 1.0,
        base_delay: Duration::from_millis(1),
        jitter: 0.0,
    }
}

/// An echo thread answering every well-formed query on `server`.
fn spawn_echo(server: UdpSocket, stop: Arc<AtomicBool>) -> std::thread::JoinHandle<()> {
    server
        .set_read_timeout(Some(Duration::from_millis(50)))
        .unwrap();
    std::thread::spawn(move || {
        let mut buf = [0u8; 2048];
        while !stop.load(Ordering::SeqCst) {
            let Ok((len, peer)) = server.recv_from(&mut buf) else {
                continue;
            };
            if let Ok(q) = Message::decode(&buf[..len]) {
                let resp = Message::response_to(&q);
                let _ = server.send_to(&resp.encode().unwrap(), peer);
            }
        }
    })
}

proptest! {
    /// The partition is total (always a shard below the count) and
    /// stable (a pure function of the address — repeated calls and
    /// calls in any order agree), so submitter, shard loop and resumed
    /// campaign all place a target identically.
    #[test]
    fn partition_is_stable_and_total(ip in any::<u32>(), shards in 1usize..=16) {
        let ingress = Ipv4Addr::from(ip);
        let first = shard_for_target(ingress, shards);
        prop_assert!(first < shards);
        // Interleave other lookups: the partition must not carry state.
        let _ = shard_for_target(Ipv4Addr::from(ip.wrapping_add(1)), shards);
        prop_assert_eq!(first, shard_for_target(ingress, shards));
        // One shard means no choice at all.
        prop_assert_eq!(shard_for_target(ingress, 1), 0);
    }
}

/// A reply that would match perfectly — right id, right question, right
/// source address — must still be dropped as a stray when it arrives on
/// a socket owned by a shard that never sent the probe: correlation is
/// strictly shard-local.
#[test]
fn wrong_shard_reply_counts_as_stray() {
    let server = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
    server
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let server_addr = server.local_addr().unwrap();
    let ingress = Ipv4Addr::new(192, 0, 2, 9);
    let mut targets = HashMap::new();
    targets.insert(ingress, server_addr);
    let reactor = Reactor::launch(
        targets,
        ReactorConfig {
            sockets: 2,
            max_in_flight: 16,
            shards: 2,
            ..ReactorConfig::with_policy(policy_ms(1, 4_000), 21)
        },
    )
    .unwrap();
    assert_eq!(reactor.shards(), 2);

    let (done_tx, done_rx) = unbounded();
    let qname: Name = "stray.cache.example".parse().unwrap();
    assert!(reactor
        .handle()
        .submit(1, ingress, qname, RecordType::A, &done_tx));

    // Catch the probe on the wire and craft the genuine response.
    let mut buf = [0u8; 2048];
    let (len, peer) = server.recv_from(&mut buf).unwrap();
    let query = Message::decode(&buf[..len]).unwrap();
    let response = Message::response_to(&query).encode().unwrap();

    // First deliver it to the *other* shard's socket. The datagram is
    // byte-identical to the real answer and comes from the probed
    // target, but that shard holds no correlation entry for it.
    let owner = shard_for_target(ingress, 2);
    let wrong_shard_addr: SocketAddr = reactor.shard_socket_addrs()[1 - owner][0];
    server.send_to(&response, wrong_shard_addr).unwrap();
    let deadline = Instant::now() + Duration::from_secs(2);
    while reactor.metrics().snapshot().stray_replies == 0 {
        assert!(Instant::now() < deadline, "stray reply never counted");
        std::thread::sleep(Duration::from_millis(5));
    }
    let snap = reactor.metrics().snapshot();
    assert_eq!(snap.received, 0, "wrong-shard reply must not match");
    assert!(
        done_rx.try_recv().is_err(),
        "wrong-shard reply must not complete the probe"
    );

    // The same bytes on the socket that sent the probe: a clean match.
    server.send_to(&response, peer).unwrap();
    let completion = done_rx.recv_timeout(Duration::from_secs(5)).unwrap();
    assert!(completion.reply.is_answered());
    let snap = reactor.metrics().snapshot();
    assert_eq!(snap.received, 1);
    assert_eq!(snap.stray_replies, 1);
}

/// The same 200-probe, 8-ingress workload through four shards and
/// through one: per-shard blocks sum exactly to the merged snapshot,
/// per-shard accounting closes (every probe routed to a shard is
/// answered or timed out there), the RTT digests hold one sample per
/// match, and the campaign-level totals agree with the single-shard
/// run.
#[test]
fn merged_observability_matches_single_shard_run() {
    let ingresses: Vec<Ipv4Addr> = (1..=8).map(|d| Ipv4Addr::new(192, 0, 2, d)).collect();
    let per_ingress = 25u64;
    let run = |shards: usize| {
        let server = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        let server_addr = server.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let echo = spawn_echo(server, Arc::clone(&stop));
        let targets: HashMap<Ipv4Addr, SocketAddr> =
            ingresses.iter().map(|&ip| (ip, server_addr)).collect();
        let reactor = Reactor::launch(
            targets,
            ReactorConfig {
                sockets: 4,
                max_in_flight: 256,
                shards,
                insight: Some(InsightOptions::default()),
                ..ReactorConfig::with_policy(policy_ms(3, 500), 17)
            },
        )
        .unwrap();
        let mut probes = Vec::new();
        for &ingress in &ingresses {
            for i in 0..per_ingress {
                let qname: Name = format!("m-{i}.{ingress}.example").parse().unwrap();
                probes.push(Probe::a(ingress, qname));
            }
        }
        let total = probes.len();
        let report = run_campaign_pipelined(&reactor, probes, 64);
        stop.store(true, Ordering::SeqCst);
        echo.join().unwrap();
        assert!(report.fully_accounted(total), "{shards}-shard run leaked");
        (reactor, report)
    };

    let (sharded, sharded_report) = run(4);
    let (single, single_report) = run(1);
    assert_eq!(sharded.metrics().shards(), 4);
    assert_eq!(single.metrics().shards(), 1);
    let total = 8 * per_ingress;

    // Loopback echo loses nothing: both runs answer everything.
    assert_eq!(sharded_report.answered() as u64, total);
    assert_eq!(single_report.answered() as u64, total);
    let merged = sharded.metrics().snapshot();
    let single_snap = single.metrics().snapshot();
    assert_eq!(merged.received, single_snap.received);
    assert_eq!(merged.timeouts, single_snap.timeouts);
    assert_eq!(merged.in_flight, 0);

    // The merged snapshot is exactly the sum of the per-shard blocks.
    let mut sum_sent = 0;
    let mut sum_received = 0;
    let mut sum_timeouts = 0;
    let mut sum_retries = 0;
    let mut sum_loops = 0;
    for i in 0..4 {
        let shard = sharded.metrics().shard_snapshot(i);
        sum_sent += shard.sent;
        sum_received += shard.received;
        sum_timeouts += shard.timeouts;
        sum_retries += shard.retries;
        sum_loops += shard.loop_count;
        // Per-shard accounting closes: every probe the partition routed
        // here was answered or timed out here, none crossed shards.
        let routed = ingresses
            .iter()
            .filter(|&&ip| shard_for_target(ip, 4) == i)
            .count() as u64
            * per_ingress;
        assert_eq!(
            shard.received + shard.timeouts,
            routed,
            "shard {i} accounting"
        );
        assert_eq!(shard.in_flight, 0, "shard {i} drained");
    }
    assert_eq!(sum_sent, merged.sent);
    assert_eq!(sum_received, merged.received);
    assert_eq!(sum_timeouts, merged.timeouts);
    assert_eq!(sum_retries, merged.retries);
    assert_eq!(sum_loops, merged.loop_count);

    // Every shard records into the shared digest set: one sample per
    // matched reply, per ingress and in total.
    let insight = sharded.insight().expect("launched with insight");
    let mut digest_total = 0;
    for &ingress in &ingresses {
        let digest = insight.digests().digest(ingress).expect("known ingress");
        assert_eq!(digest.count(), per_ingress, "{ingress} digest");
        digest_total += digest.count();
    }
    assert_eq!(digest_total, merged.received);
}

/// `shutdown_graceful` must drain *all* shards: every submitted probe
/// resolves, every shard's loop exits cleanly within the budget.
#[test]
fn graceful_drain_covers_every_shard() {
    let ingresses: Vec<Ipv4Addr> = (1..=8).map(|d| Ipv4Addr::new(192, 0, 2, d)).collect();
    let server = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
    let server_addr = server.local_addr().unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let echo = spawn_echo(server, Arc::clone(&stop));
    let targets: HashMap<Ipv4Addr, SocketAddr> =
        ingresses.iter().map(|&ip| (ip, server_addr)).collect();
    let mut reactor = Reactor::launch(
        targets,
        ReactorConfig {
            sockets: 4,
            max_in_flight: 256,
            shards: 4,
            ..ReactorConfig::with_policy(policy_ms(3, 500), 29)
        },
    )
    .unwrap();
    // The partition must actually spread this ingress set, or the test
    // would degenerate to a single-shard drain.
    let used: std::collections::HashSet<usize> = ingresses
        .iter()
        .map(|&ip| shard_for_target(ip, 4))
        .collect();
    assert!(used.len() > 1, "ingress set landed on one shard: {used:?}");

    let (done_tx, done_rx) = unbounded();
    let handle = reactor.handle();
    let total = 200u64;
    for token in 0..total {
        let ingress = ingresses[(token % 8) as usize];
        let qname: Name = format!("d-{token}.cache.example").parse().unwrap();
        assert!(handle.submit(token, ingress, qname, RecordType::A, &done_tx));
    }
    let drained = reactor.shutdown_graceful(Duration::from_secs(10));
    assert!(drained, "all shards should drain within the budget");
    stop.store(true, Ordering::SeqCst);
    echo.join().unwrap();
    let mut completions = 0;
    while done_rx.try_recv().is_ok() {
        completions += 1;
    }
    assert_eq!(completions, total, "drain must deliver every completion");
    for i in 0..4 {
        assert_eq!(
            reactor.metrics().shard_snapshot(i).in_flight,
            0,
            "shard {i} left probes in flight"
        );
    }
}
