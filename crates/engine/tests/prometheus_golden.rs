//! Golden-file pin of the Prometheus text exposition.
//!
//! Feeds a deterministic script of observations into every collector the
//! reactor registers — [`EngineMetrics`] (including the shard-runtime
//! series: ring depth, parks, wake latency, duty cycle), the per-target
//! RTT digests, the phase profiler and a [`Pulse`] health engine with an
//! exemplar reservoir — and compares the rendered exposition byte for
//! byte against `tests/golden/metrics.prom`. Any change to a family
//! name, help string, label, bucket edge or cumulative-histogram shape
//! (`_bucket`/`_sum`/`_count`) shows up as a reviewable golden diff
//! instead of a silent dashboard break.
//!
//! Regenerate after an intentional change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p cde-engine --test prometheus_golden
//! ```

use cde_engine::EngineMetrics;
use cde_insight::{PhaseProfiler, RttDigestSet, PHASES};
use cde_pulse::{CounterSample, ExemplarReservoir, ProbeExemplar, Pulse, ShardStat, SloSpec};
use cde_telemetry::MetricsRegistry;
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Duration;

#[test]
fn prometheus_exposition_matches_golden() {
    let registry = MetricsRegistry::new();

    let metrics = Arc::new(EngineMetrics::new());
    for _ in 0..6 {
        metrics.record_sent();
    }
    metrics.record_received(Duration::from_micros(120));
    metrics.record_received(Duration::from_micros(950));
    metrics.record_received(Duration::from_micros(42_000));
    metrics.record_received(Duration::from_micros(120_000));
    metrics.record_retry();
    metrics.record_timeout();
    metrics.record_rate_limit_stall(Duration::from_micros(1_500));
    metrics.record_decode_error();
    metrics.record_stray_reply();
    metrics.record_spoofed_reply();
    metrics.record_qname_mismatch();
    metrics.set_in_flight(4);
    metrics.set_in_flight(1);
    metrics.record_send_batch(3);
    metrics.record_send_batch(16);
    metrics.record_loop_iteration(Duration::from_micros(80));
    metrics.set_wheel_pending(2);
    metrics.set_slab_capacity(512);
    metrics.set_ring_depth(12);
    metrics.set_ring_depth(3);
    metrics.record_park(Duration::from_micros(240));
    metrics.record_wake_latency(Duration::from_micros(35));
    registry.register(metrics);

    let digests = Arc::new(RttDigestSet::for_targets([
        Ipv4Addr::new(192, 0, 2, 1),
        Ipv4Addr::new(192, 0, 2, 2),
    ]));
    for us in [110, 130, 150, 40_000, 41_000] {
        digests.record(Ipv4Addr::new(192, 0, 2, 1), us, false);
    }
    digests.record(Ipv4Addr::new(192, 0, 2, 2), 95, false);
    digests.record(Ipv4Addr::new(192, 0, 2, 2), 52_000, true);
    registry.register(digests);

    let phases = Arc::new(PhaseProfiler::new(1));
    for (i, &phase) in PHASES.iter().enumerate() {
        phases.record(phase, Duration::from_micros(10 * (i as u64 + 1)));
    }
    registry.register(phases);

    let reservoir = Arc::new(ExemplarReservoir::with_capacity(4));
    reservoir.record(ProbeExemplar {
        token: 7,
        shard: 0,
        ingress: Ipv4Addr::new(192, 0, 2, 1),
        attempts: 2,
        rtt_us: 42_000,
        queue_us: 15,
        lifetime_us: 190_000,
        answered: true,
    });
    let pulse = Arc::new(Pulse::new(SloSpec::default()).with_exemplars(Arc::clone(&reservoir)));
    for i in 0..=20u64 {
        pulse.observe(CounterSample {
            at_ms: i * 1_000,
            sent: i * 100,
            received: i * 99,
            emitted: i * 200,
            ..CounterSample::default()
        });
    }
    pulse.observe_shards(vec![
        ShardStat {
            shard: 0,
            busy_us: 6_000,
            parked_us: 4_000,
            ring_depth: 3,
            ring_depth_peak: 12,
            in_flight: 1,
            parks: 5,
            unparks: 4,
        },
        ShardStat {
            shard: 1,
            busy_us: 4_000,
            parked_us: 6_000,
            ring_depth: 1,
            ring_depth_peak: 6,
            in_flight: 0,
            parks: 9,
            unparks: 8,
        },
    ]);
    registry.register(pulse);

    let rendered = registry.prometheus_text();
    // Every shard-runtime and pulse family must carry HELP/TYPE metadata
    // regardless of what the golden currently pins.
    for family in [
        "cde_engine_ring_depth",
        "cde_engine_ring_depth_peak",
        "cde_engine_parks_total",
        "cde_engine_parked_us_total",
        "cde_engine_unparks_total",
        "cde_engine_wake_latency_us_total",
        "cde_engine_wake_latency_max_us",
        "cde_engine_duty_cycle",
        "cde_pulse_health_status",
        "cde_pulse_probe_rate",
        "cde_pulse_timeout_ratio",
        "cde_pulse_stray_ratio",
        "cde_pulse_shed_ratio",
        "cde_pulse_shard_duty_skew",
        "cde_pulse_shard_queue_skew",
        "cde_pulse_exemplars_observed_total",
        "cde_pulse_exemplar_worst_lifetime_us",
    ] {
        assert!(
            rendered.contains(&format!("# HELP {family} ")),
            "missing HELP for {family}"
        );
        assert!(
            rendered.contains(&format!("# TYPE {family} ")),
            "missing TYPE for {family}"
        );
    }
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/metrics.prom");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(golden_path).expect("golden file missing");
    assert_eq!(
        rendered, golden,
        "Prometheus exposition drifted from tests/golden/metrics.prom; \
         rerun with UPDATE_GOLDEN=1 if the change is intentional"
    );
}
