//! Golden-file pin of the Prometheus text exposition.
//!
//! Feeds a deterministic script of observations into every collector the
//! reactor registers — [`EngineMetrics`], the per-target RTT digests and
//! the phase profiler — and compares the rendered exposition byte for
//! byte against `tests/golden/metrics.prom`. Any change to a family
//! name, help string, label, bucket edge or cumulative-histogram shape
//! (`_bucket`/`_sum`/`_count`) shows up as a reviewable golden diff
//! instead of a silent dashboard break.
//!
//! Regenerate after an intentional change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p cde-engine --test prometheus_golden
//! ```

use cde_engine::EngineMetrics;
use cde_insight::{PhaseProfiler, RttDigestSet, PHASES};
use cde_telemetry::MetricsRegistry;
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Duration;

#[test]
fn prometheus_exposition_matches_golden() {
    let registry = MetricsRegistry::new();

    let metrics = Arc::new(EngineMetrics::new());
    for _ in 0..6 {
        metrics.record_sent();
    }
    metrics.record_received(Duration::from_micros(120));
    metrics.record_received(Duration::from_micros(950));
    metrics.record_received(Duration::from_micros(42_000));
    metrics.record_received(Duration::from_micros(120_000));
    metrics.record_retry();
    metrics.record_timeout();
    metrics.record_rate_limit_stall(Duration::from_micros(1_500));
    metrics.record_decode_error();
    metrics.record_stray_reply();
    metrics.record_spoofed_reply();
    metrics.record_qname_mismatch();
    metrics.set_in_flight(4);
    metrics.set_in_flight(1);
    metrics.record_send_batch(3);
    metrics.record_send_batch(16);
    metrics.record_loop_iteration(Duration::from_micros(80));
    metrics.set_wheel_pending(2);
    metrics.set_slab_capacity(512);
    registry.register(metrics);

    let digests = Arc::new(RttDigestSet::for_targets([
        Ipv4Addr::new(192, 0, 2, 1),
        Ipv4Addr::new(192, 0, 2, 2),
    ]));
    for us in [110, 130, 150, 40_000, 41_000] {
        digests.record(Ipv4Addr::new(192, 0, 2, 1), us, false);
    }
    digests.record(Ipv4Addr::new(192, 0, 2, 2), 95, false);
    digests.record(Ipv4Addr::new(192, 0, 2, 2), 52_000, true);
    registry.register(digests);

    let phases = Arc::new(PhaseProfiler::new(1));
    for (i, &phase) in PHASES.iter().enumerate() {
        phases.record(phase, Duration::from_micros(10 * (i as u64 + 1)));
    }
    registry.register(phases);

    let rendered = registry.prometheus_text();
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/metrics.prom");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(golden_path).expect("golden file missing");
    assert_eq!(
        rendered, golden,
        "Prometheus exposition drifted from tests/golden/metrics.prom; \
         rerun with UPDATE_GOLDEN=1 if the change is intentional"
    );
}
