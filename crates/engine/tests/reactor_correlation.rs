//! Reply-correlation hardening: the reactor must never match a reply
//! that is not the genuine answer to an outstanding probe.
//!
//! Each test stands up a deliberately misbehaving UDP "authority" and
//! asserts two things: the probe outcome is untouched by the bogus
//! traffic (timed out or answered exactly once), and the drop is visible
//! in [`EngineMetrics`] under the right counter — wrong query id and
//! late/duplicate replies as strays, id collisions as qname mismatches,
//! off-path sources as spoofed replies.

use cde_dns::{Message, Name, Question, RecordType};
use cde_engine::reactor::{Reactor, ReactorConfig};
use cde_engine::{MetricsSnapshot, RetryPolicy, TransportReply};
use crossbeam::channel::unbounded;
use std::collections::HashMap;
use std::net::{Ipv4Addr, SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

const INGRESS: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

fn policy(attempts: u32, timeout_ms: u64) -> RetryPolicy {
    RetryPolicy {
        attempts,
        timeout: Duration::from_millis(timeout_ms),
        backoff: 1.0,
        base_delay: Duration::from_millis(1),
        jitter: 0.0,
    }
}

/// A UDP server running `behave` on every datagram until stopped.
struct Misbehaver {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl Misbehaver {
    fn launch<F>(mut behave: F) -> Misbehaver
    where
        F: FnMut(&UdpSocket, &[u8], SocketAddr) + Send + 'static,
    {
        let socket = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        socket
            .set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let addr = socket.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let thread = std::thread::spawn({
            let stop = Arc::clone(&stop);
            move || {
                let mut buf = [0u8; 2048];
                while !stop.load(Ordering::SeqCst) {
                    if let Ok((len, peer)) = socket.recv_from(&mut buf) {
                        behave(&socket, &buf[..len], peer);
                    }
                }
            }
        });
        Misbehaver {
            addr,
            stop,
            thread: Some(thread),
        }
    }
}

impl Drop for Misbehaver {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Submits one probe for `qname` and returns its reply.
fn probe_once(reactor: &Reactor, qname: &str) -> TransportReply {
    let (done_tx, done_rx) = unbounded();
    let qname: Name = qname.parse().unwrap();
    assert!(reactor
        .handle()
        .submit(1, INGRESS, qname, RecordType::A, &done_tx));
    done_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("probe never completed")
        .reply
}

fn launch_reactor(target: SocketAddr, policy: RetryPolicy) -> Reactor {
    let mut targets = HashMap::new();
    targets.insert(INGRESS, target);
    Reactor::launch(targets, ReactorConfig::with_policy(policy, 5)).unwrap()
}

/// Polls the reactor's metrics until `pred` holds or two seconds pass.
fn wait_for_metrics(reactor: &Reactor, pred: impl Fn(&MetricsSnapshot) -> bool) -> MetricsSnapshot {
    let deadline = Instant::now() + Duration::from_secs(2);
    loop {
        let snap = reactor.metrics().snapshot();
        if pred(&snap) || Instant::now() > deadline {
            return snap;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn wrong_query_id_is_a_stray_and_never_matches() {
    // The server echoes a well-formed answer under the wrong id.
    let server = Misbehaver::launch(|socket, datagram, peer| {
        if let Ok(query) = Message::decode(datagram) {
            let mut resp = Message::response_to(&query);
            resp.id = query.id.wrapping_add(1);
            let _ = socket.send_to(&resp.encode().unwrap(), peer);
        }
    });
    let reactor = launch_reactor(server.addr, policy(2, 60));
    let reply = probe_once(&reactor, "wrong-id.cache.example");
    assert_eq!(reply, TransportReply::TimedOut);
    let snap = wait_for_metrics(&reactor, |s| s.stray_replies >= 2);
    assert_eq!(snap.received, 0, "a wrong-id reply must never match");
    assert_eq!(snap.stray_replies, 2, "one stray per attempt");
    assert_eq!(snap.timeouts, 1);
}

#[test]
fn id_collision_with_wrong_question_is_counted_and_dropped() {
    // Right id, wrong echoed question: what an id collision with another
    // client's probe looks like from the reactor's side of the socket.
    let server = Misbehaver::launch(|socket, datagram, peer| {
        if let Ok(query) = Message::decode(datagram) {
            let other = Message::query(
                query.id,
                Question::new("somebody-else.example".parse().unwrap(), RecordType::A),
            );
            let resp = Message::response_to(&other);
            let _ = socket.send_to(&resp.encode().unwrap(), peer);
        }
    });
    let reactor = launch_reactor(server.addr, policy(2, 60));
    let reply = probe_once(&reactor, "collision.cache.example");
    assert_eq!(reply, TransportReply::TimedOut);
    let snap = wait_for_metrics(&reactor, |s| s.qname_mismatches >= 2);
    assert_eq!(snap.received, 0, "a colliding reply must never match");
    assert_eq!(snap.qname_mismatches, 2);
    assert_eq!(snap.timeouts, 1);
}

#[test]
fn reply_from_unexpected_source_is_spoofed_and_dropped() {
    // A second socket answers correctly — right id, right question — but
    // from an address the probe was never sent to (off-path spoofing).
    let spoofer = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
    let server = Misbehaver::launch(move |_socket, datagram, peer| {
        if let Ok(query) = Message::decode(datagram) {
            let resp = Message::response_to(&query);
            let _ = spoofer.send_to(&resp.encode().unwrap(), peer);
        }
    });
    let reactor = launch_reactor(server.addr, policy(2, 60));
    let reply = probe_once(&reactor, "spoofed.cache.example");
    assert_eq!(reply, TransportReply::TimedOut);
    let snap = wait_for_metrics(&reactor, |s| s.spoofed_replies >= 2);
    assert_eq!(snap.received, 0, "a spoofed reply must never match");
    assert_eq!(snap.spoofed_replies, 2);
    assert_eq!(snap.timeouts, 1);
}

#[test]
fn duplicate_and_late_replies_count_as_strays() {
    // First query: answered twice (duplicate). The retransmitted flavour —
    // a reply arriving after the deadline retired the attempt — hits the
    // same code path: the correlation entry is already gone.
    let server = Misbehaver::launch(|socket, datagram, peer| {
        if let Ok(query) = Message::decode(datagram) {
            let resp = Message::response_to(&query).encode().unwrap();
            let _ = socket.send_to(&resp, peer);
            let _ = socket.send_to(&resp, peer);
        }
    });
    let reactor = launch_reactor(server.addr, policy(1, 500));
    let reply = probe_once(&reactor, "duplicate.cache.example");
    assert!(reply.is_answered(), "the first copy is the genuine answer");
    let snap = wait_for_metrics(&reactor, |s| s.stray_replies >= 1);
    assert_eq!(snap.received, 1, "the duplicate must not match again");
    assert_eq!(snap.stray_replies, 1);
    assert_eq!(snap.dropped_replies(), 1);
}

#[test]
fn reply_after_timeout_is_a_stray_not_a_match() {
    // The server answers correctly but only after the probe's deadline
    // has already retired it.
    let server = Misbehaver::launch(|socket, datagram, peer| {
        if let Ok(query) = Message::decode(datagram) {
            std::thread::sleep(Duration::from_millis(150));
            let resp = Message::response_to(&query);
            let _ = socket.send_to(&resp.encode().unwrap(), peer);
        }
    });
    let reactor = launch_reactor(server.addr, policy(1, 50));
    let reply = probe_once(&reactor, "late.cache.example");
    assert_eq!(reply, TransportReply::TimedOut);
    let snap = wait_for_metrics(&reactor, |s| s.stray_replies >= 1);
    assert_eq!(snap.received, 0, "a late reply must never match");
    assert_eq!(snap.stray_replies, 1);
    assert_eq!(snap.timeouts, 1);
}
