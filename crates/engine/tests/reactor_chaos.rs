//! Live-loopback chaos: the reactor under an injected [`FaultPlan`].
//!
//! Real UDP datagrams cross loopback sockets while the reactor's fault
//! layer drops, delays, duplicates, truncates and REFUSES them. The
//! assertions check two things everywhere: the measurement survives
//! (exact counts, every probe accounted), and the chaos is *visible* in
//! the existing taxonomy (retries, strays, decode errors, fault stats).
//!
//! Seeds come from `CDE_CHAOS_SEED`; failures print the replay recipe.

use cde_core::{enumerate_adaptive, AccessProvider, CdeInfra, SurveyOptions};
use cde_dns::{Message, Name, Rcode, RecordType};
use cde_engine::scheduler::{run_campaign_pipelined, Probe};
use cde_engine::{
    LiveTestbed, MetricsSnapshot, Reactor, ReactorConfig, ResolverConfig, RetryPolicy, Transport,
    TransportReply,
};
use cde_faults::{
    DelayFault, DuplicateFault, FaultPlan, RateLimitAction, RateLimitFault, TruncateFault,
};
use cde_netsim::{seed_from_env, SeedGuard, SimTime};
use cde_platform::{NameserverNet, PlatformBuilder, ResolutionPlatform, SelectorKind};
use crossbeam::channel::unbounded;
use std::collections::HashMap;
use std::net::{Ipv4Addr, SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

const INGRESS: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

fn build_world(caches: usize, seed: u64) -> (ResolutionPlatform, NameserverNet, CdeInfra) {
    let mut net = NameserverNet::new();
    let infra = CdeInfra::install(&mut net);
    let platform = PlatformBuilder::new(seed)
        .ingress(vec![INGRESS])
        .egress((1..=3).map(|d| Ipv4Addr::new(192, 0, 3, d)).collect())
        .cluster(caches, SelectorKind::Random)
        .build();
    (platform, net, infra)
}

fn policy(attempts: u32, timeout_ms: u64) -> RetryPolicy {
    RetryPolicy {
        attempts,
        timeout: Duration::from_millis(timeout_ms),
        backoff: 1.0,
        base_delay: Duration::from_millis(1),
        jitter: 0.0,
    }
}

/// A well-behaved echo authority: decodes each query and answers it
/// correctly. All misbehaviour comes from the fault layer in front.
struct EchoServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl EchoServer {
    fn launch() -> EchoServer {
        let socket = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        socket
            .set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let addr = socket.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let thread = std::thread::spawn({
            let stop = Arc::clone(&stop);
            move || {
                let mut buf = [0u8; 2048];
                while !stop.load(Ordering::SeqCst) {
                    if let Ok((len, peer)) = socket.recv_from(&mut buf) {
                        // Truncated queries fail to decode and are
                        // silently ignored — like a real server.
                        if let Ok(query) = Message::decode(&buf[..len]) {
                            let resp = Message::response_to(&query);
                            let _ = socket.send_to(&resp.encode().unwrap(), peer);
                        }
                    }
                }
            }
        });
        EchoServer {
            addr,
            stop,
            thread: Some(thread),
        }
    }
}

impl Drop for EchoServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn launch_reactor(target: SocketAddr, config: ReactorConfig) -> Reactor {
    let mut targets = HashMap::new();
    targets.insert(INGRESS, target);
    Reactor::launch(targets, config).unwrap()
}

/// Polls the reactor's metrics until `pred` holds or three seconds pass.
fn wait_for_metrics(reactor: &Reactor, pred: impl Fn(&MetricsSnapshot) -> bool) -> MetricsSnapshot {
    let deadline = Instant::now() + Duration::from_secs(3);
    loop {
        let snap = reactor.metrics().snapshot();
        if pred(&snap) || Instant::now() > deadline {
            return snap;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn campaign_probes(n: usize) -> Vec<Probe> {
    (0..n)
        .map(|i| {
            let qname: Name = format!("chaos-{i}.cache.example").parse().unwrap();
            Probe::a(INGRESS, qname)
        })
        .collect()
}

#[test]
fn adaptive_enumeration_survives_bursty_chaos() {
    let seed = seed_from_env("CDE_CHAOS_SEED", 4747);
    let _guard = SeedGuard::new("CDE_CHAOS_SEED", seed);
    let caches = 5;
    let (platform, net, mut infra) = build_world(caches, seed);
    let testbed = LiveTestbed::launch(platform, net, ResolverConfig::default()).unwrap();
    // 25% bursty loss in 3-packet runs on the query direction; the retry
    // policy gets enough attempts to outlast a burst.
    let config = ReactorConfig {
        faults: Some(FaultPlan::bursty(seed, 0.25, 3.0)),
        ..ReactorConfig::with_policy(policy(6, 150), seed)
    };
    let mut transport = testbed.reactor_transport(config).unwrap();

    let opts = SurveyOptions {
        loss: 0.25,
        ..SurveyOptions::default()
    };
    let e = {
        let mut access = transport.channel(INGRESS);
        enumerate_adaptive(&mut access, &mut infra, &opts, SimTime::ZERO)
    };
    assert_eq!(
        e.estimated, caches as u64,
        "enumeration under bursty chaos must recover the count (got {e:?}, seed {seed})"
    );

    let snap = transport.metrics().snapshot();
    assert!(snap.retries > 0, "bursty loss must force retransmissions");
    let stats = transport
        .reactor()
        .fault_stats()
        .expect("fault layer enabled");
    assert!(stats.query_drops() > 0, "chaos run was accidentally clean");
}

#[test]
fn duplicated_replies_land_as_strays_not_double_matches() {
    let seed = seed_from_env("CDE_CHAOS_SEED", 5151);
    let _guard = SeedGuard::new("CDE_CHAOS_SEED", seed);
    let server = EchoServer::launch();
    // Every datagram is doubled, both directions: the echo server sees
    // two queries per attempt and the reactor sees up to four replies.
    let plan = FaultPlan {
        duplicate: Some(DuplicateFault {
            rate: 1.0,
            copies: 1,
        }),
        ..FaultPlan::clean(seed)
    };
    let reactor = launch_reactor(
        server.addr,
        ReactorConfig {
            faults: Some(plan),
            ..ReactorConfig::with_policy(policy(3, 400), seed)
        },
    );
    let report = run_campaign_pipelined(&reactor, campaign_probes(24), 16);
    assert_eq!(report.answered(), 24, "duplicates must not break matching");
    assert!(report.fully_accounted(24), "probe accounting leaked");
    let snap = wait_for_metrics(&reactor, |s| s.stray_replies > 0);
    assert_eq!(snap.received, 24, "each probe must match exactly once");
    assert!(
        snap.stray_replies > 0,
        "extra copies must surface as strays, not matches"
    );
    let stats = reactor.fault_stats().expect("fault layer enabled");
    assert!(stats.duplicated() > 0, "duplication never fired");
}

#[test]
fn delay_spikes_beyond_the_deadline_retire_then_stray() {
    let seed = seed_from_env("CDE_CHAOS_SEED", 6262);
    let _guard = SeedGuard::new("CDE_CHAOS_SEED", seed);
    let server = EchoServer::launch();
    // Every copy is held 60ms per direction against a 30ms deadline: no
    // attempt can be answered in time — the reply always lands after the
    // slot was retired, as a stray.
    let plan = FaultPlan {
        delay: Some(DelayFault {
            jitter: Duration::ZERO,
            spike_rate: 1.0,
            spike: Duration::from_millis(60),
        }),
        ..FaultPlan::clean(seed)
    };
    let reactor = launch_reactor(
        server.addr,
        ReactorConfig {
            faults: Some(plan),
            ..ReactorConfig::with_policy(policy(2, 30), seed)
        },
    );
    let report = run_campaign_pipelined(&reactor, campaign_probes(12), 8);
    assert_eq!(report.answered(), 0, "no reply can beat a 120ms spike");
    assert!(report.fully_accounted(12), "probe accounting leaked");
    let snap = wait_for_metrics(&reactor, |s| s.stray_replies > 0);
    assert!(snap.retries > 0, "timed-out attempts must retry");
    assert_eq!(snap.timeouts, 12, "every probe must retire by timeout");
    assert!(
        snap.stray_replies > 0,
        "spiked replies must land as strays after the deadline"
    );
    let stats = reactor.fault_stats().expect("fault layer enabled");
    assert!(stats.delayed() > 0, "spikes never fired");
}

#[test]
fn truncated_datagrams_are_decode_errors_not_matches() {
    let seed = seed_from_env("CDE_CHAOS_SEED", 7373);
    let _guard = SeedGuard::new("CDE_CHAOS_SEED", seed);
    let server = EchoServer::launch();
    // 40% of datagrams (each direction) are cut in half: truncated
    // queries die at the echo server's decoder, truncated replies at the
    // reactor's — visible as decode errors, never as matches.
    let plan = FaultPlan {
        truncate: Some(TruncateFault { rate: 0.4 }),
        ..FaultPlan::clean(seed)
    };
    let reactor = launch_reactor(
        server.addr,
        ReactorConfig {
            faults: Some(plan),
            ..ReactorConfig::with_policy(policy(6, 100), seed)
        },
    );
    let report = run_campaign_pipelined(&reactor, campaign_probes(24), 16);
    assert!(report.fully_accounted(24), "probe accounting leaked");
    assert!(
        report.answered() >= 18,
        "six attempts must usually outlast 40% truncation, got {} (seed {seed})",
        report.answered()
    );
    let snap = reactor.metrics().snapshot();
    assert!(
        snap.decode_errors > 0,
        "truncated replies must be counted as decode errors"
    );
    let stats = reactor.fault_stats().expect("fault layer enabled");
    assert!(stats.truncated() > 0, "truncation never fired");
}

#[test]
fn rate_limit_refusals_come_back_as_refused_answers() {
    let seed = seed_from_env("CDE_CHAOS_SEED", 8484);
    let _guard = SeedGuard::new("CDE_CHAOS_SEED", seed);
    let server = EchoServer::launch();
    // Two queries fit the bucket; the rest are REFUSED by a synthesized
    // reply that must still pass the reactor's anti-spoofing checks
    // (right id, right source, echoed question).
    let plan = FaultPlan {
        rate_limit: Some(RateLimitFault {
            qps: 0.001,
            burst: 2.0,
            action: RateLimitAction::Refuse,
        }),
        ..FaultPlan::clean(seed)
    };
    let reactor = launch_reactor(
        server.addr,
        ReactorConfig {
            faults: Some(plan),
            ..ReactorConfig::with_policy(policy(1, 400), seed)
        },
    );
    let (done_tx, done_rx) = unbounded();
    let mut refused = 0;
    let mut answered = 0;
    for i in 0..6 {
        let qname: Name = format!("limited-{i}.cache.example").parse().unwrap();
        assert!(reactor
            .handle()
            .submit(i, INGRESS, qname, RecordType::A, &done_tx));
        match done_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("probe never completed")
            .reply
        {
            TransportReply::Answered { rcode, .. } => {
                answered += 1;
                if rcode == Rcode::Refused {
                    refused += 1;
                }
            }
            TransportReply::TimedOut => {}
        }
    }
    assert_eq!(answered, 6, "REFUSED answers must still complete probes");
    assert_eq!(refused, 4, "four of six probes must overflow the bucket");
    let stats = reactor.fault_stats().expect("fault layer enabled");
    assert_eq!(stats.refused(), 4);
}
