//! Property-based tests for the sequential stopping planner: the rule
//! may only fire when the exact-count criterion holds, for *any*
//! interleaving of delivered, lost and cache-revealing probes.

use cde_core::access::DirectAccess;
use cde_core::enumerate::EnumerateOptions;
use cde_core::{enumerate_sequential, CdeInfra, SequentialPlanner};
use cde_netsim::{Link, SimTime};
use cde_platform::{NameserverNet, PlatformBuilder, SelectorKind};
use cde_probers::DirectProber;
use proptest::prelude::*;
use std::net::Ipv4Addr;

const INGRESS: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

/// One recorded probe: was it delivered, and how many first-time cache
/// fetches did it cause.
fn event() -> impl Strategy<Value = (bool, u64)> {
    // The vendored proptest rejects weighted `prop_oneof` arms, so the
    // mix is shaped by repeating arms: mostly quiet delivered probes,
    // some losses, occasional new-cache evidence.
    prop_oneof![
        Just((true, 0)),
        Just((true, 0)),
        Just((true, 0)),
        Just((true, 0)),
        Just((false, 0)),
        Just((false, 0)),
        Just((true, 1)),
        Just((false, 1)),
        Just((true, 2)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// After every recorded event, `should_stop` is *exactly* the
    /// criterion: at least one cache observed and a quiet run of at
    /// least `required_quiet` delivered probes, i.e. the miss
    /// probability under the worst-case alternative is at most ε.
    /// In particular the rule never fires a single probe early.
    #[test]
    fn stopping_rule_is_exactly_the_criterion(
        events in proptest::collection::vec(event(), 1..400),
        eps_millis in 1u64..500,
    ) {
        let epsilon = eps_millis as f64 / 1000.0;
        let mut p = SequentialPlanner::new(epsilon);
        for (delivered, new_caches) in events {
            if delivered {
                p.record_delivered(new_caches);
            } else {
                p.record_lost(new_caches);
            }
            let criterion = p.observed() >= 1
                && p.consecutive_quiet() >= p.required_quiet();
            prop_assert_eq!(
                p.should_stop(),
                criterion,
                "omega={} quiet={} need={} miss={}",
                p.observed(), p.consecutive_quiet(), p.required_quiet(), p.miss_probability()
            );
            if p.should_stop() {
                prop_assert!(p.miss_probability() <= epsilon);
            } else if p.observed() >= 1 {
                // One quiet probe short must leave the rule unfired.
                prop_assert!(p.miss_probability() > epsilon
                    || p.consecutive_quiet() >= p.required_quiet());
            }
        }
    }

    /// Loss alone never drives the planner to stop, no matter how long
    /// the campaign runs: only delivered probes carry evidence.
    #[test]
    fn pure_loss_never_stops(
        losses in 1u64..5_000,
        eps_millis in 1u64..500,
    ) {
        let mut p = SequentialPlanner::new(eps_millis as f64 / 1000.0);
        p.record_delivered(1);
        for _ in 0..losses {
            p.record_lost(0);
        }
        prop_assert_eq!(p.consecutive_quiet(), 0);
        prop_assert!(!p.should_stop());
    }

    /// The snapshot line round-trips the planner exactly at any point in
    /// a campaign, so checkpoint/resume preserves the stopping decision.
    #[test]
    fn snapshot_round_trips_mid_campaign(
        events in proptest::collection::vec(event(), 0..200),
        eps_millis in 1u64..500,
    ) {
        let mut p = SequentialPlanner::new(eps_millis as f64 / 1000.0);
        for (delivered, new_caches) in events {
            if delivered {
                p.record_delivered(new_caches);
            } else {
                p.record_lost(new_caches);
            }
        }
        let parsed = SequentialPlanner::from_snapshot_line(&p.snapshot_line());
        prop_assert_eq!(parsed.as_ref(), Some(&p));
        if let Some(parsed) = parsed {
            prop_assert_eq!(parsed.should_stop(), p.should_stop());
            prop_assert_eq!(parsed.required_quiet(), p.required_quiet());
        }
    }

    /// End to end on a lossless platform: the sequential run recovers
    /// the exact hidden count whenever it stops early (ε = 10⁻⁵ keeps
    /// the 256-case flake budget negligible).
    #[test]
    fn early_stop_preserves_exactness(
        n in 1usize..10,
        seed in 0u64..10_000,
    ) {
        let mut net = NameserverNet::new();
        let mut infra = CdeInfra::install(&mut net);
        let mut platform = PlatformBuilder::new(seed)
            .ingress(vec![INGRESS])
            .egress(vec![Ipv4Addr::new(192, 0, 3, 1)])
            .cluster(n, SelectorKind::Random)
            .build();
        let session = infra.new_session(&mut net, 0);
        let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), seed);
        let mut access = DirectAccess::new(&mut prober, &mut platform, INGRESS, &mut net);
        let budget = cde_analysis::coupon::query_budget(n as u64, 1e-5);
        let r = enumerate_sequential(
            &mut access,
            &infra,
            &session,
            EnumerateOptions::with_probes(budget),
            1e-5,
            SimTime::ZERO,
        );
        prop_assert_eq!(r.enumeration.observed, n as u64);
        prop_assert!(r.enumeration.probes <= budget);
        prop_assert_eq!(r.planner.observed(), r.enumeration.observed);
    }
}
