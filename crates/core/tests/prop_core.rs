//! Property-based tests for the CDE core: estimators, plans and the
//! enumeration invariants that hold for any platform shape.

use cde_analysis::estimators::estimate_cache_count;
use cde_core::access::DirectAccess;
use cde_core::enumerate::{enumerate_identical, enumerate_two_phase, EnumerateOptions};
use cde_core::{classify, CdeInfra, ProbePlan};
use cde_dns::Ttl;
use cde_netsim::{Link, SimTime};
use cde_platform::{NameserverNet, PlatformBuilder, SelectorKind};
use cde_probers::DirectProber;
use proptest::prelude::*;
use std::net::Ipv4Addr;

const INGRESS: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For any lossless platform and probe budget, the observation obeys
    /// 1 ≤ ω ≤ min(n, q), and the estimator never moves below ω.
    #[test]
    fn enumeration_bounds_hold(
        n in 1usize..12,
        probes in 1u64..80,
        seed in 0u64..10_000,
    ) {
        let mut net = NameserverNet::new();
        let mut infra = CdeInfra::install(&mut net);
        let mut platform = PlatformBuilder::new(seed)
            .ingress(vec![INGRESS])
            .egress(vec![Ipv4Addr::new(192, 0, 3, 1)])
            .cluster(n, SelectorKind::Random)
            .build();
        let session = infra.new_session(&mut net, 0);
        let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), seed);
        let mut access = DirectAccess::new(&mut prober, &mut platform, INGRESS, &mut net);
        let e = enumerate_identical(&mut access, &infra, &session, EnumerateOptions::with_probes(probes), SimTime::ZERO);
        prop_assert!(e.observed >= 1);
        prop_assert!(e.observed <= (n as u64).min(probes));
        prop_assert!(e.estimated >= e.observed);
        prop_assert_eq!(e.delivered, probes);
    }

    /// The two-phase protocol observes at least as much as its init phase
    /// and never exceeds the true count on lossless platforms.
    #[test]
    fn two_phase_bounds_hold(
        n in 1usize..10,
        ratio in 1u64..6,
        seed in 0u64..10_000,
    ) {
        let mut net = NameserverNet::new();
        let mut infra = CdeInfra::install(&mut net);
        let mut platform = PlatformBuilder::new(seed)
            .ingress(vec![INGRESS])
            .egress(vec![Ipv4Addr::new(192, 0, 3, 1)])
            .cluster(n, SelectorKind::Random)
            .build();
        let session = infra.new_session(&mut net, 0);
        let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), seed);
        let mut access = DirectAccess::new(&mut prober, &mut platform, INGRESS, &mut net);
        let r = enumerate_two_phase(&mut access, &infra, &session, ratio * n as u64, SimTime::ZERO);
        prop_assert!(r.total_observed <= n as u64);
        prop_assert_eq!(r.observed_init + r.observed_validate, r.total_observed);
        prop_assert!(r.validate_hits <= r.seeds);
    }

    /// The estimator is monotone in the observation, below saturation.
    /// (At ω = q the estimator deliberately returns the conservative ω —
    /// the data cannot distinguish n = q from any larger n — so the
    /// saturated point sits below the inverted-occupancy curve.)
    #[test]
    fn estimator_monotone(probes in 2u64..200, w1 in 1u64..100, w2 in 1u64..100) {
        let a = w1.min(w2).min(probes - 1);
        let b = w1.max(w2).min(probes - 1);
        prop_assert!(estimate_cache_count(a, probes) <= estimate_cache_count(b, probes));
        // And the saturated case stays conservative.
        prop_assert_eq!(estimate_cache_count(probes, probes), probes);
    }

    /// Probe plans grow monotonically with the assumed bound and the loss
    /// rate.
    #[test]
    fn plans_are_monotone(n1 in 1u64..64, n2 in 1u64..64, loss in 0.0f64..0.5) {
        let (lo, hi) = (n1.min(n2), n1.max(n2));
        let a = ProbePlan::for_target(lo, loss);
        let b = ProbePlan::for_target(hi, loss);
        prop_assert!(a.probes <= b.probes);
        prop_assert!(a.seeds <= b.seeds);
        let clean = ProbePlan::for_target(hi, 0.0);
        prop_assert!(clean.redundancy <= b.redundancy);
    }

    /// Fingerprint classification maps each profile's cap pair back to the
    /// profile, and nothing else maps anywhere.
    #[test]
    fn classify_is_injective_on_profiles(pos in 0u32..1_000_000, neg in 0u32..1_000_000) {
        use cde_cache::SoftwareProfile;
        for profile in SoftwareProfile::all() {
            let p = profile.positive_cap();
            let n = profile.negative_cap();
            let expected = if p.as_secs() == u32::MAX { None } else { Some(p) };
            let expected_n = if n.as_secs() == u32::MAX { None } else { Some(n) };
            prop_assert_eq!(classify(expected, expected_n), Some(profile));
        }
        // Arbitrary other pairs never classify.
        let arbitrary = classify(Some(Ttl::from_secs(pos)), Some(Ttl::from_secs(neg)));
        if let Some(p) = arbitrary {
            prop_assert_eq!(Some(p.positive_cap().as_secs()), Some(pos));
            prop_assert_eq!(Some(p.negative_cap().as_secs()), Some(neg));
        }
    }
}
