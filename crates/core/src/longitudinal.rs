//! Longitudinal platform tracking (paper §I-B).
//!
//! "Our tools enable repetitive studies of the caches over periods of
//! time. This allows to perform analyses of adoption of new mechanisms,
//! trends, growth of the DNS resolution platforms and more." A
//! [`PlatformTracker`] re-measures the same platform at successive epochs
//! — each with a fresh honey session, so epochs never contaminate each
//! other — and reports the timeline plus detected capacity changes
//! (growth, or the §II-B failure case: "a DNS platform uses four caches,
//! but our tool measures two, namely two are down").

use crate::access::AccessChannel;
use crate::enumerate::{enumerate_identical, EnumerateOptions};
use crate::infra::CdeInfra;
use cde_analysis::coupon::query_budget;
use cde_netsim::{SimDuration, SimTime};

/// One epoch's measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochMeasurement {
    /// When the epoch ran.
    pub at: SimTime,
    /// Caches measured.
    pub caches: u64,
    /// Egress addresses observed during the epoch.
    pub egress: u64,
}

/// A detected change between consecutive epochs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapacityChange {
    /// Cache count grew (platform expansion).
    Growth {
        /// Epoch index where the change was first seen.
        epoch: usize,
        /// Count before.
        from: u64,
        /// Count after.
        to: u64,
    },
    /// Cache count shrank (failure or decommissioning — the §II-B alert).
    Shrink {
        /// Epoch index where the change was first seen.
        epoch: usize,
        /// Count before.
        from: u64,
        /// Count after.
        to: u64,
    },
}

/// Timeline produced by a tracking run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timeline {
    /// Per-epoch measurements, in order.
    pub epochs: Vec<EpochMeasurement>,
    /// Detected capacity changes.
    pub changes: Vec<CapacityChange>,
}

impl Timeline {
    /// `true` when every epoch measured the same cache count.
    pub fn is_stable(&self) -> bool {
        self.changes.is_empty()
    }

    /// The latest measured cache count, if any epoch ran.
    pub fn current_caches(&self) -> Option<u64> {
        self.epochs.last().map(|e| e.caches)
    }
}

/// Tracks one platform across measurement epochs.
#[derive(Debug)]
pub struct PlatformTracker {
    n_max: u64,
    epochs: Vec<EpochMeasurement>,
}

impl PlatformTracker {
    /// Creates a tracker with an assumed cache-count bound.
    pub fn new(n_max: u64) -> PlatformTracker {
        PlatformTracker {
            n_max: n_max.max(1),
            epochs: Vec::new(),
        }
    }

    /// Runs one measurement epoch through `access` at virtual time `at`.
    ///
    /// Each epoch uses a fresh honey session, so a record planted in an
    /// earlier epoch never answers a later one.
    pub fn measure_epoch<A: AccessChannel>(
        &mut self,
        access: &mut A,
        infra: &mut CdeInfra,
        at: SimTime,
    ) -> EpochMeasurement {
        infra.clear_observations(access.net_mut());
        let session = infra.new_session(access.net_mut(), 0);
        let e = enumerate_identical(
            access,
            infra,
            &session,
            EnumerateOptions {
                probes: query_budget(self.n_max, 0.001),
                redundancy: 1,
                gap: SimDuration::from_millis(10),
            },
            at,
        );
        let egress = infra.observed_egress_sources(access.net()).len() as u64;
        let m = EpochMeasurement {
            at,
            caches: e.estimated,
            egress,
        };
        self.epochs.push(m);
        m
    }

    /// The timeline so far, with detected changes.
    pub fn timeline(&self) -> Timeline {
        let mut changes = Vec::new();
        for (i, pair) in self.epochs.windows(2).enumerate() {
            let (prev, next) = (pair[0], pair[1]);
            if next.caches > prev.caches {
                changes.push(CapacityChange::Growth {
                    epoch: i + 1,
                    from: prev.caches,
                    to: next.caches,
                });
            } else if next.caches < prev.caches {
                changes.push(CapacityChange::Shrink {
                    epoch: i + 1,
                    from: prev.caches,
                    to: next.caches,
                });
            }
        }
        Timeline {
            epochs: self.epochs.clone(),
            changes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::DirectAccess;
    use cde_netsim::Link;
    use cde_platform::{NameserverNet, PlatformBuilder, ResolutionPlatform, SelectorKind};
    use cde_probers::DirectProber;
    use std::net::Ipv4Addr;

    const INGRESS: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

    fn build(caches: usize, seed: u64) -> ResolutionPlatform {
        PlatformBuilder::new(seed)
            .ingress(vec![INGRESS])
            .egress((1..=3).map(|d| Ipv4Addr::new(192, 0, 3, d)).collect())
            .cluster(caches, SelectorKind::Random)
            .build()
    }

    fn epoch_at(hours: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(hours * 3600)
    }

    #[test]
    fn stable_platform_has_flat_timeline() {
        let mut net = NameserverNet::new();
        let mut infra = CdeInfra::install(&mut net);
        let mut platform = build(3, 71);
        let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 1);
        let mut tracker = PlatformTracker::new(8);
        for h in 0..4 {
            let mut access = DirectAccess::new(&mut prober, &mut platform, INGRESS, &mut net);
            let m = tracker.measure_epoch(&mut access, &mut infra, epoch_at(h * 24));
            assert_eq!(m.caches, 3, "epoch {h}");
        }
        let tl = tracker.timeline();
        assert!(tl.is_stable());
        assert_eq!(tl.current_caches(), Some(3));
        assert_eq!(tl.epochs.len(), 4);
    }

    #[test]
    fn outage_is_reported_as_shrink() {
        let mut net = NameserverNet::new();
        let mut infra = CdeInfra::install(&mut net);
        let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 2);
        let mut tracker = PlatformTracker::new(8);
        // Epoch 0: healthy 4-cache platform.
        let mut healthy = build(4, 72);
        {
            let mut access = DirectAccess::new(&mut prober, &mut healthy, INGRESS, &mut net);
            tracker.measure_epoch(&mut access, &mut infra, epoch_at(0));
        }
        // Epoch 1: two instances down (the balancer stops routing to them).
        let mut degraded = build(2, 72);
        {
            let mut access = DirectAccess::new(&mut prober, &mut degraded, INGRESS, &mut net);
            tracker.measure_epoch(&mut access, &mut infra, epoch_at(24));
        }
        let tl = tracker.timeline();
        assert_eq!(
            tl.changes,
            vec![CapacityChange::Shrink {
                epoch: 1,
                from: 4,
                to: 2
            }]
        );
    }

    #[test]
    fn growth_is_reported() {
        let mut net = NameserverNet::new();
        let mut infra = CdeInfra::install(&mut net);
        let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 3);
        let mut tracker = PlatformTracker::new(16);
        for (h, caches) in [(0u64, 2usize), (24, 2), (48, 6)] {
            let mut platform = build(caches, 73);
            let mut access = DirectAccess::new(&mut prober, &mut platform, INGRESS, &mut net);
            tracker.measure_epoch(&mut access, &mut infra, epoch_at(h));
        }
        let tl = tracker.timeline();
        assert_eq!(
            tl.changes,
            vec![CapacityChange::Growth {
                epoch: 2,
                from: 2,
                to: 6
            }]
        );
    }

    #[test]
    fn epochs_do_not_contaminate_each_other() {
        // The same live platform tracked over epochs: the later epochs use
        // fresh honey, so earlier sessions' cached records cannot deflate
        // the count.
        let mut net = NameserverNet::new();
        let mut infra = CdeInfra::install(&mut net);
        let mut platform = build(5, 74);
        let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 4);
        let mut tracker = PlatformTracker::new(8);
        for h in 0..3 {
            let mut access = DirectAccess::new(&mut prober, &mut platform, INGRESS, &mut net);
            // Epochs only minutes apart: all session TTLs still alive.
            let m = tracker.measure_epoch(
                &mut access,
                &mut infra,
                SimTime::ZERO + SimDuration::from_secs(h * 120),
            );
            assert_eq!(m.caches, 5, "epoch {h}");
        }
        assert!(tracker.timeline().is_stable());
    }
}
