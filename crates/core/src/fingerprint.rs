//! DNS software fingerprinting via cache behaviour (paper §II-C).
//!
//! "Caches on DNS resolution platforms are often running different DNS
//! software. For distribution and integration of patches it is important
//! to know which software the caches are running." Unlike prior
//! query-pattern fingerprinting (which, as §VI notes, identifies the
//! egress resolver software, not the caches), this classifier probes the
//! *caching behaviour itself*: resolver implementations enforce distinct
//! default positive and negative TTL caps, and those caps are observable
//! from outside by planting long-TTL records and timing their re-fetch.

use crate::access::AccessChannel;
use crate::infra::CdeInfra;
use cde_analysis::coupon::query_budget;
use cde_cache::SoftwareProfile;
use cde_dns::Ttl;
use cde_netsim::{SimDuration, SimTime};

/// What the fingerprinting probes measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fingerprint {
    /// Smallest probed horizon at which a *positive* record the platform
    /// cached had expired (its effective positive-TTL cap); `None` when it
    /// survived every probed horizon.
    pub positive_cap: Option<Ttl>,
    /// Smallest probed horizon at which a cached *negative* answer had
    /// expired; `None` when it survived every probed horizon.
    pub negative_cap: Option<Ttl>,
    /// The software profile matching the measured cap pair, if any.
    pub classified: Option<SoftwareProfile>,
}

/// Options for fingerprinting.
#[derive(Debug, Clone)]
pub struct FingerprintOptions {
    /// Candidate positive-cap horizons, ascending (defaults: 1 day, 1
    /// week — the caps of the profiled software).
    pub positive_candidates: Vec<Ttl>,
    /// Candidate negative-cap horizons, ascending (defaults: 15 min, 1 h,
    /// 3 h).
    pub negative_candidates: Vec<Ttl>,
    /// Assumed cache-count bound (sets per-phase probe budgets).
    pub n_max: u64,
}

impl Default for FingerprintOptions {
    fn default() -> FingerprintOptions {
        FingerprintOptions {
            positive_candidates: vec![Ttl::from_secs(86_400), Ttl::from_secs(604_800)],
            negative_candidates: vec![
                Ttl::from_secs(900),
                Ttl::from_secs(3_600),
                Ttl::from_secs(10_800),
            ],
            n_max: 16,
        }
    }
}

/// Fingerprints the software of the caches behind `access`.
///
/// For each candidate horizon `C`: plant a fresh honey record whose
/// nominal TTL far exceeds `C`, saturate the caches, then re-probe just
/// past `C`. A fetch at the CDE nameserver means the platform expired the
/// record early — its cap is at most `C`. The same procedure with a
/// non-existent name measures the negative cap. The `(positive,
/// negative)` cap pair identifies the software profile.
pub fn fingerprint_software<A: AccessChannel>(
    access: &mut A,
    infra: &mut CdeInfra,
    opts: &FingerprintOptions,
    start: SimTime,
) -> Fingerprint {
    let budget = query_budget(opts.n_max, 0.001);
    let mut now = start;

    // Positive cap: ascending candidates, fresh honey per candidate.
    let mut positive_cap = None;
    for &cand in &opts.positive_candidates {
        let session = infra.new_session_with_ttl(
            access.net_mut(),
            0,
            Ttl::from_secs(cand.as_secs().saturating_mul(8).max(30 * 86_400)),
        );
        for _ in 0..budget {
            let _ = access.trigger(&session.honey, now);
        }
        let seeded = infra.count_honey_fetches(access.net(), &session.honey) as u64;
        let check_at = now + SimDuration::from_secs(cand.as_secs() as u64 + 60);
        for _ in 0..4 {
            let _ = access.trigger(&session.honey, check_at);
        }
        let after = infra.count_honey_fetches(access.net(), &session.honey) as u64;
        now = check_at + SimDuration::from_secs(60);
        if after > seeded {
            positive_cap = Some(cand);
            break;
        }
    }

    // Negative cap: ascending candidates, fresh nonce per candidate. The
    // CDE zone's SOA MINIMUM (1 day) exceeds every candidate, so an early
    // re-fetch can only come from the platform's own negative cap.
    let mut negative_cap = None;
    for &cand in &opts.negative_candidates {
        let nonce = infra.fresh_nonce_name();
        for _ in 0..budget {
            let _ = access.trigger(&nonce, now);
        }
        let seeded = count_nonce_fetches(access, infra, &nonce) as u64;
        let check_at = now + SimDuration::from_secs(cand.as_secs() as u64 + 60);
        for _ in 0..4 {
            let _ = access.trigger(&nonce, check_at);
        }
        let after = count_nonce_fetches(access, infra, &nonce) as u64;
        now = check_at + SimDuration::from_secs(60);
        if after > seeded {
            negative_cap = Some(cand);
            break;
        }
    }

    Fingerprint {
        positive_cap,
        negative_cap,
        classified: classify(positive_cap, negative_cap),
    }
}

fn count_nonce_fetches<A: AccessChannel>(
    access: &A,
    infra: &CdeInfra,
    nonce: &cde_dns::Name,
) -> usize {
    access
        .net()
        .server(infra.zone_server_addr())
        .map(|s| s.count_queries_for(nonce))
        .unwrap_or(0)
}

/// Maps a measured cap pair to a profile when exactly one matches.
pub fn classify(positive: Option<Ttl>, negative: Option<Ttl>) -> Option<SoftwareProfile> {
    match (positive.map(Ttl::as_secs), negative.map(Ttl::as_secs)) {
        (Some(604_800), Some(10_800)) => Some(SoftwareProfile::BindLike),
        (Some(86_400), Some(3_600)) => Some(SoftwareProfile::UnboundLike),
        (Some(86_400), Some(900)) => Some(SoftwareProfile::MsdnsLike),
        (None, None) => Some(SoftwareProfile::DnsmasqLike),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::DirectAccess;
    use cde_netsim::Link;
    use cde_platform::{
        ClusterConfig, NameserverNet, PlatformBuilder, ResolutionPlatform, SelectorKind,
    };
    use cde_probers::DirectProber;
    use std::net::Ipv4Addr;

    const INGRESS: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

    fn build(
        profile: SoftwareProfile,
        caches: usize,
        seed: u64,
    ) -> (ResolutionPlatform, NameserverNet, CdeInfra) {
        let mut net = NameserverNet::new();
        let infra = CdeInfra::install(&mut net);
        let platform = PlatformBuilder::new(seed)
            .ingress(vec![INGRESS])
            .egress(vec![Ipv4Addr::new(192, 0, 3, 1)])
            .cluster_config(ClusterConfig {
                cache_count: caches,
                cache_config: profile.cache_config(),
                selector: SelectorKind::Random,
            })
            .build();
        (platform, net, infra)
    }

    fn fingerprint(profile: SoftwareProfile, caches: usize, seed: u64) -> Fingerprint {
        let (mut platform, mut net, mut infra) = build(profile, caches, seed);
        let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), seed);
        let mut access = DirectAccess::new(&mut prober, &mut platform, INGRESS, &mut net);
        fingerprint_software(
            &mut access,
            &mut infra,
            &FingerprintOptions::default(),
            SimTime::ZERO,
        )
    }

    #[test]
    fn classifies_every_profile_on_single_cache_platforms() {
        for profile in SoftwareProfile::all() {
            let fp = fingerprint(profile, 1, 61);
            assert_eq!(fp.classified, Some(profile), "{profile}: {fp:?}");
        }
    }

    #[test]
    fn classifies_profiles_behind_multiple_caches() {
        for profile in SoftwareProfile::all() {
            let fp = fingerprint(profile, 4, 62);
            assert_eq!(fp.classified, Some(profile), "{profile}: {fp:?}");
        }
    }

    #[test]
    fn measured_caps_match_profile_constants() {
        let fp = fingerprint(SoftwareProfile::UnboundLike, 2, 63);
        assert_eq!(fp.positive_cap, Some(Ttl::from_secs(86_400)));
        assert_eq!(fp.negative_cap, Some(Ttl::from_secs(3_600)));
    }

    #[test]
    fn classify_rejects_ambiguous_pairs() {
        assert_eq!(classify(Some(Ttl::from_secs(604_800)), None), None);
        assert_eq!(classify(None, Some(Ttl::from_secs(900))), None);
        assert_eq!(
            classify(Some(Ttl::from_secs(86_400)), Some(Ttl::from_secs(10_800))),
            None
        );
    }
}
