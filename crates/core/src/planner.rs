//! Probe planning: loss measurement and query budgets.
//!
//! The paper calibrates its probing to the target network: the carpet
//! bombing parameter `K` "is a function of a packet loss in the measured
//! network" (§V), and the seed count must satisfy `N > n` (§V-B). The
//! planner measures loss first, then derives all budgets from an assumed
//! upper bound on the cache count.

use crate::access::AccessChannel;
use crate::infra::CdeInfra;
use cde_analysis::coupon::query_budget;
use cde_analysis::estimators::{carpet_bombing_k, recommended_seeds};
use cde_netsim::{SimDuration, SimTime};

/// A complete probing plan for one target platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbePlan {
    /// Assumed upper bound on the cache count (`n_max`).
    pub n_max: u64,
    /// Measured (or assumed) packet-loss rate toward the target.
    pub loss: f64,
    /// Identical/farm probes for enumeration (coupon-collector budget at
    /// 0.1% failure).
    pub probes: u64,
    /// Seeds per phase for init/validate and for honey planting.
    pub seeds: u64,
    /// Carpet-bombing copies per probe.
    pub redundancy: u64,
}

impl ProbePlan {
    /// Derives a plan from an assumed cache-count bound and a loss rate.
    ///
    /// # Panics
    ///
    /// Panics when `n_max` is zero or `loss` is outside `[0, 1)`.
    pub fn for_target(n_max: u64, loss: f64) -> ProbePlan {
        assert!(n_max > 0, "n_max must be positive");
        ProbePlan {
            n_max,
            loss,
            probes: query_budget(n_max, 0.001),
            seeds: recommended_seeds(n_max, loss),
            redundancy: carpet_bombing_k(loss, 0.001),
        }
    }

    /// Total queries an enumeration run under this plan may spend.
    pub fn worst_case_queries(&self) -> u64 {
        self.probes * self.redundancy
    }

    /// Serializes the plan as one `plan key=value ...` line for
    /// versioned checkpoint files; [`ProbePlan::from_snapshot_line`]
    /// round-trips it exactly. `loss` is written with Rust's
    /// shortest-round-trip float formatting, so the parsed value is
    /// bit-identical to the original.
    pub fn snapshot_line(&self) -> String {
        format!(
            "plan n_max={} loss={} probes={} seeds={} redundancy={}",
            self.n_max, self.loss, self.probes, self.seeds, self.redundancy
        )
    }

    /// Parses a line written by [`ProbePlan::snapshot_line`]. Returns
    /// `None` on malformed input; unknown keys are ignored so newer
    /// writers stay readable by older parsers.
    pub fn from_snapshot_line(line: &str) -> Option<ProbePlan> {
        let mut fields = line.split_whitespace();
        if fields.next() != Some("plan") {
            return None;
        }
        let (mut n_max, mut loss, mut probes, mut seeds, mut redundancy) =
            (None, None, None, None, None);
        for field in fields {
            let (key, value) = field.split_once('=')?;
            match key {
                "n_max" => n_max = Some(value.parse().ok()?),
                "loss" => loss = Some(value.parse().ok()?),
                "probes" => probes = Some(value.parse().ok()?),
                "seeds" => seeds = Some(value.parse().ok()?),
                "redundancy" => redundancy = Some(value.parse().ok()?),
                _ => {}
            }
        }
        Some(ProbePlan {
            n_max: n_max?,
            loss: loss?,
            probes: probes?,
            seeds: seeds?,
            redundancy: redundancy?,
        })
    }

    /// Like [`for_target`](ProbePlan::for_target), but for *bursty* loss
    /// with mean burst length `mean_burst` packets (Gilbert–Elliott).
    ///
    /// Carpet bombing sends its K copies back-to-back, so under bursty
    /// loss the copies are *not* independent: a burst that eats the first
    /// copy likely eats its neighbours too. The uniform-loss budget
    /// `carpet_bombing_k` (⌈ln eps / ln loss⌉) under-provisions; this
    /// plan adds a burst-aware floor and keeps whichever is larger.
    ///
    /// # Panics
    ///
    /// Panics when `n_max` is zero, `loss` is outside `[0, 1)`, or
    /// `mean_burst < 1`.
    pub fn for_bursty_target(n_max: u64, loss: f64, mean_burst: f64) -> ProbePlan {
        assert!(
            mean_burst.is_finite() && mean_burst >= 1.0,
            "mean_burst must be >= 1"
        );
        let base = ProbePlan::for_target(n_max, loss);
        ProbePlan {
            redundancy: base
                .redundancy
                .max(bursty_redundancy(loss, mean_burst, 0.001)),
            ..base
        }
    }
}

/// Copies per probe so that, in the Gilbert–Elliott bad state, at least
/// one copy survives with probability `1 − eps`.
///
/// Back-to-back copies see correlated fates: if copy `i` died in a burst,
/// copy `i+1` is still inside it with probability `stay = 1 − 1/burst`.
/// The first copy dies with the stationary rate `loss`; given that, the
/// next `k−1` copies all die with probability ≈ `stay^(k−1)`, so
/// `loss · stay^(k−1) ≤ eps` gives `k = 1 + ⌈ln(eps/loss) / ln stay⌉`.
fn bursty_redundancy(loss: f64, mean_burst: f64, eps: f64) -> u64 {
    if loss <= eps {
        return 1;
    }
    let stay = 1.0 - 1.0 / mean_burst;
    if stay <= 0.0 {
        // Bursts of one packet: drops are independent, two copies only
        // ever die together by coincidence — the uniform budget rules.
        return 2;
    }
    let k = 1.0 + ((eps / loss).ln() / stay.ln()).ceil();
    (k as u64).clamp(2, 255)
}

/// Measures packet loss toward the target: triggers `probes` fresh nonce
/// queries and reports the timed-out fraction.
///
/// Nonce names always miss every cache, so each probe exercises the full
/// round trip; on direct channels the answer/timeout ratio is the loss
/// signal (both directions compounded, which is what carpet bombing must
/// overcome anyway).
pub fn measure_loss<A: AccessChannel>(
    access: &mut A,
    infra: &mut CdeInfra,
    probes: u64,
    start: SimTime,
) -> f64 {
    assert!(probes > 0, "need at least one probe");
    let mut now = start;
    let mut lost = 0u64;
    for _ in 0..probes {
        let nonce = infra.fresh_nonce_name();
        if !access.trigger(&nonce, now).is_delivered() {
            lost += 1;
        }
        now += SimDuration::from_millis(20);
    }
    lost as f64 / probes as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::DirectAccess;
    use cde_netsim::{CountryProfile, LatencyModel, Link, LossModel};
    use cde_platform::{NameserverNet, PlatformBuilder, ResolutionPlatform, SelectorKind};
    use cde_probers::DirectProber;
    use std::net::Ipv4Addr;

    fn world(seed: u64) -> (ResolutionPlatform, NameserverNet, CdeInfra) {
        let mut net = NameserverNet::new();
        let infra = CdeInfra::install(&mut net);
        let platform = PlatformBuilder::new(seed)
            .ingress(vec![Ipv4Addr::new(192, 0, 2, 1)])
            .egress(vec![Ipv4Addr::new(192, 0, 3, 1)])
            .cluster(2, SelectorKind::Random)
            .build();
        (platform, net, infra)
    }

    #[test]
    fn plan_scales_with_loss() {
        let clean = ProbePlan::for_target(8, 0.0);
        let iran = ProbePlan::for_target(8, 0.11);
        assert_eq!(clean.redundancy, 1);
        assert_eq!(iran.redundancy, 4);
        assert!(iran.seeds > clean.seeds);
        assert!(iran.worst_case_queries() > clean.worst_case_queries());
    }

    #[test]
    fn plan_probes_exceed_expectation() {
        let plan = ProbePlan::for_target(8, 0.0);
        assert!(plan.probes as f64 > cde_analysis::coupon::expected_queries(8));
    }

    #[test]
    #[should_panic(expected = "n_max")]
    fn zero_n_max_rejected() {
        ProbePlan::for_target(0, 0.0);
    }

    #[test]
    fn bursty_plan_out_provisions_the_uniform_budget() {
        let uniform = ProbePlan::for_target(8, 0.3);
        let bursty = ProbePlan::for_bursty_target(8, 0.3, 4.0);
        // ln(0.001)/ln(0.3) → 6 copies under independence; 4-packet
        // bursts (stay 0.75) need 1 + ⌈ln(0.001/0.3)/ln 0.75⌉ = 21.
        assert_eq!(uniform.redundancy, 6);
        assert_eq!(bursty.redundancy, 21);
        // Everything except redundancy matches the uniform plan.
        assert_eq!(bursty.probes, uniform.probes);
        assert_eq!(bursty.seeds, uniform.seeds);
    }

    #[test]
    fn bursty_plan_degenerates_gracefully() {
        // Single-packet bursts are independent loss: the uniform budget
        // dominates.
        let single = ProbePlan::for_bursty_target(8, 0.3, 1.0);
        assert_eq!(single.redundancy, ProbePlan::for_target(8, 0.3).redundancy);
        // Negligible loss needs no redundancy at all.
        assert_eq!(ProbePlan::for_bursty_target(8, 0.0, 4.0).redundancy, 1);
    }

    #[test]
    #[should_panic(expected = "mean_burst")]
    fn bursty_plan_rejects_sub_packet_bursts() {
        ProbePlan::for_bursty_target(8, 0.3, 0.5);
    }

    #[test]
    fn snapshot_line_round_trips_exactly() {
        for plan in [
            ProbePlan::for_target(1, 0.0),
            ProbePlan::for_target(64, 0.25),
            ProbePlan::for_bursty_target(32, 0.3, 4.0),
            ProbePlan {
                n_max: u64::MAX,
                loss: 0.123_456_789_012_345_6,
                probes: 7,
                seeds: 9,
                redundancy: 255,
            },
        ] {
            let line = plan.snapshot_line();
            let parsed = ProbePlan::from_snapshot_line(&line)
                .unwrap_or_else(|| panic!("unparseable: {line}"));
            assert_eq!(parsed, plan, "line {line}");
        }
    }

    #[test]
    fn snapshot_line_rejects_malformed_input() {
        assert!(ProbePlan::from_snapshot_line("").is_none());
        assert!(ProbePlan::from_snapshot_line("plan").is_none());
        assert!(ProbePlan::from_snapshot_line("nope n_max=1").is_none());
        assert!(
            ProbePlan::from_snapshot_line("plan n_max=1 loss=0 probes=2 seeds=3").is_none(),
            "missing redundancy"
        );
        assert!(
            ProbePlan::from_snapshot_line("plan n_max=x loss=0 probes=2 seeds=3 redundancy=1")
                .is_none(),
            "unparseable value"
        );
        // Unknown keys are tolerated for forward compatibility.
        let line = "plan n_max=4 loss=0.5 probes=40 seeds=12 redundancy=9 future=1";
        assert!(ProbePlan::from_snapshot_line(line).is_some());
    }

    #[test]
    fn measured_loss_matches_link() {
        for profile in [CountryProfile::Lossless, CountryProfile::Iran] {
            let (mut platform, mut net, mut infra) = world(61);
            let link = Link::new(
                LatencyModel::Constant(SimDuration::from_millis(10)),
                LossModel::with_rate(profile.loss_rate()),
            );
            let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), link, 1);
            let mut access = DirectAccess::new(
                &mut prober,
                &mut platform,
                Ipv4Addr::new(192, 0, 2, 1),
                &mut net,
            );
            let measured = measure_loss(&mut access, &mut infra, 400, SimTime::ZERO);
            // Two traversals per probe → effective ≈ 1 − (1−p)².
            let expected = 1.0 - (1.0 - profile.loss_rate()).powi(2);
            assert!(
                (measured - expected).abs() < 0.06,
                "{profile}: measured {measured:.3}, expected {expected:.3}"
            );
        }
    }
}
