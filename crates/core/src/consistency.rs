//! TTL-consistency auditing (paper §II-C, first motivating example).
//!
//! Requesting the same record twice within its TTL should cost the
//! resolution platform at most one upstream query — *per cache*. Earlier
//! studies interpreted extra upstream queries as TTL violations; the
//! paper points out they may simply indicate multiple caches. This module
//! separates the two, and additionally detects the two real TTL
//! inconsistencies platforms introduce by clamping (§II-C footnote 2):
//!
//! * **early refresh** — the platform caps TTLs below the record's value
//!   (a `max_ttl` clamp), so fetches recur within the nominal TTL even
//!   after every cache holds the record;
//! * **stale serving** — the platform raises TTLs above the record's
//!   value (a `min_ttl` clamp), so the record keeps being served from
//!   cache after it should have expired.

use crate::access::AccessChannel;
use crate::enumerate::{enumerate_identical, EnumerateOptions};
use crate::infra::CdeInfra;
use cde_analysis::coupon::query_budget;
use cde_dns::Ttl;
use cde_netsim::{SimDuration, SimTime};

/// The audit's verdict on one platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TtlVerdict {
    /// Multiple upstream fetches were fully explained by the cache count;
    /// TTLs are respected in both directions.
    Consistent,
    /// Fetches recurred within the record's TTL beyond what the cache
    /// count explains: the platform expires records early.
    EarlyRefresh,
    /// The record kept being answered from cache after its TTL expired:
    /// the platform serves stale records.
    StaleServing,
}

impl std::fmt::Display for TtlVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TtlVerdict::Consistent => write!(f, "consistent"),
            TtlVerdict::EarlyRefresh => write!(f, "early-refresh"),
            TtlVerdict::StaleServing => write!(f, "stale-serving"),
        }
    }
}

/// Full audit report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsistencyReport {
    /// Caches counted in the warm-up phase — the number of upstream
    /// fetches that is *expected and consistent* (the paper's correction
    /// to naive TTL studies).
    pub caches: u64,
    /// Extra fetches observed while re-probing within the TTL (0 for a
    /// consistent platform).
    pub refetches_within_ttl: u64,
    /// Fetches observed when probing after expiry (≈ `caches` for a
    /// consistent platform; 0 under stale serving).
    pub fetches_after_expiry: u64,
    /// Record TTL used by the audit.
    pub record_ttl: Ttl,
    /// The verdict.
    pub verdict: TtlVerdict,
}

/// Options for the audit.
#[derive(Debug, Clone, Copy)]
pub struct ConsistencyOptions {
    /// TTL given to the audit's honey record.
    pub record_ttl: Ttl,
    /// Assumed upper bound on the cache count (sets probe budgets).
    pub n_max: u64,
    /// Number of within-TTL re-probe rounds.
    pub recheck_rounds: u64,
}

impl Default for ConsistencyOptions {
    fn default() -> ConsistencyOptions {
        ConsistencyOptions {
            record_ttl: Ttl::from_secs(600),
            n_max: 16,
            recheck_rounds: 3,
        }
    }
}

/// Audits one platform's TTL behaviour through `access`.
///
/// Phase 1 (warm-up, t≈0): enumerate the caches with a generous budget —
/// these fetches are the legitimate per-cache first misses.
/// Phase 2 (within TTL): re-probe at several points strictly inside the
/// TTL; any further fetch is an early refresh.
/// Phase 3 (after expiry): probe past the TTL; a consistent platform
/// re-fetches (per probed cache), a stale-serving one stays silent.
pub fn audit_ttl_consistency<A: AccessChannel>(
    access: &mut A,
    infra: &mut CdeInfra,
    opts: ConsistencyOptions,
    start: SimTime,
) -> ConsistencyReport {
    let session = infra.new_session_with_ttl(access.net_mut(), 0, opts.record_ttl);
    let budget = query_budget(opts.n_max, 0.001);
    let ttl_span = SimDuration::from_secs(opts.record_ttl.as_secs() as u64);

    // Phase 1: warm-up enumeration at t ≈ 0.
    let warmup = enumerate_identical(
        access,
        infra,
        &session,
        EnumerateOptions {
            probes: budget,
            redundancy: 1,
            gap: SimDuration::from_millis(5),
        },
        start,
    );
    let caches = warmup.observed;

    // Phase 2: probes spread strictly inside the TTL window. The warm-up
    // itself stays within a few seconds, far from the TTL.
    let baseline = infra.count_honey_fetches(access.net(), &session.honey) as u64;
    for round in 1..=opts.recheck_rounds {
        // Sit at 1/4, 2/4, 3/4 ... of the TTL (never reaching it).
        let at = start + ttl_span * round / (opts.recheck_rounds + 1);
        for _ in 0..budget.min(2 * opts.n_max) {
            let _ = access.trigger(&session.honey, at);
        }
    }
    let refetches_within_ttl =
        infra.count_honey_fetches(access.net(), &session.honey) as u64 - baseline;

    // Phase 3: after expiry (half a TTL past the end, measured from the
    // last phase-2 probe so every legitimate entry has lapsed).
    let before_expiry_probes = infra.count_honey_fetches(access.net(), &session.honey) as u64;
    let after = start + ttl_span * 2 + ttl_span / 2;
    for _ in 0..budget.min(2 * opts.n_max) {
        let _ = access.trigger(&session.honey, after);
    }
    let fetches_after_expiry =
        infra.count_honey_fetches(access.net(), &session.honey) as u64 - before_expiry_probes;

    let verdict = if refetches_within_ttl > 0 {
        TtlVerdict::EarlyRefresh
    } else if fetches_after_expiry == 0 {
        TtlVerdict::StaleServing
    } else {
        TtlVerdict::Consistent
    };

    ConsistencyReport {
        caches,
        refetches_within_ttl,
        fetches_after_expiry,
        record_ttl: opts.record_ttl,
        verdict,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::DirectAccess;
    use cde_cache::CacheConfig;
    use cde_netsim::Link;
    use cde_platform::{
        ClusterConfig, NameserverNet, PlatformBuilder, ResolutionPlatform, SelectorKind,
    };
    use cde_probers::DirectProber;
    use std::net::Ipv4Addr;

    const INGRESS: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

    fn build(
        caches: usize,
        cache_config: CacheConfig,
        seed: u64,
    ) -> (ResolutionPlatform, NameserverNet, CdeInfra) {
        let mut net = NameserverNet::new();
        let infra = CdeInfra::install(&mut net);
        let platform = PlatformBuilder::new(seed)
            .ingress(vec![INGRESS])
            .egress(vec![Ipv4Addr::new(192, 0, 3, 1)])
            .cluster_config(ClusterConfig {
                cache_count: caches,
                cache_config,
                selector: SelectorKind::Random,
            })
            .build();
        (platform, net, infra)
    }

    fn audit(
        platform: &mut ResolutionPlatform,
        net: &mut NameserverNet,
        infra: &mut CdeInfra,
    ) -> ConsistencyReport {
        let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 1);
        let mut access = DirectAccess::new(&mut prober, platform, INGRESS, net);
        audit_ttl_consistency(
            &mut access,
            infra,
            ConsistencyOptions::default(),
            SimTime::ZERO,
        )
    }

    #[test]
    fn multi_cache_consistent_platform_is_not_flagged() {
        // The paper's central point: 4 upstream fetches for one record is
        // NOT a TTL violation when there are 4 caches.
        let (mut platform, mut net, mut infra) = build(4, CacheConfig::default(), 51);
        let report = audit(&mut platform, &mut net, &mut infra);
        assert_eq!(report.caches, 4);
        assert_eq!(report.refetches_within_ttl, 0);
        assert!(report.fetches_after_expiry >= 1);
        assert_eq!(report.verdict, TtlVerdict::Consistent);
    }

    #[test]
    fn max_ttl_clamp_is_flagged_as_early_refresh() {
        // Platform caps TTLs at 60 s; our record claims 600 s. Probes at
        // 150/300/450 s keep triggering fetches.
        let (mut platform, mut net, mut infra) = build(
            2,
            CacheConfig {
                max_ttl: Ttl::from_secs(60),
                ..CacheConfig::default()
            },
            52,
        );
        let report = audit(&mut platform, &mut net, &mut infra);
        assert!(report.refetches_within_ttl > 0);
        assert_eq!(report.verdict, TtlVerdict::EarlyRefresh);
    }

    #[test]
    fn min_ttl_clamp_is_flagged_as_stale_serving() {
        // Platform lifts TTLs to at least 86400 s; our 600 s record is
        // still served at t = 1500 s.
        let (mut platform, mut net, mut infra) = build(
            2,
            CacheConfig {
                min_ttl: Ttl::from_secs(86_400),
                ..CacheConfig::default()
            },
            53,
        );
        let report = audit(&mut platform, &mut net, &mut infra);
        assert_eq!(report.refetches_within_ttl, 0);
        assert_eq!(report.fetches_after_expiry, 0);
        assert_eq!(report.verdict, TtlVerdict::StaleServing);
    }

    #[test]
    fn single_cache_platform_is_consistent() {
        let (mut platform, mut net, mut infra) = build(1, CacheConfig::default(), 54);
        let report = audit(&mut platform, &mut net, &mut infra);
        assert_eq!(report.caches, 1);
        assert_eq!(report.verdict, TtlVerdict::Consistent);
    }

    #[test]
    fn audit_counts_caches_like_plain_enumeration() {
        let (mut platform, mut net, mut infra) = build(8, CacheConfig::default(), 55);
        let report = audit(&mut platform, &mut net, &mut infra);
        assert_eq!(report.caches, 8);
        assert_eq!(report.record_ttl, Ttl::from_secs(600));
    }

    #[test]
    fn verdict_display_is_terse() {
        assert_eq!(TtlVerdict::Consistent.to_string(), "consistent");
        assert_eq!(TtlVerdict::EarlyRefresh.to_string(), "early-refresh");
        assert_eq!(TtlVerdict::StaleServing.to_string(), "stale-serving");
    }

    #[test]
    fn audits_are_reproducible() {
        let run = || {
            let (mut platform, mut net, mut infra) = build(3, CacheConfig::default(), 56);
            audit(&mut platform, &mut net, &mut infra)
        };
        assert_eq!(run(), run());
    }
}
