//! Whole-platform surveys: the measurement pipeline behind §V's figures.
//!
//! A survey takes the externally visible facts about a network — its
//! ingress addresses — and produces everything the paper reports per
//! network: the ingress→cluster mapping, the cache count per cluster and
//! in total, and the discovered egress addresses. The pipeline never reads
//! platform ground truth; validation code compares afterwards.

use crate::access::{AccessChannel, AccessProvider, DirectAccessProvider};
use crate::enumerate::{enumerate_identical, EnumerateOptions, Enumeration};
use crate::infra::CdeInfra;
use crate::mapping::{map_ingress_to_clusters_with, IngressMapping, MappingOptions};
use crate::planner::ProbePlan;
use cde_netsim::{SimDuration, SimTime};
use cde_platform::{NameserverNet, ResolutionPlatform};
use cde_probers::DirectProber;
use std::net::Ipv4Addr;

/// Options for a full survey.
#[derive(Debug, Clone, Copy)]
pub struct SurveyOptions {
    /// Initial assumed cache-count bound; doubled adaptively when the
    /// measurement saturates it.
    pub initial_n_max: u64,
    /// Hard ceiling for the adaptive escalation.
    pub n_max_ceiling: u64,
    /// Loss rate used for planning (measure it first via
    /// [`crate::planner::measure_loss`]).
    pub loss: f64,
    /// Consecutive probes with no new egress address before egress
    /// discovery stops.
    pub egress_patience: u64,
    /// Mapping options for multi-ingress platforms.
    pub mapping: MappingOptions,
}

impl Default for SurveyOptions {
    fn default() -> SurveyOptions {
        SurveyOptions {
            initial_n_max: 4,
            n_max_ceiling: 256,
            loss: 0.0,
            egress_patience: 24,
            mapping: MappingOptions::default(),
        }
    }
}

/// Everything a survey learns about one platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlatformSurvey {
    /// Ingress addresses surveyed (input).
    pub ingress_ips: Vec<Ipv4Addr>,
    /// Discovered ingress→cluster grouping.
    pub mapping: IngressMapping,
    /// Cache count measured per discovered cluster.
    pub caches_per_cluster: Vec<u64>,
    /// Total caches across clusters.
    pub total_caches: u64,
    /// Distinct egress addresses observed.
    pub egress_ips: Vec<Ipv4Addr>,
}

impl PlatformSurvey {
    /// Number of ingress addresses surveyed.
    pub fn ingress_count(&self) -> usize {
        self.ingress_ips.len()
    }

    /// Number of egress addresses discovered.
    pub fn egress_count(&self) -> usize {
        self.egress_ips.len()
    }
}

/// Adaptive enumeration: grows the assumed bound until the estimate fits
/// comfortably inside it, so no a-priori knowledge of `n` is needed.
pub fn enumerate_adaptive<A: AccessChannel>(
    access: &mut A,
    infra: &mut CdeInfra,
    opts: &SurveyOptions,
    start: SimTime,
) -> Enumeration {
    let span = cde_telemetry::global().begin_campaign("enumerate_adaptive", 0);
    let mut n_max = opts.initial_n_max.max(1);
    let mut now = start;
    loop {
        span.note("n_max", n_max);
        let plan = ProbePlan::for_target(n_max, opts.loss);
        let session = infra.new_session(access.net_mut(), 0);
        let e = enumerate_identical(
            access,
            infra,
            &session,
            EnumerateOptions {
                probes: plan.probes,
                redundancy: plan.redundancy,
                gap: SimDuration::from_millis(10),
            },
            now,
        );
        now += SimDuration::from_secs(1);
        if e.estimated * 2 <= n_max || n_max >= opts.n_max_ceiling {
            span.note("estimated_caches", e.estimated);
            span.end(e.probes, e.delivered, e.probes.saturating_sub(e.delivered));
            return e;
        }
        n_max = (n_max * 4).min(opts.n_max_ceiling);
    }
}

/// Adaptive egress discovery: probes fresh nonces until `patience`
/// consecutive probes reveal no new egress address.
pub fn discover_egress_adaptive<A: AccessChannel>(
    access: &mut A,
    infra: &mut CdeInfra,
    patience: u64,
    start: SimTime,
) -> Vec<Ipv4Addr> {
    let span = cde_telemetry::global().begin_campaign("discover_egress", 0);
    infra.clear_observations(access.net_mut());
    let mut known = 0usize;
    let mut quiet = 0u64;
    let mut now = start;
    let mut probed = 0u64;
    // Bound total work: even enormous pools finish.
    for _ in 0..100_000u64 {
        probed += 1;
        let nonce = infra.fresh_nonce_name();
        let _ = access.trigger(&nonce, now);
        now += SimDuration::from_millis(10);
        let seen = infra.observed_egress_sources(access.net()).len();
        if seen > known {
            known = seen;
            quiet = 0;
        } else {
            quiet += 1;
            // Scale the quiet threshold with the pool discovered so far:
            // when k of E addresses are known, finding the next takes
            // ~E/(E−k) probes, so a fixed patience under-covers large
            // pools (coupon-collector tail).
            if quiet >= patience.max(4 * known as u64) {
                break;
            }
        }
    }
    let egress = infra.observed_egress_sources(access.net());
    span.note("egress_discovered", egress.len() as u64);
    span.end(probed, egress.len() as u64, 0);
    egress
}

/// Runs the full pipeline against one platform over direct access.
///
/// Convenience wrapper over [`survey_platform_with`].
pub fn survey_platform(
    prober: &mut DirectProber,
    platform: &mut ResolutionPlatform,
    net: &mut NameserverNet,
    infra: &mut CdeInfra,
    ingress: &[Ipv4Addr],
    opts: &SurveyOptions,
    start: SimTime,
) -> PlatformSurvey {
    let mut provider = DirectAccessProvider::new(prober, platform, net);
    survey_platform_with(&mut provider, infra, ingress, opts, start)
}

/// Runs the full survey pipeline through any access backend.
///
/// This is the backend-generic entry point: handed a provider over the
/// simulator it reproduces [`survey_platform`] exactly; handed one over a
/// live transport it runs the same technique against real sockets.
pub fn survey_platform_with<P: AccessProvider>(
    provider: &mut P,
    infra: &mut CdeInfra,
    ingress: &[Ipv4Addr],
    opts: &SurveyOptions,
    start: SimTime,
) -> PlatformSurvey {
    assert!(!ingress.is_empty(), "survey needs at least one ingress");
    let span = cde_telemetry::global().begin_campaign("survey_platform", ingress.len() as u64);
    // 0. Pre-enumerate through the first ingress so the mapping phase can
    // seed honey records proportionally to the real cache count —
    // under-seeding would leave caches uncovered and false-split clusters.
    let pre = {
        let mut access = provider.channel(ingress[0]);
        enumerate_adaptive(&mut access, infra, opts, start)
    };
    let mut mapping_opts = opts.mapping;
    mapping_opts.seeds_per_pivot = mapping_opts.seeds_per_pivot.max(6 * pre.estimated.max(1));

    // 1. Group ingress addresses into cache clusters.
    let mapping = if ingress.len() > 1 {
        map_ingress_to_clusters_with(provider, infra, ingress, mapping_opts, start)
    } else {
        IngressMapping {
            clusters: vec![vec![ingress[0]]],
            queries_spent: 0,
        }
    };

    // 2. Enumerate caches behind one representative ingress per cluster.
    let mut caches_per_cluster = Vec::with_capacity(mapping.clusters.len());
    let mut now = start + SimDuration::from_secs(5);
    for cluster in &mapping.clusters {
        let representative = cluster[0];
        let mut access = provider.channel(representative);
        let e = enumerate_adaptive(&mut access, infra, opts, now);
        caches_per_cluster.push(e.estimated);
        now += SimDuration::from_secs(5);
    }

    // 3. Discover egress addresses through the first ingress.
    let mut access = provider.channel(ingress[0]);
    let egress_ips = discover_egress_adaptive(&mut access, infra, opts.egress_patience, now);

    let total_caches: u64 = caches_per_cluster.iter().sum();
    span.note("clusters", mapping.cluster_count() as u64);
    span.note("total_caches", total_caches);
    span.note("egress_discovered", egress_ips.len() as u64);
    span.end(ingress.len() as u64, ingress.len() as u64, 0);
    PlatformSurvey {
        ingress_ips: ingress.to_vec(),
        total_caches,
        caches_per_cluster,
        mapping,
        egress_ips,
    }
}

/// Convenience: checks a survey against the platform's ground truth,
/// returning a list of human-readable discrepancies (empty = perfect).
pub fn validate_survey(survey: &PlatformSurvey, platform: &ResolutionPlatform) -> Vec<String> {
    let truth = platform.ground_truth();
    let mut issues = Vec::new();
    if survey.mapping.cluster_count() != truth.cluster_cache_counts.len() {
        issues.push(format!(
            "cluster count: measured {}, truth {}",
            survey.mapping.cluster_count(),
            truth.cluster_cache_counts.len()
        ));
    }
    if survey.total_caches != truth.total_caches() as u64 {
        issues.push(format!(
            "total caches: measured {}, truth {}",
            survey.total_caches,
            truth.total_caches()
        ));
    }
    let measured_egress: std::collections::BTreeSet<Ipv4Addr> =
        survey.egress_ips.iter().copied().collect();
    let truth_egress: std::collections::BTreeSet<Ipv4Addr> =
        truth.egress_ips.iter().copied().collect();
    if measured_egress != truth_egress {
        issues.push(format!(
            "egress: measured {} addresses, truth {}",
            measured_egress.len(),
            truth_egress.len()
        ));
    }
    issues
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::DirectAccess;
    use cde_netsim::Link;
    use cde_platform::{PlatformBuilder, SelectorKind};

    fn ing(d: u8) -> Ipv4Addr {
        Ipv4Addr::new(192, 0, 2, d)
    }

    #[test]
    fn survey_recovers_simple_platform_exactly() {
        let mut net = NameserverNet::new();
        let mut infra = CdeInfra::install(&mut net);
        let mut platform = PlatformBuilder::new(71)
            .ingress(vec![ing(1)])
            .egress((1..=3).map(|d| Ipv4Addr::new(192, 0, 3, d)).collect())
            .cluster(3, SelectorKind::Random)
            .build();
        let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 1);
        let survey = survey_platform(
            &mut prober,
            &mut platform,
            &mut net,
            &mut infra,
            &[ing(1)],
            &SurveyOptions::default(),
            SimTime::ZERO,
        );
        assert_eq!(survey.total_caches, 3);
        assert_eq!(survey.egress_count(), 3);
        assert!(validate_survey(&survey, &platform).is_empty());
    }

    #[test]
    fn survey_recovers_multi_cluster_platform() {
        let mut net = NameserverNet::new();
        let mut infra = CdeInfra::install(&mut net);
        let mut platform = PlatformBuilder::new(72)
            .ingress((1..=4).map(ing).collect())
            .egress((1..=5).map(|d| Ipv4Addr::new(192, 0, 3, d)).collect())
            .cluster(2, SelectorKind::Random)
            .cluster(4, SelectorKind::Random)
            .ingress_assignment(vec![0, 0, 1, 1])
            .build();
        let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 2);
        let survey = survey_platform(
            &mut prober,
            &mut platform,
            &mut net,
            &mut infra,
            &(1..=4).map(ing).collect::<Vec<_>>(),
            &SurveyOptions::default(),
            SimTime::ZERO,
        );
        assert_eq!(survey.mapping.cluster_count(), 2);
        let mut counts = survey.caches_per_cluster.clone();
        counts.sort_unstable();
        assert_eq!(counts, vec![2, 4]);
        assert!(validate_survey(&survey, &platform).is_empty());
    }

    #[test]
    fn adaptive_enumeration_escalates_past_initial_bound() {
        let mut net = NameserverNet::new();
        let mut infra = CdeInfra::install(&mut net);
        let mut platform = PlatformBuilder::new(73)
            .ingress(vec![ing(1)])
            .egress(vec![Ipv4Addr::new(192, 0, 3, 1)])
            .cluster(24, SelectorKind::Random) // well past initial_n_max = 4
            .build();
        let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 3);
        let mut access = DirectAccess::new(&mut prober, &mut platform, ing(1), &mut net);
        let e = enumerate_adaptive(
            &mut access,
            &mut infra,
            &SurveyOptions::default(),
            SimTime::ZERO,
        );
        assert_eq!(e.estimated, 24);
    }

    #[test]
    fn egress_discovery_stops_after_patience() {
        let mut net = NameserverNet::new();
        let mut infra = CdeInfra::install(&mut net);
        let mut platform = PlatformBuilder::new(74)
            .ingress(vec![ing(1)])
            .egress(vec![Ipv4Addr::new(192, 0, 3, 1)]) // single egress
            .cluster(1, SelectorKind::Random)
            .build();
        let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 4);
        let mut access = DirectAccess::new(&mut prober, &mut platform, ing(1), &mut net);
        let egress = discover_egress_adaptive(&mut access, &mut infra, 8, SimTime::ZERO);
        assert_eq!(egress, vec![Ipv4Addr::new(192, 0, 3, 1)]);
    }

    #[test]
    fn survey_emits_campaign_spans_when_hub_installed() {
        // Installs a process-global hub; other tests may emit into it
        // concurrently, so assertions are containment, not equality.
        let hub = cde_telemetry::TelemetryHub::new(64 * 1024);
        cde_telemetry::install_global(std::sync::Arc::clone(&hub));
        let mut net = NameserverNet::new();
        let mut infra = CdeInfra::install(&mut net);
        let mut platform = PlatformBuilder::new(76)
            .ingress(vec![ing(1)])
            .egress(vec![Ipv4Addr::new(192, 0, 3, 1)])
            .cluster(2, SelectorKind::Random)
            .build();
        let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 6);
        let survey = survey_platform(
            &mut prober,
            &mut platform,
            &mut net,
            &mut infra,
            &[ing(1)],
            &SurveyOptions::default(),
            SimTime::ZERO,
        );
        assert_eq!(survey.total_caches, 2);
        let events = hub.drain();
        let begins: Vec<&str> = events
            .iter()
            .filter_map(|e| match e.kind {
                cde_telemetry::EventKind::CampaignBegin { name, .. } => Some(name),
                _ => None,
            })
            .collect();
        assert!(begins.contains(&"survey_platform"), "spans: {begins:?}");
        assert!(begins.contains(&"enumerate_adaptive"));
        assert!(begins.contains(&"discover_egress"));
        let notes: Vec<(&str, u64)> = events
            .iter()
            .filter_map(|e| match e.kind {
                cde_telemetry::EventKind::CampaignNote { key, value } => Some((key, value)),
                _ => None,
            })
            .collect();
        assert!(notes.contains(&("total_caches", 2)), "notes: {notes:?}");
        assert!(
            events
                .iter()
                .any(|e| matches!(e.kind, cde_telemetry::EventKind::CampaignEnd { .. })),
            "survey spans must close"
        );
    }

    #[test]
    #[should_panic(expected = "at least one ingress")]
    fn empty_ingress_rejected() {
        let mut net = NameserverNet::new();
        let mut infra = CdeInfra::install(&mut net);
        let mut platform = PlatformBuilder::new(75)
            .ingress(vec![ing(1)])
            .egress(vec![Ipv4Addr::new(192, 0, 3, 1)])
            .build();
        let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 5);
        survey_platform(
            &mut prober,
            &mut platform,
            &mut net,
            &mut infra,
            &[],
            &SurveyOptions::default(),
            SimTime::ZERO,
        );
    }
}
