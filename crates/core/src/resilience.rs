//! Cache-poisoning resilience modelling (paper §II-A).
//!
//! The paper motivates cache enumeration with poisoning resilience: "the
//! spoofed records sent by the attacker will be distributed to multiple
//! caches, hence rendering the attack ineffective — say if an attacker
//! wishes to inject an NS record and then to use it to supply a spoofed A
//! record... if one of the records 'hits' a different cache, the attack
//! fails." With `n` caches and unpredictable selection, a `k`-record
//! attack chain succeeds only when all `k` injected records land on the
//! same cache: probability `(1/n)^(k−1)` per attempt.
//!
//! This module provides the closed form and a Monte-Carlo simulation
//! running against the *actual* load-balancer implementations, so the
//! interaction with non-random selectors (where the math differs —
//! qname-hash pins a victim name to one cache, removing the defence) is
//! measured rather than assumed.

use cde_netsim::DetRng;
use cde_platform::{LoadBalancer, SelectorKind};
use std::net::Ipv4Addr;

/// Probability that one `chain_len`-record injection attempt lands every
/// record on the same cache, under uniform random selection over `n`
/// caches.
///
/// # Examples
///
/// ```
/// use cde_core::resilience::poisoning_success_probability;
///
/// assert_eq!(poisoning_success_probability(1, 2), 1.0);
/// assert_eq!(poisoning_success_probability(4, 2), 0.25);
/// assert_eq!(poisoning_success_probability(4, 3), 0.0625);
/// ```
///
/// # Panics
///
/// Panics when `n` or `chain_len` is zero.
pub fn poisoning_success_probability(n: u64, chain_len: u32) -> f64 {
    assert!(n > 0, "need at least one cache");
    assert!(chain_len > 0, "attack chains have at least one record");
    (1.0 / n as f64).powi(chain_len as i32 - 1)
}

/// Expected attempts until a successful `chain_len`-record injection:
/// `n^(chain_len−1)`.
pub fn expected_attack_attempts(n: u64, chain_len: u32) -> f64 {
    1.0 / poisoning_success_probability(n, chain_len)
}

/// Result of a simulated poisoning campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignOutcome {
    /// Attack attempts made.
    pub attempts: u64,
    /// Attempts where every record of the chain hit one cache.
    pub successes: u64,
}

impl CampaignOutcome {
    /// Empirical per-attempt success rate.
    pub fn success_rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.successes as f64 / self.attempts as f64
        }
    }
}

/// Simulates `attempts` independent `chain_len`-record injection attempts
/// against a cluster of `n` caches balanced by `selector`.
///
/// Each attempt triggers `chain_len` resolution events for related victim
/// names (e.g. the NS of `victim.example` followed by `www.victim.example`
/// A) from the attacker's vantage; the attempt succeeds when the balancer
/// sends all of them to one cache. Background traffic between attempts is
/// modelled by advancing the balancer with unrelated queries.
pub fn simulate_attack_campaign(
    n: usize,
    selector: SelectorKind,
    chain_len: u32,
    attempts: u64,
    seed: u64,
) -> CampaignOutcome {
    assert!(n > 0 && chain_len > 0, "need caches and a chain");
    let mut balancer = LoadBalancer::new(selector, n);
    let mut rng = DetRng::seed(seed).fork("poison");
    let attacker = Ipv4Addr::new(203, 0, 113, 66);
    let background_src = Ipv4Addr::new(198, 51, 100, 77);
    let mut successes = 0u64;
    for attempt in 0..attempts {
        // The victim-domain names the chain injects. The *same* names are
        // reused every attempt — that is what the attacker must do (the
        // target records are fixed), and it is exactly why hash selectors
        // change the game.
        let first_name: cde_dns::Name = "victim.example".parse().expect("static name");
        let chained_name: cde_dns::Name = "www.victim.example".parse().expect("static name");
        let first = balancer.select(&first_name, attacker, &mut rng);
        let mut all_same = true;
        for hop in 1..chain_len {
            let name = if hop % 2 == 1 {
                &chained_name
            } else {
                &first_name
            };
            if balancer.select(name, attacker, &mut rng) != first {
                all_same = false;
            }
        }
        if all_same {
            successes += 1;
        }
        // A burst of unrelated background queries lands between attempts.
        let burst = 1 + (attempt % 3);
        for b in 0..burst {
            let name: cde_dns::Name = format!("bg-{attempt}-{b}.example")
                .parse()
                .expect("static name");
            balancer.select(&name, background_src, &mut rng);
        }
    }
    CampaignOutcome {
        attempts,
        successes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_basics() {
        assert_eq!(poisoning_success_probability(1, 5), 1.0);
        assert_eq!(poisoning_success_probability(2, 2), 0.5);
        assert_eq!(expected_attack_attempts(4, 2), 4.0);
        assert_eq!(expected_attack_attempts(4, 3), 16.0);
    }

    #[test]
    #[should_panic(expected = "at least one cache")]
    fn zero_caches_rejected() {
        poisoning_success_probability(0, 2);
    }

    #[test]
    fn random_selection_matches_closed_form() {
        for n in [1usize, 2, 4, 8] {
            let outcome = simulate_attack_campaign(n, SelectorKind::Random, 2, 40_000, 9);
            let expected = poisoning_success_probability(n as u64, 2);
            assert!(
                (outcome.success_rate() - expected).abs() < 0.02,
                "n={n}: rate {:.3} vs {:.3}",
                outcome.success_rate(),
                expected
            );
        }
    }

    #[test]
    fn longer_chains_are_harder() {
        let short = simulate_attack_campaign(4, SelectorKind::Random, 2, 40_000, 10);
        let long = simulate_attack_campaign(4, SelectorKind::Random, 4, 40_000, 10);
        assert!(long.success_rate() < short.success_rate());
    }

    #[test]
    fn qname_hash_removes_the_multi_cache_defence() {
        // Hash-by-name sends the two *different* victim names to fixed —
        // possibly different — caches. When they collide the attack
        // succeeds on every attempt; when they differ it never does. Both
        // extremes differ fundamentally from the random case.
        let outcome = simulate_attack_campaign(8, SelectorKind::QnameHash, 2, 1_000, 11);
        let rate = outcome.success_rate();
        assert!(rate == 0.0 || rate == 1.0, "rate {rate}");
    }

    #[test]
    fn source_hash_pins_the_attacker_to_one_cache() {
        // All the attacker's queries land on one cache: the multi-cache
        // defence vanishes for an attacker who controls the trigger
        // queries (it still protects against off-path injection racing
        // *other* clients' queries).
        let outcome = simulate_attack_campaign(8, SelectorKind::SourceHash, 3, 1_000, 12);
        assert_eq!(outcome.success_rate(), 1.0);
    }

    #[test]
    fn round_robin_with_background_traffic_is_nearly_unpoisonable() {
        // Interleaved background queries shift the stride, so consecutive
        // attacker queries rarely co-locate.
        let outcome = simulate_attack_campaign(8, SelectorKind::RoundRobin, 2, 10_000, 13);
        assert!(
            outcome.success_rate() < 0.2,
            "rate {}",
            outcome.success_rate()
        );
    }

    #[test]
    fn single_cache_always_poisonable() {
        let outcome = simulate_attack_campaign(1, SelectorKind::Random, 4, 1_000, 14);
        assert_eq!(outcome.successes, 1_000);
    }
}
