//! The timing side channel (paper §IV-B3).
//!
//! When the CDE infrastructure cannot observe queries at a nameserver —
//! the *indirect egress* setting (APT-style stealth, restricted domains) —
//! caches are still countable from response latency alone: a cache hit
//! returns in the internal-hop time while a miss pays at least one
//! upstream round trip. Probing the honey record repeatedly, the number of
//! *uncached-latency* responses equals the number of caches.

use crate::access::{AccessChannel, TriggerOutcome};
use crate::infra::CdeInfra;
use cde_netsim::{SimDuration, SimTime};

/// Latency threshold separating cached from uncached responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingCalibration {
    /// Responses slower than this are classified uncached.
    pub threshold: SimDuration,
    /// Median latency of known-cached probes.
    pub cached_median: SimDuration,
    /// Median latency of known-uncached probes.
    pub uncached_median: SimDuration,
}

/// Errors during calibration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CalibrationError {
    /// The access channel cannot measure latency (indirect ingress without
    /// a latency-capable prober).
    NoLatency,
    /// Too few probes were answered to compute medians.
    TooFewSamples {
        /// Answered cached-side samples.
        cached: usize,
        /// Answered uncached-side samples.
        uncached: usize,
    },
    /// Cached and uncached latencies overlap so much that no separating
    /// threshold exists (median order inverted).
    NoSeparation,
}

impl std::fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CalibrationError::NoLatency => {
                write!(f, "access channel does not expose per-probe latency")
            }
            CalibrationError::TooFewSamples { cached, uncached } => write!(
                f,
                "too few answered samples for calibration ({cached} cached, {uncached} uncached)"
            ),
            CalibrationError::NoSeparation => {
                write!(f, "cached and uncached latencies are not separable")
            }
        }
    }
}

impl std::error::Error for CalibrationError {}

/// Calibrates the threshold against the target platform.
///
/// Uncached samples come from fresh nonce names (always a miss); cached
/// samples come from re-probing a dedicated calibration honey record after
/// seeding it. The threshold is the midpoint of the two medians.
///
/// # Errors
///
/// See [`CalibrationError`].
pub fn calibrate<A: AccessChannel>(
    access: &mut A,
    infra: &mut CdeInfra,
    samples: usize,
    start: SimTime,
) -> Result<TimingCalibration, CalibrationError> {
    let span = cde_telemetry::global().begin_campaign("timing_calibrate", samples as u64 * 2);
    if !access.measures_latency() {
        return Err(CalibrationError::NoLatency);
    }
    let mut now = start;
    let gap = SimDuration::from_millis(25);

    // Uncached side: fresh nonces.
    let mut uncached = Vec::with_capacity(samples);
    for _ in 0..samples {
        let nonce = infra.fresh_nonce_name();
        if let TriggerOutcome::Delivered { latency: Some(l) } = access.trigger(&nonce, now) {
            uncached.push(l);
        }
        now += gap;
    }

    // Cached side: seed a calibration record heavily, then re-probe. The
    // seeding also warms every cache, so subsequent probes are hits.
    let session = infra.new_session(access.net_mut(), 0);
    for _ in 0..(samples * 2) {
        let _ = access.trigger(&session.honey, now);
        now += gap;
    }
    let mut cached = Vec::with_capacity(samples);
    for _ in 0..samples {
        if let TriggerOutcome::Delivered { latency: Some(l) } = access.trigger(&session.honey, now)
        {
            cached.push(l);
        }
        now += gap;
    }

    if cached.len() < 3 || uncached.len() < 3 {
        return Err(CalibrationError::TooFewSamples {
            cached: cached.len(),
            uncached: uncached.len(),
        });
    }
    cached.sort_unstable();
    uncached.sort_unstable();
    let cached_median = cached[cached.len() / 2];
    let uncached_median = uncached[uncached.len() / 2];
    if cached_median >= uncached_median {
        return Err(CalibrationError::NoSeparation);
    }
    let threshold = cached_median + (uncached_median - cached_median) / 2;
    span.note("cached_median_us", cached_median.as_micros());
    span.note("uncached_median_us", uncached_median.as_micros());
    span.note("threshold_us", threshold.as_micros());
    let answered = (cached.len() + uncached.len()) as u64;
    span.end(
        samples as u64 * 2,
        answered,
        (samples as u64 * 2).saturating_sub(answered),
    );
    Ok(TimingCalibration {
        threshold,
        cached_median,
        uncached_median,
    })
}

/// Result of timing-based enumeration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimingEnumeration {
    /// Probes sent.
    pub probes: u64,
    /// Responses classified uncached — the cache count by this channel.
    pub slow_responses: u64,
    /// Responses classified cached.
    pub fast_responses: u64,
    /// Probes with no usable latency (timeouts).
    pub unclassified: u64,
}

/// Counts caches purely from latency: probe the session honey record
/// `probes` times and count uncached-latency responses (§IV-B3: "count
/// the number of times the latency ... corresponds to an uncached latency
/// — this number corresponds to the amount of caches").
pub fn enumerate_via_timing<A: AccessChannel>(
    access: &mut A,
    session_honey: &cde_dns::Name,
    calibration: TimingCalibration,
    probes: u64,
    start: SimTime,
) -> TimingEnumeration {
    let span = cde_telemetry::global().begin_campaign("enumerate_via_timing", probes);
    span.note("threshold_us", calibration.threshold.as_micros());
    let mut now = start;
    let mut slow = 0u64;
    let mut fast = 0u64;
    let mut unclassified = 0u64;
    for _ in 0..probes {
        match access.trigger(session_honey, now) {
            TriggerOutcome::Delivered { latency: Some(l) } => {
                if l > calibration.threshold {
                    slow += 1;
                } else {
                    fast += 1;
                }
            }
            _ => unclassified += 1,
        }
        now += SimDuration::from_millis(25);
    }
    span.note("slow_responses", slow);
    span.note("fast_responses", fast);
    span.end(probes, slow + fast, unclassified);
    TimingEnumeration {
        probes,
        slow_responses: slow,
        fast_responses: fast,
        unclassified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::DirectAccess;
    use cde_netsim::{LatencyModel, Link, LossModel};
    use cde_platform::{NameserverNet, PlatformBuilder, ResolutionPlatform, SelectorKind};
    use cde_probers::DirectProber;
    use std::net::Ipv4Addr;

    fn world(
        caches: usize,
        seed: u64,
        jitter: f64,
    ) -> (ResolutionPlatform, NameserverNet, CdeInfra) {
        let mut net = NameserverNet::new();
        let infra = CdeInfra::install(&mut net);
        let platform = PlatformBuilder::new(seed)
            .ingress(vec![Ipv4Addr::new(192, 0, 2, 1)])
            .egress(vec![Ipv4Addr::new(192, 0, 3, 1)])
            .cluster(caches, SelectorKind::Random)
            .upstream_link(Link::new(
                LatencyModel::LogNormal {
                    median: SimDuration::from_millis(18),
                    sigma: jitter,
                },
                LossModel::none(),
            ))
            .build();
        (platform, net, infra)
    }

    fn client_link() -> Link {
        Link::new(
            LatencyModel::LogNormal {
                median: SimDuration::from_millis(12),
                sigma: 0.15,
            },
            LossModel::none(),
        )
    }

    #[test]
    fn calibration_separates_hit_from_miss() {
        let (mut platform, mut net, mut infra) = world(2, 31, 0.15);
        let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), client_link(), 1);
        let mut access = DirectAccess::new(
            &mut prober,
            &mut platform,
            Ipv4Addr::new(192, 0, 2, 1),
            &mut net,
        );
        let cal = calibrate(&mut access, &mut infra, 16, SimTime::ZERO).unwrap();
        assert!(cal.cached_median < cal.uncached_median);
        assert!(cal.threshold > cal.cached_median);
        assert!(cal.threshold < cal.uncached_median);
    }

    #[test]
    fn timing_enumeration_counts_caches_without_nameserver_observation() {
        for n in [1usize, 3, 5] {
            let (mut platform, mut net, mut infra) = world(n, 40 + n as u64, 0.15);
            let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), client_link(), 2);
            let mut access = DirectAccess::new(
                &mut prober,
                &mut platform,
                Ipv4Addr::new(192, 0, 2, 1),
                &mut net,
            );
            let cal = calibrate(&mut access, &mut infra, 16, SimTime::ZERO).unwrap();
            // Fresh session honey, never queried before.
            let session = infra.new_session(access.net_mut(), 0);
            let q = cde_analysis::coupon::query_budget(n as u64, 0.001);
            let t = enumerate_via_timing(
                &mut access,
                &session.honey,
                cal,
                q,
                SimTime::ZERO + SimDuration::from_secs(10),
            );
            assert_eq!(t.slow_responses, n as u64, "n={n}");
            assert_eq!(t.fast_responses, q - n as u64);
        }
    }

    #[test]
    fn heavy_jitter_degrades_timing_channel() {
        // With enormous upstream jitter the classifier misfires — the
        // ablation the `timing` experiment sweeps.
        let n = 4usize;
        let (mut platform, mut net, mut infra) = world(n, 50, 2.5);
        let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), client_link(), 3);
        let mut access = DirectAccess::new(
            &mut prober,
            &mut platform,
            Ipv4Addr::new(192, 0, 2, 1),
            &mut net,
        );
        match calibrate(&mut access, &mut infra, 16, SimTime::ZERO) {
            Err(_) => {} // jitter may defeat calibration entirely — accepted
            Ok(cal) => {
                let session = infra.new_session(access.net_mut(), 0);
                let t = enumerate_via_timing(
                    &mut access,
                    &session.honey,
                    cal,
                    64,
                    SimTime::ZERO + SimDuration::from_secs(10),
                );
                // No exactness claim under heavy jitter; just bounded output.
                assert_eq!(t.probes, 64);
                assert_eq!(t.slow_responses + t.fast_responses + t.unclassified, 64);
            }
        }
    }

    #[test]
    fn calibration_needs_latency_capable_channel() {
        use cde_probers::{EnterpriseMailServer, MailChecks, SmtpProber};
        let (mut platform, mut net, mut infra) = world(1, 51, 0.15);
        let mut prober = SmtpProber::new(1);
        let mut mta = EnterpriseMailServer::new(
            Ipv4Addr::new(198, 18, 0, 25),
            MailChecks::all(),
            Ipv4Addr::new(192, 0, 2, 1),
        );
        let mut access = crate::access::SmtpAccess {
            prober: &mut prober,
            mta: &mut mta,
            platform: &mut platform,
            net: &mut net,
        };
        assert_eq!(
            calibrate(&mut access, &mut infra, 8, SimTime::ZERO).unwrap_err(),
            CalibrationError::NoLatency
        );
    }

    #[test]
    fn lossy_probes_become_unclassified() {
        let (mut platform, mut net, mut infra) = world(2, 52, 0.15);
        let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), client_link(), 4);
        let mut access = DirectAccess::new(
            &mut prober,
            &mut platform,
            Ipv4Addr::new(192, 0, 2, 1),
            &mut net,
        );
        let cal = calibrate(&mut access, &mut infra, 16, SimTime::ZERO).unwrap();
        // The first access channel's borrows end here; swap in a very
        // lossy prober for the enumeration phase.
        let lossy = Link::new(
            LatencyModel::Constant(SimDuration::from_millis(12)),
            LossModel::with_rate(0.6),
        );
        let mut prober2 = DirectProber::new(Ipv4Addr::new(203, 0, 113, 2), lossy, 5);
        let mut access2 = DirectAccess::new(
            &mut prober2,
            &mut platform,
            Ipv4Addr::new(192, 0, 2, 1),
            &mut net,
        );
        let session = infra.new_session(access2.net_mut(), 0);
        let t = enumerate_via_timing(&mut access2, &session.honey, cal, 50, SimTime::ZERO);
        assert!(t.unclassified > 10, "unclassified {}", t.unclassified);
    }
}
