//! Cache enumeration (paper §IV-B1a, §IV-B2, §V).
//!
//! All variants share one counting principle: probes funnel onto a single
//! *honey record* in the CDE domain, and each hidden cache fetches that
//! record from the CDE nameserver exactly once (its first miss). The
//! number of fetches `ω` observed at the nameserver is the number of
//! caches probed; with enough probes, `ω = n`.
//!
//! * [`enumerate_identical`] — direct access: `q` identical queries for
//!   the honey name (§IV-B1a),
//! * [`enumerate_cname_farm`] — indirect access: `q` distinct aliases
//!   `x-i` CNAME-ing to the honey record bypass local caches (§IV-B2a),
//! * [`enumerate_names_hierarchy`] — indirect access: `q` distinct names
//!   in a freshly delegated subzone; the *parent* nameserver counts one
//!   referral fetch per cache (§IV-B2b),
//! * [`enumerate_two_phase`] — the paper's init/validate protocol with
//!   `N` seeds run "in parallel" (§V-B).

use crate::access::AccessChannel;
use crate::infra::{CdeInfra, Session};
use cde_analysis::estimators::estimate_cache_count;
use cde_netsim::{SimDuration, SimTime};

/// Result of one enumeration run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Enumeration {
    /// Probes triggered (before carpet-bombing redundancy).
    pub probes: u64,
    /// Probes whose response (or trigger) was observed by the prober.
    pub delivered: u64,
    /// Fetches observed at the CDE nameserver — the raw cache count ω.
    pub observed: u64,
    /// Bias-corrected estimate of the cache count.
    pub estimated: u64,
}

impl Enumeration {
    pub(crate) fn from_counts(probes: u64, delivered: u64, observed: u64) -> Enumeration {
        // ω can exceed the probe count under response loss + upstream
        // retries; clamp for the estimator's precondition.
        let clamped = observed.min(probes.max(1));
        Enumeration {
            probes,
            delivered,
            observed,
            estimated: estimate_cache_count(clamped, probes.max(1)),
        }
    }
}

/// Options shared by the enumeration variants.
#[derive(Debug, Clone, Copy)]
pub struct EnumerateOptions {
    /// Number of logical probes `q`.
    pub probes: u64,
    /// Carpet-bombing redundancy: each probe is triggered `k` times
    /// (§V; use [`cde_analysis::estimators::carpet_bombing_k`] to pick it
    /// from the measured loss rate).
    pub redundancy: u64,
    /// Virtual time gap between consecutive probes.
    pub gap: SimDuration,
}

impl Default for EnumerateOptions {
    fn default() -> EnumerateOptions {
        EnumerateOptions {
            probes: 64,
            redundancy: 1,
            gap: SimDuration::from_millis(20),
        }
    }
}

impl EnumerateOptions {
    /// Convenience constructor for lossless settings.
    pub fn with_probes(probes: u64) -> EnumerateOptions {
        EnumerateOptions {
            probes,
            ..EnumerateOptions::default()
        }
    }
}

/// Direct enumeration: `q` identical queries for the session's honey name.
///
/// Requires direct ingress access (indirect channels would be blocked by
/// local caches after the first query; use [`enumerate_cname_farm`]).
pub fn enumerate_identical<A: AccessChannel>(
    access: &mut A,
    infra: &CdeInfra,
    session: &Session,
    opts: EnumerateOptions,
    start: SimTime,
) -> Enumeration {
    let mut now = start;
    let mut delivered = 0u64;
    for _ in 0..opts.probes {
        for _ in 0..opts.redundancy {
            if access.trigger(&session.honey, now).is_delivered() {
                delivered += 1;
                break;
            }
        }
        now += opts.gap;
    }
    let observed = infra.count_honey_fetches(access.net(), &session.honey) as u64;
    Enumeration::from_counts(opts.probes, delivered, observed)
}

/// Indirect enumeration via the CNAME farm: probe `q` *distinct* aliases;
/// local caches never see a repeated hostname, yet every alias converges
/// on the honey record, which each cache fetches once.
///
/// # Panics
///
/// Panics when the session's farm is smaller than `opts.probes`.
pub fn enumerate_cname_farm<A: AccessChannel>(
    access: &mut A,
    infra: &CdeInfra,
    session: &Session,
    opts: EnumerateOptions,
    start: SimTime,
) -> Enumeration {
    assert!(
        session.farm.len() as u64 >= opts.probes,
        "session farm ({}) smaller than probe count ({})",
        session.farm.len(),
        opts.probes
    );
    let mut now = start;
    let mut delivered = 0u64;
    for alias in session.farm.iter().take(opts.probes as usize) {
        for _ in 0..opts.redundancy {
            if access.trigger(alias, now).is_delivered() {
                delivered += 1;
                break;
            }
        }
        now += opts.gap;
    }
    let observed = infra.count_honey_fetches(access.net(), &session.honey) as u64;
    Enumeration::from_counts(opts.probes, delivered, observed)
}

/// Indirect enumeration via the names hierarchy: probe `q` distinct names
/// in the session's delegated subzone. Each cache asks the *parent*
/// nameserver for the delegation exactly once; subsequent probes landing
/// on that cache go straight to the child server.
///
/// # Panics
///
/// Panics when the session's subzone farm is smaller than `opts.probes`.
pub fn enumerate_names_hierarchy<A: AccessChannel>(
    access: &mut A,
    infra: &CdeInfra,
    session: &Session,
    opts: EnumerateOptions,
    start: SimTime,
) -> Enumeration {
    assert!(
        session.sub_farm.len() as u64 >= opts.probes,
        "session subzone farm ({}) smaller than probe count ({})",
        session.sub_farm.len(),
        opts.probes
    );
    let mut now = start;
    let mut delivered = 0u64;
    for name in session.sub_farm.iter().take(opts.probes as usize) {
        for _ in 0..opts.redundancy {
            if access.trigger(name, now).is_delivered() {
                delivered += 1;
                break;
            }
        }
        now += opts.gap;
    }
    let observed = infra.count_referral_fetches(access.net(), session) as u64;
    Enumeration::from_counts(opts.probes, delivered, observed)
}

/// Result of the two-phase init/validate protocol (§V-B).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwoPhaseEnumeration {
    /// Caches first observed during the init phase.
    pub observed_init: u64,
    /// Additional caches first observed during the validate phase.
    pub observed_validate: u64,
    /// Validate probes answered without any nameserver fetch — evidence
    /// the seed was present in the sampled cache.
    pub validate_hits: u64,
    /// Seeds used per phase (the paper's `N`).
    pub seeds: u64,
    /// Final cache count: everything observed across both phases.
    pub total_observed: u64,
    /// Bias-corrected estimate from `2N` total probes.
    pub estimated: u64,
}

/// The paper's init/validate protocol: send `N` seed probes for the honey
/// record in rapid succession ("in parallel"), then `N` validate probes
/// checking seed presence. With `N ≥ 2n` the expected uncovered fraction
/// after init is `exp(−N/n) ≤ e⁻²`; validate catches stragglers and
/// reports the hit rate.
pub fn enumerate_two_phase<A: AccessChannel>(
    access: &mut A,
    infra: &CdeInfra,
    session: &Session,
    seeds: u64,
    start: SimTime,
) -> TwoPhaseEnumeration {
    // Init: N probes back-to-back (the paper sends them in parallel, i.e.
    // without waiting for responses; a zero gap models that).
    for _ in 0..seeds {
        let _ = access.trigger(&session.honey, start);
    }
    let observed_init = infra.count_honey_fetches(access.net(), &session.honey) as u64;

    // Validate: N more probes; a probe causing no new fetch was answered
    // from a cache that already held the seed.
    let validate_start = start + SimDuration::from_millis(50);
    let mut validate_hits = 0u64;
    let mut fetches_so_far = observed_init;
    for _ in 0..seeds {
        let _ = access.trigger(&session.honey, validate_start);
        let now_count = infra.count_honey_fetches(access.net(), &session.honey) as u64;
        if now_count == fetches_so_far {
            validate_hits += 1;
        }
        fetches_so_far = now_count;
    }
    let total_observed = fetches_so_far;
    let observed_validate = total_observed - observed_init;
    let probes = 2 * seeds;
    TwoPhaseEnumeration {
        observed_init,
        observed_validate,
        validate_hits,
        seeds,
        total_observed,
        estimated: estimate_cache_count(total_observed.min(probes.max(1)), probes.max(1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::DirectAccess;
    use cde_netsim::{DetRng, LatencyModel, Link, LossModel};
    use cde_platform::{NameserverNet, PlatformBuilder, ResolutionPlatform, SelectorKind};
    use cde_probers::DirectProber;
    use rand::Rng;
    use std::net::Ipv4Addr;

    fn world(
        caches: usize,
        selector: SelectorKind,
        seed: u64,
    ) -> (ResolutionPlatform, NameserverNet, CdeInfra) {
        let mut net = NameserverNet::new();
        let infra = CdeInfra::install(&mut net);
        let platform = PlatformBuilder::new(seed)
            .ingress(vec![Ipv4Addr::new(192, 0, 2, 1)])
            .egress((1..=4).map(|d| Ipv4Addr::new(192, 0, 3, d)).collect())
            .cluster(caches, selector)
            .build();
        (platform, net, infra)
    }

    fn direct<'a>(
        prober: &'a mut DirectProber,
        platform: &'a mut ResolutionPlatform,
        net: &'a mut NameserverNet,
    ) -> DirectAccess<'a> {
        DirectAccess::new(prober, platform, Ipv4Addr::new(192, 0, 2, 1), net)
    }

    #[test]
    fn identical_enumeration_exact_under_round_robin() {
        // §V-B: with round robin, q = n probes suffice and ω = n exactly.
        for n in [1usize, 2, 4, 8] {
            let (mut platform, mut net, mut infra) = world(n, SelectorKind::RoundRobin, n as u64);
            let session = infra.new_session(&mut net, 8);
            let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 1);
            let mut access = direct(&mut prober, &mut platform, &mut net);
            let e = enumerate_identical(
                &mut access,
                &infra,
                &session,
                EnumerateOptions::with_probes(n as u64),
                SimTime::ZERO,
            );
            assert_eq!(e.observed, n as u64, "n={n}");
            assert_eq!(e.delivered, n as u64);
        }
    }

    #[test]
    fn identical_enumeration_converges_under_random_selection() {
        for n in [1usize, 3, 6] {
            let (mut platform, mut net, mut infra) = world(n, SelectorKind::Random, 100 + n as u64);
            let session = infra.new_session(&mut net, 8);
            let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 2);
            let mut access = direct(&mut prober, &mut platform, &mut net);
            let q = cde_analysis::coupon::query_budget(n as u64, 0.001);
            let e = enumerate_identical(
                &mut access,
                &infra,
                &session,
                EnumerateOptions::with_probes(q),
                SimTime::ZERO,
            );
            assert_eq!(e.observed, n as u64, "n={n} with q={q}");
            assert_eq!(e.estimated, n as u64);
        }
    }

    #[test]
    fn qname_hash_selector_defeats_identical_enumeration() {
        // With a domain-hash selector all identical probes land on one
        // cache — the measurement sees exactly 1 regardless of n. This is
        // the §IV-A "complex strategies" caveat, kept as documented
        // behaviour.
        let (mut platform, mut net, mut infra) = world(6, SelectorKind::QnameHash, 9);
        let session = infra.new_session(&mut net, 8);
        let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 3);
        let mut access = direct(&mut prober, &mut platform, &mut net);
        let e = enumerate_identical(
            &mut access,
            &infra,
            &session,
            EnumerateOptions::with_probes(64),
            SimTime::ZERO,
        );
        assert_eq!(e.observed, 1);
    }

    #[test]
    fn cname_farm_enumeration_matches_identical() {
        for n in [2usize, 5] {
            let (mut platform, mut net, mut infra) = world(n, SelectorKind::Random, 200 + n as u64);
            let session = infra.new_session(&mut net, 128);
            let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 4);
            let mut access = direct(&mut prober, &mut platform, &mut net);
            let q = cde_analysis::coupon::query_budget(n as u64, 0.001);
            let e = enumerate_cname_farm(
                &mut access,
                &infra,
                &session,
                EnumerateOptions::with_probes(q),
                SimTime::ZERO,
            );
            assert_eq!(e.observed, n as u64, "n={n}");
        }
    }

    #[test]
    fn cname_farm_beats_qname_hash() {
        // Distinct aliases spread over a qname-hash balancer DO cover all
        // caches — the farm technique is strictly stronger here.
        let (mut platform, mut net, mut infra) = world(6, SelectorKind::QnameHash, 10);
        let session = infra.new_session(&mut net, 256);
        let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 5);
        let mut access = direct(&mut prober, &mut platform, &mut net);
        let e = enumerate_cname_farm(
            &mut access,
            &infra,
            &session,
            EnumerateOptions::with_probes(128),
            SimTime::ZERO,
        );
        assert_eq!(e.observed, 6);
    }

    #[test]
    fn names_hierarchy_counts_referrals_at_parent() {
        for n in [1usize, 4] {
            let (mut platform, mut net, mut infra) = world(n, SelectorKind::Random, 300 + n as u64);
            let session = infra.new_session(&mut net, 128);
            let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 6);
            let mut access = direct(&mut prober, &mut platform, &mut net);
            let q = cde_analysis::coupon::query_budget(n as u64, 0.001);
            let e = enumerate_names_hierarchy(
                &mut access,
                &infra,
                &session,
                EnumerateOptions::with_probes(q),
                SimTime::ZERO,
            );
            assert_eq!(e.observed, n as u64, "n={n}");
        }
    }

    #[test]
    fn two_phase_covers_and_validates() {
        let n = 5usize;
        let (mut platform, mut net, mut infra) = world(n, SelectorKind::Random, 42);
        let session = infra.new_session(&mut net, 8);
        let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 7);
        let mut access = direct(&mut prober, &mut platform, &mut net);
        let seeds = 4 * n as u64; // N = 4n → uncovered ≈ e⁻⁴ ≈ 1.8%
        let r = enumerate_two_phase(&mut access, &infra, &session, seeds, SimTime::ZERO);
        assert_eq!(r.total_observed, n as u64);
        assert_eq!(r.observed_init + r.observed_validate, r.total_observed);
        // Most validate probes must be hits once the caches are seeded.
        assert!(
            r.validate_hits >= seeds - n as u64,
            "hits {} of {seeds}",
            r.validate_hits
        );
        assert_eq!(r.estimated, n as u64);
    }

    #[test]
    fn carpet_bombing_recovers_lossy_enumeration() {
        let n = 4usize;
        // 11% client-side loss (Iran profile).
        let lossy_link = Link::new(
            LatencyModel::Constant(SimDuration::from_millis(10)),
            LossModel::with_rate(0.11),
        );
        let trials = 12;
        let mut plain_wrong = 0;
        let mut carpet_wrong = 0;
        for t in 0..trials {
            // Without redundancy.
            let (mut platform, mut net, mut infra) = world(n, SelectorKind::Random, 900 + t);
            let session = infra.new_session(&mut net, 8);
            let mut prober =
                DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), lossy_link.clone(), 70 + t);
            let mut access = direct(&mut prober, &mut platform, &mut net);
            let e = enumerate_identical(
                &mut access,
                &infra,
                &session,
                EnumerateOptions {
                    probes: 24,
                    redundancy: 1,
                    gap: SimDuration::from_millis(20),
                },
                SimTime::ZERO,
            );
            if e.observed != n as u64 {
                plain_wrong += 1;
            }
            // With K chosen from the loss rate.
            let (mut platform, mut net, mut infra) = world(n, SelectorKind::Random, 950 + t);
            let session = infra.new_session(&mut net, 8);
            let mut prober =
                DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), lossy_link.clone(), 80 + t);
            let mut access = direct(&mut prober, &mut platform, &mut net);
            let k = cde_analysis::estimators::carpet_bombing_k(0.11, 0.001);
            let e = enumerate_identical(
                &mut access,
                &infra,
                &session,
                EnumerateOptions {
                    probes: 24,
                    redundancy: k,
                    gap: SimDuration::from_millis(20),
                },
                SimTime::ZERO,
            );
            if e.observed != n as u64 {
                carpet_wrong += 1;
            }
        }
        assert!(
            carpet_wrong <= plain_wrong,
            "carpet {carpet_wrong} vs plain {plain_wrong}"
        );
        assert!(
            carpet_wrong <= 2,
            "carpet bombing still wrong {carpet_wrong}/{trials}"
        );
    }

    #[test]
    fn estimator_corrects_underprobed_runs() {
        // Deliberately too few probes: ω < n but the estimate moves closer.
        let n = 12usize;
        let mut rng = DetRng::seed(5);
        let mut raw_err = 0i64;
        let mut est_err = 0i64;
        for t in 0..10 {
            let (mut platform, mut net, mut infra) =
                world(n, SelectorKind::Random, 500 + t + rng.gen::<u8>() as u64);
            let session = infra.new_session(&mut net, 8);
            let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 8 + t);
            let mut access = direct(&mut prober, &mut platform, &mut net);
            let e = enumerate_identical(
                &mut access,
                &infra,
                &session,
                EnumerateOptions::with_probes(n as u64),
                SimTime::ZERO,
            );
            raw_err += (n as i64 - e.observed as i64).abs();
            est_err += (n as i64 - e.estimated as i64).abs();
        }
        assert!(est_err <= raw_err, "estimated {est_err} vs raw {raw_err}");
    }

    #[test]
    #[should_panic(expected = "farm")]
    fn farm_smaller_than_probes_panics() {
        let (mut platform, mut net, mut infra) = world(2, SelectorKind::Random, 1);
        let session = infra.new_session(&mut net, 2);
        let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 9);
        let mut access = direct(&mut prober, &mut platform, &mut net);
        enumerate_cname_farm(
            &mut access,
            &infra,
            &session,
            EnumerateOptions::with_probes(10),
            SimTime::ZERO,
        );
    }
}
