//! The Caches Discovery and Enumeration (CDE) measurement infrastructure.
//!
//! The infrastructure owns a domain (`cache.example` by default), operates
//! authoritative nameservers for it and for delegated subdomains, and
//! observes the queries arriving there (paper §IV-A, Fig. 1). Each
//! measurement opens a fresh *session*: a new honey record, a farm of
//! CNAME aliases pointing at it (§IV-B2a) and a freshly delegated subzone
//! for the names-hierarchy bypass (§IV-B2b), so repeated measurements
//! never contaminate each other through leftover TTL state.

use cde_dns::{Name, RData, Record, Ttl, Zone};
use cde_netsim::SimTime;
use cde_platform::{AuthServer, NameserverNet};
use std::net::Ipv4Addr;

/// Addresses the infrastructure claims inside the simulation.
const ROOT_ADDR: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const TLD_ADDR: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 10);
const ZONE_ADDR: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 20);
const SUB_ADDR: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 30);

/// TTL given to session records; long enough that a measurement finishes
/// well within it.
fn session_ttl() -> Ttl {
    Ttl::from_secs(3600)
}

/// One measurement session's names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Session {
    /// The honey record all aliases converge on; fetched once per cache.
    pub honey: Name,
    /// CNAME aliases `x-<s>-<i>` → honey (local-cache bypass §IV-B2a).
    pub farm: Vec<Name>,
    /// Names inside the session's delegated subzone (§IV-B2b).
    pub sub_farm: Vec<Name>,
    /// Apex of the session's delegated subzone.
    pub sub_apex: Name,
}

/// The CDE infrastructure handle.
///
/// # Examples
///
/// ```
/// use cde_core::CdeInfra;
/// use cde_platform::NameserverNet;
///
/// let mut net = NameserverNet::new();
/// let mut infra = CdeInfra::install(&mut net);
/// let session = infra.new_session(&mut net, 16);
/// assert_eq!(session.farm.len(), 16);
/// assert_eq!(infra.count_honey_fetches(&net, &session.honey), 0);
/// ```
/// `Clone` yields an independent handle over the *same* installed
/// infrastructure — useful when a second driver (e.g. a resumed
/// campaign manager) needs to derive names against an apex that is
/// already being served. Counters diverge after the clone; resuming
/// drivers should [`CdeInfra::restore_session_counter`] from a
/// checkpoint rather than trust a stale clone.
#[derive(Debug, Clone)]
pub struct CdeInfra {
    apex: Name,
    session_counter: u64,
}

impl CdeInfra {
    /// Installs the infrastructure into `net`: a root server, an `example`
    /// TLD server, the `cache.example` zone server and a server for
    /// delegated measurement subzones.
    ///
    /// # Panics
    ///
    /// Panics if `net` already has a server at one of the infrastructure
    /// addresses (install on a fresh network).
    pub fn install(net: &mut NameserverNet) -> CdeInfra {
        let apex: Name = "cache.example".parse().expect("static name");
        for addr in [ROOT_ADDR, TLD_ADDR, ZONE_ADDR, SUB_ADDR] {
            assert!(
                net.server(addr).is_none(),
                "infrastructure address {addr} already in use"
            );
        }

        let mut root = Zone::new(Name::root());
        root.add(ns_record("example", "ns.example"))
            .expect("in zone");
        root.add(a_record("ns.example", TLD_ADDR)).expect("in zone");
        net.add_server(AuthServer::new(ROOT_ADDR, vec![root]));

        let mut tld = Zone::with_soa("example".parse().expect("static"), Ttl::from_secs(300));
        tld.add(ns_record("cache.example", "ns1.cache.example"))
            .expect("in zone");
        tld.add(a_record("ns1.cache.example", ZONE_ADDR))
            .expect("in zone");
        net.add_server(AuthServer::new(TLD_ADDR, vec![tld]));

        // A high SOA MINIMUM makes the *target's* negative-TTL cap the
        // binding constraint, which is what software fingerprinting
        // measures (crate::fingerprint).
        let zone = Zone::with_soa(apex.clone(), Ttl::from_secs(86_400));
        net.add_server(AuthServer::new(ZONE_ADDR, vec![zone]));

        net.add_server(AuthServer::new(SUB_ADDR, Vec::new()));

        CdeInfra {
            apex,
            session_counter: 0,
        }
    }

    /// The domain the infrastructure owns.
    pub fn apex(&self) -> &Name {
        &self.apex
    }

    /// Address of the nameserver for the main zone (the primary
    /// observation point).
    pub fn zone_server_addr(&self) -> Ipv4Addr {
        ZONE_ADDR
    }

    /// Address of the server hosting delegated measurement subzones.
    pub fn sub_server_addr(&self) -> Ipv4Addr {
        SUB_ADDR
    }

    /// The counter every session and nonce name derives from. Snapshot
    /// it *before* calling [`CdeInfra::new_session`] and a later
    /// [`CdeInfra::restore_session_counter`] +`new_session` pair will
    /// regenerate that session's exact names (`name-<s>`, `x-<s>-<i>`,
    /// `sub-<s>`) — the seam checkpoint/resume builds on.
    pub fn session_counter(&self) -> u64 {
        self.session_counter
    }

    /// Restores the session counter from a checkpoint. The next
    /// [`CdeInfra::new_session`] re-derives the same names a session
    /// created at this counter value produced. Callers resuming into a
    /// live infrastructure must take care not to rewind below sessions
    /// still being served, or names would collide.
    pub fn restore_session_counter(&mut self, counter: u64) {
        self.session_counter = counter;
    }

    /// Opens a fresh session with `farm_size` aliases and as many subzone
    /// names, installing all records into the served zones. Records carry
    /// a 1-hour TTL; use [`CdeInfra::new_session_with_ttl`] when the
    /// measurement manipulates TTLs (e.g. the §II-C consistency audit).
    pub fn new_session(&mut self, net: &mut NameserverNet, farm_size: usize) -> Session {
        self.new_session_with_ttl(net, farm_size, session_ttl())
    }

    /// Like [`CdeInfra::new_session`] with an explicit record TTL.
    pub fn new_session_with_ttl(
        &mut self,
        net: &mut NameserverNet,
        farm_size: usize,
        ttl: Ttl,
    ) -> Session {
        let session_ttl = move || ttl;
        self.session_counter += 1;
        let s = self.session_counter;
        let honey = self
            .apex
            .prepend_label(format!("name-{s}"))
            .expect("session label fits");
        let sub_apex = self
            .apex
            .prepend_label(format!("sub-{s}"))
            .expect("session label fits");
        let sub_ns = sub_apex.prepend_label("ns").expect("session label fits");

        // Main zone: honey A record, CNAME farm, subzone delegation.
        {
            let zone = net
                .server_mut(ZONE_ADDR)
                .expect("zone server installed")
                .zone_mut(&self.apex)
                .expect("apex zone present");
            zone.add(Record::new(
                honey.clone(),
                session_ttl(),
                RData::A(Ipv4Addr::new(198, 51, 100, 4)),
            ))
            .expect("in zone");
            zone.add(Record::new(
                sub_apex.clone(),
                session_ttl(),
                RData::Ns(sub_ns.clone()),
            ))
            .expect("in zone");
            zone.add(Record::new(
                sub_ns.clone(),
                session_ttl(),
                RData::A(SUB_ADDR),
            ))
            .expect("in zone");
        }
        let mut farm = Vec::with_capacity(farm_size);
        for i in 1..=farm_size {
            let alias = self
                .apex
                .prepend_label(format!("x-{s}-{i}"))
                .expect("session label fits");
            net.server_mut(ZONE_ADDR)
                .expect("zone server installed")
                .zone_mut(&self.apex)
                .expect("apex zone present")
                .add(Record::new(
                    alias.clone(),
                    session_ttl(),
                    RData::Cname(honey.clone()),
                ))
                .expect("in zone");
            farm.push(alias);
        }

        // Child zone on the sub server.
        let mut sub_zone = Zone::with_soa(sub_apex.clone(), Ttl::from_secs(300));
        let mut sub_farm = Vec::with_capacity(farm_size);
        for i in 1..=farm_size {
            let name = sub_apex
                .prepend_label(format!("x-{s}-{i}"))
                .expect("session label fits");
            sub_zone
                .add(Record::new(
                    name.clone(),
                    session_ttl(),
                    RData::A(Ipv4Addr::new(198, 51, 100, 5)),
                ))
                .expect("in zone");
            sub_farm.push(name);
        }
        net.server_mut(SUB_ADDR)
            .expect("sub server installed")
            .add_zone(sub_zone);

        Session {
            honey,
            farm,
            sub_farm,
            sub_apex,
        }
    }

    /// A fresh, guaranteed-uncached name under the apex (for loss probing
    /// and timing calibration). Does **not** install a record — queries for
    /// it produce NXDOMAIN, which still exercises the full upstream path.
    pub fn fresh_nonce_name(&mut self) -> Name {
        self.session_counter += 1;
        self.apex
            .prepend_label(format!("nonce-{}", self.session_counter))
            .expect("session label fits")
    }

    /// The enumeration count ω: queries for `honey` observed at the main
    /// zone server, counted **per query type** (maximum over types).
    ///
    /// Indirect probers trigger several query types per probe (an MTA asks
    /// TXT, MX and A; §III-B). Each type is cached independently, so each
    /// type's fetch count is an independent enumeration of the same cache
    /// bank; the best-covered type is the measurement. For single-type
    /// probing this is the plain count.
    pub fn count_honey_fetches(&self, net: &NameserverNet, honey: &Name) -> usize {
        let Some(server) = net.server(ZONE_ADDR) else {
            return 0;
        };
        let mut per_type: std::collections::HashMap<cde_dns::RecordType, usize> =
            std::collections::HashMap::new();
        for e in server.log().iter().filter(|e| &e.qname == honey) {
            *per_type.entry(e.qtype).or_insert(0) += 1;
        }
        per_type.values().copied().max().unwrap_or(0)
    }

    /// Number of queries observed at the main zone server for the
    /// *delegation* of a session subzone — the names-hierarchy count: each
    /// cache asks the parent for the subzone's NS exactly once.
    pub fn count_referral_fetches(&self, net: &NameserverNet, session: &Session) -> usize {
        net.server(ZONE_ADDR)
            .map(|s| {
                s.log()
                    .iter()
                    .filter(|e| e.qname.is_subdomain_of(&session.sub_apex))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Distinct egress addresses observed across all infrastructure servers
    /// since the last log clear.
    pub fn observed_egress_sources(&self, net: &NameserverNet) -> Vec<Ipv4Addr> {
        let mut out: Vec<Ipv4Addr> = [ZONE_ADDR, SUB_ADDR, TLD_ADDR, ROOT_ADDR]
            .iter()
            .filter_map(|a| net.server(*a))
            .flat_map(|s| s.log().iter().map(|e| e.from))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// EDNS adoption observed at all infrastructure servers since the last
    /// log clear: `(queries with an OPT record, total queries)`. This is
    /// the §II-C use case of "measuring adoption of new mechanisms for
    /// DNS, such as the transport layer EDNS mechanism".
    pub fn observed_edns_adoption(&self, net: &NameserverNet) -> (usize, usize) {
        let mut with = 0;
        let mut total = 0;
        for addr in [ZONE_ADDR, SUB_ADDR, TLD_ADDR, ROOT_ADDR] {
            if let Some(s) = net.server(addr) {
                for e in s.log() {
                    total += 1;
                    if e.edns.is_some() {
                        with += 1;
                    }
                }
            }
        }
        (with, total)
    }

    /// Timestamps of queries for `honey` (for rate/consistency studies).
    pub fn honey_fetch_times(&self, net: &NameserverNet, honey: &Name) -> Vec<SimTime> {
        net.server(ZONE_ADDR)
            .map(|s| {
                s.log()
                    .iter()
                    .filter(|e| &e.qname == honey)
                    .map(|e| e.at)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Clears all infrastructure query logs (between measurement phases).
    pub fn clear_observations(&self, net: &mut NameserverNet) {
        for addr in [ROOT_ADDR, TLD_ADDR, ZONE_ADDR, SUB_ADDR] {
            if let Some(s) = net.server_mut(addr) {
                s.clear_log();
            }
        }
    }
}

fn ns_record(owner: &str, host: &str) -> Record {
    Record::new(
        owner.parse().expect("static name"),
        Ttl::from_secs(86_400),
        RData::Ns(host.parse().expect("static name")),
    )
}

fn a_record(owner: &str, addr: Ipv4Addr) -> Record {
    Record::new(
        owner.parse().expect("static name"),
        Ttl::from_secs(86_400),
        RData::A(addr),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cde_dns::Question;
    use cde_dns::RecordType;

    #[test]
    fn install_registers_four_servers() {
        let mut net = NameserverNet::new();
        let infra = CdeInfra::install(&mut net);
        assert_eq!(net.root_addr(), ROOT_ADDR);
        assert!(net.server(infra.zone_server_addr()).is_some());
        assert!(net.server(infra.sub_server_addr()).is_some());
        assert_eq!(net.servers().count(), 4);
    }

    #[test]
    #[should_panic(expected = "already in use")]
    fn double_install_panics() {
        let mut net = NameserverNet::new();
        let _ = CdeInfra::install(&mut net);
        let _ = CdeInfra::install(&mut net);
    }

    #[test]
    fn restored_counter_regenerates_identical_session_names() {
        let mut net = NameserverNet::new();
        let mut infra = CdeInfra::install(&mut net);
        let _burned = infra.new_session(&mut net, 4); // advance the counter
        let before = infra.session_counter();
        let original = infra.new_session(&mut net, 8);

        // A fresh process resuming from a checkpoint taken before the
        // session opened: restore the counter, re-open, same names.
        let mut net2 = NameserverNet::new();
        let mut infra2 = CdeInfra::install(&mut net2);
        infra2.restore_session_counter(before);
        let resumed = infra2.new_session(&mut net2, 8);
        assert_eq!(original.honey, resumed.honey);
        assert_eq!(original.farm, resumed.farm);
        assert_eq!(original.sub_apex, resumed.sub_apex);
        assert_eq!(infra.session_counter(), infra2.session_counter());
    }

    #[test]
    fn sessions_use_fresh_names() {
        let mut net = NameserverNet::new();
        let mut infra = CdeInfra::install(&mut net);
        let s1 = infra.new_session(&mut net, 4);
        let s2 = infra.new_session(&mut net, 4);
        assert_ne!(s1.honey, s2.honey);
        assert_ne!(s1.sub_apex, s2.sub_apex);
        assert!(s1.farm.iter().all(|f| !s2.farm.contains(f)));
    }

    #[test]
    fn session_records_are_served() {
        let mut net = NameserverNet::new();
        let mut infra = CdeInfra::install(&mut net);
        let s = infra.new_session(&mut net, 2);
        // Honey record answers authoritatively.
        let resp = net
            .deliver(
                ZONE_ADDR,
                Ipv4Addr::new(1, 1, 1, 1),
                &Question::new(s.honey.clone(), RecordType::A),
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(resp.answers.len(), 1);
        // Farm names answer with a CNAME only (minimal responses).
        let resp = net
            .deliver(
                ZONE_ADDR,
                Ipv4Addr::new(1, 1, 1, 1),
                &Question::new(s.farm[0].clone(), RecordType::A),
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(resp.answers.len(), 1);
        assert_eq!(resp.answers[0].rtype(), RecordType::Cname);
        // Subzone names answer from the sub server.
        let resp = net
            .deliver(
                SUB_ADDR,
                Ipv4Addr::new(1, 1, 1, 1),
                &Question::new(s.sub_farm[0].clone(), RecordType::A),
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(resp.answers.len(), 1);
        assert_eq!(resp.answers[0].rtype(), RecordType::A);
    }

    #[test]
    fn parent_refers_to_session_subzone() {
        let mut net = NameserverNet::new();
        let mut infra = CdeInfra::install(&mut net);
        let s = infra.new_session(&mut net, 2);
        let resp = net
            .deliver(
                ZONE_ADDR,
                Ipv4Addr::new(1, 1, 1, 1),
                &Question::new(s.sub_farm[0].clone(), RecordType::A),
                SimTime::ZERO,
            )
            .unwrap();
        assert!(resp.answers.is_empty());
        assert_eq!(resp.authorities.len(), 1);
        assert_eq!(resp.authorities[0].rtype(), RecordType::Ns);
        assert_eq!(resp.additionals.len(), 1); // glue
    }

    #[test]
    fn honey_fetch_counting_and_clearing() {
        let mut net = NameserverNet::new();
        let mut infra = CdeInfra::install(&mut net);
        let s = infra.new_session(&mut net, 2);
        let q = Question::new(s.honey.clone(), RecordType::A);
        for i in 0..3 {
            net.deliver(ZONE_ADDR, Ipv4Addr::new(2, 2, 2, i), &q, SimTime::ZERO);
        }
        assert_eq!(infra.count_honey_fetches(&net, &s.honey), 3);
        assert_eq!(infra.observed_egress_sources(&net).len(), 3);
        assert_eq!(infra.honey_fetch_times(&net, &s.honey).len(), 3);
        infra.clear_observations(&mut net);
        assert_eq!(infra.count_honey_fetches(&net, &s.honey), 0);
        assert!(infra.observed_egress_sources(&net).is_empty());
    }

    #[test]
    fn referral_fetches_count_subzone_queries_at_parent() {
        let mut net = NameserverNet::new();
        let mut infra = CdeInfra::install(&mut net);
        let s = infra.new_session(&mut net, 2);
        let q = Question::new(s.sub_farm[0].clone(), RecordType::A);
        net.deliver(ZONE_ADDR, Ipv4Addr::new(3, 3, 3, 3), &q, SimTime::ZERO);
        assert_eq!(infra.count_referral_fetches(&net, &s), 1);
        // Queries at the child do not count.
        net.deliver(SUB_ADDR, Ipv4Addr::new(3, 3, 3, 3), &q, SimTime::ZERO);
        assert_eq!(infra.count_referral_fetches(&net, &s), 1);
    }

    #[test]
    fn nonce_names_are_unique_and_in_apex() {
        let mut net = NameserverNet::new();
        let mut infra = CdeInfra::install(&mut net);
        let a = infra.fresh_nonce_name();
        let b = infra.fresh_nonce_name();
        assert_ne!(a, b);
        assert!(a.is_subdomain_of(infra.apex()));
    }
}
