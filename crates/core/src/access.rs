//! Access channels: how probes reach a target platform.
//!
//! The paper runs the same logical techniques over three channels
//! (§IV-B): direct queries to open resolvers, SMTP-triggered lookups and
//! browser-triggered lookups. [`AccessChannel`] abstracts the channel so
//! enumeration and mapping are written once. Implementations deliberately
//! expose only what the real channel exposes: indirect channels cannot
//! pick the query type or observe precise latency per probe.

use cde_dns::{Name, RecordType};
use cde_netsim::{SimDuration, SimTime};
use cde_platform::{NameserverNet, ResolutionPlatform};
use cde_probers::{
    AdNetProber, DirectProber, EnterpriseMailServer, ProbeReply, SmtpProber, WebClient,
};
use std::net::Ipv4Addr;

/// What the prober observed for one triggered probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TriggerOutcome {
    /// A response came back; latency is only available on channels that
    /// can measure it (direct access).
    Delivered {
        /// Measured round-trip latency, when the channel exposes it.
        latency: Option<SimDuration>,
    },
    /// The probe timed out (lost on the wire).
    TimedOut,
    /// A local cache answered before the probe reached the platform
    /// (indirect channels only).
    BlockedLocally,
}

impl TriggerOutcome {
    /// `true` when the probe reached the platform and a response returned.
    pub fn is_delivered(&self) -> bool {
        matches!(self, TriggerOutcome::Delivered { .. })
    }
}

/// A channel through which probes for names in the CDE domain can be
/// triggered against one target platform.
///
/// Implementations borrow the platform and the simulated Internet for the
/// duration of a measurement.
pub trait AccessChannel {
    /// Triggers one probe for `qname` at virtual time `now`.
    fn trigger(&mut self, qname: &Name, now: SimTime) -> TriggerOutcome;

    /// Read access to the authoritative side (the CDE observation point).
    fn net(&self) -> &NameserverNet;

    /// Mutable access to the authoritative side (for clearing logs).
    fn net_mut(&mut self) -> &mut NameserverNet;

    /// `true` when the channel controls probe timing and can measure
    /// latency (direct access; §IV-B3's direct-ingress timing channel
    /// needs this).
    fn measures_latency(&self) -> bool {
        false
    }
}

/// Direct access to an open resolver's ingress address (set-up 2, Fig. 1).
#[derive(Debug)]
pub struct DirectAccess<'a> {
    /// The probing client.
    pub prober: &'a mut DirectProber,
    /// Target platform.
    pub platform: &'a mut ResolutionPlatform,
    /// Ingress address probed.
    pub ingress: Ipv4Addr,
    /// The authoritative world.
    pub net: &'a mut NameserverNet,
    /// Query type used for probes.
    pub qtype: RecordType,
}

impl<'a> DirectAccess<'a> {
    /// Creates a direct channel probing `ingress` with A queries.
    pub fn new(
        prober: &'a mut DirectProber,
        platform: &'a mut ResolutionPlatform,
        ingress: Ipv4Addr,
        net: &'a mut NameserverNet,
    ) -> DirectAccess<'a> {
        DirectAccess {
            prober,
            platform,
            ingress,
            net,
            qtype: RecordType::A,
        }
    }
}

impl AccessChannel for DirectAccess<'_> {
    fn trigger(&mut self, qname: &Name, now: SimTime) -> TriggerOutcome {
        match self.prober.probe(
            self.platform,
            self.ingress,
            qname,
            self.qtype,
            now,
            self.net,
        ) {
            ProbeReply::Answered { latency, .. } => TriggerOutcome::Delivered {
                latency: Some(latency),
            },
            ProbeReply::Timeout { .. } => TriggerOutcome::TimedOut,
        }
    }

    fn net(&self) -> &NameserverNet {
        self.net
    }

    fn net_mut(&mut self) -> &mut NameserverNet {
        self.net
    }

    fn measures_latency(&self) -> bool {
        true
    }
}

/// Indirect access through an enterprise mail server (§III-B).
#[derive(Debug)]
pub struct SmtpAccess<'a> {
    /// The probing side.
    pub prober: &'a mut SmtpProber,
    /// The enterprise's MTA.
    pub mta: &'a mut EnterpriseMailServer,
    /// The enterprise's resolution platform.
    pub platform: &'a mut ResolutionPlatform,
    /// The authoritative world.
    pub net: &'a mut NameserverNet,
}

impl AccessChannel for SmtpAccess<'_> {
    fn trigger(&mut self, qname: &Name, now: SimTime) -> TriggerOutcome {
        let triggered = self
            .prober
            .send_probe_email(self.mta, self.platform, self.net, qname, now);
        if triggered.iter().any(|t| t.reached_platform) {
            TriggerOutcome::Delivered { latency: None }
        } else if triggered.is_empty() {
            // MTA performs no sender verification at all: the channel
            // cannot generate probes for this name.
            TriggerOutcome::TimedOut
        } else {
            TriggerOutcome::BlockedLocally
        }
    }

    fn net(&self) -> &NameserverNet {
        self.net
    }

    fn net_mut(&mut self) -> &mut NameserverNet {
        self.net
    }
}

/// Indirect access through an ad-network web client (§III-C).
#[derive(Debug)]
pub struct AdNetAccess<'a> {
    /// The campaign driver.
    pub prober: &'a mut AdNetProber,
    /// The visitor's browser environment.
    pub client: &'a mut WebClient,
    /// The visitor's ISP platform.
    pub platform: &'a mut ResolutionPlatform,
    /// The authoritative world.
    pub net: &'a mut NameserverNet,
}

impl AccessChannel for AdNetAccess<'_> {
    fn trigger(&mut self, qname: &Name, now: SimTime) -> TriggerOutcome {
        let run = self.prober.run_forced(
            self.client,
            self.platform,
            self.net,
            std::slice::from_ref(qname),
            now,
        );
        if !run.reached_platform.is_empty() {
            TriggerOutcome::Delivered { latency: None }
        } else {
            TriggerOutcome::BlockedLocally
        }
    }

    fn net(&self) -> &NameserverNet {
        self.net
    }

    fn net_mut(&mut self) -> &mut NameserverNet {
        self.net
    }
}

/// A factory handing out one [`AccessChannel`] per ingress address.
///
/// Multi-ingress pipelines (ingress→cluster mapping, whole-platform
/// surveys) interleave probes through *different* ingress addresses of the
/// same platform. A provider owns whatever state those channels share —
/// the prober, the platform handle, the authoritative net or a live
/// transport — and lends out short-lived channels aimed at one ingress at
/// a time, so the pipelines can be written once and run over simulated or
/// wire-level backends alike.
pub trait AccessProvider {
    /// The channel type lent out, borrowing from the provider.
    type Channel<'a>: AccessChannel
    where
        Self: 'a;

    /// Opens a channel probing `ingress`.
    fn channel(&mut self, ingress: Ipv4Addr) -> Self::Channel<'_>;
}

/// [`AccessProvider`] over direct probing of a simulated platform — the
/// provider counterpart of [`DirectAccess`].
#[derive(Debug)]
pub struct DirectAccessProvider<'w> {
    prober: &'w mut DirectProber,
    platform: &'w mut ResolutionPlatform,
    net: &'w mut NameserverNet,
    qtype: RecordType,
}

impl<'w> DirectAccessProvider<'w> {
    /// Creates a provider probing `platform` with A queries.
    pub fn new(
        prober: &'w mut DirectProber,
        platform: &'w mut ResolutionPlatform,
        net: &'w mut NameserverNet,
    ) -> DirectAccessProvider<'w> {
        DirectAccessProvider {
            prober,
            platform,
            net,
            qtype: RecordType::A,
        }
    }
}

impl AccessProvider for DirectAccessProvider<'_> {
    type Channel<'a>
        = DirectAccess<'a>
    where
        Self: 'a;

    fn channel(&mut self, ingress: Ipv4Addr) -> DirectAccess<'_> {
        DirectAccess {
            prober: self.prober,
            platform: self.platform,
            ingress,
            net: self.net,
            qtype: self.qtype,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infra::CdeInfra;
    use cde_netsim::Link;
    use cde_platform::{PlatformBuilder, SelectorKind};
    use cde_probers::MailChecks;

    fn build_world() -> (ResolutionPlatform, NameserverNet, CdeInfra) {
        let mut net = NameserverNet::new();
        let infra = CdeInfra::install(&mut net);
        let platform = PlatformBuilder::new(77)
            .ingress(vec![Ipv4Addr::new(192, 0, 2, 1)])
            .egress(vec![Ipv4Addr::new(192, 0, 3, 1)])
            .cluster(2, SelectorKind::Random)
            .build();
        (platform, net, infra)
    }

    #[test]
    fn direct_access_delivers_and_measures_latency() {
        let (mut platform, mut net, mut infra) = build_world();
        let session = infra.new_session(&mut net, 4);
        let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 1);
        let mut access = DirectAccess::new(
            &mut prober,
            &mut platform,
            Ipv4Addr::new(192, 0, 2, 1),
            &mut net,
        );
        assert!(access.measures_latency());
        let out = access.trigger(&session.honey, SimTime::ZERO);
        assert!(matches!(
            out,
            TriggerOutcome::Delivered { latency: Some(_) }
        ));
        assert_eq!(infra.count_honey_fetches(access.net(), &session.honey), 1);
    }

    #[test]
    fn smtp_access_delivers_via_mta() {
        let (mut platform, mut net, mut infra) = build_world();
        let session = infra.new_session(&mut net, 4);
        let mut prober = SmtpProber::new(2);
        let mut mta = EnterpriseMailServer::new(
            Ipv4Addr::new(198, 18, 0, 25),
            MailChecks {
                spf_txt: true,
                ..MailChecks::default()
            },
            Ipv4Addr::new(192, 0, 2, 1),
        );
        let mut access = SmtpAccess {
            prober: &mut prober,
            mta: &mut mta,
            platform: &mut platform,
            net: &mut net,
        };
        assert!(!access.measures_latency());
        let out = access.trigger(&session.farm[0], SimTime::ZERO);
        assert!(out.is_delivered());
        // The farm alias chased the CNAME to the honey record.
        assert_eq!(infra.count_honey_fetches(access.net(), &session.honey), 1);
    }

    #[test]
    fn smtp_access_reports_blocked_on_repeat() {
        let (mut platform, mut net, mut infra) = build_world();
        let session = infra.new_session(&mut net, 4);
        let mut prober = SmtpProber::new(3);
        let mut mta = EnterpriseMailServer::new(
            Ipv4Addr::new(198, 18, 0, 25),
            MailChecks {
                spf_txt: true,
                ..MailChecks::default()
            },
            Ipv4Addr::new(192, 0, 2, 1),
        );
        let mut access = SmtpAccess {
            prober: &mut prober,
            mta: &mut mta,
            platform: &mut platform,
            net: &mut net,
        };
        // The SPF TXT answer for the honey name is cacheable in the stub...
        let _ = access.trigger(&session.honey, SimTime::ZERO);
        let second = access.trigger(&session.honey, SimTime::ZERO);
        // ...so the repeat must either be blocked locally or, if the first
        // answer was not cached (NODATA), still be delivered.
        assert!(second.is_delivered() || second == TriggerOutcome::BlockedLocally);
    }

    #[test]
    fn smtp_access_without_checks_cannot_probe() {
        let (mut platform, mut net, mut infra) = build_world();
        let session = infra.new_session(&mut net, 4);
        let mut prober = SmtpProber::new(4);
        let mut mta = EnterpriseMailServer::new(
            Ipv4Addr::new(198, 18, 0, 25),
            MailChecks::default(),
            Ipv4Addr::new(192, 0, 2, 1),
        );
        let mut access = SmtpAccess {
            prober: &mut prober,
            mta: &mut mta,
            platform: &mut platform,
            net: &mut net,
        };
        assert_eq!(
            access.trigger(&session.honey, SimTime::ZERO),
            TriggerOutcome::TimedOut
        );
    }

    #[test]
    fn adnet_access_delivers_distinct_names_and_blocks_repeats() {
        let (mut platform, mut net, mut infra) = build_world();
        let session = infra.new_session(&mut net, 4);
        let mut prober = AdNetProber::new(5);
        let mut client =
            WebClient::new(Ipv4Addr::new(203, 0, 113, 50), Ipv4Addr::new(192, 0, 2, 1));
        let mut access = AdNetAccess {
            prober: &mut prober,
            client: &mut client,
            platform: &mut platform,
            net: &mut net,
        };
        let first = access.trigger(&session.farm[0], SimTime::ZERO);
        assert!(first.is_delivered());
        let repeat = access.trigger(&session.farm[0], SimTime::ZERO);
        assert_eq!(repeat, TriggerOutcome::BlockedLocally);
        let other = access.trigger(&session.farm[1], SimTime::ZERO);
        assert!(other.is_delivered());
    }
}
