//! **CDE — Caches Discovery and Enumeration**: the primary contribution of
//! *Counting in the Dark: DNS Caches Discovery and Enumeration in the
//! Internet* (DSN 2017), reproduced as a library.
//!
//! DNS resolution platforms hide their caches behind ingress and egress
//! IP addresses. This crate discovers and counts those caches using only
//! standard DNS behaviour:
//!
//! * [`infra`] — the measurement infrastructure: an owned domain, session
//!   honey records, CNAME farms and delegated subzones, plus the
//!   nameserver-side observation channel (§IV-A),
//! * [`access`] — the three access channels: direct (open resolvers),
//!   SMTP and ad-network web clients (§III, §IV-B),
//! * [`enumerate`] — cache enumeration: identical queries, CNAME-farm and
//!   names-hierarchy local-cache bypasses, and the two-phase
//!   init/validate protocol (§IV-B1a, §IV-B2, §V-B),
//! * [`mapping`] — ingress→cache-cluster mapping via honey records and
//!   egress address discovery (§IV-B1b),
//! * [`timing`] — the latency side channel for indirect egress access
//!   (§IV-B3),
//! * [`planner`] — loss measurement, carpet bombing and query budgets
//!   (§V),
//! * [`sequential`] — sequential stopping: keep the coupon-collector
//!   posterior as distinct-cache evidence arrives and end the campaign
//!   the moment the exact-count criterion holds, instead of running
//!   fixed-`q` plans to exhaustion,
//! * [`survey`] — the end-to-end pipeline producing everything the
//!   paper's evaluation reports per network.
//!
//! # Examples
//!
//! Enumerate the caches of a simulated platform without ever reading its
//! ground truth:
//!
//! ```
//! use cde_core::access::DirectAccess;
//! use cde_core::enumerate::{enumerate_identical, EnumerateOptions};
//! use cde_core::CdeInfra;
//! use cde_netsim::{Link, SimTime};
//! use cde_platform::{NameserverNet, PlatformBuilder, SelectorKind};
//! use cde_probers::DirectProber;
//! use std::net::Ipv4Addr;
//!
//! let mut net = NameserverNet::new();
//! let mut infra = CdeInfra::install(&mut net);
//! let mut platform = PlatformBuilder::new(1)
//!     .ingress(vec![Ipv4Addr::new(192, 0, 2, 1)])
//!     .egress(vec![Ipv4Addr::new(192, 0, 3, 1)])
//!     .cluster(4, SelectorKind::Random)
//!     .build();
//! let session = infra.new_session(&mut net, 0);
//! let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 7);
//! let mut access = DirectAccess::new(&mut prober, &mut platform, Ipv4Addr::new(192, 0, 2, 1), &mut net);
//! let e = enumerate_identical(&mut access, &infra, &session, EnumerateOptions::with_probes(64), SimTime::ZERO);
//! assert_eq!(e.observed, 4); // the hidden cache count, recovered
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod consistency;
pub mod enumerate;
pub mod fingerprint;
pub mod infra;
pub mod longitudinal;
pub mod mapping;
pub mod planner;
pub mod resilience;
pub mod sequential;
pub mod survey;
pub mod timing;

pub use access::{
    AccessChannel, AccessProvider, AdNetAccess, DirectAccess, DirectAccessProvider, SmtpAccess,
    TriggerOutcome,
};
pub use consistency::{audit_ttl_consistency, ConsistencyOptions, ConsistencyReport, TtlVerdict};
pub use enumerate::{
    enumerate_cname_farm, enumerate_identical, enumerate_names_hierarchy, enumerate_two_phase,
    EnumerateOptions, Enumeration, TwoPhaseEnumeration,
};
pub use fingerprint::{classify, fingerprint_software, Fingerprint, FingerprintOptions};
pub use infra::{CdeInfra, Session};
pub use longitudinal::{CapacityChange, EpochMeasurement, PlatformTracker, Timeline};
pub use mapping::{
    discover_egress, map_ingress_to_clusters, map_ingress_to_clusters_with,
    mapping_matches_ground_truth, EgressDiscovery, IngressMapping, MappingOptions, MappingStrategy,
};
pub use planner::{measure_loss, ProbePlan};
pub use resilience::{
    expected_attack_attempts, poisoning_success_probability, simulate_attack_campaign,
    CampaignOutcome,
};
pub use sequential::{enumerate_sequential, SequentialEnumeration, SequentialPlanner};
pub use survey::{
    discover_egress_adaptive, enumerate_adaptive, survey_platform, survey_platform_with,
    validate_survey, PlatformSurvey, SurveyOptions,
};
pub use timing::{
    calibrate, enumerate_via_timing, CalibrationError, TimingCalibration, TimingEnumeration,
};
