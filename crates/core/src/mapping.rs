//! IP-to-caches mapping and egress discovery (paper §IV-B1b).
//!
//! *Ingress mapping*: plant a honey record in all caches behind one
//! ingress address, then query it through every other ingress address; an
//! address whose queries are answered without touching the CDE nameserver
//! shares the pivot's cache cluster.
//!
//! *Egress discovery*: force a stream of cache misses and record the
//! source addresses arriving at the CDE nameservers; repeated experiments
//! cover the whole egress pool (coupon collector over egress addresses).

use crate::access::{AccessChannel, AccessProvider, DirectAccessProvider};
use crate::infra::CdeInfra;
use cde_netsim::{SimDuration, SimTime};
use cde_platform::{NameserverNet, ResolutionPlatform};
use cde_probers::DirectProber;
use std::net::Ipv4Addr;

/// How the mapping procedure spends honey records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MappingStrategy {
    /// A fresh honey record per (pivot, candidate) test. Immune to
    /// cross-test cache pollution; costs one seeding round per test.
    #[default]
    FreshHoneyPerTest,
    /// One honey record per pivot, reused for every candidate — the
    /// paper's described procedure. Cheaper, but a candidate's test
    /// queries plant the pivot's honey in *its* cluster, which can
    /// misclassify later candidates of that cluster (worst with 1-cache
    /// clusters). Kept for the ablation bench.
    SharedHoneyPerPivot,
}

impl std::fmt::Display for MappingStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MappingStrategy::FreshHoneyPerTest => write!(f, "fresh-honey-per-test"),
            MappingStrategy::SharedHoneyPerPivot => write!(f, "shared-honey-per-pivot"),
        }
    }
}

/// Options for ingress mapping.
#[derive(Debug, Clone, Copy)]
pub struct MappingOptions {
    /// Seed queries planting the honey record via the pivot; pick
    /// `≥ 2·n_max` (paper §V-B), scaled by carpet bombing under loss.
    pub seeds_per_pivot: u64,
    /// Test queries per candidate address; all must be answered without a
    /// nameserver fetch to classify as "same cluster".
    pub test_probes: u64,
    /// Strategy (see [`MappingStrategy`]).
    pub strategy: MappingStrategy,
    /// Virtual-time gap between queries.
    pub gap: SimDuration,
}

impl Default for MappingOptions {
    fn default() -> MappingOptions {
        MappingOptions {
            seeds_per_pivot: 64,
            test_probes: 3,
            strategy: MappingStrategy::default(),
            gap: SimDuration::from_millis(20),
        }
    }
}

/// Discovered grouping of ingress addresses by shared cache cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngressMapping {
    /// Each inner vector is one discovered cluster of ingress addresses.
    pub clusters: Vec<Vec<Ipv4Addr>>,
    /// Total queries spent.
    pub queries_spent: u64,
}

impl IngressMapping {
    /// Number of discovered clusters.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// The cluster index of `ip`, if mapped.
    pub fn cluster_of(&self, ip: Ipv4Addr) -> Option<usize> {
        self.clusters.iter().position(|c| c.contains(&ip))
    }
}

/// Maps every ingress address of `platform` to a cache cluster using the
/// honey-record procedure.
///
/// Requires direct access (the prober must choose which ingress address to
/// query). Convenience wrapper over [`map_ingress_to_clusters_with`].
pub fn map_ingress_to_clusters(
    prober: &mut DirectProber,
    platform: &mut ResolutionPlatform,
    net: &mut NameserverNet,
    infra: &mut CdeInfra,
    ingress: &[Ipv4Addr],
    opts: MappingOptions,
    start: SimTime,
) -> IngressMapping {
    let mut provider = DirectAccessProvider::new(prober, platform, net);
    map_ingress_to_clusters_with(&mut provider, infra, ingress, opts, start)
}

/// Maps ingress addresses to cache clusters through any access backend.
///
/// The provider lends a channel per ingress address; everything else —
/// honey seeding, cross-ingress testing, the observation reads — goes
/// through the channel, so this runs identically over the simulator and
/// over a live wire-level transport.
pub fn map_ingress_to_clusters_with<P: AccessProvider>(
    provider: &mut P,
    infra: &mut CdeInfra,
    ingress: &[Ipv4Addr],
    opts: MappingOptions,
    start: SimTime,
) -> IngressMapping {
    let mut clusters: Vec<Vec<Ipv4Addr>> = Vec::new();
    // For the shared strategy: honey name per cluster, seeded once.
    let mut cluster_honey: Vec<cde_dns::Name> = Vec::new();
    let mut queries = 0u64;
    let mut now = start;

    for &candidate in ingress {
        let mut joined = None;
        for (ci, cluster) in clusters.iter().enumerate() {
            let pivot = cluster[0];
            let honey = match opts.strategy {
                MappingStrategy::FreshHoneyPerTest => {
                    let mut access = provider.channel(pivot);
                    let session = infra.new_session(access.net_mut(), 0);
                    // Seed via pivot.
                    for _ in 0..opts.seeds_per_pivot {
                        let _ = access.trigger(&session.honey, now);
                        queries += 1;
                        now += opts.gap;
                    }
                    session.honey
                }
                MappingStrategy::SharedHoneyPerPivot => cluster_honey[ci].clone(),
            };
            let mut access = provider.channel(candidate);
            infra.clear_observations(access.net_mut());
            let mut fetched = false;
            for _ in 0..opts.test_probes {
                let _ = access.trigger(&honey, now);
                queries += 1;
                now += opts.gap;
                if infra.count_honey_fetches(access.net(), &honey) > 0 {
                    fetched = true;
                    break;
                }
            }
            if !fetched {
                joined = Some(ci);
                break;
            }
        }
        match joined {
            Some(ci) => clusters[ci].push(candidate),
            None => {
                // New cluster pivoted at `candidate`.
                clusters.push(vec![candidate]);
                let mut access = provider.channel(candidate);
                let session = infra.new_session(access.net_mut(), 0);
                for _ in 0..opts.seeds_per_pivot {
                    let _ = access.trigger(&session.honey, now);
                    queries += 1;
                    now += opts.gap;
                }
                cluster_honey.push(session.honey);
            }
        }
    }

    IngressMapping {
        clusters,
        queries_spent: queries,
    }
}

/// Result of egress discovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EgressDiscovery {
    /// Distinct egress addresses observed at the CDE nameservers.
    pub egress_ips: Vec<Ipv4Addr>,
    /// Probes triggered.
    pub probes: u64,
}

/// Discovers the egress addresses of the platform behind `access` by
/// forcing `probes` cache misses (fresh nonce names) and recording the
/// source addresses of the resulting upstream queries.
pub fn discover_egress<A: AccessChannel>(
    access: &mut A,
    infra: &mut CdeInfra,
    probes: u64,
    start: SimTime,
) -> EgressDiscovery {
    infra.clear_observations(access.net_mut());
    let mut now = start;
    for _ in 0..probes {
        let nonce = infra.fresh_nonce_name();
        let _ = access.trigger(&nonce, now);
        now += SimDuration::from_millis(20);
    }
    EgressDiscovery {
        egress_ips: infra.observed_egress_sources(access.net()),
        probes,
    }
}

/// Ground-truth comparison helper: `true` when the discovered mapping
/// partitions `ingress` identically to the platform's real assignment.
pub fn mapping_matches_ground_truth(
    mapping: &IngressMapping,
    platform: &ResolutionPlatform,
) -> bool {
    let truth = platform.ground_truth().ingress_clusters;
    // Same-cluster relation must coincide on every address pair.
    let ips: Vec<Ipv4Addr> = truth.keys().copied().collect();
    for (i, &a) in ips.iter().enumerate() {
        for &b in &ips[i + 1..] {
            let measured_same =
                mapping.cluster_of(a).is_some() && mapping.cluster_of(a) == mapping.cluster_of(b);
            let truth_same = truth[&a] == truth[&b];
            if measured_same != truth_same {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::DirectAccess;
    use cde_netsim::Link;
    use cde_platform::{PlatformBuilder, SelectorKind};

    fn ing(d: u8) -> Ipv4Addr {
        Ipv4Addr::new(192, 0, 2, d)
    }

    fn build(
        clusters: &[usize],
        assignment: Vec<usize>,
        seed: u64,
    ) -> (ResolutionPlatform, NameserverNet, CdeInfra) {
        let mut net = NameserverNet::new();
        let infra = CdeInfra::install(&mut net);
        let ingress: Vec<Ipv4Addr> = (1..=assignment.len() as u8).map(ing).collect();
        let mut builder = PlatformBuilder::new(seed)
            .ingress(ingress)
            .egress((1..=6).map(|d| Ipv4Addr::new(192, 0, 3, d)).collect())
            .ingress_assignment(assignment);
        for &c in clusters {
            builder = builder.cluster(c, SelectorKind::Random);
        }
        (builder.build(), net, infra)
    }

    #[test]
    fn maps_two_clear_clusters() {
        // 4 ingress IPs: {1,3} → cluster 0, {2,4} → cluster 1.
        let (mut platform, mut net, mut infra) = build(&[2, 3], vec![0, 1, 0, 1], 21);
        let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 1);
        let mapping = map_ingress_to_clusters(
            &mut prober,
            &mut platform,
            &mut net,
            &mut infra,
            &[ing(1), ing(2), ing(3), ing(4)],
            MappingOptions::default(),
            SimTime::ZERO,
        );
        assert_eq!(mapping.cluster_count(), 2);
        assert_eq!(mapping.cluster_of(ing(1)), mapping.cluster_of(ing(3)));
        assert_eq!(mapping.cluster_of(ing(2)), mapping.cluster_of(ing(4)));
        assert_ne!(mapping.cluster_of(ing(1)), mapping.cluster_of(ing(2)));
        assert!(mapping_matches_ground_truth(&mapping, &platform));
    }

    #[test]
    fn single_cluster_platform_maps_to_one() {
        let (mut platform, mut net, mut infra) = build(&[3], vec![0, 0, 0], 22);
        let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 2);
        let mapping = map_ingress_to_clusters(
            &mut prober,
            &mut platform,
            &mut net,
            &mut infra,
            &[ing(1), ing(2), ing(3)],
            MappingOptions::default(),
            SimTime::ZERO,
        );
        assert_eq!(mapping.cluster_count(), 1);
        assert!(mapping_matches_ground_truth(&mapping, &platform));
    }

    #[test]
    fn fresh_honey_strategy_correct_on_single_cache_clusters() {
        // The adversarial case for the shared strategy: 3 clusters of one
        // cache each; candidate order interleaves the clusters.
        let (mut platform, mut net, mut infra) = build(&[1, 1, 1], vec![0, 1, 2, 0, 1, 2], 23);
        let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 3);
        let mapping = map_ingress_to_clusters(
            &mut prober,
            &mut platform,
            &mut net,
            &mut infra,
            &[ing(1), ing(2), ing(3), ing(4), ing(5), ing(6)],
            MappingOptions {
                strategy: MappingStrategy::FreshHoneyPerTest,
                ..MappingOptions::default()
            },
            SimTime::ZERO,
        );
        assert_eq!(mapping.cluster_count(), 3);
        assert!(mapping_matches_ground_truth(&mapping, &platform));
    }

    #[test]
    fn shared_honey_strategy_can_misclassify_single_cache_clusters() {
        // Documented limitation: with shared honey, testing ingress 2
        // (cluster 1) against pivot 1 plants pivot honey into cluster 1's
        // only cache; ingress 4 (cluster 1 again) then false-joins the
        // pivot's cluster.
        let (mut platform, mut net, mut infra) = build(&[1, 1], vec![0, 1, 0, 1], 24);
        let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 4);
        let mapping = map_ingress_to_clusters(
            &mut prober,
            &mut platform,
            &mut net,
            &mut infra,
            &[ing(1), ing(2), ing(3), ing(4)],
            MappingOptions {
                strategy: MappingStrategy::SharedHoneyPerPivot,
                ..MappingOptions::default()
            },
            SimTime::ZERO,
        );
        assert!(!mapping_matches_ground_truth(&mapping, &platform));
    }

    #[test]
    fn fresh_strategy_spends_more_queries_than_shared() {
        let run = |strategy| {
            let (mut platform, mut net, mut infra) = build(&[2, 2], vec![0, 1, 0, 1], 25);
            let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 5);
            map_ingress_to_clusters(
                &mut prober,
                &mut platform,
                &mut net,
                &mut infra,
                &[ing(1), ing(2), ing(3), ing(4)],
                MappingOptions {
                    strategy,
                    ..MappingOptions::default()
                },
                SimTime::ZERO,
            )
            .queries_spent
        };
        assert!(
            run(MappingStrategy::FreshHoneyPerTest) > run(MappingStrategy::SharedHoneyPerPivot)
        );
    }

    #[test]
    fn egress_discovery_covers_pool() {
        let (mut platform, mut net, mut infra) = build(&[2], vec![0], 26);
        let truth: std::collections::HashSet<Ipv4Addr> =
            platform.egress_ips().iter().copied().collect();
        let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 6);
        let mut access = DirectAccess::new(&mut prober, &mut platform, ing(1), &mut net);
        let d = discover_egress(&mut access, &mut infra, 64, SimTime::ZERO);
        let found: std::collections::HashSet<Ipv4Addr> = d.egress_ips.iter().copied().collect();
        assert_eq!(found, truth);
    }

    #[test]
    fn egress_discovery_underestimates_with_few_probes() {
        let (mut platform, mut net, mut infra) = build(&[1], vec![0], 27);
        let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 7);
        let mut access = DirectAccess::new(&mut prober, &mut platform, ing(1), &mut net);
        let d = discover_egress(&mut access, &mut infra, 1, SimTime::ZERO);
        // One probe cannot reveal all 6 egress addresses (it sends at most
        // a handful of upstream queries).
        assert!(d.egress_ips.len() < 6);
        assert!(!d.egress_ips.is_empty());
    }
}
