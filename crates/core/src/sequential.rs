//! Sequential stopping for exact-count enumeration (§V-B, sharpened).
//!
//! The fixed-`q` plans in [`crate::planner`] budget for the coupon
//! collector's worst case up front: `q = query_budget(n_max, eps)` probes
//! are spent even when the platform turns out to hold two caches that
//! answered within the first dozen probes. This module closes that gap
//! with a *sequential probability ratio* flavour of the same guarantee:
//! keep probing while the evidence is still consistent with an uncounted
//! cache, stop the moment it is not.
//!
//! The test is against the worst-case alternative. Suppose the true count
//! were `n = ω + 1` where `ω` is the number of distinct caches observed
//! so far. Under uniform cache selection every *delivered* probe lands on
//! the unseen cache with probability `1/(ω+1)`, so a run of `c`
//! consecutive delivered probes revealing nothing new has probability at
//! most `(ω/(ω+1))^c`. Once that drops below `ε`, the hypothesis "at
//! least one cache remains" is rejected at level `ε` — and every `n > ω+1`
//! is rejected a fortiori, because a larger pool makes a quiet run even
//! less likely per remaining cache count. Only delivered probes count:
//! a lost probe says nothing about coverage, so it never advances the
//! quiet run (bursty loss cannot fake convergence).

use crate::access::AccessChannel;
use crate::enumerate::{EnumerateOptions, Enumeration};
use crate::infra::{CdeInfra, Session};
use cde_netsim::SimTime;

/// Sequential stopping rule over distinct-cache evidence.
///
/// Feed it one call per logical probe — [`record_delivered`]
/// (`SequentialPlanner::record_delivered`) when any copy of the probe
/// produced a response, [`record_lost`](SequentialPlanner::record_lost)
/// otherwise — with the number of *new* nameserver fetches the probe
/// caused. [`should_stop`](SequentialPlanner::should_stop) turns true as
/// soon as the exact-count criterion holds.
#[derive(Debug, Clone, PartialEq)]
pub struct SequentialPlanner {
    /// Residual failure probability `ε`: the chance the rule stops while
    /// a cache is still uncounted.
    epsilon: f64,
    /// Distinct caches observed so far (`ω`).
    omega: u64,
    /// Consecutive delivered probes since the last new cache.
    consecutive: u64,
    /// Logical probes recorded in total.
    probes: u64,
    /// Recorded probes that were delivered.
    delivered: u64,
}

impl SequentialPlanner {
    /// Creates a planner with residual failure probability `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics when `epsilon` is outside `(0, 1)`.
    pub fn new(epsilon: f64) -> SequentialPlanner {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "epsilon must be in (0, 1), got {epsilon}"
        );
        SequentialPlanner {
            epsilon,
            omega: 0,
            consecutive: 0,
            probes: 0,
            delivered: 0,
        }
    }

    /// Records a delivered probe that caused `new_caches` first-time
    /// fetches at the nameserver. Zero extends the quiet run; anything
    /// positive restarts it.
    pub fn record_delivered(&mut self, new_caches: u64) {
        self.probes += 1;
        self.delivered += 1;
        self.omega += new_caches;
        if new_caches > 0 {
            self.consecutive = 0;
        } else {
            self.consecutive += 1;
        }
    }

    /// Records a lost probe. Loss is uninformative about coverage, so the
    /// quiet run does not advance — but if the probe still caused fetches
    /// (query delivered, response lost), the new evidence restarts it.
    pub fn record_lost(&mut self, new_caches: u64) {
        self.probes += 1;
        self.omega += new_caches;
        if new_caches > 0 {
            self.consecutive = 0;
        }
    }

    /// Distinct caches observed so far (`ω`).
    pub fn observed(&self) -> u64 {
        self.omega
    }

    /// Residual failure probability the planner was built with.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Logical probes recorded.
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Recorded probes that were delivered.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Delivered probes since the last new cache.
    pub fn consecutive_quiet(&self) -> u64 {
        self.consecutive
    }

    /// Probability of the current quiet run under the worst-case
    /// alternative `n = ω + 1`: `(ω/(ω+1))^consecutive`. This is `1.0`
    /// until at least one cache has been observed.
    pub fn miss_probability(&self) -> f64 {
        if self.omega == 0 {
            return 1.0;
        }
        let ratio = self.omega as f64 / (self.omega + 1) as f64;
        ratio.powf(self.consecutive as f64)
    }

    /// Smallest quiet run that satisfies the criterion at the current
    /// `ω`: `⌈ln ε / ln(ω/(ω+1))⌉`, roughly `(ω+1)·ln(1/ε)`. Returns
    /// `u64::MAX` while no cache has been observed (the rule can never
    /// fire on an empty record).
    pub fn required_quiet(&self) -> u64 {
        if self.omega == 0 {
            return u64::MAX;
        }
        let ratio = self.omega as f64 / (self.omega + 1) as f64;
        let quiet = (self.epsilon.ln() / ratio.ln()).ceil();
        if quiet >= u64::MAX as f64 {
            u64::MAX
        } else {
            (quiet as u64).max(1)
        }
    }

    /// True once the exact-count criterion holds: at least one cache
    /// observed and `miss_probability() ≤ ε`.
    pub fn should_stop(&self) -> bool {
        self.omega >= 1 && self.miss_probability() <= self.epsilon
    }

    /// Serializes the planner as one `seqplan key=value ...` line for
    /// versioned checkpoint files;
    /// [`SequentialPlanner::from_snapshot_line`] round-trips it exactly
    /// (`epsilon` uses shortest-round-trip float formatting).
    pub fn snapshot_line(&self) -> String {
        format!(
            "seqplan epsilon={} omega={} consecutive={} probes={} delivered={}",
            self.epsilon, self.omega, self.consecutive, self.probes, self.delivered
        )
    }

    /// Parses a line written by [`SequentialPlanner::snapshot_line`].
    /// Returns `None` on malformed input; unknown keys are ignored so
    /// newer writers stay readable by older parsers.
    pub fn from_snapshot_line(line: &str) -> Option<SequentialPlanner> {
        let mut fields = line.split_whitespace();
        if fields.next() != Some("seqplan") {
            return None;
        }
        let (mut epsilon, mut omega, mut consecutive, mut probes, mut delivered) =
            (None, None, None, None, None);
        for field in fields {
            let (key, value) = field.split_once('=')?;
            match key {
                "epsilon" => epsilon = Some(value.parse().ok()?),
                "omega" => omega = Some(value.parse().ok()?),
                "consecutive" => consecutive = Some(value.parse().ok()?),
                "probes" => probes = Some(value.parse().ok()?),
                "delivered" => delivered = Some(value.parse().ok()?),
                _ => {}
            }
        }
        let epsilon: f64 = epsilon?;
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return None;
        }
        Some(SequentialPlanner {
            epsilon,
            omega: omega?,
            consecutive: consecutive?,
            probes: probes?,
            delivered: delivered?,
        })
    }
}

/// Result of a sequential enumeration run.
#[derive(Debug, Clone, PartialEq)]
pub struct SequentialEnumeration {
    /// Counts in the shape every other variant reports; `probes` is the
    /// number actually spent, not the budget.
    pub enumeration: Enumeration,
    /// True when the stopping rule fired before the probe budget ran out.
    pub stopped_early: bool,
    /// Final planner state (for checkpointing and inspection).
    pub planner: SequentialPlanner,
}

/// Direct enumeration with sequential stopping: identical honey probes as
/// [`crate::enumerate::enumerate_identical`], but the nameserver's fetch
/// count is polled after every probe and the campaign ends as soon as
/// [`SequentialPlanner::should_stop`] fires — `opts.probes` is a budget
/// ceiling, not a spend target.
///
/// Exactness is preserved: the rule only stops once an uncounted cache is
/// ruled out at level `epsilon`, so the count matches the exhaustive run
/// with probability at least `1 − ε` while typically spending far fewer
/// probes.
pub fn enumerate_sequential<A: AccessChannel>(
    access: &mut A,
    infra: &CdeInfra,
    session: &Session,
    opts: EnumerateOptions,
    epsilon: f64,
    start: SimTime,
) -> SequentialEnumeration {
    let span = cde_telemetry::global().begin_campaign("enumerate_sequential", opts.probes);
    let mut planner = SequentialPlanner::new(epsilon);
    let mut now = start;
    let mut delivered = 0u64;
    let mut spent = 0u64;
    let mut stopped_early = false;
    for _ in 0..opts.probes {
        spent += 1;
        let mut hit = false;
        for _ in 0..opts.redundancy {
            if access.trigger(&session.honey, now).is_delivered() {
                hit = true;
                break;
            }
        }
        now += opts.gap;
        let observed = infra.count_honey_fetches(access.net(), &session.honey) as u64;
        let new_caches = observed.saturating_sub(planner.observed());
        if hit {
            delivered += 1;
            planner.record_delivered(new_caches);
        } else {
            planner.record_lost(new_caches);
        }
        if planner.should_stop() {
            stopped_early = spent < opts.probes;
            break;
        }
    }
    let observed = infra.count_honey_fetches(access.net(), &session.honey) as u64;
    span.note("observed_caches", observed);
    span.note("stopped_early", stopped_early as u64);
    span.end(spent, delivered, spent - delivered);
    SequentialEnumeration {
        enumeration: Enumeration::from_counts(spent, delivered, observed),
        stopped_early,
        planner,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::DirectAccess;
    use cde_analysis::coupon::query_budget;
    use cde_netsim::{LatencyModel, Link, LossModel, SimDuration};
    use cde_platform::{NameserverNet, PlatformBuilder, ResolutionPlatform, SelectorKind};
    use cde_probers::DirectProber;
    use std::net::Ipv4Addr;

    fn world(
        caches: usize,
        selector: SelectorKind,
        seed: u64,
    ) -> (ResolutionPlatform, NameserverNet, CdeInfra) {
        let mut net = NameserverNet::new();
        let infra = CdeInfra::install(&mut net);
        let platform = PlatformBuilder::new(seed)
            .ingress(vec![Ipv4Addr::new(192, 0, 2, 1)])
            .egress((1..=4).map(|d| Ipv4Addr::new(192, 0, 3, d)).collect())
            .cluster(caches, selector)
            .build();
        (platform, net, infra)
    }

    #[test]
    fn criterion_matches_required_quiet_exactly() {
        // should_stop must flip exactly when the quiet run reaches
        // required_quiet, never a probe earlier.
        let mut p = SequentialPlanner::new(0.001);
        p.record_delivered(1);
        p.record_delivered(1);
        p.record_delivered(1); // ω = 3
        let need = p.required_quiet();
        for i in 0..need {
            assert!(!p.should_stop(), "stopped after {i} of {need} quiet probes");
            p.record_delivered(0);
        }
        assert!(p.should_stop());
        assert!(p.miss_probability() <= 0.001);
    }

    #[test]
    fn required_quiet_tracks_omega() {
        // ⌈ln ε / ln(ω/(ω+1))⌉ ≈ (ω+1)·ln(1/ε): more caches need longer
        // quiet runs, and the planner can never stop at ω = 0.
        let p = SequentialPlanner::new(0.001);
        assert_eq!(p.required_quiet(), u64::MAX);
        assert!(!p.should_stop());
        let mut prev = 0u64;
        for omega in 1..=16u64 {
            let mut p = SequentialPlanner::new(0.001);
            p.record_delivered(omega);
            let need = p.required_quiet();
            assert!(need > prev, "quiet must grow with omega");
            // 1/(ω+1) ≤ ln(1+1/ω) ≤ 1/ω brackets the exact requirement
            // between ω·ln(1/ε) and (ω+1)·ln(1/ε).
            let lo = (omega as f64 * 1000f64.ln()).floor() as u64;
            let hi = ((omega + 1) as f64 * 1000f64.ln()).ceil() as u64;
            assert!(
                (lo..=hi).contains(&need),
                "omega={omega}: exact {need} outside [{lo}, {hi}]"
            );
            prev = need;
        }
    }

    #[test]
    fn lost_probes_never_advance_the_quiet_run() {
        let mut p = SequentialPlanner::new(0.01);
        p.record_delivered(1);
        for _ in 0..10_000 {
            p.record_lost(0);
        }
        assert_eq!(p.consecutive_quiet(), 0);
        assert!(!p.should_stop(), "pure loss must not fake convergence");
    }

    #[test]
    fn new_cache_restarts_the_quiet_run() {
        let mut p = SequentialPlanner::new(0.001);
        p.record_delivered(1);
        for _ in 0..5 {
            p.record_delivered(0);
        }
        assert_eq!(p.consecutive_quiet(), 5);
        p.record_delivered(1);
        assert_eq!(p.consecutive_quiet(), 0);
        // Evidence on a lost probe (response lost, query delivered) also
        // restarts it.
        for _ in 0..5 {
            p.record_delivered(0);
        }
        p.record_lost(1);
        assert_eq!(p.consecutive_quiet(), 0);
        assert_eq!(p.observed(), 3);
    }

    #[test]
    fn sequential_enumeration_is_exact_and_cheaper() {
        for n in [1usize, 3, 6, 12] {
            let (mut platform, mut net, mut infra) = world(n, SelectorKind::Random, 40 + n as u64);
            let session = infra.new_session(&mut net, 8);
            let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 1);
            let mut access = DirectAccess::new(
                &mut prober,
                &mut platform,
                Ipv4Addr::new(192, 0, 2, 1),
                &mut net,
            );
            let budget = query_budget(n as u64, 0.001);
            let r = enumerate_sequential(
                &mut access,
                &infra,
                &session,
                EnumerateOptions::with_probes(budget),
                0.001,
                SimTime::ZERO,
            );
            assert_eq!(r.enumeration.observed, n as u64, "n={n}");
            assert_eq!(r.planner.observed(), n as u64);
            assert!(
                r.enumeration.probes <= budget,
                "n={n}: spent {} of {budget}",
                r.enumeration.probes
            );
        }
    }

    #[test]
    fn sequential_enumeration_stays_exact_under_loss() {
        // 20% loss each way: lost probes must not shorten the campaign
        // into an undercount.
        let lossy = Link::new(
            LatencyModel::Constant(SimDuration::from_millis(5)),
            LossModel::with_rate(0.2),
        );
        let n = 5usize;
        let mut exact = 0;
        for t in 0..8u64 {
            let (mut platform, mut net, mut infra) = world(n, SelectorKind::Random, 700 + t);
            let session = infra.new_session(&mut net, 8);
            let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), lossy.clone(), t);
            let mut access = DirectAccess::new(
                &mut prober,
                &mut platform,
                Ipv4Addr::new(192, 0, 2, 1),
                &mut net,
            );
            let r = enumerate_sequential(
                &mut access,
                &infra,
                &session,
                EnumerateOptions {
                    probes: 4 * query_budget(n as u64, 0.001),
                    redundancy: 2,
                    gap: SimDuration::from_millis(10),
                },
                0.001,
                SimTime::ZERO,
            );
            if r.enumeration.observed == n as u64 {
                exact += 1;
            }
        }
        assert!(exact >= 7, "exact in {exact}/8 lossy runs");
    }

    #[test]
    fn snapshot_line_round_trips_exactly() {
        let mut p = SequentialPlanner::new(0.012_345_678_9);
        p.record_delivered(3);
        p.record_delivered(0);
        p.record_lost(0);
        p.record_delivered(1);
        let line = p.snapshot_line();
        let parsed = SequentialPlanner::from_snapshot_line(&line)
            .unwrap_or_else(|| panic!("unparseable: {line}"));
        assert_eq!(parsed, p, "line {line}");
    }

    #[test]
    fn snapshot_line_rejects_malformed_input() {
        assert!(SequentialPlanner::from_snapshot_line("").is_none());
        assert!(SequentialPlanner::from_snapshot_line("seqplan").is_none());
        assert!(SequentialPlanner::from_snapshot_line("plan epsilon=0.1").is_none());
        assert!(
            SequentialPlanner::from_snapshot_line(
                "seqplan epsilon=0.1 omega=1 consecutive=2 probes=3"
            )
            .is_none(),
            "missing delivered"
        );
        assert!(
            SequentialPlanner::from_snapshot_line(
                "seqplan epsilon=2.0 omega=1 consecutive=2 probes=3 delivered=3"
            )
            .is_none(),
            "epsilon out of range"
        );
        // Unknown keys are tolerated for forward compatibility.
        let line = "seqplan epsilon=0.001 omega=4 consecutive=9 probes=20 delivered=18 future=1";
        assert!(SequentialPlanner::from_snapshot_line(line).is_some());
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn zero_epsilon_rejected() {
        SequentialPlanner::new(0.0);
    }
}
