//! The stateful interpreter of a [`FaultPlan`].

use crate::plan::{
    DelayFault, DuplicateFault, FaultPlan, LossFault, RateLimitAction, TruncateFault,
};
use crate::stats::FaultStats;
use cde_netsim::{DetRng, GilbertElliott};
use rand::Rng;
use std::sync::Arc;
use std::time::Duration;

/// Which way a datagram is travelling through the injector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// A probe query on its way to the resolver.
    ClientToServer,
    /// A resolver reply on its way back to the prober.
    ServerToClient,
}

/// One surviving copy of a datagram and how to mangle it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Hold the copy back this long before putting it on the wire
    /// (unequal delays across copies are what reorders traffic).
    pub delay: Duration,
    /// Cut the payload to this many bytes before delivery.
    pub truncate_to: Option<usize>,
}

/// Why a datagram was removed from the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropCause {
    /// The loss model (uniform or bursty) ate it.
    Loss,
    /// An ICMP-unreachable-style hard error killed it.
    HardError,
    /// The resolver's rate limiter shed it silently.
    RateLimit,
}

/// What the injector decided for one datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Deliver these copies (always ≥ 1; more when duplication fired).
    Deliver(Vec<Delivery>),
    /// The datagram vanishes; nothing reaches the other side.
    Drop(DropCause),
    /// The resolver answers REFUSED instead of resolving — synthesize a
    /// response via [`refused_reply`] and do not forward the query.
    Refuse,
}

impl Verdict {
    /// `true` when nothing reaches the other side.
    pub fn is_drop(&self) -> bool {
        matches!(self, Verdict::Drop(_))
    }
}

/// Stateful loss: uniform draws or a Gilbert–Elliott chain advanced once
/// per datagram.
#[derive(Debug, Clone)]
enum LossState {
    None,
    Uniform(f64),
    Bursty(GilbertElliott),
}

impl LossState {
    fn from_plan(fault: &LossFault) -> LossState {
        match *fault {
            LossFault::None => LossState::None,
            LossFault::Uniform { rate } if rate <= 0.0 => LossState::None,
            LossFault::Uniform { rate } => LossState::Uniform(rate),
            LossFault::Bursty {
                mean_loss,
                mean_burst,
            } => LossState::Bursty(GilbertElliott::bursty(mean_loss, mean_burst)),
        }
    }

    fn drops(&mut self, rng: &mut DetRng) -> bool {
        match self {
            LossState::None => false,
            LossState::Uniform(rate) => rng.gen::<f64>() < *rate,
            LossState::Bursty(chain) => chain.drops(rng),
        }
    }
}

/// Deterministic token bucket: refills from the caller-supplied clock,
/// so simulated and wall time both work and replays are exact.
#[derive(Debug, Clone)]
struct TokenBucket {
    qps: f64,
    burst: f64,
    tokens: f64,
    last: Duration,
}

impl TokenBucket {
    fn new(qps: f64, burst: f64) -> TokenBucket {
        TokenBucket {
            qps,
            burst,
            tokens: burst,
            last: Duration::ZERO,
        }
    }

    fn admit(&mut self, now: Duration) -> bool {
        if now > self.last {
            let refill = (now - self.last).as_secs_f64() * self.qps;
            self.tokens = (self.tokens + refill).min(self.burst);
            self.last = now;
        }
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// The stateful fault interpreter: one per transport, every decision
/// drawn from the plan's seed.
#[derive(Debug)]
pub struct FaultInjector {
    seed: u64,
    query_loss: LossState,
    reply_loss: LossState,
    hard_error_rate: f64,
    delay: Option<DelayFault>,
    duplicate: Option<DuplicateFault>,
    truncate: Option<TruncateFault>,
    bucket: Option<(TokenBucket, RateLimitAction)>,
    rng: DetRng,
    stats: Arc<FaultStats>,
}

impl FaultInjector {
    /// Builds the interpreter, validating the plan.
    ///
    /// # Panics
    ///
    /// Panics when [`FaultPlan::validate`] rejects the plan.
    pub fn new(plan: &FaultPlan) -> FaultInjector {
        plan.validate();
        FaultInjector {
            seed: plan.seed,
            query_loss: LossState::from_plan(&plan.query_loss),
            reply_loss: LossState::from_plan(&plan.reply_loss),
            hard_error_rate: plan.hard_error_rate,
            delay: plan.delay,
            duplicate: plan.duplicate,
            truncate: plan.truncate,
            bucket: plan
                .rate_limit
                .map(|r| (TokenBucket::new(r.qps, r.burst), r.action)),
            rng: DetRng::seed(plan.seed).fork("fault-injector"),
            stats: Arc::new(FaultStats::new()),
        }
    }

    /// The plan seed every decision derives from — print this on test
    /// failure so the run can be replayed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Shared handle to the injected-fault counters.
    pub fn stats(&self) -> Arc<FaultStats> {
        Arc::clone(&self.stats)
    }

    /// Decides the fate of one datagram. `now` is the transport's clock
    /// (wall or simulated) and only feeds the rate-limit bucket;
    /// `payload_len` sizes truncation.
    ///
    /// Stateful: call exactly once per datagram, in transmission order,
    /// or replays diverge.
    pub fn decide(&mut self, dir: Direction, now: Duration, payload_len: usize) -> Verdict {
        match dir {
            Direction::ClientToServer => self.decide_query(now, payload_len),
            Direction::ServerToClient => self.decide_reply(payload_len),
        }
    }

    fn decide_query(&mut self, now: Duration, payload_len: usize) -> Verdict {
        if let Some((bucket, action)) = &mut self.bucket {
            if !bucket.admit(now) {
                self.stats.record_rate_limited();
                return match action {
                    RateLimitAction::Drop => Verdict::Drop(DropCause::RateLimit),
                    RateLimitAction::Refuse => {
                        self.stats.record_refused();
                        Verdict::Refuse
                    }
                };
            }
        }
        if self.hard_error_rate > 0.0 && self.rng.gen::<f64>() < self.hard_error_rate {
            self.stats.record_hard_error();
            return Verdict::Drop(DropCause::HardError);
        }
        let mut loss = std::mem::replace(&mut self.query_loss, LossState::None);
        let dropped = loss.drops(&mut self.rng);
        self.query_loss = loss;
        if dropped {
            self.stats.record_query_drop();
            return Verdict::Drop(DropCause::Loss);
        }
        self.deliveries(payload_len)
    }

    fn decide_reply(&mut self, payload_len: usize) -> Verdict {
        let mut loss = std::mem::replace(&mut self.reply_loss, LossState::None);
        let dropped = loss.drops(&mut self.rng);
        self.reply_loss = loss;
        if dropped {
            self.stats.record_reply_drop();
            return Verdict::Drop(DropCause::Loss);
        }
        self.deliveries(payload_len)
    }

    fn deliveries(&mut self, payload_len: usize) -> Verdict {
        let extra = match self.duplicate {
            Some(DuplicateFault { rate, copies }) if self.rng.gen::<f64>() < rate => {
                for _ in 0..copies {
                    self.stats.record_duplicated();
                }
                copies
            }
            _ => 0,
        };
        let mut copies = Vec::with_capacity(1 + extra as usize);
        for _ in 0..=extra {
            let mut delay = Duration::ZERO;
            if let Some(DelayFault {
                jitter,
                spike_rate,
                spike,
            }) = self.delay
            {
                if !jitter.is_zero() {
                    delay += jitter.mul_f64(self.rng.gen::<f64>());
                }
                if spike_rate > 0.0 && self.rng.gen::<f64>() < spike_rate {
                    delay += spike;
                }
                if !delay.is_zero() {
                    self.stats.record_delayed();
                }
            }
            let truncate_to = match self.truncate {
                Some(TruncateFault { rate }) if self.rng.gen::<f64>() < rate => {
                    self.stats.record_truncated();
                    // Half the payload: cuts mid-header or mid-question,
                    // which any DNS decoder must reject.
                    Some(payload_len / 2)
                }
                _ => None,
            };
            copies.push(Delivery { delay, truncate_to });
        }
        self.stats.record_delivered();
        Verdict::Deliver(copies)
    }
}

/// Synthesizes the REFUSED response a rate-limiting resolver would send:
/// the query bytes with QR flipped on and RCODE set to 5 (REFUSED),
/// question section intact — so it passes the engine's id, source and
/// echoed-question correlation checks.
///
/// Returns `None` when `query` is too short to be a DNS header.
pub fn refused_reply(query: &[u8]) -> Option<Vec<u8>> {
    if query.len() < 12 {
        return None;
    }
    let mut reply = query.to_vec();
    reply[2] |= 0x80; // QR: this is a response
    reply[3] = (reply[3] & 0xF0) | 0x05; // RCODE 5 REFUSED
    Some(reply)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::RateLimitFault;

    fn decide_n(injector: &mut FaultInjector, dir: Direction, n: usize) -> Vec<Verdict> {
        (0..n)
            .map(|i| injector.decide(dir, Duration::from_millis(i as u64 * 10), 64))
            .collect()
    }

    #[test]
    fn clean_plan_delivers_everything_unmangled() {
        let mut injector = FaultInjector::new(&FaultPlan::clean(1));
        for v in decide_n(&mut injector, Direction::ClientToServer, 100) {
            assert_eq!(
                v,
                Verdict::Deliver(vec![Delivery {
                    delay: Duration::ZERO,
                    truncate_to: None
                }])
            );
        }
        assert!(!injector.stats().anything_injected());
    }

    #[test]
    fn identical_plans_make_identical_decisions() {
        let plan = FaultPlan {
            seed: 9,
            query_loss: LossFault::Bursty {
                mean_loss: 0.3,
                mean_burst: 4.0,
            },
            reply_loss: LossFault::Uniform { rate: 0.1 },
            hard_error_rate: 0.05,
            delay: Some(DelayFault {
                jitter: Duration::from_millis(5),
                spike_rate: 0.2,
                spike: Duration::from_millis(40),
            }),
            duplicate: Some(DuplicateFault {
                rate: 0.15,
                copies: 1,
            }),
            truncate: Some(TruncateFault { rate: 0.1 }),
            rate_limit: Some(RateLimitFault {
                qps: 50.0,
                burst: 5.0,
                action: RateLimitAction::Refuse,
            }),
        };
        let mut a = FaultInjector::new(&plan);
        let mut b = FaultInjector::new(&plan);
        for i in 0..500u64 {
            let now = Duration::from_millis(i * 3);
            let dir = if i % 3 == 0 {
                Direction::ServerToClient
            } else {
                Direction::ClientToServer
            };
            assert_eq!(a.decide(dir, now, 80), b.decide(dir, now, 80), "step {i}");
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultInjector::new(&FaultPlan::bursty(1, 0.4, 3.0));
        let mut b = FaultInjector::new(&FaultPlan::bursty(2, 0.4, 3.0));
        let va = decide_n(&mut a, Direction::ClientToServer, 200);
        let vb = decide_n(&mut b, Direction::ClientToServer, 200);
        assert_ne!(va, vb);
    }

    #[test]
    fn bursty_loss_hits_its_long_run_rate() {
        let mut injector = FaultInjector::new(&FaultPlan::bursty(7, 0.3, 4.0));
        let verdicts = decide_n(&mut injector, Direction::ClientToServer, 20_000);
        let drops = verdicts.iter().filter(|v| v.is_drop()).count();
        let rate = drops as f64 / verdicts.len() as f64;
        assert!((rate - 0.3).abs() < 0.03, "observed {rate}");
        assert_eq!(injector.stats().query_drops(), drops as u64);
    }

    #[test]
    fn directions_have_independent_loss() {
        let plan = FaultPlan {
            reply_loss: LossFault::Uniform { rate: 0.5 },
            ..FaultPlan::clean(3)
        };
        let mut injector = FaultInjector::new(&plan);
        let queries = decide_n(&mut injector, Direction::ClientToServer, 200);
        assert!(queries.iter().all(|v| !v.is_drop()), "query dir is clean");
        let replies = decide_n(&mut injector, Direction::ServerToClient, 200);
        let dropped = replies.iter().filter(|v| v.is_drop()).count();
        assert!(dropped > 60, "reply dir must drop ≈50%, got {dropped}");
        assert_eq!(injector.stats().reply_drops(), dropped as u64);
        assert_eq!(injector.stats().query_drops(), 0);
    }

    #[test]
    fn rate_limit_refuses_over_budget_queries() {
        let plan = FaultPlan {
            rate_limit: Some(RateLimitFault {
                qps: 100.0,
                burst: 3.0,
                action: RateLimitAction::Refuse,
            }),
            ..FaultPlan::clean(4)
        };
        let mut injector = FaultInjector::new(&plan);
        // A burst at t=0: the first 3 pass, the rest are refused.
        let now = Duration::ZERO;
        let verdicts: Vec<Verdict> = (0..10)
            .map(|_| injector.decide(Direction::ClientToServer, now, 64))
            .collect();
        assert_eq!(
            verdicts.iter().filter(|v| **v == Verdict::Refuse).count(),
            7
        );
        // After a second the bucket refills.
        assert!(matches!(
            injector.decide(Direction::ClientToServer, Duration::from_secs(1), 64),
            Verdict::Deliver(_)
        ));
        assert_eq!(injector.stats().refused(), 7);
        assert_eq!(injector.stats().rate_limited(), 7);
    }

    #[test]
    fn rate_limit_drop_action_sheds_silently() {
        let plan = FaultPlan {
            rate_limit: Some(RateLimitFault {
                qps: 10.0,
                burst: 1.0,
                action: RateLimitAction::Drop,
            }),
            ..FaultPlan::clean(5)
        };
        let mut injector = FaultInjector::new(&plan);
        assert!(matches!(
            injector.decide(Direction::ClientToServer, Duration::ZERO, 64),
            Verdict::Deliver(_)
        ));
        assert_eq!(
            injector.decide(Direction::ClientToServer, Duration::ZERO, 64),
            Verdict::Drop(DropCause::RateLimit)
        );
        assert_eq!(injector.stats().refused(), 0);
    }

    #[test]
    fn duplication_delivers_extra_copies() {
        let plan = FaultPlan {
            duplicate: Some(DuplicateFault {
                rate: 1.0,
                copies: 2,
            }),
            ..FaultPlan::clean(6)
        };
        let mut injector = FaultInjector::new(&plan);
        let Verdict::Deliver(copies) =
            injector.decide(Direction::ServerToClient, Duration::ZERO, 64)
        else {
            panic!("expected delivery");
        };
        assert_eq!(copies.len(), 3);
        assert_eq!(injector.stats().duplicated(), 2);
    }

    #[test]
    fn truncation_halves_the_payload() {
        let plan = FaultPlan {
            truncate: Some(TruncateFault { rate: 1.0 }),
            ..FaultPlan::clean(7)
        };
        let mut injector = FaultInjector::new(&plan);
        let Verdict::Deliver(copies) =
            injector.decide(Direction::ClientToServer, Duration::ZERO, 80)
        else {
            panic!("expected delivery");
        };
        assert_eq!(copies[0].truncate_to, Some(40));
        assert_eq!(injector.stats().truncated(), 1);
    }

    #[test]
    fn delay_spikes_fire_at_their_rate() {
        let plan = FaultPlan {
            delay: Some(DelayFault {
                jitter: Duration::ZERO,
                spike_rate: 1.0,
                spike: Duration::from_millis(25),
            }),
            ..FaultPlan::clean(8)
        };
        let mut injector = FaultInjector::new(&plan);
        let Verdict::Deliver(copies) =
            injector.decide(Direction::ServerToClient, Duration::ZERO, 64)
        else {
            panic!("expected delivery");
        };
        assert_eq!(copies[0].delay, Duration::from_millis(25));
        assert_eq!(injector.stats().delayed(), 1);
    }

    #[test]
    fn refused_reply_flips_qr_and_rcode_only() {
        // A minimal query header + one question byte pattern.
        let query = [
            0xAB, 0xCD, // id
            0x01, 0x00, // RD set, no QR
            0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // counts
            0x01, b'x', 0x00, 0x00, 0x01, 0x00, 0x01, // x. A IN
        ];
        let reply = refused_reply(&query).expect("long enough");
        assert_eq!(reply[0], 0xAB);
        assert_eq!(reply[1], 0xCD);
        assert_eq!(reply[2], 0x81, "QR set, RD preserved");
        assert_eq!(reply[3], 0x05, "RCODE REFUSED");
        assert_eq!(&reply[4..], &query[4..], "rest untouched");
        assert_eq!(refused_reply(&[0u8; 4]), None);
    }
}
