//! **cde-faults** — deterministic, seedable network fault injection.
//!
//! The paper's measurements only work because CDE tolerates a hostile
//! network: §V copes with packet loss via carpet bombing (K-fold
//! redundancy) and the two-phase init/validate protocol, and the timing
//! side channel (§IV-B3) survives only if jitter and reordering don't
//! corrupt the cached/uncached threshold. This crate is the adversary:
//! a composable set of fault models the engine's transports can wear,
//! every decision drawn from one per-plan seed so any chaos run replays
//! bit-identically.
//!
//! * [`FaultPlan`] — the declarative recipe: loss (uniform or
//!   Gilbert–Elliott bursty) per direction, ICMP-unreachable-style hard
//!   errors, latency jitter/spikes (reordering emerges from unequal
//!   delays), duplication, truncation, and resolver-side rate limiting
//!   (drop or REFUSED after N qps).
//! * [`FaultInjector`] — the stateful interpreter: feed it each datagram
//!   (direction, clock, size) and act on the [`Verdict`].
//! * [`FaultStats`] — atomic counters of everything injected, exposed as
//!   a `cde-telemetry` [`Collector`](cde_telemetry::Collector)
//!   (`cde_faults_*` metric families).
//!
//! Transports integrate at their send/recv seam: decide
//! [`Direction::ClientToServer`] before writing a datagram to the wire
//! and [`Direction::ServerToClient`] before processing one received —
//! dropped queries still consume retry budget, late replies land as
//! strays, REFUSED synthesizes a [`refused_reply`]. The engine's retry,
//! rate-limit and planner feedback loops then react to injected faults
//! exactly as they would to real ones.
//!
//! # Examples
//!
//! ```
//! use cde_faults::{Direction, FaultInjector, FaultPlan, LossFault, Verdict};
//! use std::time::Duration;
//!
//! let plan = FaultPlan {
//!     query_loss: LossFault::Bursty { mean_loss: 0.3, mean_burst: 4.0 },
//!     ..FaultPlan::clean(42)
//! };
//! let mut injector = FaultInjector::new(&plan);
//! let mut dropped = 0;
//! for i in 0..1000 {
//!     let now = Duration::from_millis(i);
//!     if let Verdict::Drop(_) = injector.decide(Direction::ClientToServer, now, 64) {
//!         dropped += 1;
//!     }
//! }
//! assert!(dropped > 200 && dropped < 400, "≈30% bursty loss, got {dropped}");
//! // Same plan, same seed → same decisions.
//! assert_eq!(injector.stats().query_drops(), dropped);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod inject;
pub mod plan;
pub mod stats;

pub use inject::{refused_reply, Delivery, Direction, DropCause, FaultInjector, Verdict};
pub use plan::{
    DelayFault, DuplicateFault, FaultPlan, LossFault, RateLimitAction, RateLimitFault,
    TruncateFault,
};
pub use stats::FaultStats;
