//! The declarative fault recipe a transport wears.

use std::time::Duration;

/// A packet-loss model for one traffic direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossFault {
    /// No loss.
    None,
    /// Independent per-packet loss with probability `rate`.
    Uniform {
        /// Loss probability per packet, in `[0, 1)`.
        rate: f64,
    },
    /// Correlated loss from a Gilbert–Elliott two-state chain
    /// ([`cde_netsim::GilbertElliott::bursty`]): the long-run rate is
    /// `mean_loss`, but drops cluster in runs of ≈`mean_burst` packets.
    Bursty {
        /// Long-run loss rate, in `[0, 1)`.
        mean_loss: f64,
        /// Mean burst length in packets, ≥ 1.
        mean_burst: f64,
    },
}

impl LossFault {
    /// The long-run loss rate of this model.
    pub fn mean_rate(&self) -> f64 {
        match *self {
            LossFault::None => 0.0,
            LossFault::Uniform { rate } => rate,
            LossFault::Bursty { mean_loss, .. } => mean_loss,
        }
    }

    fn validate(&self, what: &str) {
        let rate = self.mean_rate();
        assert!(
            rate.is_finite() && (0.0..1.0).contains(&rate),
            "{what} loss rate must be in [0, 1), got {rate}"
        );
        if let LossFault::Bursty { mean_burst, .. } = *self {
            assert!(
                mean_burst.is_finite() && mean_burst >= 1.0,
                "{what} mean_burst must be >= 1, got {mean_burst}"
            );
        }
    }
}

/// Latency jitter and spikes. Each delivered copy is held for a uniform
/// draw from `[0, jitter]`, plus `spike` with probability `spike_rate` —
/// unequal delays are exactly how the wire reorders datagrams, so there
/// is no separate "reordering" knob.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayFault {
    /// Upper bound of the per-packet uniform jitter.
    pub jitter: Duration,
    /// Probability of an additional latency spike, in `[0, 1]`.
    pub spike_rate: f64,
    /// Extra delay added when a spike fires.
    pub spike: Duration,
}

/// Packet duplication: with probability `rate`, `copies` extra copies of
/// the datagram are delivered (late duplicates exercise the engine's
/// stray-reply taxonomy).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DuplicateFault {
    /// Probability a datagram is duplicated, in `[0, 1]`.
    pub rate: f64,
    /// Extra copies delivered when duplication fires (≥ 1).
    pub copies: u32,
}

/// Truncation: with probability `rate` the datagram is cut to half its
/// length, which a DNS decoder must reject (the engine counts it as a
/// decode error and keeps waiting).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncateFault {
    /// Probability a datagram is truncated, in `[0, 1]`.
    pub rate: f64,
}

/// What a rate-limiting resolver does with excess queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateLimitAction {
    /// Silently drop (the common response-rate-limiting behaviour).
    Drop,
    /// Answer with RCODE 5 REFUSED instead of resolving.
    Refuse,
}

/// Resolver-side rate limiting: a token bucket of `qps` with burst
/// capacity `burst`; queries beyond it are dropped or REFUSED.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimitFault {
    /// Sustained queries per second admitted.
    pub qps: f64,
    /// Bucket depth: queries admitted in an instantaneous burst.
    pub burst: f64,
    /// What happens to queries over the limit.
    pub action: RateLimitAction,
}

/// A complete, composable fault recipe. Every stochastic decision the
/// resulting [`FaultInjector`](crate::FaultInjector) makes derives from
/// `seed`, so a plan replays bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Master seed for every fault decision.
    pub seed: u64,
    /// Loss on the client→server (query) direction.
    pub query_loss: LossFault,
    /// Loss on the server→client (reply) direction.
    pub reply_loss: LossFault,
    /// Probability a query dies to a hard error (ICMP unreachable /
    /// socket error semantics: gone before it ever reaches the wire).
    pub hard_error_rate: f64,
    /// Latency jitter/spikes applied to delivered copies.
    pub delay: Option<DelayFault>,
    /// Duplication of delivered datagrams.
    pub duplicate: Option<DuplicateFault>,
    /// Truncation of delivered datagrams.
    pub truncate: Option<TruncateFault>,
    /// Resolver-side rate limiting of queries.
    pub rate_limit: Option<RateLimitFault>,
}

impl FaultPlan {
    /// A plan that injects nothing — the identity recipe to build on
    /// with struct-update syntax.
    pub fn clean(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            query_loss: LossFault::None,
            reply_loss: LossFault::None,
            hard_error_rate: 0.0,
            delay: None,
            duplicate: None,
            truncate: None,
            rate_limit: None,
        }
    }

    /// The chaos-suite staple: Gilbert–Elliott bursty loss on the query
    /// direction at `mean_loss` with `mean_burst`-packet bursts.
    pub fn bursty(seed: u64, mean_loss: f64, mean_burst: f64) -> FaultPlan {
        FaultPlan {
            query_loss: LossFault::Bursty {
                mean_loss,
                mean_burst,
            },
            ..FaultPlan::clean(seed)
        }
    }

    /// The worst long-run loss either direction injects — what a planner
    /// should budget redundancy for.
    pub fn worst_loss(&self) -> f64 {
        self.query_loss.mean_rate().max(self.reply_loss.mean_rate())
    }

    /// Mean burst length of the lossiest direction (1.0 when loss is
    /// uniform or absent) — feeds burst-aware redundancy planning.
    pub fn worst_burst(&self) -> f64 {
        let burst = |loss: &LossFault| match *loss {
            LossFault::Bursty { mean_burst, .. } => mean_burst,
            _ => 1.0,
        };
        if self.query_loss.mean_rate() >= self.reply_loss.mean_rate() {
            burst(&self.query_loss)
        } else {
            burst(&self.reply_loss)
        }
    }

    /// Checks every knob is in range.
    ///
    /// # Panics
    ///
    /// Panics on any out-of-range rate or parameter, naming it.
    pub fn validate(&self) {
        self.query_loss.validate("query");
        self.reply_loss.validate("reply");
        assert!(
            self.hard_error_rate.is_finite() && (0.0..=1.0).contains(&self.hard_error_rate),
            "hard_error_rate must be in [0, 1]"
        );
        if let Some(d) = &self.delay {
            assert!(
                d.spike_rate.is_finite() && (0.0..=1.0).contains(&d.spike_rate),
                "spike_rate must be in [0, 1]"
            );
        }
        if let Some(d) = &self.duplicate {
            assert!(
                d.rate.is_finite() && (0.0..=1.0).contains(&d.rate),
                "duplicate rate must be in [0, 1]"
            );
            assert!(d.copies >= 1, "duplicate copies must be >= 1");
        }
        if let Some(t) = &self.truncate {
            assert!(
                t.rate.is_finite() && (0.0..=1.0).contains(&t.rate),
                "truncate rate must be in [0, 1]"
            );
        }
        if let Some(r) = &self.rate_limit {
            assert!(
                r.qps.is_finite() && r.qps > 0.0,
                "rate limit qps must be positive"
            );
            assert!(
                r.burst.is_finite() && r.burst >= 1.0,
                "rate limit burst must be >= 1"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_plan_is_the_identity() {
        let plan = FaultPlan::clean(5);
        plan.validate();
        assert_eq!(plan.worst_loss(), 0.0);
        assert_eq!(plan.worst_burst(), 1.0);
    }

    #[test]
    fn bursty_preset_reports_its_parameters() {
        let plan = FaultPlan::bursty(5, 0.3, 4.0);
        plan.validate();
        assert!((plan.worst_loss() - 0.3).abs() < 1e-12);
        assert!((plan.worst_burst() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn worst_loss_picks_the_lossier_direction() {
        let plan = FaultPlan {
            query_loss: LossFault::Uniform { rate: 0.1 },
            reply_loss: LossFault::Bursty {
                mean_loss: 0.2,
                mean_burst: 3.0,
            },
            ..FaultPlan::clean(1)
        };
        assert!((plan.worst_loss() - 0.2).abs() < 1e-12);
        assert!((plan.worst_burst() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "query loss rate")]
    fn validate_rejects_total_loss() {
        FaultPlan {
            query_loss: LossFault::Uniform { rate: 1.0 },
            ..FaultPlan::clean(0)
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "duplicate copies")]
    fn validate_rejects_zero_copy_duplication() {
        FaultPlan {
            duplicate: Some(DuplicateFault {
                rate: 0.5,
                copies: 0,
            }),
            ..FaultPlan::clean(0)
        }
        .validate();
    }
}
