//! Atomic accounting of everything the injector did to the traffic.

use cde_telemetry::{Collector, Metric};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters of injected faults, shared between the injector and whoever
/// wants to assert on (or export) what the chaos layer actually did.
///
/// Registered into a [`MetricsRegistry`](cde_telemetry::MetricsRegistry)
/// these surface as `cde_faults_*` counter families.
#[derive(Debug, Default)]
pub struct FaultStats {
    query_drops: AtomicU64,
    reply_drops: AtomicU64,
    hard_errors: AtomicU64,
    rate_limited: AtomicU64,
    refused: AtomicU64,
    duplicated: AtomicU64,
    delayed: AtomicU64,
    truncated: AtomicU64,
    delivered: AtomicU64,
}

macro_rules! counter {
    ($record:ident, $get:ident) => {
        pub(crate) fn $record(&self) {
            self.$get.fetch_add(1, Ordering::Relaxed);
        }

        /// The current value of this counter.
        pub fn $get(&self) -> u64 {
            self.$get.load(Ordering::Relaxed)
        }
    };
}

impl FaultStats {
    /// Fresh, all-zero counters.
    pub fn new() -> FaultStats {
        FaultStats::default()
    }

    counter!(record_query_drop, query_drops);
    counter!(record_reply_drop, reply_drops);
    counter!(record_hard_error, hard_errors);
    counter!(record_rate_limited, rate_limited);
    counter!(record_refused, refused);
    counter!(record_duplicated, duplicated);
    counter!(record_delayed, delayed);
    counter!(record_truncated, truncated);
    counter!(record_delivered, delivered);

    /// Datagrams removed from the wire for any reason (loss, hard error,
    /// rate-limit drops — REFUSED answers are not drops).
    pub fn total_drops(&self) -> u64 {
        self.query_drops() + self.reply_drops() + self.hard_errors()
    }

    /// Any fault injected at all? Used by tests to assert the chaos run
    /// was not accidentally a clean run.
    pub fn anything_injected(&self) -> bool {
        self.total_drops() > 0
            || self.rate_limited() > 0
            || self.duplicated() > 0
            || self.delayed() > 0
            || self.truncated() > 0
    }
}

impl Collector for FaultStats {
    fn collect(&self, out: &mut Vec<Metric>) {
        out.push(Metric::counter(
            "cde_faults_query_drops_total",
            "Queries dropped by injected loss",
            self.query_drops(),
        ));
        out.push(Metric::counter(
            "cde_faults_reply_drops_total",
            "Replies dropped by injected loss",
            self.reply_drops(),
        ));
        out.push(Metric::counter(
            "cde_faults_hard_errors_total",
            "Queries killed by injected hard (ICMP-style) errors",
            self.hard_errors(),
        ));
        out.push(Metric::counter(
            "cde_faults_rate_limited_total",
            "Queries over the injected resolver rate limit",
            self.rate_limited(),
        ));
        out.push(Metric::counter(
            "cde_faults_refused_total",
            "Rate-limited queries answered REFUSED",
            self.refused(),
        ));
        out.push(Metric::counter(
            "cde_faults_duplicated_total",
            "Extra datagram copies injected",
            self.duplicated(),
        ));
        out.push(Metric::counter(
            "cde_faults_delayed_total",
            "Datagrams held back by injected jitter/spikes",
            self.delayed(),
        ));
        out.push(Metric::counter(
            "cde_faults_truncated_total",
            "Datagrams cut short by injected truncation",
            self.truncated(),
        ));
        out.push(Metric::counter(
            "cde_faults_delivered_total",
            "Datagrams the injector let through",
            self.delivered(),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_export() {
        let stats = FaultStats::new();
        stats.record_query_drop();
        stats.record_query_drop();
        stats.record_refused();
        assert_eq!(stats.query_drops(), 2);
        assert_eq!(stats.total_drops(), 2);
        assert!(stats.anything_injected());
        let mut out = Vec::new();
        stats.collect(&mut out);
        assert_eq!(out.len(), 9);
        assert!(out.iter().all(|m| m.name.starts_with("cde_faults_")));
    }

    #[test]
    fn fresh_stats_report_nothing_injected() {
        let stats = FaultStats::new();
        stats.record_delivered();
        assert!(!stats.anything_injected());
    }
}
