//! Local caches between an indirect prober and the ingress resolver.
//!
//! When probing via email servers or web browsers (paper §IV-B), the
//! prober's queries pass through a chain of local caches — the browser's
//! own cache, the OS stub resolver's cache, possibly a web proxy. They
//! impose the two limitations §IV-B spells out: a hostname reaches the
//! ingress resolver only once per TTL, and the prober cannot control query
//! timing. The CNAME-chain and names-hierarchy bypasses work because they
//! use *distinct* query names that all funnel to one countable record.

use cde_dns::{Name, Record, RecordType};
use cde_netsim::{SimDuration, SimTime};
use std::collections::HashMap;

/// One layer of the local cache chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LocalCacheLayer {
    /// In-browser DNS/resource cache (e.g. Internet Explorer's).
    Browser,
    /// Operating-system stub resolver cache (e.g. Windows 8's).
    OsStub,
    /// Forward web proxy with its own resolver cache.
    Proxy,
}

impl std::fmt::Display for LocalCacheLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LocalCacheLayer::Browser => write!(f, "browser"),
            LocalCacheLayer::OsStub => write!(f, "os-stub"),
            LocalCacheLayer::Proxy => write!(f, "proxy"),
        }
    }
}

#[derive(Debug, Clone)]
struct LocalEntry {
    records: Vec<Record>,
    expires_at: SimTime,
}

/// A chain of simple positive caches keyed by `(name, type)`.
///
/// Local caches only ever see final answers (the CNAME redirection is
/// resolved upstream, §IV-B2a), so each layer stores whole answers keyed by
/// the *queried* name.
///
/// # Examples
///
/// ```
/// use cde_platform::{LocalCacheChain, LocalCacheLayer};
/// use cde_dns::{Name, RData, Record, RecordType, Ttl};
/// use cde_netsim::SimTime;
/// use std::net::Ipv4Addr;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut chain = LocalCacheChain::browser_and_stub();
/// let name: Name = "a.cache.example".parse()?;
/// assert!(chain.lookup(&name, RecordType::A, SimTime::ZERO).is_none());
/// chain.store(
///     name.clone(),
///     RecordType::A,
///     vec![Record::new(name.clone(), Ttl::from_secs(60), RData::A(Ipv4Addr::new(1, 2, 3, 4)))],
///     SimTime::ZERO,
/// );
/// assert!(chain.lookup(&name, RecordType::A, SimTime::ZERO).is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct LocalCacheChain {
    layers: Vec<(LocalCacheLayer, LayerStore)>,
    hits: u64,
    misses: u64,
}

/// One layer's stored answers, keyed by the queried `(name, type)`.
type LayerStore = HashMap<(Name, RecordType), LocalEntry>;

impl LocalCacheChain {
    /// Creates a chain with the given layers (outermost first).
    pub fn new(layers: &[LocalCacheLayer]) -> LocalCacheChain {
        LocalCacheChain {
            layers: layers.iter().map(|&l| (l, HashMap::new())).collect(),
            hits: 0,
            misses: 0,
        }
    }

    /// The typical web-client chain: browser cache over OS stub cache.
    pub fn browser_and_stub() -> LocalCacheChain {
        LocalCacheChain::new(&[LocalCacheLayer::Browser, LocalCacheLayer::OsStub])
    }

    /// The typical mail-server chain: just the OS stub cache.
    pub fn stub_only() -> LocalCacheChain {
        LocalCacheChain::new(&[LocalCacheLayer::OsStub])
    }

    /// An empty chain (direct prober: no local caching at all).
    pub fn none() -> LocalCacheChain {
        LocalCacheChain::new(&[])
    }

    /// Layers in this chain, outermost first.
    pub fn layers(&self) -> Vec<LocalCacheLayer> {
        self.layers.iter().map(|(l, _)| *l).collect()
    }

    /// Local lookups answered without reaching the ingress resolver.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to go through to the ingress resolver.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Checks every layer outermost-in; a fresh entry anywhere answers
    /// locally.
    pub fn lookup(&mut self, name: &Name, rtype: RecordType, now: SimTime) -> Option<Vec<Record>> {
        let key = (name.clone(), rtype);
        for (_, map) in &mut self.layers {
            if let Some(entry) = map.get(&key) {
                if entry.expires_at > now {
                    self.hits += 1;
                    return Some(entry.records.clone());
                }
                map.remove(&key);
            }
        }
        self.misses += 1;
        None
    }

    /// Stores a final answer in every layer (each local cache on the path
    /// sees the response go by).
    pub fn store(&mut self, name: Name, rtype: RecordType, records: Vec<Record>, now: SimTime) {
        let ttl = records.iter().map(|r| r.ttl().as_secs()).min().unwrap_or(0);
        if ttl == 0 {
            return;
        }
        let expires_at = now + SimDuration::from_secs(ttl as u64);
        for (_, map) in &mut self.layers {
            map.insert(
                (name.clone(), rtype),
                LocalEntry {
                    records: records.clone(),
                    expires_at,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cde_dns::{RData, Ttl};
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn rec(name: &Name, ttl: u32) -> Record {
        Record::new(
            name.clone(),
            Ttl::from_secs(ttl),
            RData::A(Ipv4Addr::new(5, 5, 5, 5)),
        )
    }

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn empty_chain_never_hits() {
        let mut c = LocalCacheChain::none();
        let name = n("a.b");
        c.store(name.clone(), RecordType::A, vec![rec(&name, 60)], t(0));
        assert!(c.lookup(&name, RecordType::A, t(0)).is_none());
    }

    #[test]
    fn stored_answers_hit_until_ttl() {
        let mut c = LocalCacheChain::browser_and_stub();
        let name = n("a.b");
        c.store(name.clone(), RecordType::A, vec![rec(&name, 60)], t(0));
        assert!(c.lookup(&name, RecordType::A, t(59)).is_some());
        assert!(c.lookup(&name, RecordType::A, t(60)).is_none());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn distinct_names_do_not_collide() {
        // The property the CNAME-chain bypass relies on.
        let mut c = LocalCacheChain::browser_and_stub();
        let n1 = n("x-1.cache.example");
        c.store(n1.clone(), RecordType::A, vec![rec(&n1, 60)], t(0));
        assert!(c
            .lookup(&n("x-2.cache.example"), RecordType::A, t(0))
            .is_none());
    }

    #[test]
    fn zero_ttl_not_stored() {
        let mut c = LocalCacheChain::stub_only();
        let name = n("a.b");
        c.store(name.clone(), RecordType::A, vec![rec(&name, 0)], t(0));
        assert!(c.lookup(&name, RecordType::A, t(0)).is_none());
    }

    #[test]
    fn layers_accessor_reports_chain() {
        let c = LocalCacheChain::browser_and_stub();
        assert_eq!(
            c.layers(),
            vec![LocalCacheLayer::Browser, LocalCacheLayer::OsStub]
        );
    }
}
