//! Cache-selection strategies for the load balancer.
//!
//! The paper (§IV-A) identifies two broad families — *traffic dependent*
//! (round robin, least loaded: they spread query volume evenly) and
//! *unpredictable* (uniformly random) — plus "more complex strategies"
//! keyed on the requested domain or the client's source address. All four
//! are implemented here; which one a platform uses materially changes how
//! many probes an enumeration needs, which is exactly the `selectors`
//! ablation bench.

use cde_dns::Name;
use rand::Rng;
use std::net::Ipv4Addr;

/// Which cache-selection strategy a load balancer applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SelectorKind {
    /// Cycle through caches in order (traffic dependent).
    RoundRobin,
    /// Uniformly random (unpredictable) — the paper measured this family in
    /// more than 80% of networks, so it is the default.
    #[default]
    Random,
    /// Hash of the queried name (complex, domain-dependent).
    QnameHash,
    /// Hash of the client's source address (complex, client-affine).
    SourceHash,
    /// Send to the cache with the least queries so far (traffic dependent).
    LeastLoaded,
}

impl SelectorKind {
    /// All strategies, for ablation sweeps.
    pub fn all() -> [SelectorKind; 5] {
        [
            SelectorKind::RoundRobin,
            SelectorKind::Random,
            SelectorKind::QnameHash,
            SelectorKind::SourceHash,
            SelectorKind::LeastLoaded,
        ]
    }

    /// `true` for the paper's "unpredictable" family.
    pub fn is_unpredictable(self) -> bool {
        matches!(self, SelectorKind::Random)
    }
}

impl std::fmt::Display for SelectorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SelectorKind::RoundRobin => write!(f, "round-robin"),
            SelectorKind::Random => write!(f, "random"),
            SelectorKind::QnameHash => write!(f, "qname-hash"),
            SelectorKind::SourceHash => write!(f, "source-hash"),
            SelectorKind::LeastLoaded => write!(f, "least-loaded"),
        }
    }
}

/// The load balancer in front of one cache cluster: picks exactly one cache
/// per arriving query (§IV-A: "exactly one cache is selected ... for
/// sampling").
#[derive(Debug, Clone)]
pub struct LoadBalancer {
    kind: SelectorKind,
    cache_count: usize,
    rr_next: usize,
    loads: Vec<u64>,
}

impl LoadBalancer {
    /// Creates a balancer over `cache_count` caches.
    ///
    /// # Panics
    ///
    /// Panics when `cache_count` is zero.
    pub fn new(kind: SelectorKind, cache_count: usize) -> LoadBalancer {
        assert!(cache_count > 0, "cache count must be positive");
        LoadBalancer {
            kind,
            cache_count,
            rr_next: 0,
            loads: vec![0; cache_count],
        }
    }

    /// The strategy in use.
    pub fn kind(&self) -> SelectorKind {
        self.kind
    }

    /// Number of caches balanced over.
    pub fn cache_count(&self) -> usize {
        self.cache_count
    }

    /// Per-cache query counts so far.
    pub fn loads(&self) -> &[u64] {
        &self.loads
    }

    /// Selects the cache index for one query.
    pub fn select<R: Rng + ?Sized>(&mut self, qname: &Name, src: Ipv4Addr, rng: &mut R) -> usize {
        let idx = match self.kind {
            SelectorKind::RoundRobin => {
                let i = self.rr_next;
                self.rr_next = (self.rr_next + 1) % self.cache_count;
                i
            }
            SelectorKind::Random => rng.gen_range(0..self.cache_count),
            SelectorKind::QnameHash => {
                (fnv(qname.to_string().as_bytes()) as usize) % self.cache_count
            }
            SelectorKind::SourceHash => (fnv(&src.octets()) as usize) % self.cache_count,
            SelectorKind::LeastLoaded => self
                .loads
                .iter()
                .enumerate()
                .min_by_key(|(i, l)| (**l, *i))
                .map(|(i, _)| i)
                .expect("cache_count > 0"),
        };
        self.loads[idx] += 1;
        idx
    }
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use cde_netsim::DetRng;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn src() -> Ipv4Addr {
        Ipv4Addr::new(203, 0, 113, 10)
    }

    #[test]
    fn round_robin_cycles() {
        let mut lb = LoadBalancer::new(SelectorKind::RoundRobin, 3);
        let mut rng = DetRng::seed(0);
        let picks: Vec<usize> = (0..7)
            .map(|_| lb.select(&n("a.b"), src(), &mut rng))
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn random_covers_all_caches_eventually() {
        let mut lb = LoadBalancer::new(SelectorKind::Random, 8);
        let mut rng = DetRng::seed(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            seen.insert(lb.select(&n("a.b"), src(), &mut rng));
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn random_is_roughly_uniform() {
        let mut lb = LoadBalancer::new(SelectorKind::Random, 4);
        let mut rng = DetRng::seed(2);
        for _ in 0..40_000 {
            lb.select(&n("a.b"), src(), &mut rng);
        }
        for &l in lb.loads() {
            assert!((9_000..11_000).contains(&(l as usize)), "load {l}");
        }
    }

    #[test]
    fn qname_hash_is_sticky_per_name() {
        let mut lb = LoadBalancer::new(SelectorKind::QnameHash, 5);
        let mut rng = DetRng::seed(3);
        let first = lb.select(&n("sticky.example"), src(), &mut rng);
        for _ in 0..10 {
            assert_eq!(lb.select(&n("sticky.example"), src(), &mut rng), first);
        }
        // Different names spread across caches.
        let mut seen = std::collections::HashSet::new();
        for i in 0..100 {
            seen.insert(lb.select(&n(&format!("x-{i}.example")), src(), &mut rng));
        }
        assert!(seen.len() >= 4);
    }

    #[test]
    fn source_hash_is_sticky_per_client() {
        let mut lb = LoadBalancer::new(SelectorKind::SourceHash, 5);
        let mut rng = DetRng::seed(4);
        let a = Ipv4Addr::new(1, 2, 3, 4);
        let first = lb.select(&n("a.b"), a, &mut rng);
        for i in 0..10 {
            assert_eq!(lb.select(&n(&format!("q{i}.b")), a, &mut rng), first);
        }
    }

    #[test]
    fn least_loaded_balances_exactly() {
        let mut lb = LoadBalancer::new(SelectorKind::LeastLoaded, 4);
        let mut rng = DetRng::seed(5);
        for _ in 0..16 {
            lb.select(&n("a.b"), src(), &mut rng);
        }
        assert_eq!(lb.loads(), &[4, 4, 4, 4]);
    }

    #[test]
    fn loads_track_every_selection() {
        let mut lb = LoadBalancer::new(SelectorKind::Random, 3);
        let mut rng = DetRng::seed(6);
        for _ in 0..50 {
            lb.select(&n("a.b"), src(), &mut rng);
        }
        assert_eq!(lb.loads().iter().sum::<u64>(), 50);
    }

    #[test]
    #[should_panic(expected = "cache count")]
    fn zero_caches_rejected() {
        LoadBalancer::new(SelectorKind::Random, 0);
    }

    #[test]
    fn only_random_is_unpredictable() {
        for k in SelectorKind::all() {
            assert_eq!(k.is_unpredictable(), k == SelectorKind::Random);
        }
    }
}
